"""Legacy setup shim: enables `pip install -e .` on environments whose
setuptools lacks the `wheel` package needed for PEP 517 editable installs."""

from setuptools import setup

setup()
