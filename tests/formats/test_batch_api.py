"""The batched codec surface: encode-once, row-wise flips, batch classify.

Identity tests run over *every* registered format and every bit
position: the batch operations must reproduce the scalar API results
exactly, since the campaign pipeline substitutes one for the other and
the run directories are compared byte-for-byte.
"""

import numpy as np
import pytest

from repro.formats import (
    DEFAULT_FORMATS,
    available_formats,
    batch_backend_name,
    flip_patterns,
    get_format,
    resolve,
)


def _dataset(rng, size=512):
    return np.concatenate(
        [rng.normal(50, 20, size // 2), rng.lognormal(-2, 2, size // 2)]
    ).astype(np.float32)


class TestEncodeOnce:
    def test_matches_to_bits(self, rng):
        for name in DEFAULT_FORMATS:
            fmt = get_format(name)
            values = _dataset(rng)
            assert np.array_equal(
                np.asarray(fmt.encode_once(values)), np.asarray(fmt.to_bits(values))
            ), name

    def test_memoized_by_content(self, rng):
        fmt = get_format("posit16")
        values = _dataset(rng)
        first = fmt.encode_once(values)
        second = fmt.encode_once(values.copy())  # same content, new object
        assert np.array_equal(first, second)

    def test_cached_result_is_isolated(self, rng):
        fmt = get_format("posit16")
        values = _dataset(rng)
        first = fmt.encode_once(values)
        first[0] ^= 1  # caller mutation must not poison the cache
        second = fmt.encode_once(values)
        assert second[0] == np.asarray(fmt.to_bits(values[:1]))[0]


class TestDecodeFlips:
    @pytest.mark.parametrize("name", sorted(available_formats()))
    def test_matches_per_bit_decode_every_bit(self, name, rng):
        fmt = get_format(name)
        values = _dataset(rng, 256)
        bits = np.asarray(fmt.to_bits(values))
        bit_list = np.arange(fmt.nbits, dtype=np.int64)
        batched = fmt.decode_flips(bits, bit_list)
        assert batched.shape == (fmt.nbits, values.size)
        one = np.ones((), dtype=bits.dtype)
        for row, bit in enumerate(bit_list.tolist()):
            reference = fmt.from_bits(bits ^ (one << np.asarray(bit, dtype=bits.dtype)))
            assert np.array_equal(
                batched[row].view(np.uint64), np.asarray(reference).view(np.uint64)
            ), (name, bit)

    def test_row_wise_input(self, rng):
        fmt = get_format("posit16")
        values = _dataset(rng, 128)
        bits = np.asarray(fmt.to_bits(values))
        rows = np.stack([bits, bits[::-1]])
        out = fmt.decode_flips(rows, [3, 9])
        assert np.array_equal(out[0], fmt.decode_flips(bits, [3])[0])
        assert np.array_equal(out[1], fmt.decode_flips(bits[::-1], [9])[0])

    def test_flip_patterns_helper(self):
        bits = np.array([0b0000, 0b1111], dtype=np.uint16)
        flipped = flip_patterns(bits, [0, 3], np.uint16)
        assert flipped.tolist() == [[0b0001, 0b1110], [0b1000, 0b0111]]


class TestClassifyBatch:
    @pytest.mark.parametrize("name", sorted(available_formats()))
    def test_matches_scalar_classify_every_bit(self, name, rng):
        fmt = get_format(name)
        values = _dataset(rng, 256)
        bits = np.asarray(fmt.to_bits(values))
        bit_list = np.arange(fmt.nbits, dtype=np.int64)
        rows = np.broadcast_to(bits, (fmt.nbits, values.size))
        batched = fmt.classify_bits_batch(rows, bit_list)
        for row, bit in enumerate(bit_list.tolist()):
            assert np.array_equal(
                batched[row], np.asarray(fmt.classify_bits(bits, bit))
            ), (name, bit)

    def test_out_of_range_bit_rejected(self):
        fmt = get_format("posit16")
        bits = np.asarray(fmt.to_bits(np.array([1.0, 2.0])))
        with pytest.raises(ValueError, match="bit"):
            fmt.classify_bits_batch(np.stack([bits]), [16])


class TestBatchBackendPolicy:
    def test_width_tiers(self):
        assert batch_backend_name(get_format("posit16")) == "lut"
        assert batch_backend_name(get_format("posit8")) == "lut"
        assert batch_backend_name(get_format("posit32")) == "composed"
        assert batch_backend_name(get_format("ieee32")) == "composed"
        assert batch_backend_name(get_format("ieee64")) == "direct"

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORMAT_BACKEND", "direct")
        assert batch_backend_name(get_format("posit32")) == "direct"

    def test_batch_instances_share_registry_cache(self):
        assert resolve("posit32", backend="composed") is resolve(
            "posit32", backend="composed"
        )
