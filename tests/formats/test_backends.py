"""Exhaustive backend-equivalence tests.

For every registered format narrow enough to tabulate, the ``lut``
backend must be *bit-identical* to ``direct`` — over every single one of
the 2**nbits patterns, not a sample.  This is the contract that lets the
campaign engine switch backends freely without perturbing a single
trial.
"""

import numpy as np
import pytest

from repro.formats import LUT_MAX_BITS, available_formats, get_format

#: Parameterized formats exercising the spec grammar beyond the defaults.
EXTRA_SPECS = ["posit16es1", "posit12es1", "binary(6,9)", "fixedposit(16,es=2,r=3)"]


def narrow_formats() -> list[str]:
    names = [n for n in available_formats() if get_format(n).nbits <= LUT_MAX_BITS]
    return names + EXTRA_SPECS


@pytest.fixture(params=narrow_formats())
def backend_pair(request):
    direct = get_format(request.param, backend="direct")
    lut = get_format(request.param, backend="lut")
    patterns = np.arange(1 << direct.nbits, dtype=np.uint64).astype(direct.dtype)
    return direct, lut, patterns


class TestExhaustiveEquivalence:
    def test_from_bits(self, backend_pair):
        direct, lut, patterns = backend_pair
        expected = direct.from_bits(patterns)
        actual = lut.from_bits(patterns)
        assert np.array_equal(expected, actual, equal_nan=True), direct.name

    def test_to_bits_over_all_representable_values(self, backend_pair):
        direct, lut, patterns = backend_pair
        values = direct.from_bits(patterns)
        expected = direct.to_bits(values)
        actual = lut.to_bits(values)
        assert np.array_equal(expected, actual), direct.name

    def test_to_bits_on_arbitrary_floats(self, backend_pair, rng):
        direct, lut, _ = backend_pair
        values = np.concatenate([
            rng.normal(0, 1e3, 20000),
            rng.lognormal(0, 30, 20000),
            -rng.lognormal(0, 30, 20000),
            np.array([0.0, -0.0, np.inf, -np.inf, np.nan]),
        ])
        with np.errstate(over="ignore"):
            assert np.array_equal(direct.to_bits(values), lut.to_bits(values)), direct.name

    def test_classify_bits(self, backend_pair):
        direct, lut, patterns = backend_pair
        for bit in range(direct.nbits):
            expected = direct.classify_bits(patterns, bit)
            actual = lut.classify_bits(patterns, bit)
            assert np.array_equal(expected, actual), f"{direct.name} bit {bit}"
            assert actual.dtype == np.int64

    def test_regime_sizes(self, backend_pair):
        direct, lut, patterns = backend_pair
        assert np.array_equal(direct.regime_sizes(patterns), lut.regime_sizes(patterns)), (
            direct.name
        )

    def test_round_trip(self, backend_pair):
        direct, lut, patterns = backend_pair
        values = direct.from_bits(patterns)
        finite = values[np.isfinite(values)]
        assert np.array_equal(direct.round_trip(finite), lut.round_trip(finite)), direct.name


class TestLUTShapeHandling:
    def test_scalar_and_nd_inputs(self):
        lut = get_format("posit16", backend="lut")
        direct = get_format("posit16", backend="direct")
        value = np.float64(186.25)
        assert int(np.atleast_1d(lut.to_bits(value))[0]) == int(
            np.atleast_1d(direct.to_bits(value))[0]
        )
        grid = np.linspace(-5, 5, 12).reshape(3, 4)
        bits = lut.to_bits(grid)
        assert bits.shape == (3, 4)
        assert lut.from_bits(bits).shape == (3, 4)
        assert lut.classify_bits(bits, 3).shape == (3, 4)
