"""Composed-table and numba backends must be bit-identical to direct.

The composed backend decodes a wide pattern as two table gathers (high
half selects an affine row, low half indexes into it), so every test
here is an exact-equality test: exhaustive over the whole pattern space
for 16-bit formats, stratified samples plus special-value corners at
32 bits.  The numba backend compiles the same scalar recurrence the
direct decoder vectorizes; its tests skip when numba is absent but the
fallback behaviour (warn on explicit request, stay silent for the
environment override) is pinned either way.
"""

import warnings

import numpy as np
import pytest

from repro.formats import (
    COMPOSED_MAX_BITS,
    ComposedLUTBackend,
    numba_available,
    parse_spec,
    resolve,
)

EXHAUSTIVE_FORMATS = ["posit16", "posit16es1", "bfloat16", "ieee16", "posit8"]
SAMPLED_FORMATS = ["posit32", "ieee32"]


def _bits_view(values):
    return np.asarray(values, dtype=np.float64).view(np.uint64)


def _sample_patterns(fmt, rng, count=60000):
    patterns = rng.integers(0, 1 << fmt.nbits, size=count, dtype=np.uint64)
    with np.errstate(over="ignore", invalid="ignore"):
        corners = np.asarray(
            fmt.to_bits(np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 1.0, -1.0, 0.5, -2.0]))
        ).astype(np.uint64)
    extra = np.array([0, 1, (1 << fmt.nbits) - 1, 1 << (fmt.nbits - 1)], dtype=np.uint64)
    return np.unique(np.concatenate([patterns, corners, extra])).astype(fmt.dtype)


class TestComposedEquivalence:
    @pytest.mark.parametrize("name", EXHAUSTIVE_FORMATS)
    def test_exhaustive_16bit(self, name):
        direct = parse_spec(name, "direct")
        composed = parse_spec(name, "composed")
        patterns = np.arange(1 << direct.nbits, dtype=np.uint64).astype(direct.dtype)
        assert np.array_equal(
            _bits_view(direct.from_bits(patterns)), _bits_view(composed.from_bits(patterns))
        )
        for bit in range(direct.nbits):
            assert np.array_equal(
                direct.classify_bits(patterns, bit), composed.classify_bits(patterns, bit)
            ), bit
        assert np.array_equal(direct.regime_sizes(patterns), composed.regime_sizes(patterns))

    @pytest.mark.parametrize("name", SAMPLED_FORMATS)
    def test_sampled_32bit_with_corners(self, name, rng):
        direct = parse_spec(name, "direct")
        composed = parse_spec(name, "composed")
        patterns = _sample_patterns(direct, rng)
        assert np.array_equal(
            _bits_view(direct.from_bits(patterns)), _bits_view(composed.from_bits(patterns))
        )
        for bit in sorted({0, 1, 7, 15, 16, 17, direct.nbits - 2, direct.nbits - 1}):
            assert np.array_equal(
                direct.classify_bits(patterns, bit), composed.classify_bits(patterns, bit)
            ), bit
        assert np.array_equal(direct.regime_sizes(patterns), composed.regime_sizes(patterns))

    def test_encode_delegates_to_direct(self, rng):
        direct = parse_spec("posit32", "direct")
        composed = parse_spec("posit32", "composed")
        values = rng.normal(0, 100, 4096)
        assert np.array_equal(
            np.asarray(direct.to_bits(values)), np.asarray(composed.to_bits(values))
        )

    def test_decode_flips_matches_direct(self, rng):
        direct = parse_spec("posit32", "direct")
        composed = parse_spec("posit32", "composed")
        patterns = _sample_patterns(direct, rng, count=4096)
        bit_list = np.arange(direct.nbits, dtype=np.int64)
        rows = np.broadcast_to(patterns, (bit_list.size, patterns.size))
        assert np.array_equal(
            _bits_view(direct.decode_flips(rows, bit_list)),
            _bits_view(composed.decode_flips(rows, bit_list)),
        )

    def test_too_wide_format_rejected(self):
        with pytest.raises(ValueError, match="composed"):
            parse_spec("ieee64", "composed")
        assert COMPOSED_MAX_BITS == 32

    def test_env_override_degrades_for_wide_formats(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORMAT_BACKEND", "composed")
        assert parse_spec("posit32").backend_name == "composed"
        # Too wide to compose: quietly falls back instead of erroring.
        assert parse_spec("ieee64").backend_name == "direct"

    def test_backend_class_exported(self):
        assert resolve("posit32", backend="composed").backend_name == "composed"
        assert ComposedLUTBackend.backend_name == "composed"


class TestNumbaFallback:
    def test_explicit_request_warns_without_numba(self):
        if numba_available():
            pytest.skip("numba installed; fallback path not reachable")
        with pytest.warns(RuntimeWarning, match="numba"):
            fmt = parse_spec("posit32", "numba")
        assert fmt.backend_name == "direct"

    def test_env_override_degrades_silently(self, monkeypatch):
        if numba_available():
            pytest.skip("numba installed; fallback path not reachable")
        monkeypatch.setenv("REPRO_FORMAT_BACKEND", "numba")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert parse_spec("posit32").backend_name == "direct"


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestNumbaEquivalence:
    @pytest.mark.parametrize("name", ["posit16", "posit32"])
    def test_decode_matches_direct(self, name, rng):
        direct = parse_spec(name, "direct")
        jitted = parse_spec(name, "numba")
        assert jitted.backend_name == "numba"
        patterns = _sample_patterns(direct, rng)
        assert np.array_equal(
            _bits_view(direct.from_bits(patterns)), _bits_view(jitted.from_bits(patterns))
        )
