"""Tests for the format registry and backend selection."""

import numpy as np
import pytest

from repro.formats import (
    DEFAULT_FORMATS,
    FormatSpecError,
    available_formats,
    format_known,
    get_format,
    parse_spec,
    register_format,
    resolve,
)
from repro.formats import registry as registry_module


class TestLookup:
    def test_defaults_resolve(self):
        for name in DEFAULT_FORMATS:
            assert get_format(name).name == name

    def test_instances_are_cached(self):
        assert get_format("posit16") is get_format("posit16")
        assert get_format("posit16") is get_format(" Posit16 ")

    def test_spec_aliases_share_instances(self):
        assert get_format("binary(8,23)") is get_format("ieee32")
        assert get_format("posit16es2") is get_format("posit16")

    def test_parameterized_formats_resolve(self):
        assert get_format("posit16es1").nbits == 16
        assert get_format("fixedposit(32,es=2,r=5)").nbits == 32

    def test_format_known(self):
        assert format_known("posit16es1")
        assert not format_known("posit128")
        assert not format_known("nonsense")

    def test_register_custom_name(self):
        register_format("paper-posit", lambda: parse_spec("posit32"))
        try:
            assert get_format("paper-posit").name == "posit32"
            assert "paper-posit" in available_formats()
        finally:
            registry_module._FACTORIES.pop("paper-posit")
            registry_module._INSTANCES.clear()


class TestBackendSelection:
    def test_auto_uses_lut_for_narrow_formats(self):
        assert get_format("posit16").backend_name == "lut"
        assert get_format("posit8").backend_name == "lut"
        assert get_format("bfloat16").backend_name == "lut"

    def test_auto_uses_direct_for_wide_formats(self):
        assert get_format("posit32").backend_name == "direct"
        assert get_format("ieee64").backend_name == "direct"

    def test_explicit_backend_override(self):
        direct = get_format("posit16", backend="direct")
        assert direct.backend_name == "direct"
        assert direct is not get_format("posit16")

    def test_explicit_lut_on_wide_format_rejected(self):
        with pytest.raises(ValueError, match="lut"):
            get_format("posit32", backend="lut")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORMAT_BACKEND", "direct")
        assert parse_spec("posit16").backend_name == "direct"
        monkeypatch.setenv("REPRO_FORMAT_BACKEND", "lut")
        # Quietly degrades for formats too wide to tabulate.
        assert parse_spec("posit32").backend_name == "direct"
        monkeypatch.setenv("REPRO_FORMAT_BACKEND", "bogus")
        with pytest.raises(ValueError, match="backend"):
            parse_spec("posit16")


class TestResolveEntryPoint:
    def test_resolve_accepts_specs(self):
        assert resolve("posit16es1").name == "posit16es1"
        assert resolve("binary(8,23)").name == "ieee32"

    def test_resolve_passes_instances_through(self):
        fmt = resolve("posit16")
        assert resolve(fmt) is fmt

    def test_unknown_spec_raises(self):
        with pytest.raises(FormatSpecError):
            resolve("posit128")
        with pytest.raises(FormatSpecError):
            resolve("float128")

    def test_resolve_picks_backend(self):
        assert resolve("posit16", backend="direct").backend_name == "direct"
        assert resolve("posit32", backend="composed").backend_name == "composed"

    def test_spec_parsed_targets_work_end_to_end(self):
        values = np.array([1.5, -200.0, 0.0, 3.0e-4])
        for spec in ["posit16es1", "binary(8,23)", "fixedposit(16,es=2,r=3)"]:
            target = resolve(spec)
            stored = target.round_trip(values)
            assert np.array_equal(target.round_trip(stored), stored)
            bits = target.to_bits(stored)
            assert target.classify_bits(bits, target.nbits - 1).tolist() == [0, 0, 0, 0]


class TestRoundTripCache:
    def test_cached_result_is_isolated(self, rng):
        target = get_format("posit16")
        values = rng.normal(0, 10, 256)
        first = target.round_trip(values)
        first[0] = 12345.0  # caller mutation must not poison the cache
        second = target.round_trip(values)
        assert second[0] != 12345.0
        assert np.array_equal(second, target.from_bits(target.to_bits(values)))
