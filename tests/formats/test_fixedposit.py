"""Tests for the fixed-posit format (Gohil et al.)."""

import numpy as np
import pytest

from repro.formats import FixedPositConfig, get_format
from repro.posit.fields import PositField


@pytest.fixture(scope="module")
def fp16():
    return get_format("fixedposit(16,es=2,r=3)", backend="direct")


class TestConfig:
    def test_derived_constants(self):
        config = FixedPositConfig(nbits=16, es=2, r=3)
        assert config.fraction_bits == 10
        assert config.k_min == -4 and config.k_max == 3
        assert config.min_scale == -16 and config.max_scale == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedPositConfig(nbits=3)
        with pytest.raises(ValueError):
            FixedPositConfig(nbits=8, es=4, r=3)  # no fraction bits left


class TestCodec:
    @pytest.mark.parametrize("spec", [
        "fixedposit(16,es=2,r=3)",
        "fixedposit(8,es=1,r=2)",
        "fixedposit(12,es=0,r=4)",
    ])
    def test_exhaustive_pattern_round_trip(self, spec):
        target = get_format(spec, backend="direct")
        patterns = np.arange(1 << target.nbits, dtype=np.uint64)
        values = target.decode_raw(patterns)
        assert np.array_equal(target.encode_raw(values).astype(np.uint64), patterns)
        finite = values[np.isfinite(values)]
        assert len(np.unique(finite)) == finite.size  # no redundant encodings

    def test_special_patterns(self, fp16):
        assert float(fp16.from_bits(np.array([0], dtype=np.uint16))[0]) == 0.0
        assert np.isnan(fp16.from_bits(np.array([0x8000], dtype=np.uint16))[0])
        assert int(fp16.to_bits(np.array([np.nan]))[0]) == 0x8000
        assert int(fp16.to_bits(np.array([np.inf]))[0]) == 0x8000
        assert int(fp16.to_bits(np.array([0.0]))[0]) == 0

    def test_value_law(self, fp16):
        # 1.0: k = 0 (biased regime 4), e = 0, f = 0.
        bits = int(fp16.to_bits(np.array([1.0]))[0])
        assert fp16.layout_string(bits) == "0|100|00|0000000000"
        # 186.25 = 1.4550781... * 2^7 -> k = 1, e = 3.
        assert float(fp16.round_trip(np.array([186.25]))[0]) == 186.25

    def test_saturation_never_reaches_zero_or_nar(self, fp16):
        tiny = np.array([1e-300, -1e-300])
        huge = np.array([1e300, -1e300])
        minpos = (1 + 2.0**-10) * 2.0**-16
        maxpos = (2 - 2.0**-10) * 2.0**15
        assert np.array_equal(fp16.round_trip(tiny), [minpos, -minpos])
        assert np.array_equal(fp16.round_trip(huge), [maxpos, -maxpos])

    def test_negation_is_twos_complement(self, fp16):
        pos = int(fp16.to_bits(np.array([1.5]))[0])
        neg = int(fp16.to_bits(np.array([-1.5]))[0])
        assert (pos + neg) & 0xFFFF == 0

    def test_round_trip_idempotent(self, fp16, rng):
        values = rng.normal(0, 100, 2000)
        stored = fp16.round_trip(values)
        assert np.array_equal(fp16.round_trip(stored), stored)


class TestFields:
    def test_static_classification(self, fp16):
        bits = fp16.to_bits(np.array([1.5, -20.0, 1e-4]))
        assert np.all(fp16.classify_bits(bits, 15) == int(PositField.SIGN))
        assert np.all(fp16.classify_bits(bits, 13) == int(PositField.REGIME))
        assert np.all(fp16.classify_bits(bits, 11) == int(PositField.EXPONENT))
        assert np.all(fp16.classify_bits(bits, 5) == int(PositField.FRACTION))

    def test_regime_sizes_constant(self, fp16):
        bits = fp16.to_bits(np.array([1.5, 1e4, 1e-4]))
        assert fp16.regime_sizes(bits).tolist() == [3, 3, 3]

    def test_field_labels(self, fp16):
        assert fp16.field_label(int(PositField.REGIME)) == "REGIME"

    def test_campaign_runs(self, fp16):
        from repro.inject.campaign import CampaignConfig, run_campaign

        data = np.linspace(0.01, 100.0, 512)
        result = run_campaign(data, fp16, CampaignConfig(trials_per_bit=4, seed=7))
        assert result.trial_count == 4 * 16
        assert result.target_name == "fixedposit(16,es=2,r=3)"
