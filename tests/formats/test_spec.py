"""Tests for the format spec grammar."""

import pytest

from repro.formats import (
    FixedPositTarget,
    FormatSpecError,
    IEEETarget,
    PositTarget,
    canonical_spec,
    parse_spec,
)


class TestPositSpecs:
    def test_standard_width(self):
        fmt = parse_spec("posit32")
        assert isinstance(fmt, PositTarget)
        assert fmt.name == "posit32"
        assert fmt.nbits == 32
        assert fmt.config.es == 2

    def test_explicit_es(self):
        fmt = parse_spec("posit16es1")
        assert fmt.name == "posit16es1"
        assert fmt.config.es == 1

    def test_explicit_standard_es_canonicalizes(self):
        assert canonical_spec("posit16es2") == "posit16"

    def test_unusual_width(self):
        assert parse_spec("posit12es1").nbits == 12

    def test_invalid_width(self):
        with pytest.raises(FormatSpecError, match="nbits"):
            parse_spec("posit128")

    def test_invalid_es(self):
        with pytest.raises(FormatSpecError, match="es"):
            parse_spec("posit16es9")


class TestIEEESpecs:
    @pytest.mark.parametrize("spec,name,nbits", [
        ("ieee16", "ieee16", 16),
        ("ieee32", "ieee32", 32),
        ("ieee64", "ieee64", 64),
        ("binary16", "ieee16", 16),
        ("binary32", "ieee32", 32),
        ("binary64", "ieee64", 64),
        ("bfloat16", "bfloat16", 16),
    ])
    def test_native_names(self, spec, name, nbits):
        fmt = parse_spec(spec)
        assert isinstance(fmt, IEEETarget)
        assert fmt.name == name
        assert fmt.nbits == nbits

    @pytest.mark.parametrize("spec,name", [
        ("binary(5,10)", "ieee16"),
        ("binary(8,23)", "ieee32"),
        ("binary(11,52)", "ieee64"),
        ("binary(8,7)", "bfloat16"),
    ])
    def test_layouts_canonicalize_to_native(self, spec, name):
        assert canonical_spec(spec) == name

    def test_custom_layout(self):
        fmt = parse_spec("binary(6,9)")
        assert fmt.name == "binary(6,9)"
        assert fmt.nbits == 16
        assert fmt.format.float_dtype is None

    def test_layout_outside_software_range(self):
        with pytest.raises(FormatSpecError, match="software"):
            parse_spec("binary(13,50)")


class TestFixedPositSpecs:
    def test_full_spec(self):
        fmt = parse_spec("fixedposit(32,es=2,r=5)")
        assert isinstance(fmt, FixedPositTarget)
        assert fmt.name == "fixedposit(32,es=2,r=5)"
        assert fmt.config.fraction_bits == 32 - 1 - 5 - 2

    def test_defaults(self):
        fmt = parse_spec("fixedposit(16)")
        assert fmt.name == "fixedposit(16,es=2,r=2)"

    def test_kwarg_order_free(self):
        assert canonical_spec("fixedposit(16,r=3,es=1)") == "fixedposit(16,es=1,r=3)"

    def test_no_fraction_bits_rejected(self):
        with pytest.raises(FormatSpecError, match="fraction"):
            parse_spec("fixedposit(8,es=4,r=3)")

    def test_scale_beyond_float64_rejected(self):
        with pytest.raises(FormatSpecError, match="float64"):
            parse_spec("fixedposit(32,es=4,r=8)")


class TestGrammar:
    def test_case_and_whitespace_insensitive(self):
        assert canonical_spec(" Posit32 ") == "posit32"
        assert canonical_spec("Binary( 8 , 23 )") == "ieee32"
        assert canonical_spec("FIXEDPOSIT(16, es=2, r=3)") == "fixedposit(16,es=2,r=3)"

    @pytest.mark.parametrize("bad", [
        "", "posit", "float32", "binary(8)", "posit32x", "fixedposit", "binary(a,b)",
    ])
    def test_garbage_rejected(self, bad):
        with pytest.raises(FormatSpecError, match="grammar"):
            parse_spec(bad)

    def test_canonical_specs_are_fixed_points(self):
        for spec in ["posit16es1", "binary(6,9)", "fixedposit(16,es=2,r=3)", "ieee32"]:
            assert canonical_spec(canonical_spec(spec)) == canonical_spec(spec)
