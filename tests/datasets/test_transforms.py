"""Tests for power-of-two dataset transforms."""

import numpy as np

from repro.datasets.transforms import (
    PowerOfTwoScale,
    scaled_storage_roundtrip,
    unit_median_scale,
)
from repro.formats import resolve


class TestPowerOfTwoScale:
    def test_apply_undo_exact(self, rng):
        values = rng.normal(0, 1e6, 1000)
        scale = PowerOfTwoScale(-17)
        assert np.array_equal(scale.undo(scale.apply(values)), values)

    def test_factor(self):
        assert PowerOfTwoScale(3).factor == 8.0
        assert PowerOfTwoScale(-2).factor == 0.25

    def test_identity(self):
        values = np.array([1.5, -2.0])
        assert np.array_equal(PowerOfTwoScale(0).apply(values), values)


class TestUnitMedianScale:
    def test_moves_median_to_one(self, rng):
        values = rng.lognormal(np.log(1e6), 0.3, 5000)
        scale = unit_median_scale(values)
        scaled = scale.apply(values)
        median = float(np.median(np.abs(scaled)))
        assert 0.5 <= median <= 2.0

    def test_handles_tiny_values(self, rng):
        values = rng.lognormal(np.log(1e-8), 0.5, 5000)
        scale = unit_median_scale(values)
        assert scale.exponent > 0
        median = float(np.median(np.abs(scale.apply(values))))
        assert 0.25 <= median <= 4.0

    def test_already_near_one(self, rng):
        values = rng.uniform(0.8, 1.2, 1000)
        assert unit_median_scale(values).exponent == 0

    def test_all_zero_identity(self):
        assert unit_median_scale(np.zeros(10)).exponent == 0

    def test_ignores_zeros(self):
        values = np.concatenate([np.zeros(50), np.full(50, 1024.0)])
        assert unit_median_scale(values).exponent == -10


class TestScaledStorage:
    def test_accuracy_unchanged_for_posit(self, rng):
        # Power-of-two scaling commutes with posit rounding (the scale
        # only shifts the regime/exponent), so the observed values after
        # scaled storage equal plain storage whenever no saturation is
        # involved.
        target = resolve("posit32")
        values = rng.normal(0, 1e4, 2000)
        scale = unit_median_scale(values)
        plain = target.round_trip(values)
        scaled = scaled_storage_roundtrip(values, target, scale)
        assert np.allclose(scaled, plain, rtol=1e-7)

    def test_rescues_out_of_range_values(self):
        # posit8 cannot represent 1e9 (saturates at 2**24); scaling in
        # and out can.
        target = resolve("posit8")
        values = np.array([1.0e9, 1.1e9, 0.9e9])
        scale = unit_median_scale(values)
        plain = target.round_trip(values)
        scaled = scaled_storage_roundtrip(values, target, scale)
        plain_err = np.abs(plain - values) / values
        scaled_err = np.abs(scaled - values) / values
        assert np.max(scaled_err) < np.max(plain_err)
