"""Tests for the dataset registry."""

import pytest

from repro.datasets.presets import FieldPreset, PublishedStats
from repro.datasets.registry import by_dataset, datasets, get, keys, register
from repro.datasets.synthetic import Constant, Mixture


class TestLookup:
    def test_get_known(self):
        preset = get("nyx/temperature")
        assert preset.dataset == "Nyx"
        assert preset.field == "temperature"

    def test_case_insensitive(self):
        assert get("NYX/Temperature") is get("nyx/temperature")

    def test_unknown_with_hint(self):
        with pytest.raises(KeyError, match="did you mean"):
            get("nyx/temprature")

    def test_keys_sorted(self):
        listed = keys()
        assert listed == sorted(listed)
        assert "hacc/vx" in listed

    def test_by_dataset(self):
        hurricane = by_dataset("hurricane")
        assert len(hurricane) == 6
        assert all(p.dataset == "Hurricane" for p in hurricane)

    def test_datasets(self):
        assert datasets() == ["CESM", "EXAFEL", "HACC", "Hurricane", "Nyx"]


class TestRegister:
    def _dummy(self, name: str) -> FieldPreset:
        return FieldPreset(
            dataset="Test",
            field=name,
            dimensions=(10,),
            mixture=Mixture(components=(Constant(1.0),), weights=(1.0,)),
            published=PublishedStats(1, 1, 1, 1, 0),
        )

    def test_register_and_get(self):
        preset = self._dummy("custom-a")
        register(preset)
        try:
            assert get("test/custom-a") is preset
        finally:
            # Clean up the module-level registry.
            from repro.datasets import registry

            registry._REGISTRY.pop("test/custom-a", None)

    def test_register_duplicate_raises(self):
        preset = self._dummy("custom-b")
        register(preset)
        try:
            with pytest.raises(KeyError):
                register(preset)
            register(preset, overwrite=True)  # allowed
        finally:
            from repro.datasets import registry

            registry._REGISTRY.pop("test/custom-b", None)
