"""Tests for the Table 1 field presets."""

import math

import numpy as np
import pytest

from repro.datasets.presets import ALL_PRESETS, DEFAULT_SIZE, build_presets


SIZE = 1 << 17


@pytest.fixture(scope="module")
def generated():
    return {preset.key: (preset, preset.generate(seed=3, size=SIZE)) for preset in ALL_PRESETS}


class TestInventory:
    def test_sixteen_fields(self):
        assert len(ALL_PRESETS) == 16

    def test_paper_datasets_present(self):
        datasets = {preset.dataset for preset in ALL_PRESETS}
        assert datasets == {"CESM", "EXAFEL", "HACC", "Hurricane", "Nyx"}

    def test_dimensions_match_paper(self):
        by_key = {preset.key: preset for preset in ALL_PRESETS}
        assert by_key["cesm/omega"].dimensions == (26, 1800, 3600)
        assert by_key["nyx/temperature"].dimensions == (512, 512, 512)
        assert by_key["hacc/vx"].dimensions == (280953867,)
        assert by_key["exafel/smd-cxif5315-r129-dark"].dimensions == (50, 32, 185, 388)

    def test_full_size(self):
        preset = next(p for p in ALL_PRESETS if p.key == "nyx/temperature")
        assert preset.full_size == 512**3

    def test_build_presets_fresh_instances(self):
        assert build_presets()[0] is not build_presets()[0] or True
        assert [p.key for p in build_presets()] == [p.key for p in ALL_PRESETS]


class TestGeneratedStatistics:
    def test_dtype_is_float32(self, generated):
        for preset, data in generated.values():
            assert data.dtype == np.float32, preset.key

    def test_within_published_bounds(self, generated):
        for preset, data in generated.values():
            published = preset.published
            tolerance = 1e-5 * max(abs(published.maximum), 1e-30)
            assert float(np.max(data)) <= published.maximum + tolerance, preset.key
            tolerance = 1e-5 * max(abs(published.minimum), 1e-30)
            assert float(np.min(data)) >= published.minimum - tolerance, preset.key

    def test_median_order_of_magnitude(self, generated):
        for preset, data in generated.values():
            published = preset.published
            if published.median == 0:
                # Zero-median fields must actually be zero-heavy.
                assert float(np.median(data)) == 0.0, preset.key
                continue
            if abs(published.median) < 0.05 * published.std:
                # Median indistinguishable from zero at the field's noise
                # scale (e.g. CESM OMEGA: median 3.4e-6 vs std 3.1e-4);
                # only require the generated median to be equally tiny.
                assert abs(float(np.median(data))) < 0.1 * published.std, preset.key
                continue
            generated_median = float(np.median(data))
            assert generated_median != 0, preset.key
            assert math.copysign(1, generated_median) == math.copysign(1, published.median), preset.key
            ratio = abs(generated_median / published.median)
            assert 0.05 <= ratio <= 20.0, (preset.key, ratio)

    def test_sign_structure(self, generated):
        # Fields that are non-negative in the paper stay non-negative.
        non_negative = {
            "cesm/cloud", "hurricane/precipf48", "hurricane/cloudf48",
            "nyx/dark-matter-density", "nyx/temperature",
            "exafel/smd-cxif5315-r129-dark", "cesm/relhum",
        }
        for key in non_negative:
            _, data = generated[key]
            assert float(np.min(data)) >= 0.0, key

    def test_zero_fraction_cloud(self, generated):
        _, data = generated["hurricane/cloudf48"]
        zero_fraction = float(np.mean(data == 0))
        assert 0.6 <= zero_fraction <= 0.8

    def test_determinism(self):
        preset = ALL_PRESETS[0]
        a = preset.generate(seed=11, size=1000)
        b = preset.generate(seed=11, size=1000)
        c = preset.generate(seed=12, size=1000)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_generator_accepts_generator_instance(self):
        preset = ALL_PRESETS[0]
        rng = np.random.default_rng(5)
        data = preset.generate(seed=rng, size=100)
        assert data.shape == (100,)

    def test_default_size(self):
        assert DEFAULT_SIZE == 1 << 20

    def test_magnitude_mix_spans_regimes(self, generated):
        # The analysis needs both |x| > 1 and |x| < 1 posits across the
        # pool; verify the corpus overall provides them.
        above = below = 0
        for _, data in generated.values():
            magnitude = np.abs(data.astype(np.float64))
            above += int(np.sum(magnitude > 1))
            below += int(np.sum((magnitude < 1) & (magnitude > 0)))
        assert above > SIZE
        assert below > SIZE
