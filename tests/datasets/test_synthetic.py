"""Tests for the synthetic generator machinery."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    Constant,
    Exponential,
    Laplace,
    Lognormal,
    Mixture,
    Normal,
    Uniform,
)


class TestComponents:
    def test_normal(self, rng):
        samples = Normal(mean=5.0, std=2.0).sample(rng, 50_000)
        assert np.mean(samples) == pytest.approx(5.0, abs=0.1)
        assert np.std(samples) == pytest.approx(2.0, abs=0.1)

    def test_lognormal_median(self, rng):
        samples = Lognormal(median=0.03, sigma=1.0).sample(rng, 50_000)
        assert np.median(samples) == pytest.approx(0.03, rel=0.1)
        assert np.all(samples > 0)

    def test_lognormal_negate(self, rng):
        samples = Lognormal(median=1.0, sigma=0.5, negate=True).sample(rng, 100)
        assert np.all(samples < 0)

    def test_uniform_bounds(self, rng):
        samples = Uniform(low=-2.0, high=3.0).sample(rng, 10_000)
        assert np.min(samples) >= -2.0
        assert np.max(samples) < 3.0

    def test_exponential(self, rng):
        samples = Exponential(scale=4.0).sample(rng, 50_000)
        assert np.mean(samples) == pytest.approx(4.0, rel=0.1)

    def test_exponential_negate(self, rng):
        samples = Exponential(scale=1.0, negate=True).sample(rng, 100)
        assert np.all(samples <= 0)

    def test_laplace(self, rng):
        samples = Laplace(mean=0.0, scale=1.0).sample(rng, 50_000)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.05)

    def test_constant(self, rng):
        samples = Constant(3.5).sample(rng, 10)
        assert np.all(samples == 3.5)


class TestMixture:
    def test_weights_respected(self, rng):
        mixture = Mixture(
            components=(Constant(0.0), Constant(1.0)),
            weights=(0.25, 0.75),
        )
        samples = mixture.sample(rng, 100_000)
        assert np.mean(samples) == pytest.approx(0.75, abs=0.01)

    def test_clipping(self, rng):
        mixture = Mixture(
            components=(Normal(0.0, 100.0),),
            weights=(1.0,),
            clip_low=-1.0,
            clip_high=2.0,
        )
        samples = mixture.sample(rng, 10_000)
        assert np.min(samples) >= -1.0
        assert np.max(samples) <= 2.0

    def test_dtype_default_float32(self, rng):
        mixture = Mixture(components=(Constant(1.0),), weights=(1.0,))
        assert mixture.sample(rng, 10).dtype == np.float32

    def test_deterministic_given_seed(self):
        mixture = Mixture(components=(Normal(0, 1), Uniform(5, 6)), weights=(0.5, 0.5))
        a = mixture.sample(np.random.default_rng(7), 1000)
        b = mixture.sample(np.random.default_rng(7), 1000)
        assert np.array_equal(a, b)

    def test_zero_size(self, rng):
        mixture = Mixture(components=(Constant(1.0),), weights=(1.0,))
        assert mixture.sample(rng, 0).shape == (0,)

    def test_negative_size_raises(self, rng):
        mixture = Mixture(components=(Constant(1.0),), weights=(1.0,))
        with pytest.raises(ValueError):
            mixture.sample(rng, -1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Mixture(components=(), weights=())
        with pytest.raises(ValueError):
            Mixture(components=(Constant(0.0),), weights=(1.0, 2.0))
        with pytest.raises(ValueError):
            Mixture(components=(Constant(0.0),), weights=(-1.0,))
        with pytest.raises(ValueError):
            Mixture(components=(Constant(0.0),), weights=(0.0,))

    def test_samples_are_shuffled(self, rng):
        # Components must not appear in contiguous blocks.
        mixture = Mixture(
            components=(Constant(0.0), Constant(1.0)), weights=(0.5, 0.5)
        )
        samples = mixture.sample(rng, 1000)
        transitions = np.sum(np.abs(np.diff(samples)) > 0)
        assert transitions > 100
