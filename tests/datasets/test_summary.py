"""Tests for Table 1 summary generation."""

from repro.datasets.summary import summarize_all, summarize_field


class TestSummaries:
    def test_summarize_field(self):
        summary = summarize_field("cesm/cloud", seed=1, size=10_000)
        assert summary.preset.key == "cesm/cloud"
        assert summary.generated.count == 10_000
        row = summary.as_row()
        assert row["dataset"] == "CESM"
        assert row["paper_mean"] == summary.preset.published.mean
        assert row["dimensions"] == "26x1800x3600"

    def test_summarize_all_covers_registry(self):
        summaries = summarize_all(seed=1, size=2000)
        assert len(summaries) == 16
        keys = {s.preset.key for s in summaries}
        assert "hacc/vy" in keys
