"""Tests for raw binary dataset I/O."""

import numpy as np
import pytest

from repro.datasets.io import load_raw, preset_from_file, save_raw


class TestRawRoundtrip:
    def test_float32(self, tmp_path, rng):
        values = rng.normal(0, 1, 1000).astype(np.float32)
        path = tmp_path / "field.f32"
        save_raw(values, path)
        loaded = load_raw(path)
        assert np.array_equal(loaded, values)
        assert loaded.dtype == np.float32

    def test_float64(self, tmp_path, rng):
        values = rng.normal(0, 1, 100)
        path = tmp_path / "field.f64"
        save_raw(values, path, dtype=np.float64)
        loaded = load_raw(path, dtype=np.float64)
        assert np.array_equal(loaded, values)

    def test_count_cap(self, tmp_path, rng):
        values = rng.normal(0, 1, 100).astype(np.float32)
        path = tmp_path / "field.f32"
        save_raw(values, path)
        assert load_raw(path, count=10).shape == (10,)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_raw(tmp_path / "nope.f32")

    def test_wrong_dtype_size(self, tmp_path):
        path = tmp_path / "odd.bin"
        path.write_bytes(b"abc")  # 3 bytes, not a float32 multiple
        with pytest.raises(ValueError, match="itemsize"):
            load_raw(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.f32"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="no elements"):
            load_raw(path)


class TestPresetFromFile:
    def test_wraps_real_data(self, tmp_path, rng):
        values = rng.normal(5, 2, 5000).astype(np.float32)
        path = tmp_path / "real.f32"
        save_raw(values, path)
        preset = preset_from_file(path, dataset="Real", field="demo")
        assert preset.key == "real/demo"
        assert preset.dimensions == (5000,)
        assert preset.published.mean == pytest.approx(float(np.mean(values)))

        sample = preset.generate(seed=0, size=100)
        assert sample.shape == (100,)
        # Samples are contiguous windows of the file.
        assert np.isin(sample, values).all()

    def test_oversized_request_resizes(self, tmp_path, rng):
        values = rng.normal(0, 1, 50).astype(np.float32)
        path = tmp_path / "small.f32"
        save_raw(values, path)
        preset = preset_from_file(path, dataset="Real", field="tiny")
        sample = preset.generate(seed=0, size=200)
        assert sample.shape == (200,)

    def test_explicit_dimensions(self, tmp_path, rng):
        values = rng.normal(0, 1, 24).astype(np.float32)
        path = tmp_path / "dims.f32"
        save_raw(values, path)
        preset = preset_from_file(path, dataset="Real", field="dims", dimensions=(2, 3, 4))
        assert preset.dimensions == (2, 3, 4)
