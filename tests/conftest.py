"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.experiments.base import ExperimentParams

# Shared hypothesis profiles: `dev` keeps the default-deadline fast loop
# for local runs; `ci` digs deeper and drops the deadline so shared
# runners' scheduling jitter cannot flake a run.  Select with
# REPRO_HYPOTHESIS_PROFILE=ci (the CI workflow sets it).
settings.register_profile("ci", max_examples=300, deadline=None)
settings.register_profile("dev", max_examples=50)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(autouse=True)
def _pin_legacy_numpy_seed():
    """Pin the legacy global numpy RNG around every test.

    An audit found no test (or production path) drawing from unseeded
    ``np.random``; this keeps it that way if one slips in, and restores
    the global state afterwards so tests cannot order-couple through it.
    """
    state = np.random.get_state()
    np.random.seed(20230923)
    yield
    np.random.set_state(state)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def mixed_floats(rng) -> np.ndarray:
    """A float64 sample spanning magnitudes, signs, and specials."""
    return np.concatenate([
        rng.normal(0, 1, 300),
        rng.lognormal(0, 10, 300),
        -rng.lognormal(0, 10, 300),
        rng.normal(0, 1e-12, 100),
        rng.normal(0, 1e12, 100),
        np.array([0.0, -0.0, 1.0, -1.0, 186.25, 186250.0, 0.1, 2.0**100, 2.0**-100]),
    ])


@pytest.fixture
def quick_params() -> ExperimentParams:
    """Tiny experiment scale for integration tests."""
    return ExperimentParams(data_size=1 << 12, trials_per_bit=24, seed=99)


@pytest.fixture
def small_field(rng) -> np.ndarray:
    """A small float32 dataset for campaign tests."""
    return np.concatenate([
        rng.normal(50.0, 20.0, 2000),
        rng.lognormal(-2, 2, 1000),
        np.zeros(200),
    ]).astype(np.float32)
