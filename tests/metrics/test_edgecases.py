"""Edge-case contracts of the metrics layer.

Campaign trials routinely hand the metrics NaN/Inf faulty values (IEEE
specials, posit NaR decodes) and degenerate fields (constant, zero).
These tests pin the *defined* behavior for every such input so a codec
or metrics refactor cannot silently change campaign statistics.
"""

import math

import numpy as np
import pytest

from repro.metrics.fast import single_fault_metrics
from repro.metrics.pointwise import (
    absolute_error,
    compare_arrays,
    pointwise_relative_error,
)
from repro.metrics.summary import SummaryStats


class TestNonFinitePropagation:
    def test_nan_faulty_flags_and_propagates(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, math.nan, 3.0])
        metrics = compare_arrays(a, b)
        assert metrics.has_non_finite
        assert math.isnan(metrics.max_absolute_error)
        assert math.isnan(metrics.mean_absolute_error)
        assert math.isnan(metrics.mean_squared_error)

    def test_inf_faulty_flags_and_propagates(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, math.inf, 3.0])
        metrics = compare_arrays(a, b)
        assert metrics.has_non_finite
        assert metrics.max_absolute_error == math.inf
        assert metrics.max_pointwise_relative == math.inf
        assert metrics.value_range_relative == math.inf
        assert metrics.mean_squared_error == math.inf

    def test_negative_inf_counts_too(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.0, -math.inf])
        metrics = compare_arrays(a, b)
        assert metrics.has_non_finite
        assert metrics.max_absolute_error == math.inf

    def test_finite_faulty_is_not_flagged(self):
        a = np.array([1.0, 2.0])
        metrics = compare_arrays(a, np.array([1.0, 2.5]))
        assert not metrics.has_non_finite

    def test_fast_path_agrees_on_nan_fault(self):
        a = np.array([4.0, 5.0, 6.0, 7.0])
        baseline = SummaryStats.from_array(a)
        fast = single_fault_metrics(baseline, 5.0, math.nan)
        assert fast.has_non_finite
        assert math.isnan(fast.max_absolute_error)

    def test_fast_path_agrees_on_inf_fault(self):
        a = np.array([4.0, 5.0, 6.0, 7.0])
        baseline = SummaryStats.from_array(a)
        fast = single_fault_metrics(baseline, 5.0, math.inf)
        full = compare_arrays(a, np.array([4.0, math.inf, 6.0, 7.0]))
        assert fast.has_non_finite
        assert fast.max_absolute_error == full.max_absolute_error == math.inf
        assert fast.value_range_relative == full.value_range_relative == math.inf


class TestZeroRangeFields:
    """Constant fields have value_range == 0; QCAT ratios must stay defined."""

    def test_constant_field_no_error(self):
        a = np.full(5, 3.25)
        metrics = compare_arrays(a, a.copy())
        assert metrics.value_range_relative == 0.0
        assert metrics.normalized_rmse == 0.0
        assert metrics.psnr_db == math.inf

    def test_constant_field_with_error_is_infinite_ratio(self):
        a = np.full(5, 3.25)
        b = a.copy()
        b[2] = 4.0
        metrics = compare_arrays(a, b)
        assert metrics.value_range_relative == math.inf
        assert metrics.normalized_rmse == math.inf
        assert metrics.max_absolute_error == pytest.approx(0.75)

    def test_all_zero_field(self):
        a = np.zeros(4)
        b = np.zeros(4)
        metrics = compare_arrays(a, b)
        assert metrics.max_absolute_error == 0.0
        assert metrics.max_pointwise_relative == 0.0
        assert metrics.value_range_relative == 0.0

    def test_fast_path_zero_range_matches(self):
        a = np.full(6, 2.0)
        baseline = SummaryStats.from_array(a)
        fast = single_fault_metrics(baseline, 2.0, 3.0)
        faulty = a.copy()
        faulty[0] = 3.0
        full = compare_arrays(a, faulty)
        assert fast.value_range_relative == full.value_range_relative == math.inf
        assert fast.normalized_rmse == full.normalized_rmse == math.inf


class TestEmptyInputs:
    def test_compare_arrays_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            compare_arrays(np.array([]), np.array([]))

    def test_summary_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            SummaryStats.from_array(np.array([]))

    def test_compare_arrays_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            compare_arrays(np.array([1.0, 2.0]), np.array([1.0]))

    def test_elementwise_helpers_accept_empty(self):
        # The pointwise helpers are plain elementwise maps; empty in,
        # empty out (only the reductions refuse empties).
        assert pointwise_relative_error(np.array([]), np.array([])).size == 0
        assert absolute_error(np.array([]), np.array([])).size == 0


class TestRelativeErrorConventions:
    def test_zero_original_zero_faulty_is_zero(self):
        rel = pointwise_relative_error(np.array([0.0]), np.array([0.0]))
        assert rel[0] == 0.0

    def test_zero_original_nonzero_faulty_is_nan(self):
        rel = pointwise_relative_error(np.array([0.0]), np.array([1.0]))
        assert math.isnan(rel[0])

    def test_signed_zero_behaves_like_zero(self):
        rel = pointwise_relative_error(np.array([-0.0]), np.array([0.0]))
        assert rel[0] == 0.0

    def test_overflowing_ratio_is_inf(self):
        rel = pointwise_relative_error(np.array([5e-324]), np.array([1e300]))
        assert rel[0] == math.inf

    def test_nan_original_propagates(self):
        rel = pointwise_relative_error(np.array([math.nan]), np.array([1.0]))
        assert math.isnan(rel[0])

    def test_inf_original_with_finite_faulty(self):
        # |inf - 1| / |inf| is NaN-free only in the limit; IEEE evaluates
        # inf/inf = NaN, which the campaign treats as undefined.
        rel = pointwise_relative_error(np.array([math.inf]), np.array([1.0]))
        assert math.isnan(rel[0])
