"""Tests for streaming statistics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.streaming import PerBitStreaming, StreamingStats


class TestStreamingStats:
    def test_matches_numpy_single_batch(self, rng):
        values = rng.normal(10, 3, 5000)
        stats = StreamingStats().add(values)
        assert stats.count == 5000
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.std == pytest.approx(np.std(values))
        assert stats.minimum == np.min(values)
        assert stats.maximum == np.max(values)

    def test_incremental_equals_batch(self, rng):
        values = rng.lognormal(0, 2, 3000)
        incremental = StreamingStats()
        for chunk in np.array_split(values, 7):
            incremental.add(chunk)
        batch = StreamingStats().add(values)
        assert incremental.count == batch.count
        assert incremental.mean == pytest.approx(batch.mean, rel=1e-12)
        assert incremental.std == pytest.approx(batch.std, rel=1e-9)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
           st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_merge_equals_concatenation(self, a, b):
        left = StreamingStats().add(a)
        right = StreamingStats().add(b)
        left.merge(right)
        combined = StreamingStats().add(np.concatenate([a, b]))
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-9)
        assert left.m2 == pytest.approx(combined.m2, rel=1e-6, abs=1e-6)

    def test_non_finite_policy(self):
        stats = StreamingStats().add([1.0, np.nan, np.inf, 3.0])
        assert stats.count == 2
        assert stats.non_finite_count == 2
        assert stats.mean == 2.0
        assert stats.maximum == np.inf  # infinities tracked in extremes

    def test_empty(self):
        stats = StreamingStats()
        assert np.isnan(stats.std)
        row = stats.as_row()
        assert row["count"] == 0

    def test_merge_empty(self):
        stats = StreamingStats().add([1.0, 2.0])
        stats.merge(StreamingStats())
        assert stats.count == 2


class TestPerBitStreaming:
    def test_matches_aggregate(self, small_field):
        from repro.analysis.aggregate import aggregate_by_bit
        from repro.inject.campaign import CampaignConfig, run_campaign

        result = run_campaign(small_field, "posit32",
                              CampaignConfig(trials_per_bit=8, seed=6))
        streaming = PerBitStreaming(32).add_records(result.records)
        batch = aggregate_by_bit(result.records, 32)
        got = streaming.mean_curve()
        expected = batch.mean_rel_err
        mask = np.isfinite(expected)
        assert np.allclose(got[mask], expected[mask], rtol=1e-12)

    def test_shard_merge(self, small_field):
        from repro.inject.campaign import CampaignConfig, run_campaign

        a = run_campaign(small_field, "posit32", CampaignConfig(trials_per_bit=5, seed=1))
        b = run_campaign(small_field, "posit32", CampaignConfig(trials_per_bit=5, seed=2))
        merged = PerBitStreaming(32).add_records(a.records).merge(
            PerBitStreaming(32).add_records(b.records)
        )
        from repro.inject.results import TrialRecords

        combined_records = TrialRecords.concatenate([a.records, b.records])
        combined = PerBitStreaming(32).add_records(combined_records)
        assert np.allclose(
            merged.mean_curve(), combined.mean_curve(), rtol=1e-12, equal_nan=True
        )

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            PerBitStreaming(32).merge(PerBitStreaming(16))
