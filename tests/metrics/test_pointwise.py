"""Tests for the QCAT-equivalent array metrics."""

import numpy as np
import pytest

from repro.metrics.pointwise import (
    absolute_error,
    compare_arrays,
    pointwise_relative_error,
)


class TestCompareArrays:
    def test_identical_arrays(self, rng):
        values = rng.normal(0, 1, 100)
        metrics = compare_arrays(values, values)
        assert metrics.max_absolute_error == 0.0
        assert metrics.mean_squared_error == 0.0
        assert metrics.psnr_db == float("inf")
        assert not metrics.has_non_finite

    def test_single_difference(self):
        original = np.array([1.0, 2.0, 3.0, 4.0])
        faulty = original.copy()
        faulty[2] = 6.0
        metrics = compare_arrays(original, faulty)
        assert metrics.max_absolute_error == 3.0
        assert metrics.mean_absolute_error == pytest.approx(0.75)
        assert metrics.max_pointwise_relative == pytest.approx(1.0)
        assert metrics.value_range_relative == pytest.approx(1.0)
        assert metrics.mean_squared_error == pytest.approx(9 / 4)
        assert metrics.l2_norm_error == pytest.approx(3.0)
        assert metrics.linf_norm_error == 3.0

    def test_psnr_definition(self):
        original = np.array([0.0, 10.0])
        faulty = np.array([1.0, 10.0])
        metrics = compare_arrays(original, faulty)
        expected = 20 * np.log10(10.0) - 10 * np.log10(0.5)
        assert metrics.psnr_db == pytest.approx(expected)

    def test_non_finite_flag(self):
        original = np.array([1.0, 2.0])
        faulty = np.array([np.inf, 2.0])
        metrics = compare_arrays(original, faulty)
        assert metrics.has_non_finite
        assert metrics.max_absolute_error == float("inf")

    def test_nan_faulty(self):
        metrics = compare_arrays(np.array([1.0]), np.array([np.nan]))
        assert metrics.has_non_finite
        assert np.isnan(metrics.max_absolute_error)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            compare_arrays(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            compare_arrays(np.zeros(0), np.zeros(0))

    def test_as_row_keys(self):
        metrics = compare_arrays(np.array([1.0]), np.array([1.5]))
        row = metrics.as_row()
        assert set(row) >= {"max_abs_err", "max_rel_err", "mse", "psnr_db"}


class TestPointwiseRelative:
    def test_conventions(self):
        original = np.array([2.0, 0.0, 0.0, -4.0])
        faulty = np.array([3.0, 0.0, 1.0, -2.0])
        rel = pointwise_relative_error(original, faulty)
        assert rel[0] == 0.5
        assert rel[1] == 0.0
        assert np.isnan(rel[2])  # undefined against zero original
        assert rel[3] == 0.5

    def test_paper_section_542_example(self):
        # orig 3.395e-5 vs faulty 8.644e-8 -> relative error ~ 1.
        rel = pointwise_relative_error(np.array([3.395274e-5]), np.array([8.644184e-8]))
        assert rel[0] == pytest.approx(1.0, abs=0.01)

    def test_absolute_error(self):
        assert absolute_error(np.array([3.0]), np.array([-1.0]))[0] == 4.0
