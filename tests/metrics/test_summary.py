"""Tests for summary statistics and the O(1) replacement update."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.summary import SummaryStats


class TestFromArray:
    def test_matches_numpy(self, rng):
        values = rng.normal(10, 5, 1000)
        stats = SummaryStats.from_array(values)
        assert stats.count == 1000
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.median == pytest.approx(np.median(values))
        assert stats.maximum == np.max(values)
        assert stats.minimum == np.min(values)
        assert stats.std == pytest.approx(np.std(values))
        assert stats.value_range == pytest.approx(np.ptp(values))

    def test_second_order_statistics(self):
        stats = SummaryStats.from_array([1.0, 5.0, 3.0, 5.0, -2.0])
        assert stats.maximum == 5.0
        assert stats.maximum2 == 5.0  # duplicated maximum
        assert stats.minimum == -2.0
        assert stats.minimum2 == 1.0

    def test_single_element(self):
        stats = SummaryStats.from_array([7.0])
        assert stats.maximum2 == float("-inf")
        assert stats.minimum2 == float("inf")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SummaryStats.from_array([])

    def test_as_row(self):
        stats = SummaryStats.from_array([1.0, 2.0])
        row = stats.as_row()
        assert row["count"] == 2
        assert row["mean"] == 1.5


class TestWithReplacement:
    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=40),
        st.integers(min_value=0, max_value=39),
        st.floats(min_value=-1e9, max_value=1e9),
    )
    def test_matches_recompute(self, values, index, new_value):
        if index >= len(values):
            index %= len(values)
        array = np.asarray(values, dtype=np.float64)
        stats = SummaryStats.from_array(array)
        updated = stats.with_replacement(float(array[index]), new_value)

        replaced = array.copy()
        replaced[index] = new_value
        expected = SummaryStats.from_array(replaced)

        assert updated.maximum == expected.maximum
        assert updated.minimum == expected.minimum
        assert updated.mean == pytest.approx(expected.mean, abs=1e-6, rel=1e-9)
        # Single-pass variance updates carry rounding proportional to the
        # intermediate magnitudes (the deviations of the swapped values
        # from the original center), which can dwarf a tiny final
        # variance; compare in variance space against that honest bound.
        old_dev = float(array[index]) - stats.center
        new_dev = new_value - stats.center
        scale = max(old_dev * old_dev, new_dev * new_dev, expected.std**2, 1e-30)
        epsilon = np.finfo(np.float64).eps
        tolerance = 64 * epsilon * scale + 1e-12
        assert abs(updated.std**2 - expected.std**2) <= tolerance

    def test_replacing_unique_maximum_drops_exactly(self):
        stats = SummaryStats.from_array([1.0, 2.0, 9.0])
        updated = stats.with_replacement(9.0, 0.0)
        assert updated.maximum == 2.0
        assert updated.minimum == 0.0

    def test_replacing_duplicated_maximum_keeps_it(self):
        stats = SummaryStats.from_array([1.0, 9.0, 9.0])
        updated = stats.with_replacement(9.0, 0.0)
        assert updated.maximum == 9.0

    def test_value_range_degenerate(self):
        stats = SummaryStats.from_array([3.0, 3.0])
        assert stats.value_range == 0.0
