"""Tests that the O(1) single-fault metrics match the full reductions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.fast import single_fault_metrics, vectorized_single_fault
from repro.metrics.pointwise import compare_arrays
from repro.metrics.summary import SummaryStats


def _assert_metrics_equal(fast, full) -> None:
    for key, fast_value in fast.as_row().items():
        full_value = full.as_row()[key]
        if np.isnan(fast_value) and np.isnan(full_value):
            continue
        assert fast_value == pytest.approx(full_value, rel=1e-9, abs=1e-300), key


class TestSingleFault:
    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=30),
        st.integers(min_value=0, max_value=29),
        st.floats(allow_nan=False, min_value=-1e30, max_value=1e30),
    )
    def test_matches_full_comparison(self, values, index, new_value):
        index %= len(values)
        array = np.asarray(values, dtype=np.float64)
        baseline = SummaryStats.from_array(array)
        faulty = array.copy()
        faulty[index] = new_value
        fast = single_fault_metrics(baseline, float(array[index]), new_value)
        full = compare_arrays(array, faulty)
        _assert_metrics_equal(fast, full)

    def test_nan_fault(self):
        array = np.array([1.0, 2.0])
        baseline = SummaryStats.from_array(array)
        fast = single_fault_metrics(baseline, 1.0, float("nan"))
        assert fast.has_non_finite

    def test_zero_original_nonzero_fault(self):
        baseline = SummaryStats.from_array(np.array([0.0, 1.0]))
        fast = single_fault_metrics(baseline, 0.0, 5.0)
        assert np.isnan(fast.max_pointwise_relative)
        assert fast.max_absolute_error == 5.0


class TestVectorized:
    def test_matches_scalar(self, rng):
        array = rng.normal(0, 10, 500)
        baseline = SummaryStats.from_array(array)
        old = array[rng.integers(0, 500, 64)]
        new = old + rng.normal(0, 100, 64)
        new[5] = np.nan
        new[6] = np.inf
        old = old.copy()
        old[7] = 0.0

        batch = vectorized_single_fault(baseline, old, new).as_dict()
        for i in range(64):
            scalar = single_fault_metrics(baseline, float(old[i]), float(new[i]))
            row = scalar.as_row()
            for key in ("max_abs_err", "max_rel_err", "range_rel_err", "mse", "non_finite"):
                got = batch[key][i]
                expected = row[key]
                if np.isnan(got) and np.isnan(expected):
                    continue
                assert got == pytest.approx(expected, rel=1e-12), (key, i)

    def test_shape_mismatch(self):
        baseline = SummaryStats.from_array(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            vectorized_single_fault(baseline, np.zeros(3), np.zeros(4))

    def test_overflow_becomes_inf_not_warning(self):
        baseline = SummaryStats.from_array(np.array([1e-3, 1.0]))
        batch = vectorized_single_fault(
            baseline, np.array([1e-300]), np.array([1e300])
        )
        assert batch.max_rel_err[0] == float("inf")


class TestFaultMetricsType:
    def test_is_typed_and_shape_checked(self, rng):
        from repro.metrics.fast import FaultMetrics

        baseline = SummaryStats.from_array(rng.normal(0, 1, 100))
        old = rng.normal(0, 1, (4, 8))
        batch = vectorized_single_fault(baseline, old, old + 1.0)
        assert isinstance(batch, FaultMetrics)
        assert batch.shape == (4, 8)
        assert batch.non_finite.dtype == np.bool_
        flat = batch.reshape(32)
        assert flat.shape == (32,)
        assert np.array_equal(flat.mse, batch.mse.reshape(32))

    def test_mismatched_shapes_rejected(self):
        from dataclasses import replace

        from repro.metrics.fast import FaultMetrics

        baseline = SummaryStats.from_array(np.array([1.0, 2.0]))
        batch = vectorized_single_fault(baseline, np.zeros(3), np.ones(3))
        with pytest.raises(ValueError, match="shape"):
            replace(batch, mse=np.zeros(5))
        with pytest.raises(TypeError, match="ndarray"):
            replace(batch, mse=[0.0, 0.0, 0.0])
