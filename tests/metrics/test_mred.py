"""Tests for the MRED metric."""

import numpy as np

from repro.metrics.mred import mred, relative_error_distance


class TestRelativeErrorDistance:
    def test_basic(self):
        red = relative_error_distance(np.array([2.0, 4.0]), np.array([1.0, 6.0]))
        assert red.tolist() == [0.5, 0.5]

    def test_zero_conventions(self):
        red = relative_error_distance(np.array([0.0, 0.0]), np.array([0.0, 1.0]))
        assert red[0] == 0.0
        assert np.isnan(red[1])


class TestMred:
    def test_mean(self):
        assert mred(np.array([2.0, 4.0]), np.array([1.0, 6.0])) == 0.5

    def test_skips_non_finite_by_default(self):
        original = np.array([2.0, 0.0, 1.0])
        faulty = np.array([1.0, 5.0, np.inf])
        assert mred(original, faulty) == 0.5

    def test_strict_mode_propagates(self):
        original = np.array([2.0, 0.0])
        faulty = np.array([1.0, 5.0])
        assert np.isnan(mred(original, faulty, skip_non_finite=False))

    def test_all_undefined(self):
        assert np.isnan(mred(np.array([0.0]), np.array([1.0])))
