"""Tests for exhaustive small-format posit tables."""

import numpy as np
import pytest

from repro.posit.config import POSIT8, POSIT16, POSIT32
from repro.posit.tables import lattice_neighbors, positive_values_sorted, value_table


class TestValueTable:
    def test_p8_size_and_specials(self):
        table = value_table(POSIT8)
        assert table.shape == (256,)
        assert table[0] == 0.0
        assert np.isnan(table[128])
        assert table[64] == 1.0

    def test_p16_cached(self):
        assert value_table(POSIT16) is value_table(POSIT16)

    def test_rejects_wide_formats(self):
        with pytest.raises(ValueError):
            value_table(POSIT32)


class TestPositiveValues:
    def test_sorted_strictly(self):
        values = positive_values_sorted(POSIT8)
        assert values.shape == (127,)
        assert np.all(np.diff(values) > 0)
        assert values[0] == POSIT8.minpos
        assert values[-1] == POSIT8.maxpos


class TestLatticeNeighbors:
    def test_bracket(self):
        low, high = lattice_neighbors(1.1, POSIT8)
        assert low <= 1.1 <= high
        assert low < high

    def test_exact_value(self):
        low, high = lattice_neighbors(1.0, POSIT8)
        assert high == 1.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            lattice_neighbors(0.0, POSIT8)
        with pytest.raises(ValueError):
            lattice_neighbors(-1.0, POSIT8)
