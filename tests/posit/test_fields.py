"""Tests for posit field decomposition and bit classification."""

import numpy as np
import pytest

from repro.posit.config import POSIT8, POSIT16, POSIT32, PositConfig
from repro.posit.encode import encode
from repro.posit.fields import (
    COARSE_FIELD_OF,
    PositField,
    classify_all_bits,
    classify_bit,
    decompose,
    layout_string,
    regime_k,
)


def _scalar_classify(pattern: int, bit_index: int, config: PositConfig) -> PositField:
    """Brute-force field classification by walking the bit string."""
    n = config.nbits
    text = format(pattern & config.mask, f"0{n}b")
    if bit_index == n - 1:
        return PositField.SIGN
    body = text[1:]
    first = body[0]
    run = len(body) - len(body.lstrip(first))
    position = n - 2 - bit_index  # index into body, 0 == MSB
    if run == len(body):
        return PositField.REGIME if position < run else PositField.FRACTION
    if position < run:
        return PositField.REGIME
    if position == run:
        return PositField.REGIME_TERM
    exponent_start = run + 1
    exponent_end = min(exponent_start + config.es, len(body))
    if position < exponent_end:
        return PositField.EXPONENT
    return PositField.FRACTION


class TestDecompose:
    def test_one(self):
        fields = decompose(np.array([0x40000000], dtype=np.uint64), POSIT32)
        assert fields.sign[0] == 0
        assert fields.run[0] == 1
        assert fields.regime[0] == 0
        assert fields.exponent[0] == 0
        assert fields.fraction_bits[0] == 27
        assert fields.fraction[0] == 0

    def test_paper_fig6_layout_186250(self):
        pattern = int(encode(np.float64(186250.0), POSIT32))
        fields = decompose(np.array([pattern], dtype=np.uint64), POSIT32)
        assert fields.run[0] == 5          # regime 111110
        assert fields.regime[0] == 4
        assert fields.exponent[0] == 1     # e = 01
        assert fields.fraction_bits[0] == 23

    def test_maxpos_has_no_terminator(self):
        fields = decompose(np.array([POSIT32.maxpos_pattern], dtype=np.uint64), POSIT32)
        assert not fields.has_terminator[0]
        assert fields.run[0] == 31
        assert fields.fraction_bits[0] == 0
        assert fields.exponent_bits_present[0] == 0

    def test_minpos(self):
        fields = decompose(np.array([1], dtype=np.uint64), POSIT32)
        assert fields.run[0] == 30
        assert fields.has_terminator[0]
        assert fields.regime[0] == -30

    def test_special_masks(self):
        patterns = np.array([0, POSIT32.nar_pattern, 0x40000000], dtype=np.uint64)
        fields = decompose(patterns, POSIT32)
        assert fields.is_zero.tolist() == [True, False, False]
        assert fields.is_nar.tolist() == [False, True, False]

    def test_truncated_exponent(self):
        # Pattern with regime filling all but one body bit: 29 ones,
        # terminator, then a single exponent bit (E0 only).
        pattern = (((1 << 29) - 1) << 2 | 0b01) << 1 | 1
        # Construct explicitly: sign 0, 29 ones, 0 terminator, 1 bit left.
        pattern = int("0" + "1" * 29 + "0" + "1", 2)
        fields = decompose(np.array([pattern], dtype=np.uint64), POSIT32)
        assert fields.run[0] == 29
        assert fields.exponent_bits_present[0] == 1
        # The present bit is E0 (weight 2), truncated E1 reads 0.
        assert fields.exponent[0] == 2
        assert fields.fraction_bits[0] == 0


class TestClassifyBit:
    @pytest.mark.parametrize("config", [POSIT8, POSIT16], ids=["p8", "p16"])
    def test_matches_brute_force(self, config, rng):
        patterns = rng.integers(0, 1 << config.nbits, 300, dtype=np.uint64)
        for bit_index in range(config.nbits):
            got = classify_bit(patterns, bit_index, config)
            expected = np.array(
                [int(_scalar_classify(int(p), bit_index, config)) for p in patterns]
            )
            assert np.array_equal(got, expected), f"bit {bit_index}"

    def test_p32_layout_k1(self):
        pattern = np.array([int(encode(np.float64(1.5), POSIT32))], dtype=np.uint64)
        expected = {31: PositField.SIGN, 30: PositField.REGIME,
                    29: PositField.REGIME_TERM, 28: PositField.EXPONENT,
                    27: PositField.EXPONENT, 26: PositField.FRACTION,
                    0: PositField.FRACTION}
        for bit, field in expected.items():
            assert classify_bit(pattern, bit, POSIT32)[0] == field

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            classify_bit(np.array([0], dtype=np.uint64), 32, POSIT32)

    def test_classify_all_bits_shape_and_consistency(self, rng):
        patterns = rng.integers(0, 1 << 16, 50, dtype=np.uint64)
        table = classify_all_bits(patterns, POSIT16)
        assert table.shape == (50, 16)
        for bit_index in range(16):
            assert np.array_equal(
                table[:, bit_index], classify_bit(patterns, bit_index, POSIT16)
            )


class TestRegimeK:
    def test_known_values(self):
        values = np.array([1.5, 20.0, 400.0, 0.1, 0.01])
        patterns = encode(values, POSIT32)
        # 1.5 -> k=1; 20 (2^4.3, r=1) -> k=2; 400 (2^8.6, r=2) -> k=3;
        # 0.1 (r=-1) -> k=1; 0.01 (r=-2) -> k=2.
        assert regime_k(patterns, POSIT32).tolist() == [1, 2, 3, 1, 2]


class TestLayoutString:
    def test_one(self):
        assert layout_string(0x40000000, POSIT32) == "0|10|00|" + "0" * 27

    def test_roundtrip_bits(self):
        pattern = int(encode(np.float64(186250.0), POSIT32))
        text = layout_string(pattern, POSIT32)
        assert text.replace("|", "") == format(pattern, "032b")

    def test_maxpos(self):
        text = layout_string(POSIT32.maxpos_pattern, POSIT32)
        assert text == "0|" + "1" * 31


class TestCoarseMapping:
    def test_terminator_folds_into_regime(self):
        assert COARSE_FIELD_OF[PositField.REGIME_TERM] == PositField.REGIME
        assert COARSE_FIELD_OF[PositField.SIGN] == PositField.SIGN

    def test_short_names(self):
        assert PositField.REGIME_TERM.short_name() == "Rk"
        assert PositField.SIGN.short_name() == "S"
