"""Tests for posit ULP/spacing utilities."""

import numpy as np
import pytest

from repro.posit.config import POSIT8, POSIT16, POSIT32
from repro.posit.decode import decode
from repro.posit.encode import encode
from repro.posit.ulp import next_down, next_up, relative_spacing_at, spacing_at, ulp


class TestNeighbors:
    def test_next_up_orders(self):
        pattern = np.array([int(encode(np.float64(1.0), POSIT32))], dtype=np.uint64)
        up = next_up(pattern, POSIT32)
        assert float(decode(up.astype(np.uint64), POSIT32)[0]) > 1.0

    def test_next_up_saturates_at_maxpos(self):
        maxpos = np.array([POSIT32.maxpos_pattern], dtype=np.uint64)
        assert int(next_up(maxpos, POSIT32)[0]) == POSIT32.maxpos_pattern

    def test_next_down_saturates_at_most_negative(self):
        most_negative = np.array([(POSIT32.nar_pattern + 1) & POSIT32.mask], dtype=np.uint64)
        assert int(next_down(most_negative, POSIT32)[0]) == int(most_negative[0])

    def test_nar_fixed_point(self):
        nar = np.array([POSIT32.nar_pattern], dtype=np.uint64)
        assert int(next_up(nar, POSIT32)[0]) == POSIT32.nar_pattern
        assert int(next_down(nar, POSIT32)[0]) == POSIT32.nar_pattern

    def test_up_down_inverse(self, rng):
        patterns = rng.integers(2, POSIT16.maxpos_pattern - 1, 500, dtype=np.uint64)
        down_up = next_up(next_down(patterns, POSIT16), POSIT16)
        assert np.array_equal(down_up.astype(np.uint64), patterns)


class TestUlp:
    def test_exhaustive_p8_positive(self):
        # ulp must equal the actual gap to the next table value.
        from repro.posit.tables import value_table

        table = value_table(POSIT8)
        patterns = np.arange(1, POSIT8.maxpos_pattern, dtype=np.uint64)
        gaps = ulp(patterns, POSIT8)
        expected = table[2 : POSIT8.maxpos_pattern + 1] - table[1 : POSIT8.maxpos_pattern]
        assert np.allclose(gaps, expected, rtol=0, atol=0)

    def test_tapered_spacing(self):
        # Spacing grows away from 1.
        near_one = float(spacing_at(np.array([1.0]), POSIT32)[0])
        at_million = float(spacing_at(np.array([1.0e6]), POSIT32)[0])
        assert at_million > near_one

    def test_relative_spacing_minimal_near_one(self):
        values = np.array([1.0, 64.0, 2.0**40, 2.0**-40])
        rel = relative_spacing_at(values, POSIT32)
        assert np.argmin(rel) == 0

    def test_zero_relative_spacing_inf(self):
        assert relative_spacing_at(np.array([0.0]), POSIT32)[0] == np.inf

    def test_nar_nan(self):
        nar = np.array([POSIT32.nar_pattern], dtype=np.uint64)
        assert np.isnan(ulp(nar, POSIT32)[0])

    def test_spacing_matches_decimal_accuracy_profile(self):
        # -log10(relative spacing) tracks the Fig. 7 accuracy numbers.
        from repro.analysis.accuracy import posit_decimal_accuracy

        rel = float(relative_spacing_at(np.array([1.0]), POSIT32)[0])
        digits = -np.log10(rel)
        assert digits == pytest.approx(posit_decimal_accuracy(0, POSIT32), abs=0.6)
