"""Hypothesis property tests on the posit core.

These are the deep invariants: rounding correctness, lattice
monotonicity, negation symmetry, and idempotence — over arbitrary
float64 inputs.
"""

import math

import numpy as np
from hypothesis import given, strategies as st

from repro.bitops import to_signed, twos_complement
from repro.posit._reference import decode_exact, encode_exact
from repro.posit.config import POSIT8, POSIT16, POSIT32
from repro.posit.decode import decode
from repro.posit.encode import encode

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
all_floats = st.floats(width=64)


@given(finite_floats)
def test_vectorized_encode_matches_reference(value):
    for config in (POSIT8, POSIT16, POSIT32):
        got = int(encode(np.float64(value), config))
        assert got == encode_exact(value, config)


@given(all_floats)
def test_encode_decode_encode_idempotent(value):
    """Storing a value twice is the same as storing it once."""
    for config in (POSIT16, POSIT32):
        once = int(encode(np.float64(value), config))
        back = float(decode(np.uint64(once), config))
        twice = int(encode(np.float64(back), config))
        assert once == twice


@given(finite_floats)
def test_roundtrip_is_nearest_or_saturated(value):
    """decode(encode(x)) is within the posit spacing around x."""
    config = POSIT16
    pattern = int(encode(np.float64(value), config))
    stored = decode_exact(pattern, config)
    if value == 0:
        assert stored == 0
        return
    magnitude = abs(value)
    if magnitude >= config.maxpos:
        assert abs(stored) == decode_exact(config.maxpos_pattern, config)
        return
    if magnitude <= config.minpos:
        assert abs(stored) == decode_exact(config.minpos_pattern, config)
        return
    # Not saturated: neighbors of the stored pattern must bracket x.
    sign_adjusted = pattern if stored > 0 else int(twos_complement(np.uint64(pattern), config.nbits))
    below = decode_exact((sign_adjusted - 1) % (1 << config.nbits), config)
    assert below is not None
    assert float(below) <= magnitude
    if sign_adjusted != config.maxpos_pattern:
        above = decode_exact((sign_adjusted + 1) % (1 << config.nbits), config)
        assert above is not None
        assert magnitude <= float(above)


@given(finite_floats)
def test_negation_symmetry(value):
    config = POSIT32
    positive = int(encode(np.float64(value), config))
    negative = int(encode(np.float64(-value), config))
    assert negative == int(twos_complement(np.uint64(positive), config.nbits))


@given(st.integers(min_value=0, max_value=(1 << 16) - 1),
       st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_pattern_order_is_value_order(p, q):
    config = POSIT16
    if p == config.nar_pattern or q == config.nar_pattern:
        return
    vp = decode_exact(p, config)
    vq = decode_exact(q, config)
    sp = int(to_signed(np.uint64(p), 16))
    sq = int(to_signed(np.uint64(q), 16))
    assert (vp < vq) == (sp < sq)


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_decode_vectorized_matches_reference_p32(pattern):
    from repro.posit._reference import decode_float

    got = float(decode(np.uint64(pattern), POSIT32))
    expected = decode_float(pattern, POSIT32)
    assert got == expected or (math.isnan(got) and math.isnan(expected))


@given(st.floats(min_value=1e-30, max_value=1e30))
def test_monotone_encode(value):
    """Encoding preserves order against a slightly larger value."""
    config = POSIT32
    larger = value * (1 + 1e-6)
    p1 = int(encode(np.float64(value), config))
    p2 = int(encode(np.float64(larger), config))
    assert p1 <= p2


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=7))
def test_flip_changes_value_or_special_p8(pattern, bit):
    """A bit flip never silently preserves the decoded value."""
    config = POSIT8
    flipped = pattern ^ (1 << bit)
    original = decode_exact(pattern, config)
    faulty = decode_exact(flipped, config)
    if original is None or faulty is None:
        return
    assert original != faulty
