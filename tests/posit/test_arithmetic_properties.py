"""Algebraic property tests on posit arithmetic.

Posit arithmetic (like IEEE) is commutative but not associative; these
tests pin down exactly which laws hold, exhaustively on posit8 pairs and
by hypothesis on wider formats.
"""

import numpy as np
from hypothesis import given, strategies as st

from repro.posit.arithmetic import add, divide, multiply, negate, subtract
from repro.posit.config import POSIT8, POSIT16, POSIT32
from repro.posit.decode import decode
from repro.posit.encode import encode

patterns16 = st.integers(min_value=0, max_value=(1 << 16) - 1)


def _p16(value: float) -> np.ndarray:
    return np.atleast_1d(np.asarray(encode(np.float64(value), POSIT16)))


class TestCommutativity:
    def test_add_exhaustive_p8_sample(self, rng):
        a = rng.integers(0, 256, 3000, dtype=np.uint64).astype(np.uint8)
        b = rng.integers(0, 256, 3000, dtype=np.uint64).astype(np.uint8)
        assert np.array_equal(
            np.asarray(add(a, b, POSIT8)), np.asarray(add(b, a, POSIT8))
        )

    @given(patterns16, patterns16)
    def test_mul_commutes_p16(self, p, q):
        a = np.array([p], dtype=np.uint16)
        b = np.array([q], dtype=np.uint16)
        assert np.asarray(multiply(a, b, POSIT16))[0] == np.asarray(multiply(b, a, POSIT16))[0]


class TestIdentities:
    @given(patterns16)
    def test_additive_identity(self, p):
        a = np.array([p], dtype=np.uint16)
        zero = np.array([0], dtype=np.uint16)
        assert np.asarray(add(a, zero, POSIT16))[0] == p

    @given(patterns16)
    def test_multiplicative_identity(self, p):
        a = np.array([p], dtype=np.uint16)
        one = np.asarray(encode(np.float64(1.0), POSIT16)).reshape(1)
        assert np.asarray(multiply(a, one, POSIT16))[0] == p

    @given(patterns16)
    def test_self_subtraction_is_zero(self, p):
        if p == POSIT16.nar_pattern:
            return
        a = np.array([p], dtype=np.uint16)
        assert np.asarray(subtract(a, a, POSIT16))[0] == 0

    @given(patterns16)
    def test_self_division_is_one(self, p):
        value = decode(np.uint64(p), POSIT16)
        a = np.array([p], dtype=np.uint16)
        result = int(np.asarray(divide(a, a, POSIT16))[0])
        if p == POSIT16.nar_pattern or value == 0:
            assert result == POSIT16.nar_pattern
        else:
            assert result == int(encode(np.float64(1.0), POSIT16))


class TestSignLaws:
    @given(patterns16, patterns16)
    def test_negation_distributes_over_add(self, p, q):
        if POSIT16.nar_pattern in (p, q):
            return
        a = np.array([p], dtype=np.uint16)
        b = np.array([q], dtype=np.uint16)
        left = negate(add(a, b, POSIT16), POSIT16)
        right = add(negate(a, POSIT16), negate(b, POSIT16), POSIT16)
        assert np.asarray(left)[0] == np.asarray(right)[0]

    @given(patterns16, patterns16)
    def test_product_sign_rule(self, p, q):
        a = np.array([p], dtype=np.uint16)
        b = np.array([q], dtype=np.uint16)
        direct = multiply(negate(a, POSIT16), b, POSIT16)
        negated = negate(multiply(a, b, POSIT16), POSIT16)
        assert np.asarray(direct)[0] == np.asarray(negated)[0]


class TestNonLaws:
    def test_addition_not_associative(self):
        # 2**20 in posit16 carries 6 fraction bits: spacing 2**14.  A
        # half-spacing addend (2**13) is absorbed by ties-to-even, but
        # two of them together reach the next posit.
        big = _p16(2.0**20)
        tiny = _p16(2.0**13)
        left = add(np.asarray(add(big, tiny, POSIT16)), tiny, POSIT16)
        right = add(big, np.asarray(add(tiny, tiny, POSIT16)), POSIT16)
        assert np.asarray(left)[0] != np.asarray(right)[0]

    def test_no_distributivity_in_general(self):
        a = _p16(3.0)
        b = _p16(2.0**-11)
        c = _p16(1.0)
        left = multiply(a, np.asarray(add(b, c, POSIT16)), POSIT16)
        right = add(
            np.asarray(multiply(a, b, POSIT16)),
            np.asarray(multiply(a, c, POSIT16)),
            POSIT16,
        )
        # Not asserting inequality for this specific triple — only that
        # evaluating both is well-defined; the associativity gap above
        # already shows rounding breaks ring laws.
        assert np.isfinite(decode(np.asarray(left).astype(np.uint64), POSIT16))[0]
        assert np.isfinite(decode(np.asarray(right).astype(np.uint64), POSIT16))[0]


class TestMonotonicity:
    @given(
        st.floats(min_value=-1e10, max_value=1e10),
        st.floats(min_value=-1e10, max_value=1e10),
        st.floats(min_value=0.0, max_value=1e10),
    )
    def test_add_monotone_in_first_argument(self, x, delta, y):
        from repro.bitops import to_signed

        a_small = np.atleast_1d(np.asarray(encode(np.float64(x), POSIT32)))
        a_large = np.atleast_1d(np.asarray(encode(np.float64(x + abs(delta)), POSIT32)))
        b = np.atleast_1d(np.asarray(encode(np.float64(y), POSIT32)))
        small = int(to_signed(np.asarray(add(a_small, b, POSIT32)).astype(np.uint64), 32)[0])
        large = int(to_signed(np.asarray(add(a_large, b, POSIT32)).astype(np.uint64), 32)[0])
        assert small <= large
