"""Tests for posit format configuration."""

import numpy as np
import pytest

from repro.posit.config import (
    POSIT8,
    POSIT16,
    POSIT32,
    POSIT64,
    STANDARD_CONFIGS,
    PositConfig,
    standard_config,
)


class TestValidation:
    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            PositConfig(nbits=2)

    def test_rejects_wide_width(self):
        with pytest.raises(ValueError):
            PositConfig(nbits=65)

    def test_rejects_bad_es(self):
        with pytest.raises(ValueError):
            PositConfig(nbits=32, es=5)
        with pytest.raises(ValueError):
            PositConfig(nbits=32, es=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            POSIT32.nbits = 16  # type: ignore[misc]


class TestDerivedConstants:
    def test_posit32_standard_values(self):
        assert POSIT32.useed_log2 == 4
        assert POSIT32.sign_mask == 0x80000000
        assert POSIT32.nar_pattern == 0x80000000
        assert POSIT32.maxpos_pattern == 0x7FFFFFFF
        assert POSIT32.minpos_pattern == 1
        assert POSIT32.max_scale == 120
        assert POSIT32.maxpos == 2.0**120
        assert POSIT32.minpos == 2.0**-120
        assert POSIT32.max_fraction_bits == 27

    def test_posit8_values(self):
        assert POSIT8.max_scale == 24
        assert POSIT8.max_fraction_bits == 3
        assert POSIT8.dtype == np.uint8

    def test_posit16_values(self):
        assert POSIT16.max_scale == 56
        assert POSIT16.max_fraction_bits == 11
        assert POSIT16.dtype == np.uint16

    def test_posit64_values(self):
        assert POSIT64.max_scale == 248
        assert POSIT64.max_fraction_bits == 59
        assert POSIT64.dtype == np.uint64

    def test_mask_widths(self):
        assert POSIT8.mask == 0xFF
        assert POSIT16.mask == 0xFFFF
        assert POSIT64.mask == (1 << 64) - 1

    def test_non_power_of_two_width(self):
        config = PositConfig(nbits=10, es=2)
        assert config.dtype == np.uint16
        assert config.mask == (1 << 10) - 1
        assert config.storage_bits == 16

    def test_es_zero(self):
        config = PositConfig(nbits=8, es=0)
        assert config.useed_log2 == 1
        assert config.max_scale == 6


class TestStandardConfigs:
    def test_registry(self):
        assert set(STANDARD_CONFIGS) == {8, 16, 32, 64}
        for nbits, config in STANDARD_CONFIGS.items():
            assert config.nbits == nbits
            assert config.es == 2
            assert config.is_standard()

    def test_standard_config_cached(self):
        assert standard_config(32) is standard_config(32)

    def test_describe(self):
        text = POSIT32.describe()
        assert "posit32" in text
        assert "27" in text

    def test_str(self):
        assert str(POSIT32) == "posit32es2"
