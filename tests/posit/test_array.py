"""Tests for the PositArray container."""

import numpy as np
import pytest

from repro.posit import POSIT8, POSIT16, POSIT32, PositArray


class TestConstruction:
    def test_from_floats(self):
        array = PositArray([1.0, 2.5, -3.0])
        assert array.to_floats().tolist() == [1.0, 2.5, -3.0]
        assert array.config is POSIT32
        assert array.shape == (3,)
        assert array.size == 3
        assert len(array) == 3

    def test_rounding_on_construction(self):
        array = PositArray([0.1], POSIT8)
        assert array.to_floats()[0] != 0.1  # 0.1 not representable in p8
        assert abs(array.to_floats()[0] - 0.1) < 0.01

    def test_from_bits(self):
        array = PositArray.from_bits(np.array([0x40000000], dtype=np.uint32))
        assert array.to_floats()[0] == 1.0

    def test_zeros(self):
        array = PositArray.zeros((2, 3))
        assert array.shape == (2, 3)
        assert np.all(array.to_floats() == 0.0)

    def test_format_conversion(self):
        wide = PositArray([1.0, 186.25])
        narrow = wide.astype(POSIT16)
        assert narrow.config is POSIT16
        assert narrow.to_floats()[0] == 1.0

    def test_nan_becomes_nar(self):
        array = PositArray([np.nan, 1.0])
        assert array.is_nar().tolist() == [True, False]
        assert np.isnan(array.to_floats()[0])


class TestIndexing:
    def test_getitem(self):
        array = PositArray([1.0, 2.0, 3.0])
        assert array[1].to_floats().tolist() == [2.0]
        assert array[1:].to_floats().tolist() == [2.0, 3.0]

    def test_setitem_float(self):
        array = PositArray([1.0, 2.0])
        array[0] = 5.0
        assert array.to_floats().tolist() == [5.0, 2.0]

    def test_setitem_positarray(self):
        array = PositArray([1.0, 2.0])
        array[1] = PositArray([7.0])
        assert array.to_floats()[1] == 7.0

    def test_iter(self):
        assert list(PositArray([1.0, 2.0])) == [1.0, 2.0]


class TestArithmetic:
    def test_operators(self):
        a = PositArray([1.5, 4.0])
        b = PositArray([2.0, 0.5])
        assert (a + b).to_floats().tolist() == [3.5, 4.5]
        assert (a - b).to_floats().tolist() == [-0.5, 3.5]
        assert (a * b).to_floats().tolist() == [3.0, 2.0]
        assert (a / b).to_floats().tolist() == [0.75, 8.0]
        assert (-a).to_floats().tolist() == [-1.5, -4.0]
        assert abs(-a).to_floats().tolist() == [1.5, 4.0]
        assert a.sqrt().to_floats()[1] == 2.0

    def test_scalar_operands(self):
        a = PositArray([1.0, 2.0])
        assert (a + 1.0).to_floats().tolist() == [2.0, 3.0]
        assert (2.0 * a).to_floats().tolist() == [2.0, 4.0]
        assert (1.0 - a).to_floats().tolist() == [0.0, -1.0]
        assert (4.0 / a).to_floats().tolist() == [4.0, 2.0]

    def test_results_are_posit_rounded(self):
        a = PositArray([1.0], POSIT8)
        tiny = PositArray([2.0**-10], POSIT8)
        assert (a + tiny).to_floats()[0] == 1.0  # absorbed by rounding

    def test_format_mismatch_rejected(self):
        with pytest.raises(TypeError, match="format mismatch"):
            PositArray([1.0], POSIT32) + PositArray([1.0], POSIT16)

    def test_nar_propagates(self):
        a = PositArray([np.nan, 1.0])
        result = a + PositArray([1.0, 1.0])
        assert result.is_nar().tolist() == [True, False]


class TestComparisons:
    def test_elementwise(self):
        a = PositArray([1.0, 3.0, 2.0])
        b = PositArray([1.0, 2.0, 4.0])
        assert (a == b).tolist() == [True, False, False]
        assert (a != b).tolist() == [False, True, True]
        assert (a < b).tolist() == [False, False, True]
        assert (a >= b).tolist() == [True, True, False]

    def test_compare_with_scalar(self):
        a = PositArray([1.0, 3.0])
        assert (a > 2.0).tolist() == [False, True]


class TestReductions:
    def test_sum_sequential_vs_fused(self):
        # 1 + many tiny values: sequential posit8 loses them, quire keeps.
        values = [1.0] + [2.0**-6] * 16
        array = PositArray(values, POSIT8)
        assert array.sum(fused=True) > array.sum(fused=False)

    def test_sum_exact_case(self):
        array = PositArray([1.0, 2.0, 3.0])
        assert array.sum() == 6.0
        assert array.sum(fused=True) == 6.0

    def test_dot(self):
        a = PositArray([1.0, 2.0, 3.0])
        b = PositArray([4.0, 5.0, 6.0])
        assert a.dot(b) == 32.0
        assert a.dot(b, fused=True) == 32.0

    def test_fused_dot_cancellation(self):
        a = PositArray([2.0**20, -(2.0**20), 1.0])
        b = PositArray([1.0, 1.0, 1.0])
        assert a.dot(b, fused=True) == 1.0
