"""Tests for posit arithmetic (fast path vs exact path)."""

import numpy as np
import pytest

from repro.posit.arithmetic import (
    absolute,
    add,
    compare,
    divide,
    fma,
    multiply,
    negate,
    sqrt,
    subtract,
)
from repro.posit.config import POSIT8, POSIT16, POSIT32
from repro.posit.decode import decode
from repro.posit.encode import encode


def _patterns(values, config):
    return np.asarray(encode(np.asarray(values, dtype=np.float64), config))


class TestNegate:
    def test_exact_negation(self):
        patterns = _patterns([1.5, -2.25, 1000.0, 0.001], POSIT32)
        negated = negate(patterns, POSIT32)
        assert np.array_equal(decode(negated, POSIT32), -decode(patterns, POSIT32))

    def test_zero_and_nar_fixed_points(self):
        specials = np.array([0, POSIT32.nar_pattern], dtype=np.uint32)
        result = negate(specials, POSIT32)
        assert result.tolist() == [0, POSIT32.nar_pattern]

    def test_absolute(self):
        patterns = _patterns([-3.0, 3.0, -0.5], POSIT32)
        result = decode(absolute(patterns, POSIT32), POSIT32)
        assert result.tolist() == [3.0, 3.0, 0.5]

    def test_absolute_nar(self):
        result = absolute(np.array([POSIT32.nar_pattern], dtype=np.uint32), POSIT32)
        assert int(result[0]) == POSIT32.nar_pattern


class TestFastVsExact:
    @pytest.mark.parametrize("op", [add, subtract, multiply, divide],
                             ids=["add", "sub", "mul", "div"])
    def test_p16_random_pairs(self, op, rng):
        a = rng.integers(0, 1 << 16, 300, dtype=np.uint64).astype(np.uint16)
        b = rng.integers(0, 1 << 16, 300, dtype=np.uint64).astype(np.uint16)
        fast = op(a, b, POSIT16)
        exact = op(a, b, POSIT16, mode="exact")
        assert np.array_equal(np.asarray(fast), np.asarray(exact))

    @pytest.mark.parametrize("op", [add, multiply], ids=["add", "mul"])
    def test_p8_exhaustive_diagonal(self, op):
        patterns = np.arange(256, dtype=np.uint8)
        others = patterns[::-1].copy()
        fast = op(patterns, others, POSIT8)
        exact = op(patterns, others, POSIT8, mode="exact")
        assert np.array_equal(np.asarray(fast), np.asarray(exact))


class TestSemantics:
    def test_known_sums(self):
        a = _patterns([1.0, 2.5], POSIT32)
        b = _patterns([2.0, -1.25], POSIT32)
        assert decode(add(a, b, POSIT32), POSIT32).tolist() == [3.0, 1.25]

    def test_nar_propagates(self):
        nar = np.array([POSIT32.nar_pattern], dtype=np.uint32)
        one = _patterns([1.0], POSIT32)
        for op in (add, subtract, multiply, divide):
            assert int(np.asarray(op(nar, one, POSIT32))[0]) == POSIT32.nar_pattern
            assert int(np.asarray(op(one, nar, POSIT32))[0]) == POSIT32.nar_pattern

    def test_divide_by_zero_is_nar(self):
        one = _patterns([1.0], POSIT32)
        zero = _patterns([0.0], POSIT32)
        assert int(np.asarray(divide(one, zero, POSIT32))[0]) == POSIT32.nar_pattern
        assert int(np.asarray(divide(one, zero, POSIT32, mode="exact"))[0]) == POSIT32.nar_pattern

    def test_sqrt(self):
        patterns = _patterns([4.0, 2.25, 0.0], POSIT32)
        roots = decode(sqrt(patterns, POSIT32), POSIT32)
        assert roots.tolist() == [2.0, 1.5, 0.0]

    def test_sqrt_negative_is_nar(self):
        result = sqrt(_patterns([-4.0], POSIT32), POSIT32)
        assert int(np.asarray(result)[0]) == POSIT32.nar_pattern

    def test_fma_single_rounding(self):
        # Choose operands where (a*b) rounds differently than a*b+c fused:
        # in posit8 precision such cases are easy to hit; assert fused
        # exact mode equals rational evaluation.
        a = _patterns([1.25], POSIT8)
        b = _patterns([1.25], POSIT8)
        c = _patterns([0.0625], POSIT8)
        fused = fma(a, b, c, POSIT8, mode="exact")
        from repro.posit._reference import decode_exact, encode_exact

        va = decode_exact(int(np.asarray(a)[0]), POSIT8)
        vb = decode_exact(int(np.asarray(b)[0]), POSIT8)
        vc = decode_exact(int(np.asarray(c)[0]), POSIT8)
        assert int(np.asarray(fused)[0]) == encode_exact(va * vb + vc, POSIT8)

    def test_fma_nar(self):
        nar = np.array([POSIT32.nar_pattern], dtype=np.uint32)
        one = _patterns([1.0], POSIT32)
        assert int(np.asarray(fma(one, one, nar, POSIT32))[0]) == POSIT32.nar_pattern

    def test_saturating_overflow(self):
        big = _patterns([2.0**119], POSIT32)
        result = multiply(big, big, POSIT32)
        assert int(np.asarray(result)[0]) == POSIT32.maxpos_pattern


class TestCompare:
    def test_orders_like_values(self, rng):
        patterns = rng.integers(0, 1 << 16, 200, dtype=np.uint64).astype(np.uint16)
        patterns = patterns[patterns != POSIT16.nar_pattern]
        values = decode(patterns, POSIT16)
        a, b = patterns[:-1], patterns[1:]
        got = compare(a, b, POSIT16)
        expected = np.sign(values[:-1] - values[1:]).astype(np.int64)
        assert np.array_equal(got, expected)

    def test_nar_less_than_all(self):
        nar = np.array([POSIT16.nar_pattern], dtype=np.uint16)
        most_negative_real = np.array([POSIT16.nar_pattern + 1], dtype=np.uint16)
        assert int(compare(nar, most_negative_real, POSIT16)[0]) == -1
