"""Tests for the vectorized posit encoder."""

import numpy as np
import pytest

from repro.posit._reference import encode_exact
from repro.posit.config import POSIT8, POSIT16, POSIT32, POSIT64, PositConfig
from repro.posit.decode import decode
from repro.posit.encode import encode, encode32


def _check_against_reference(values: np.ndarray, config) -> None:
    got = np.asarray(encode(values, config)).astype(np.uint64)
    expected = np.array(
        [encode_exact(float(v), config) for v in values], dtype=np.uint64
    )
    mismatch = got != expected
    assert not np.any(mismatch), (
        f"{np.sum(mismatch)} mismatches; first at value "
        f"{values[np.argmax(mismatch)]!r}: got "
        f"{got[np.argmax(mismatch)]:#x}, expected {expected[np.argmax(mismatch)]:#x}"
    )


class TestRoundTrips:
    @pytest.mark.parametrize("config", [POSIT8, POSIT16], ids=["p8", "p16"])
    def test_exhaustive_roundtrip(self, config):
        patterns = np.arange(1 << config.nbits, dtype=np.uint64)
        values = decode(patterns, config)
        encoded = np.asarray(encode(values, config)).astype(np.uint64)
        keep = patterns != config.nar_pattern
        assert np.array_equal(encoded[keep], patterns[keep])
        assert encoded[~keep][0] == config.nar_pattern

    def test_sampled_roundtrip_p32(self, rng):
        patterns = rng.integers(0, 1 << 32, 5000, dtype=np.uint64)
        patterns = patterns[patterns != POSIT32.nar_pattern]
        values = decode(patterns, POSIT32)
        encoded = np.asarray(encode(values, POSIT32)).astype(np.uint64)
        assert np.array_equal(encoded, patterns)

    def test_sampled_roundtrip_p64_small_fractions(self, rng):
        # Restrict to patterns whose fraction fits float64 so the decode
        # is exact and the roundtrip must be identity.
        patterns = rng.integers(0, 1 << 32, 2000, dtype=np.uint64) << np.uint64(20)
        patterns = patterns[patterns != POSIT64.nar_pattern]
        values = decode(patterns, POSIT64)
        keep = np.isfinite(values)
        encoded = np.asarray(encode(values[keep], POSIT64)).astype(np.uint64)
        assert np.array_equal(encoded, patterns[keep])


class TestAgainstReference:
    def test_normals(self, mixed_floats):
        for config in (POSIT8, POSIT16, POSIT32):
            _check_against_reference(mixed_floats, config)

    def test_boundary_magnitudes_p32(self):
        values = np.array([
            2.0**-120, 2.0**-121, 2.0**-119, 1.5 * 2.0**-120,
            2.0**120, 2.0**119, 1.99 * 2.0**119,
            2.0**-126, 2.0**127,
        ])
        values = np.concatenate([values, -values])
        _check_against_reference(values, POSIT32)

    def test_near_one_p32(self, rng):
        values = 1.0 + rng.uniform(-0.5, 0.5, 2000)
        _check_against_reference(values, POSIT32)

    def test_float32_inputs_exact(self, rng):
        values = rng.normal(0, 100, 1000).astype(np.float32)
        got = np.asarray(encode(values, POSIT32)).astype(np.uint64)
        expected = np.array(
            [encode_exact(float(v), POSIT32) for v in values], dtype=np.uint64
        )
        assert np.array_equal(got, expected)

    def test_subnormal_float64_inputs(self):
        tiny = np.array([5e-324, 1e-310, -5e-324])
        got = np.asarray(encode(tiny, POSIT32)).astype(np.uint64)
        # All far below minpos: saturate to +/-minpos.
        assert got[0] == 1
        assert got[1] == 1
        assert got[2] == (~1 + 1) & POSIT32.mask

    def test_p64(self, rng):
        values = np.concatenate([
            rng.normal(0, 1, 500),
            rng.lognormal(0, 30, 500),
            -rng.lognormal(0, 30, 500),
        ])
        _check_against_reference(values, POSIT64)


class TestSpecials:
    def test_zero_and_negative_zero(self):
        assert encode(np.array([0.0, -0.0]), POSIT32).tolist() == [0, 0]

    def test_nan_inf(self):
        got = encode(np.array([np.nan, np.inf, -np.inf]), POSIT32)
        assert all(int(p) == POSIT32.nar_pattern for p in got)

    def test_saturation(self):
        got = encode(np.array([1e300, -1e300]), POSIT32)
        assert int(got[0]) == POSIT32.maxpos_pattern
        assert int(got[1]) == (~POSIT32.maxpos_pattern + 1) & POSIT32.mask

    def test_no_underflow(self):
        got = encode(np.array([1e-300, -1e-300]), POSIT32)
        assert int(got[0]) == 1
        assert int(got[1]) == (~1 + 1) & POSIT32.mask

    def test_scalar_input_returns_scalar(self):
        pattern = encode(np.float64(1.0), POSIT32)
        assert np.ndim(pattern) == 0
        assert int(pattern) == 0x40000000

    def test_output_dtype_matches_config(self):
        assert encode(np.array([1.0]), POSIT8).dtype == np.uint8
        assert encode(np.array([1.0]), POSIT16).dtype == np.uint16
        assert encode(np.array([1.0]), POSIT32).dtype == np.uint32
        assert encode(np.array([1.0]), POSIT64).dtype == np.uint64

    def test_encode32_convenience(self):
        assert int(encode32(np.float64(1.0))) == 0x40000000


class TestGeneralizedEs:
    @pytest.mark.parametrize("es", [0, 1, 3])
    def test_roundtrip_es_variants(self, es):
        config = PositConfig(nbits=10, es=es)
        patterns = np.arange(1 << 10, dtype=np.uint64)
        values = decode(patterns, config)
        encoded = np.asarray(encode(values, config)).astype(np.uint64)
        keep = patterns != config.nar_pattern
        assert np.array_equal(encoded[keep], patterns[keep])
