"""Tests for the vectorized posit decoder."""

import numpy as np

from repro.bitops import to_signed
from repro.posit._reference import decode_float
from repro.posit.config import POSIT8, POSIT16, POSIT32, POSIT64, PositConfig
from repro.posit.decode import decode, decode32


def _assert_same_values(got: np.ndarray, expected: np.ndarray) -> None:
    same = (got == expected) | (np.isnan(got) & np.isnan(expected))
    assert np.all(same), f"first mismatch at {np.argmin(same)}"


class TestAgainstReference:
    def test_exhaustive_p8(self):
        patterns = np.arange(256, dtype=np.uint64)
        got = decode(patterns, POSIT8)
        expected = np.array([decode_float(p, POSIT8) for p in range(256)])
        _assert_same_values(got, expected)

    def test_exhaustive_p16(self):
        patterns = np.arange(1 << 16, dtype=np.uint64)
        got = decode(patterns, POSIT16)
        expected = np.array([decode_float(int(p), POSIT16) for p in patterns[:: (1 << 16) // 4096]])
        _assert_same_values(got[:: (1 << 16) // 4096], expected)

    def test_sampled_p32(self, rng):
        patterns = rng.integers(0, 1 << 32, 2000, dtype=np.uint64)
        got = decode(patterns, POSIT32)
        expected = np.array([decode_float(int(p), POSIT32) for p in patterns])
        _assert_same_values(got, expected)

    def test_sampled_p64(self, rng):
        patterns = rng.integers(0, 1 << 63, 500, dtype=np.uint64)
        patterns = np.concatenate([patterns, patterns | np.uint64(1 << 63)])
        got = decode(patterns, POSIT64)
        expected = np.array([decode_float(int(p), POSIT64) for p in patterns])
        _assert_same_values(got, expected)

    def test_nonstandard_width(self, rng):
        config = PositConfig(nbits=12, es=2)
        patterns = np.arange(1 << 12, dtype=np.uint64)
        got = decode(patterns, config)
        expected = np.array([decode_float(int(p), config) for p in patterns])
        _assert_same_values(got, expected)


class TestSpecials:
    def test_zero(self):
        assert decode(np.uint64(0), POSIT32) == 0.0

    def test_nar_is_nan(self):
        assert np.isnan(decode(np.uint64(0x80000000), POSIT32))

    def test_minpos_maxpos(self):
        assert decode(np.uint64(1), POSIT32) == 2.0**-120
        assert decode(np.uint64(0x7FFFFFFF), POSIT32) == 2.0**120

    def test_scalar_input_returns_scalar(self):
        value = decode(np.uint64(0x40000000), POSIT32)
        assert np.ndim(value) == 0
        assert value == 1.0

    def test_decode32_convenience(self):
        assert decode32(np.uint64(0x40000000)) == 1.0


class TestLatticeProperties:
    def test_monotone_in_signed_pattern_order_p16(self):
        patterns = np.arange(1 << 16, dtype=np.uint64)
        values = decode(patterns, POSIT16)
        signed = to_signed(patterns, 16)
        order = np.argsort(signed, kind="stable")
        ordered = values[order]
        # Drop NaR (the most negative signed pattern).
        ordered = ordered[~np.isnan(ordered)]
        assert np.all(np.diff(ordered) > 0)

    def test_negation_symmetry_p16(self):
        patterns = np.arange(1, 1 << 16, dtype=np.uint64)
        patterns = patterns[patterns != POSIT16.nar_pattern]
        values = decode(patterns, POSIT16)
        negated = decode((~patterns + np.uint64(1)) & np.uint64(0xFFFF), POSIT16)
        assert np.array_equal(values, -negated)

    def test_input_bits_above_width_are_masked(self):
        wide = np.uint64((1 << 40) | 0x40000000)
        assert decode(wide, POSIT32) == 1.0
