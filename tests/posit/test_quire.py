"""Tests for the quire exact accumulator."""

from fractions import Fraction

import numpy as np

from repro.posit._reference import decode_exact, encode_exact
from repro.posit.config import POSIT8, POSIT16, POSIT32
from repro.posit.encode import encode
from repro.posit.quire import Quire, dot, total


def _patterns(values, config):
    return np.asarray(encode(np.asarray(values, dtype=np.float64), config))


class TestQuire:
    def test_exact_sum(self):
        quire = Quire(POSIT32)
        for value in (1.0, 2.0, 3.0):
            quire.add_posit(int(encode(np.float64(value), POSIT32)))
        assert quire.value_exact() == 6
        assert decode_exact(quire.to_posit(), POSIT32) == 6

    def test_add_product(self):
        quire = Quire(POSIT32)
        a = int(encode(np.float64(1.5), POSIT32))
        b = int(encode(np.float64(2.0), POSIT32))
        quire.add_product(a, b).subtract_product(a, a)
        assert quire.value_exact() == Fraction(3) - Fraction(9, 4)

    def test_nar_poisons(self):
        quire = Quire(POSIT32)
        quire.add_posit(int(encode(np.float64(1.0), POSIT32)))
        quire.add_posit(POSIT32.nar_pattern)
        assert quire.is_nar
        assert quire.value_exact() is None
        assert quire.to_posit() == POSIT32.nar_pattern

    def test_clear(self):
        quire = Quire(POSIT32)
        quire.add_posit(POSIT32.nar_pattern)
        quire.clear()
        assert not quire.is_nar
        assert quire.value_exact() == 0
        assert quire.to_posit() == 0

    def test_quire_beats_sequential_rounding(self):
        # In posit8, summing 1 + many tiny values sequentially loses the
        # tiny values to rounding; the quire keeps them.
        config = POSIT8
        one = int(encode(np.float64(1.0), config))
        tiny = int(encode(np.float64(2.0**-6), config))
        count = 16

        sequential = one
        for _ in range(count):
            value = decode_exact(sequential, config) + decode_exact(tiny, config)
            sequential = encode_exact(value, config)

        quire = Quire(config)
        quire.add_posit(one)
        for _ in range(count):
            quire.add_posit(tiny)
        fused = quire.to_posit()

        exact = 1 + count * Fraction(2) ** -6
        assert decode_exact(fused, config) == encode_and_decode(exact, config)
        # And the sequential result drifted (it rounds each step).
        assert decode_exact(sequential, config) != decode_exact(fused, config)


def encode_and_decode(value, config):
    return decode_exact(encode_exact(value, config), config)


class TestDotAndTotal:
    def test_dot_exact(self):
        a = _patterns([1.0, 2.0, 3.0], POSIT16)
        b = _patterns([4.0, 5.0, 6.0], POSIT16)
        result = dot(a, b, POSIT16)
        assert decode_exact(result, POSIT16) == 32

    def test_dot_shape_mismatch(self):
        import pytest

        with pytest.raises(ValueError):
            dot(_patterns([1.0], POSIT16), _patterns([1.0, 2.0], POSIT16), POSIT16)

    def test_total(self):
        values = _patterns([0.5, 0.25, 0.125], POSIT32)
        assert decode_exact(total(values, POSIT32), POSIT32) == Fraction(7, 8)

    def test_dot_with_cancellation(self):
        # Catastrophic cancellation case: naive float summation order
        # matters, the quire does not care.
        a = _patterns([2.0**40, 1.0, -(2.0**40)], POSIT32)
        b = _patterns([1.0, 1.0, 1.0], POSIT32)
        assert decode_exact(dot(a, b, POSIT32), POSIT32) == 1
