"""Tests for posit-to-posit format conversion."""

import numpy as np

from repro.posit._reference import decode_exact, encode_exact
from repro.posit.config import POSIT8, POSIT16, POSIT32, POSIT64, PositConfig
from repro.posit.convert import convert, is_widening_exact, round_trip_is_identity
from repro.posit.decode import decode
from repro.posit.encode import encode


class TestWidening:
    def test_p8_to_p32_exact_exhaustive(self):
        patterns = np.arange(256, dtype=np.uint64)
        widened = convert(patterns, POSIT8, POSIT32)
        original_values = decode(patterns, POSIT8)
        widened_values = decode(widened, POSIT32)
        same = (original_values == widened_values) | (
            np.isnan(original_values) & np.isnan(widened_values)
        )
        assert np.all(same)

    def test_round_trip_identity_p16(self):
        patterns = np.arange(1 << 16, dtype=np.uint64)
        up = convert(patterns, POSIT16, POSIT64)
        back = convert(up, POSIT64, POSIT16)
        assert np.array_equal(back.astype(np.uint64), patterns)

    def test_predicates(self):
        assert is_widening_exact(POSIT8, POSIT32)
        assert not is_widening_exact(POSIT32, POSIT16)
        assert not is_widening_exact(POSIT16, PositConfig(nbits=32, es=1))
        assert round_trip_is_identity(POSIT16, POSIT32)


class TestNarrowing:
    def test_rounds_to_nearest(self, rng):
        values = rng.normal(0, 100, 500)
        wide = encode(values, POSIT32)
        narrowed = convert(np.asarray(wide), POSIT32, POSIT16)
        direct = encode(np.asarray(decode(np.asarray(wide), POSIT32)), POSIT16)
        assert np.array_equal(narrowed.astype(np.uint64), np.asarray(direct).astype(np.uint64))

    def test_nar_maps_to_nar(self):
        nar = np.array([POSIT32.nar_pattern], dtype=np.uint64)
        assert int(convert(nar, POSIT32, POSIT16)[0]) == POSIT16.nar_pattern

    def test_zero_maps_to_zero(self):
        assert int(convert(np.array([0], dtype=np.uint64), POSIT32, POSIT8)[0]) == 0

    def test_saturation_on_narrow(self):
        # maxpos of posit32 (2^120) exceeds posit8's range (2^24).
        big = np.array([POSIT32.maxpos_pattern], dtype=np.uint64)
        assert int(convert(big, POSIT32, POSIT8)[0]) == POSIT8.maxpos_pattern


class TestExactPath:
    def test_p64_source_uses_exact_path(self, rng):
        # posit64 values near 1 carry > 52 fraction bits; conversion to
        # posit32 must round once from the exact value.
        patterns = rng.integers(0x3FF0_0000_0000_0000, 0x4010_0000_0000_0000, 50,
                                dtype=np.uint64)
        narrowed = convert(patterns, POSIT64, POSIT32)
        for pattern, got in zip(patterns, narrowed):
            value = decode_exact(int(pattern), POSIT64)
            assert int(got) == encode_exact(value, POSIT32)

    def test_exact_flag_matches_fast_path_for_p16(self, rng):
        patterns = rng.integers(0, 1 << 16, 300, dtype=np.uint64)
        fast = convert(patterns, POSIT16, POSIT32)
        slow = convert(patterns, POSIT16, POSIT32, exact=True)
        assert np.array_equal(fast.astype(np.uint64), slow.astype(np.uint64))

    def test_scalar_input(self):
        pattern = encode(np.float64(1.5), POSIT16)
        converted = convert(pattern, POSIT16, POSIT32)
        assert np.ndim(converted) == 0
        assert float(decode(np.uint64(converted), POSIT32)) == 1.5
