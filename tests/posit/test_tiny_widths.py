"""Exhaustive correctness for tiny posit widths (3..6 bits, es 0..2).

Tiny formats exercise every truncation edge at once: regimes that fill
the body, fully truncated exponents, zero-bit fractions.  Everything is
small enough to verify exhaustively against the exact reference.
"""

import math

import numpy as np
import pytest

from repro.posit._reference import (
    decode_exact,
    decode_exact_twos_complement,
    encode_exact,
)
from repro.posit.config import PositConfig
from repro.posit.decode import decode
from repro.posit.encode import encode
from repro.posit.fields import decompose

CONFIGS = [
    PositConfig(nbits=nbits, es=es) for nbits in (3, 4, 5, 6) for es in (0, 1, 2)
]


@pytest.mark.parametrize("config", CONFIGS, ids=str)
class TestExhaustive:
    def test_decode_forms_agree(self, config):
        for pattern in range(1 << config.nbits):
            assert decode_exact(pattern, config) == decode_exact_twos_complement(
                pattern, config
            ), pattern

    def test_vectorized_decode_matches_reference(self, config):
        patterns = np.arange(1 << config.nbits, dtype=np.uint64)
        got = decode(patterns, config)
        for pattern in range(1 << config.nbits):
            exact = decode_exact(pattern, config)
            if exact is None:
                assert math.isnan(got[pattern])
            else:
                assert got[pattern] == float(exact), pattern

    def test_roundtrip(self, config):
        patterns = np.arange(1 << config.nbits, dtype=np.uint64)
        values = decode(patterns, config)
        encoded = np.asarray(encode(values, config)).astype(np.uint64)
        keep = patterns != config.nar_pattern
        assert np.array_equal(encoded[keep], patterns[keep])

    def test_fields_partition_every_pattern(self, config):
        patterns = np.arange(1 << config.nbits, dtype=np.uint64)
        fields = decompose(patterns, config)
        # sign + regime(run [+terminator]) + exponent + fraction == nbits.
        total = (
            1
            + fields.regime_len
            + fields.exponent_bits_present
            + fields.fraction_bits
        )
        assert np.all(total == config.nbits)

    def test_minpos_maxpos_symmetry(self, config):
        assert decode_exact(config.maxpos_pattern, config) == 2 ** config.max_scale
        assert decode_exact(1, config) == 2 ** -config.max_scale


class TestDegenerateWidth:
    def test_posit3_value_set(self):
        # posit3 es=0: patterns 0..7 = {0, 1/2, 1, 2, NaR, -2, -1, -1/2}.
        config = PositConfig(nbits=3, es=0)
        values = [decode_exact(p, config) for p in range(8)]
        assert values[0] == 0
        assert values[4] is None
        assert [float(v) for v in values[1:4]] == [0.5, 1.0, 2.0]
        assert [float(v) for v in values[5:]] == [-2.0, -1.0, -0.5]

    def test_saturation_tiny(self):
        config = PositConfig(nbits=3, es=0)
        assert encode_exact(100.0, config) == config.maxpos_pattern
        assert encode_exact(1e-9, config) == 1
