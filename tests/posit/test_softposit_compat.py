"""Tests for the SoftPosit-compatible API shim."""

import numpy as np
import pytest

from repro.posit._reference import encode_exact
from repro.posit.config import POSIT32
from repro.posit.softposit_compat import (
    castP32,
    castUI32,
    convertDoubleToP32,
    convertFloatToP32,
    convertP32ToDouble,
    convertP32ToFloat,
    p32_to_ui32,
    posit32_t,
    ui32_to_p32,
)


class TestStruct:
    def test_masks_to_width(self):
        assert posit32_t(1 << 40 | 5).v == 5

    def test_cast_roundtrip(self):
        posit = castP32(0x6DD20000)
        assert castUI32(posit) == 0x6DD20000


class TestConversions:
    def test_matches_reference_encoder(self, rng):
        for value in rng.normal(0, 1e4, 200):
            assert convertFloatToP32(float(value)).v == encode_exact(float(value), POSIT32)

    def test_known_values(self):
        assert convertFloatToP32(1.0).v == 0x40000000
        assert convertP32ToFloat(posit32_t(0x40000000)) == 1.0
        assert convertP32ToFloat(convertFloatToP32(186250.0)) == 186250.0

    def test_double_aliases(self):
        assert convertDoubleToP32(2.5).v == convertFloatToP32(2.5).v
        assert convertP32ToDouble(posit32_t(0x48000000)) == 2.0

    def test_nar(self):
        nar = convertFloatToP32(float("nan"))
        assert nar.v == POSIT32.nar_pattern
        assert np.isnan(convertP32ToFloat(nar))


class TestNumericUIntConversions:
    def test_rounds_value_not_bits(self):
        posit = convertFloatToP32(186.75)
        assert p32_to_ui32(posit) == 187      # numeric rounding
        assert castUI32(posit) != 187         # nothing like the raw bits

    def test_ties_to_even(self):
        assert p32_to_ui32(convertFloatToP32(2.5)) == 2
        assert p32_to_ui32(convertFloatToP32(3.5)) == 4

    def test_negative_and_nar_clamp_to_zero(self):
        assert p32_to_ui32(convertFloatToP32(-5.0)) == 0
        assert p32_to_ui32(convertFloatToP32(float("nan"))) == 0

    def test_saturates(self):
        assert p32_to_ui32(convertFloatToP32(1e30)) == 2**32 - 1

    def test_ui32_to_p32(self):
        assert convertP32ToFloat(ui32_to_p32(187)) == 187.0
        with pytest.raises(ValueError):
            ui32_to_p32(-1)
        with pytest.raises(ValueError):
            ui32_to_p32(2**32)

    def test_numeric_roundtrip_loses_fraction(self):
        # The paper's Section 4.1.2 observation in miniature.
        posit = convertFloatToP32(12345.6789)
        through_numeric = convertP32ToFloat(ui32_to_p32(p32_to_ui32(posit)))
        original = convertP32ToFloat(posit)
        assert through_numeric != original
        assert abs(original - through_numeric) / original < 1e-4
        # The raw member is lossless.
        assert convertP32ToFloat(castP32(castUI32(posit))) == original
