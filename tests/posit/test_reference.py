"""Tests for the exact scalar posit reference implementation."""

from fractions import Fraction

import math
import pytest

from repro.posit._reference import (
    decode_exact,
    decode_exact_twos_complement,
    decode_float,
    encode_exact,
    round_half_even,
)
from repro.posit.config import POSIT8, POSIT16, POSIT32, PositConfig


class TestRoundHalfEven:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (Fraction(5, 2), 2),      # 2.5 -> 2 (even)
            (Fraction(7, 2), 4),      # 3.5 -> 4 (even)
            (Fraction(-5, 2), -2),    # -2.5 -> -2 (even)
            (Fraction(9, 4), 2),
            (Fraction(11, 4), 3),
            (Fraction(3), 3),
            (Fraction(0), 0),
        ],
    )
    def test_cases(self, value, expected):
        assert round_half_even(value) == expected


class TestDecodeKnownValues:
    @pytest.mark.parametrize(
        "pattern, expected",
        [
            (0x00000000, Fraction(0)),
            (0x40000000, Fraction(1)),
            (0xC0000000, Fraction(-1)),
            (0x7FFFFFFF, Fraction(2) ** 120),   # maxpos
            (0x00000001, Fraction(1, 2**120)),  # minpos
            (0x48000000, Fraction(2)),
            (0x38000000, Fraction(1, 2)),
            (0x44000000, Fraction(3, 2)),
            (0xBC000000, Fraction(-3, 2)),
        ],
    )
    def test_posit32(self, pattern, expected):
        assert decode_exact(pattern, POSIT32) == expected

    def test_nar_is_none(self):
        assert decode_exact(0x80000000, POSIT32) is None
        assert math.isnan(decode_float(0x80000000, POSIT32))

    def test_decode_float_matches_exact(self):
        for pattern in (0x40000000, 0x6DD20000, 0x00000001):
            assert decode_float(pattern, POSIT32) == float(decode_exact(pattern, POSIT32))

    def test_paper_example_186250(self):
        # Fig. 6: 186250 is exactly representable in posit32.
        pattern = encode_exact(186250.0, POSIT32)
        assert decode_exact(pattern, POSIT32) == 186250

    def test_direct_equals_twos_complement_exhaustive_p8(self):
        for pattern in range(256):
            direct = decode_exact(pattern, POSIT8)
            classic = decode_exact_twos_complement(pattern, POSIT8)
            assert direct == classic, f"pattern {pattern:#04x}"

    def test_direct_equals_twos_complement_sampled_p16(self):
        for pattern in range(0, 1 << 16, 97):
            assert decode_exact(pattern, POSIT16) == decode_exact_twos_complement(
                pattern, POSIT16
            )


class TestEncodeKnownValues:
    @pytest.mark.parametrize(
        "value, pattern",
        [
            (0.0, 0x00000000),
            (1.0, 0x40000000),
            (-1.0, 0xC0000000),
            (2.0, 0x48000000),
            (0.5, 0x38000000),
            (1.5, 0x44000000),
            (-1.5, 0xBC000000),
            (186.25, 0x6DD20000),
        ],
    )
    def test_posit32(self, value, pattern):
        assert encode_exact(value, POSIT32) == pattern

    def test_nan_and_inf_to_nar(self):
        assert encode_exact(float("nan"), POSIT32) == POSIT32.nar_pattern
        assert encode_exact(float("inf"), POSIT32) == POSIT32.nar_pattern
        assert encode_exact(float("-inf"), POSIT32) == POSIT32.nar_pattern

    def test_saturation_to_maxpos(self):
        assert encode_exact(2.0**300, POSIT32) == POSIT32.maxpos_pattern
        assert encode_exact(-(2.0**300), POSIT32) == (
            (~POSIT32.maxpos_pattern + 1) & POSIT32.mask
        )
        assert encode_exact(POSIT32.maxpos, POSIT32) == POSIT32.maxpos_pattern

    def test_no_underflow_to_zero(self):
        assert encode_exact(2.0**-300, POSIT32) == POSIT32.minpos_pattern
        assert encode_exact(Fraction(1, 10**40), POSIT32) == POSIT32.minpos_pattern
        assert encode_exact(-(2.0**-300), POSIT32) == (
            (~1 + 1) & POSIT32.mask
        )

    def test_roundtrip_exhaustive_p8(self):
        for pattern in range(256):
            if pattern == POSIT8.nar_pattern:
                continue
            value = decode_exact(pattern, POSIT8)
            assert encode_exact(value, POSIT8) == pattern

    def test_roundtrip_sampled_p16(self):
        for pattern in range(0, 1 << 16, 53):
            if pattern == POSIT16.nar_pattern:
                continue
            value = decode_exact(pattern, POSIT16)
            assert encode_exact(value, POSIT16) == pattern

    def test_ties_round_to_even_pattern(self):
        # Midpoint between two adjacent p8 posits rounds to the even one.
        config = POSIT8
        for low_pattern in (0x40, 0x41, 0x62, 0x11):
            low = decode_exact(low_pattern, config)
            high = decode_exact(low_pattern + 1, config)
            midpoint = (low + high) / 2
            rounded = encode_exact(midpoint, config)
            assert rounded in (low_pattern, low_pattern + 1)
            assert rounded % 2 == 0, (
                f"midpoint of {low_pattern:#x}/{low_pattern + 1:#x} must "
                f"round to the even pattern, got {rounded:#x}"
            )

    def test_fraction_input(self):
        assert encode_exact(Fraction(3, 2), POSIT32) == 0x44000000

    def test_negative_zero_is_zero(self):
        assert encode_exact(-0.0, POSIT32) == 0


class TestGeneralizedEs:
    def test_es0_roundtrip_exhaustive(self):
        config = PositConfig(nbits=8, es=0)
        for pattern in range(256):
            if pattern == config.nar_pattern:
                continue
            value = decode_exact(pattern, config)
            assert encode_exact(value, config) == pattern

    def test_es3_roundtrip_exhaustive(self):
        config = PositConfig(nbits=8, es=3)
        for pattern in range(256):
            if pattern == config.nar_pattern:
                continue
            value = decode_exact(pattern, config)
            assert encode_exact(value, config) == pattern

    def test_es1_direct_equals_classic(self):
        config = PositConfig(nbits=8, es=1)
        for pattern in range(256):
            assert decode_exact(pattern, config) == decode_exact_twos_complement(
                pattern, config
            )
