"""Tests for protection-scheme evaluation over campaign records."""

import numpy as np
import pytest

from repro.inject.campaign import CampaignConfig, run_campaign
from repro.inject.results import TrialRecords
from repro.protect.evaluate import (
    bits_needed_for_reduction,
    evaluate_scheme,
    msb_tmr_frontier,
    ranked_bit_positions,
    tmr_frontier,
)
from repro.protect.schemes import (
    FullTMR,
    NoProtection,
    SelectiveParity,
    SelectiveTMR,
)


@pytest.fixture(scope="module")
def records():
    rng = np.random.default_rng(0)
    data = np.concatenate([
        rng.normal(100, 50, 4000),
        rng.lognormal(-3, 2, 2000),
    ]).astype(np.float32)
    return run_campaign(data, "posit32", CampaignConfig(trials_per_bit=12, seed=0)).records


class TestEvaluateScheme:
    def test_no_protection_keeps_baseline(self, records):
        report = evaluate_scheme(records, NoProtection(), 32)
        assert report.residual_serious_fraction == report.baseline_serious_fraction
        assert report.covered_fraction == 0.0
        assert report.serious_reduction == pytest.approx(0.0)

    def test_full_tmr_zero_residual(self, records):
        report = evaluate_scheme(records, FullTMR(), 32)
        assert report.residual_serious_fraction == 0.0
        assert report.residual_catastrophic_fraction == 0.0
        assert report.serious_reduction == 1.0

    def test_partial_coverage_between(self, records):
        report = evaluate_scheme(records, SelectiveTMR((31, 30, 29)), 32)
        baseline = evaluate_scheme(records, NoProtection(), 32)
        assert 0 <= report.residual_serious_fraction <= baseline.baseline_serious_fraction
        assert report.covered_fraction == pytest.approx(3 / 32, abs=0.02)

    def test_parity_and_tmr_same_residual(self, records):
        # Under detect-and-recover both remove covered trials.
        positions = (31, 30, 29, 28)
        parity = evaluate_scheme(records, SelectiveParity(positions), 32)
        tmr = evaluate_scheme(records, SelectiveTMR(positions), 32)
        assert parity.residual_serious_fraction == tmr.residual_serious_fraction
        assert parity.overhead_bits < tmr.overhead_bits

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            evaluate_scheme(TrialRecords.empty(), NoProtection(), 32)


class TestRanking:
    def test_ranked_positions_complete(self, records):
        ranked = ranked_bit_positions(records, 32)
        assert sorted(ranked) == list(range(32))

    def test_first_ranked_bit_causes_most_serious(self, records):
        ranked = ranked_bit_positions(records, 32)
        rel = records.rel_err
        serious = ~np.isfinite(rel) | (rel > 1.0)
        counts = [int(np.sum(serious & (records.bit == b))) for b in range(32)]
        assert counts[ranked[0]] == max(counts)


class TestFrontiers:
    def test_monotone(self, records):
        frontier = tmr_frontier(records, 32)
        residuals = [r.residual_serious_fraction for r in frontier]
        assert all(a >= b - 1e-12 for a, b in zip(residuals, residuals[1:]))
        assert residuals[-1] == 0.0

    def test_frontier_length(self, records):
        frontier = tmr_frontier(records, 32, max_protected=5)
        assert len(frontier) == 6

    def test_bits_needed(self, records):
        needed = bits_needed_for_reduction(records, 32, reduction=0.90)
        assert 0 < needed <= 32
        frontier = tmr_frontier(records, 32)
        assert frontier[needed].serious_reduction >= 0.90
        if needed > 1:
            assert frontier[needed - 1].serious_reduction < 0.90

    def test_ranked_at_least_as_good_as_msb(self, records):
        ranked = tmr_frontier(records, 32)
        msb = msb_tmr_frontier(records, 32)
        for k in range(33):
            assert (
                ranked[k].residual_serious_fraction
                <= msb[k].residual_serious_fraction + 1e-12
            ), k
