"""Tests for protection scheme models."""

import numpy as np
import pytest

from repro.protect.schemes import (
    FullDuplication,
    FullTMR,
    NoProtection,
    SelectiveParity,
    SelectiveTMR,
    top_bits,
)


class TestCoverage:
    def test_no_protection(self):
        scheme = NoProtection()
        assert not scheme.covers(np.arange(32)).any()
        assert scheme.overhead_bits(32) == 0
        assert not scheme.corrects()

    def test_selective_parity(self):
        scheme = SelectiveParity((31, 30, 29))
        covered = scheme.covers(np.array([31, 29, 5]))
        assert covered.tolist() == [True, True, False]
        assert scheme.overhead_bits(32) == 1
        assert not scheme.corrects()

    def test_selective_tmr(self):
        scheme = SelectiveTMR((31, 30))
        assert scheme.corrects()
        assert scheme.overhead_bits(32) == 4
        assert scheme.overhead_fraction(32) == 0.125

    def test_full_duplication(self):
        scheme = FullDuplication()
        assert scheme.covers(np.arange(32)).all()
        assert scheme.overhead_bits(32) == 32
        assert not scheme.corrects()

    def test_full_tmr(self):
        scheme = FullTMR()
        assert scheme.covers(np.arange(32)).all()
        assert scheme.overhead_bits(32) == 64
        assert scheme.corrects()

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ValueError):
            SelectiveParity((1, 1))
        with pytest.raises(ValueError):
            SelectiveTMR((2, 2))

    def test_describe(self):
        assert "parity" in SelectiveParity((1,)).describe()
        assert "tmr" in SelectiveTMR((1, 2)).describe()


class TestTopBits:
    def test_values(self):
        assert top_bits(32, 3) == (29, 30, 31)
        assert top_bits(32, 0) == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            top_bits(32, 33)
        with pytest.raises(ValueError):
            top_bits(32, -1)
