"""Tests for the exact vectorized bit primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bitops import (
    bit_mask,
    clz,
    clz32,
    clz64,
    ctz,
    extract_bits,
    leading_run_length,
    popcount,
    set_bits_string,
    sign_bit,
    to_signed,
    to_unsigned,
    twos_complement,
    uint_dtype_for,
)


def _py_clz(value: int, width: int) -> int:
    value &= (1 << width) - 1
    return width - value.bit_length()


class TestClz:
    def test_clz32_exhaustive_16bit(self):
        values = np.arange(1 << 16, dtype=np.uint32)
        got = clz32(values)
        expected = np.array([_py_clz(int(v), 32) for v in values])
        assert np.array_equal(got, expected)

    def test_clz32_high_bits(self):
        values = np.array([1 << 31, 1 << 16, (1 << 32) - 1, 0x80000001], dtype=np.uint32)
        assert clz32(values).tolist() == [0, 15, 0, 0]

    def test_clz32_zero(self):
        assert clz32(np.uint32(0)) == 32

    def test_clz64_random(self, rng):
        values = rng.integers(0, 1 << 63, 10_000, dtype=np.uint64)
        got = clz64(values)
        expected = np.array([_py_clz(int(v), 64) for v in values])
        assert np.array_equal(got, expected)

    def test_clz64_boundaries(self):
        values = np.array([0, 1, 1 << 63, (1 << 64) - 1, 1 << 52], dtype=np.uint64)
        assert clz64(values).tolist() == [64, 63, 0, 0, 11]

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=64))
    def test_clz_width_matches_python(self, value, width):
        assert int(clz(np.uint64(value), width)) == _py_clz(value, width)

    def test_clz_rejects_bad_width(self):
        with pytest.raises(ValueError):
            clz(np.uint64(1), 0)
        with pytest.raises(ValueError):
            clz(np.uint64(1), 65)

    def test_clz_exact_near_large_powers_of_two(self):
        # The float-log shortcut fails here; the LUT must not.
        for exponent in (52, 53, 54, 62, 63):
            for delta in (-1, 0, 1):
                value = (1 << exponent) + delta
                if value < 0 or value >= 1 << 64:
                    continue
                assert int(clz64(np.uint64(value))) == _py_clz(value, 64)


class TestCtz:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=64))
    def test_matches_python(self, value, width):
        masked = value & ((1 << width) - 1)
        expected = width if masked == 0 else (masked & -masked).bit_length() - 1
        assert int(ctz(np.uint64(value), width)) == expected

    def test_vector(self):
        values = np.array([0b1000, 0b1, 0b0, 0b10100], dtype=np.uint64)
        assert ctz(values, 8).tolist() == [3, 0, 8, 2]


class TestPopcount:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_matches_python(self, value):
        assert int(popcount(np.uint64(value))) == bin(value).count("1")

    def test_width_masks(self):
        assert int(popcount(np.uint64(0xFF00FF), 8)) == 8

    def test_vector(self, rng):
        values = rng.integers(0, 1 << 62, 1000, dtype=np.uint64)
        expected = np.array([bin(int(v)).count("1") for v in values])
        assert np.array_equal(popcount(values), expected)


class TestLeadingRunLength:
    def test_all_same_bits(self):
        assert int(leading_run_length(np.uint64(0), 31)) == 31
        assert int(leading_run_length(np.uint64((1 << 31) - 1), 31)) == 31

    def test_known_runs(self):
        # 7-bit bodies.
        cases = {
            0b1110000: 3,
            0b1000000: 1,
            0b0111111: 1,
            0b0000001: 6,
            0b1011111: 1,
            0b1101111: 2,
        }
        for body, run in cases.items():
            assert int(leading_run_length(np.uint64(body), 7)) == run, bin(body)

    @given(st.integers(min_value=0, max_value=(1 << 31) - 1))
    def test_matches_string_scan(self, body):
        text = format(body, "031b")
        first = text[0]
        run = len(text) - len(text.lstrip(first))
        assert int(leading_run_length(np.uint64(body), 31)) == run


class TestTwosComplement:
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_matches_python(self, value):
        expected = (-value) & ((1 << 32) - 1)
        assert int(twos_complement(np.uint64(value), 32)) == expected

    def test_involution(self, rng):
        values = rng.integers(0, 1 << 32, 1000, dtype=np.uint64)
        assert np.array_equal(twos_complement(twos_complement(values, 32), 32), values)

    def test_preserves_uint_dtype(self):
        result = twos_complement(np.array([5], dtype=np.uint32), 32)
        assert result.dtype == np.uint32


class TestSignedConversion:
    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_roundtrip(self, value):
        width = 32
        unsigned = to_unsigned(np.int64(value), width)
        assert int(to_signed(unsigned, width)) == value

    def test_known(self):
        assert int(to_signed(np.uint64(0xFFFFFFFF), 32)) == -1
        assert int(to_signed(np.uint64(0x80000000), 32)) == -(1 << 31)
        assert int(to_signed(np.uint64(0x7FFFFFFF), 32)) == (1 << 31) - 1


class TestMasksAndExtract:
    def test_bit_mask(self):
        assert int(bit_mask(0)) == 0
        assert int(bit_mask(8)) == 255
        assert int(bit_mask(64)) == (1 << 64) - 1

    def test_bit_mask_rejects_bad_width(self):
        with pytest.raises(ValueError):
            bit_mask(65)
        with pytest.raises(ValueError):
            bit_mask(-1)

    def test_extract_bits(self):
        value = np.uint64(0b1101_0110)
        assert int(extract_bits(value, 1, 3)) == 0b011
        assert int(extract_bits(value, 4, 4)) == 0b1101
        assert int(extract_bits(value, 0, 0)) == 0

    def test_extract_bits_rejects_bad_range(self):
        with pytest.raises(ValueError):
            extract_bits(np.uint64(1), 60, 10)

    def test_sign_bit(self):
        assert int(sign_bit(np.uint64(0x80000000), 32)) == 1
        assert int(sign_bit(np.uint64(0x7FFFFFFF), 32)) == 0

    def test_set_bits_string(self):
        assert set_bits_string(0b101, 5) == "00101"
        with pytest.raises(ValueError):
            set_bits_string(1, 0)

    def test_uint_dtype_for(self):
        assert uint_dtype_for(8) == np.uint8
        assert uint_dtype_for(9) == np.uint16
        assert uint_dtype_for(33) == np.uint64
        with pytest.raises(ValueError):
            uint_dtype_for(65)
        with pytest.raises(ValueError):
            uint_dtype_for(0)

    def test_clz_rejects_float_input(self):
        with pytest.raises(TypeError):
            clz64(np.array([1.5]))
