"""SIGTERM mid-run: a batch scheduler's kill must leave a resumable run.

The runner converts SIGTERM into the same checkpoint-flush-announce
path as Ctrl-C, so the child dies with a traceback (not a core), the
manifest says ``interrupted``, the partial telemetry is on disk, and a
resume finishes bit-identically.
"""

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.chaos import FaultPlan, FaultSpec
from repro.inject.campaign import CampaignConfig, run_campaign
from repro.runner import read_event_log, resume_campaign
from repro.runner.manifest import RunManifest
from tests.runner.test_runner import assert_records_identical


def _run_slow_campaign(run_dir):
    """Child target: each shard dawdles so SIGTERM lands mid-run."""
    rng = np.random.default_rng(404)
    field = np.abs(rng.normal(loc=10.0, scale=3.0, size=256)).astype(np.float32)
    config = CampaignConfig(trials_per_bit=3, seed=11)
    plan = FaultPlan(
        [FaultSpec("worker-delay", delay=0.25, max_attempt=10)], seed=5
    )
    run_campaign(
        field, "posit8", config, run_dir=run_dir, chaos=plan, telemetry=True
    )


def test_sigterm_checkpoints_and_resumes(chaos_field, fault_free, tmp_path):
    run_dir = tmp_path / "sigterm"
    context = multiprocessing.get_context("fork")
    child = context.Process(target=_run_slow_campaign, args=(run_dir,))
    child.start()

    shards_dir = run_dir / "shards"
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline and child.is_alive():
        if shards_dir.is_dir() and len(list(shards_dir.glob("bit-*.csv"))) >= 2:
            break
        time.sleep(0.02)
    if child.is_alive():
        os.kill(child.pid, signal.SIGTERM)
    child.join(timeout=60)
    assert not child.is_alive(), "campaign child survived SIGTERM"
    if child.exitcode == 0:
        pytest.skip("campaign finished before SIGTERM landed")

    # Died via the SignalInterrupt traceback, not the default disposition.
    assert child.exitcode == 1

    manifest = RunManifest.load(run_dir)
    assert manifest.status == "interrupted"
    assert 0 < len(manifest.completed_bits()) < len(manifest.shards)

    events = read_event_log(run_dir / "events.jsonl")
    assert events[-1]["kind"] == "run_interrupted"
    assert "SignalInterrupt" in events[-1]["error"]

    # Telemetry flushed on the way out: the partial profile is on disk.
    assert (run_dir / "telemetry.json").is_file()

    resumed = resume_campaign(run_dir, chaos_field)
    assert_records_identical(resumed.records, fault_free.records)
    assert RunManifest.load(run_dir).status == "completed"
