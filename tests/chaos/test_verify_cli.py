"""``campaign verify``: the run-directory audit, end to end via the CLI."""

import shutil

import pytest

from repro.cli import main
from repro.inject.campaign import run_campaign
from repro.runner.manifest import RunManifest


@pytest.fixture(scope="module")
def pristine_run(tmp_path_factory, chaos_field, chaos_config):
    """A completed, profiled run directory; tests copy, never mutate it."""
    run_dir = tmp_path_factory.mktemp("verify") / "pristine"
    run_campaign(
        chaos_field, "posit8", chaos_config, run_dir=run_dir, telemetry=True
    )
    return run_dir


@pytest.fixture
def run_copy(pristine_run, tmp_path):
    dest = tmp_path / "run"
    shutil.copytree(pristine_run, dest)
    return dest


def test_clean_run_exits_zero(pristine_run, capsys):
    assert main(["campaign", "verify", str(pristine_run)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert "shard file(s)" in out


def test_flipped_bit_exits_nonzero_naming_the_file(run_copy, capsys):
    shard = RunManifest.shard_path(run_copy, 3)
    data = bytearray(shard.read_bytes())
    data[len(data) // 2] ^= 0x04  # one flipped bit
    shard.write_bytes(bytes(data))
    assert main(["campaign", "verify", str(run_copy)]) == 1
    out = capsys.readouterr().out
    assert "shard-checksum" in out
    assert shard.name in out
    assert "checksum mismatch" in out


def test_missing_shard_exits_nonzero(run_copy, capsys):
    RunManifest.shard_path(run_copy, 0).unlink()
    assert main(["campaign", "verify", str(run_copy)]) == 1
    assert "shard-missing" in capsys.readouterr().out


def test_broken_telemetry_exits_nonzero(run_copy, capsys):
    (run_copy / "telemetry.json").write_text("{broken")
    assert main(["campaign", "verify", str(run_copy)]) == 1
    assert "telemetry-parse" in capsys.readouterr().out


def test_truncated_event_log_warns(run_copy, capsys):
    events = run_copy / "events.jsonl"
    events.write_bytes(events.read_bytes()[:-20])  # tear the last line
    assert main(["campaign", "verify", str(run_copy)]) == 2
    assert "events-truncated" in capsys.readouterr().out


def test_quarantine_leftovers_warn(run_copy, capsys):
    quarantine = run_copy / "shards" / "quarantine"
    quarantine.mkdir()
    (quarantine / "bit-002.csv").write_text("damaged,bytes\n")
    assert main(["campaign", "verify", str(run_copy)]) == 2
    assert "quarantine" in capsys.readouterr().out


def test_missing_run_dir_exits_nonzero(tmp_path, capsys):
    assert main(["campaign", "verify", str(tmp_path / "nope")]) == 1
    assert "not a directory" in capsys.readouterr().out
