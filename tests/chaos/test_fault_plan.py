"""FaultPlan semantics: validation, site routing, deterministic draws."""

import pickle

import pytest

from repro.chaos import (
    ARTIFACT_FAULTS,
    COMPUTE_FAULTS,
    FAULT_KINDS,
    SITE_ARTIFACT,
    SITE_COMPUTE,
    ChaosError,
    FaultPlan,
    FaultSpec,
    corrupt_file,
    fire_compute_faults,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("disk-melts")

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rate_out_of_range_rejected(self, rate):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("worker-raise", rate=rate)

    def test_every_kind_has_a_site(self):
        for kind in FAULT_KINDS:
            spec = FaultSpec(kind)
            assert spec.site in (SITE_COMPUTE, SITE_ARTIFACT)
        assert FaultSpec("worker-crash").site == SITE_COMPUTE
        assert FaultSpec("kill-run").site == SITE_ARTIFACT

    def test_kind_families_are_disjoint(self):
        assert not set(COMPUTE_FAULTS) & set(ARTIFACT_FAULTS)


class TestActivation:
    def test_site_filtering(self):
        plan = FaultPlan([FaultSpec("worker-raise"), FaultSpec("shard-byte")])
        compute = plan.active(SITE_COMPUTE, bit=0)
        artifact = plan.active(SITE_ARTIFACT, bit=0)
        assert [s.kind for s in compute] == ["worker-raise"]
        assert [s.kind for s in artifact] == ["shard-byte"]

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="site"):
            FaultPlan([]).active("network", bit=0)

    def test_bits_filter(self):
        plan = FaultPlan([FaultSpec("worker-raise", bits=(2, 5))])
        assert plan.active(SITE_COMPUTE, bit=2)
        assert plan.active(SITE_COMPUTE, bit=5)
        assert not plan.active(SITE_COMPUTE, bit=3)

    def test_max_attempt_makes_faults_transient(self):
        plan = FaultPlan([FaultSpec("worker-raise", max_attempt=0)])
        assert plan.active(SITE_COMPUTE, bit=1, attempt=0)
        assert not plan.active(SITE_COMPUTE, bit=1, attempt=1)

    def test_after_shards_gate(self):
        plan = FaultPlan([FaultSpec("kill-run", after_shards=3)])
        assert not plan.active(SITE_ARTIFACT, bit=0, shards_done=2)
        assert plan.active(SITE_ARTIFACT, bit=0, shards_done=3)

    def test_rate_draws_are_deterministic_and_seeded(self):
        plan = FaultPlan([FaultSpec("worker-raise", rate=0.5)], seed=7)
        fired = [bool(plan.active(SITE_COMPUTE, bit=bit)) for bit in range(200)]
        again = [bool(plan.active(SITE_COMPUTE, bit=bit)) for bit in range(200)]
        assert fired == again  # pure function of (seed, kind, site, bit, attempt)
        assert 40 < sum(fired) < 160  # roughly half fire
        other = FaultPlan([FaultSpec("worker-raise", rate=0.5)], seed=8)
        assert fired != [bool(other.active(SITE_COMPUTE, bit=b)) for b in range(200)]

    def test_plan_pickles_and_agrees(self):
        plan = FaultPlan([FaultSpec("worker-raise", rate=0.3)], seed=3)
        clone = pickle.loads(pickle.dumps(plan))
        for bit in range(50):
            assert bool(plan.active(SITE_COMPUTE, bit=bit)) == bool(
                clone.active(SITE_COMPUTE, bit=bit)
            )


class TestExecutors:
    def test_worker_raise_raises_chaos_error(self):
        plan = FaultPlan([FaultSpec("worker-raise", bits=(4,))])
        with pytest.raises(ChaosError, match="bit=4"):
            fire_compute_faults(plan, bit=4)
        fire_compute_faults(plan, bit=5)  # other bits untouched

    def test_worker_raise_transient_by_default(self):
        plan = FaultPlan([FaultSpec("worker-raise", bits=(4,))])
        fire_compute_faults(plan, bit=4, attempt=1)  # retry succeeds

    def test_corrupt_file_byte_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        payload = b"trial,bit,value\n" * 30
        a.write_bytes(payload)
        b.write_bytes(payload)
        info_a = corrupt_file(a, mode="byte", seed=5, token="t")
        info_b = corrupt_file(b, mode="byte", seed=5, token="t")
        assert info_a["offset"] == info_b["offset"]
        assert a.read_bytes() == b.read_bytes() != payload

    def test_corrupt_file_bit_flips_exactly_one_bit(self, tmp_path):
        path = tmp_path / "a.csv"
        payload = bytes(range(200))
        path.write_bytes(payload)
        info = corrupt_file(path, mode="bit", seed=1)
        damaged = path.read_bytes()
        assert len(damaged) == len(payload)
        diff = [i for i in range(len(payload)) if damaged[i] != payload[i]]
        assert diff == [info["offset"]]
        assert bin(damaged[diff[0]] ^ payload[diff[0]]).count("1") == 1

    def test_corrupt_file_truncate_keeps_prefix(self, tmp_path):
        path = tmp_path / "a.csv"
        payload = bytes(range(256))
        path.write_bytes(payload)
        info = corrupt_file(path, mode="truncate", seed=1)
        assert path.read_bytes() == payload[: info["kept_bytes"]]

    def test_corrupt_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        with pytest.raises(ChaosError, match="empty"):
            corrupt_file(path, mode="byte")
