"""Property: ANY single flipped byte of a completed shard file is caught.

Hypothesis drives the corruption site and mask; both audit paths —
``verify_run`` and ``resume_campaign`` — must notice, and the resumed
result must still be bit-identical to the fault-free run.
"""

import shutil

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.runner import quarantine_dir, resume_campaign, verify_run
from repro.runner.manifest import RunManifest
from tests.runner.test_runner import assert_records_identical


@pytest.fixture(scope="module")
def pristine_run(tmp_path_factory, chaos_field, chaos_config):
    from repro.inject.campaign import run_campaign

    run_dir = tmp_path_factory.mktemp("property") / "pristine"
    run_campaign(chaos_field, "posit8", chaos_config, run_dir=run_dir)
    return run_dir


# Local overrides on top of the shared ci/dev profile: every example
# replays a whole campaign, so the count stays low and no deadline.
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    bit=st.integers(min_value=0, max_value=7),
    frac=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    mask=st.integers(min_value=1, max_value=255),
)
def test_any_flipped_byte_is_caught(
    pristine_run, chaos_field, fault_free, tmp_path_factory, bit, frac, mask
):
    run_dir = tmp_path_factory.mktemp("flip") / "run"
    shutil.copytree(pristine_run, run_dir)
    shard = RunManifest.shard_path(run_dir, bit)
    data = bytearray(shard.read_bytes())
    offset = min(int(frac * len(data)), len(data) - 1)
    data[offset] ^= mask
    shard.write_bytes(bytes(data))

    # verify_run notices...
    report = verify_run(run_dir)
    assert report.exit_code == 1
    assert any(f.check == "shard-checksum" for f in report.errors)

    # ...and resume refuses the bytes, quarantines them, and recomputes
    # to a bit-identical result.
    resumed = resume_campaign(run_dir, chaos_field)
    assert_records_identical(resumed.records, fault_free.records)
    assert any(quarantine_dir(run_dir).iterdir())
