"""The chaos invariant, per fault type.

Every test here asserts the same contract from ``docs/robustness.md``:
a campaign run under an injected infrastructure fault either completes
with records bit-identical to the fault-free run, or fails loudly with
an actionable error — never silently wrong.
"""

import pytest

from repro.chaos import FaultPlan, FaultSpec
from repro.inject.campaign import run_campaign
from repro.runner import (
    ManifestError,
    quarantine_dir,
    read_event_log,
    resume_campaign,
    verify_run,
)
from repro.runner.manifest import MANIFEST_NAME, RunManifest
from repro.telemetry.report import render_run_report
from tests.runner.test_runner import RecordingHooks, assert_records_identical


def event_kinds(run_dir):
    return [event["kind"] for event in read_event_log(run_dir / "events.jsonl")]


class TestComputeFaults:
    def test_worker_raise_serial_retries_to_identical(
        self, chaos_field, chaos_config, fault_free
    ):
        plan = FaultPlan([FaultSpec("worker-raise", bits=(3,))], seed=1)
        hooks = RecordingHooks()
        result = run_campaign(
            chaos_field, "posit8", chaos_config, chaos=plan, hooks=hooks
        )
        assert_records_identical(result.records, fault_free.records)
        kinds = hooks.kinds()
        assert "shard_error" in kinds
        assert "shard_retry" in kinds

    def test_worker_raise_pool_retries_to_identical(
        self, chaos_field, chaos_config, fault_free
    ):
        plan = FaultPlan([FaultSpec("worker-raise", bits=(3,))], seed=1)
        hooks = RecordingHooks()
        result = run_campaign(
            chaos_field, "posit8", chaos_config, jobs=2, chaos=plan, hooks=hooks
        )
        assert_records_identical(result.records, fault_free.records)
        errors = [e for e in hooks.events if e.kind == "shard_error"]
        assert any(e.bit == 3 and e.attempt == 0 for e in errors)
        assert "shard_retry" in hooks.kinds()

    def test_worker_crash_is_detected_and_requeued(
        self, chaos_field, chaos_config, fault_free, tmp_path
    ):
        run_dir = tmp_path / "crash"
        plan = FaultPlan([FaultSpec("worker-crash", bits=(5,))], seed=2)
        result = run_campaign(
            chaos_field,
            "posit8",
            chaos_config,
            jobs=2,
            run_dir=run_dir,
            chaos=plan,
            telemetry=True,
        )
        assert_records_identical(result.records, fault_free.records)
        assert result.extras["shards_hung"] >= 1
        kinds = event_kinds(run_dir)
        assert "shard_hung" in kinds
        snapshot = result.extras["telemetry"]
        assert snapshot.counters.get("runner.shards_hung", 0) >= 1

    def test_worker_hang_is_killed_via_heartbeat(
        self, chaos_field, chaos_config, fault_free, tmp_path
    ):
        run_dir = tmp_path / "hang"
        plan = FaultPlan([FaultSpec("worker-hang", bits=(4,), hang=30.0)], seed=3)
        result = run_campaign(
            chaos_field,
            "posit8",
            chaos_config,
            jobs=2,
            run_dir=run_dir,
            chaos=plan,
            heartbeat_timeout=0.75,
            telemetry=True,
        )
        assert_records_identical(result.records, fault_free.records)
        hung = [
            event
            for event in read_event_log(run_dir / "events.jsonl")
            if event["kind"] == "shard_hung"
        ]
        assert any(event["bit"] == 4 for event in hung)
        # A hung (not crashed) worker is alive until the runner kills it.
        snapshot = result.extras["telemetry"]
        assert snapshot.counters.get("runner.workers_killed", 0) >= 1
        # The shard was re-executed after the kill: it still finished.
        finishes = [
            event["bit"]
            for event in read_event_log(run_dir / "events.jsonl")
            if event["kind"] == "shard_finish"
        ]
        assert 4 in finishes
        report = render_run_report(run_dir)
        assert "hung-worker kill" in report


class TestArtifactFaults:
    @pytest.mark.parametrize("kind", ["torn-shard", "shard-byte", "shard-bit"])
    def test_shard_corruption_is_caught_and_recomputed(
        self, chaos_field, chaos_config, fault_free, tmp_path, kind
    ):
        run_dir = tmp_path / kind
        plan = FaultPlan([FaultSpec(kind, bits=(2,))], seed=4)
        result = run_campaign(
            chaos_field, "posit8", chaos_config, run_dir=run_dir, chaos=plan
        )
        # The run itself completes correctly: corruption hit the persisted
        # file after the write, not the in-memory records.
        assert_records_identical(result.records, fault_free.records)
        assert "chaos_fault" in event_kinds(run_dir)

        # Loudly wrong on audit: the checksum no longer matches.
        report = verify_run(run_dir)
        assert report.exit_code == 1
        assert any(f.check in ("shard-checksum", "shard-content") for f in report.errors)

        # Resume refuses the corrupt bytes, quarantines them, recomputes.
        resumed = resume_campaign(run_dir, chaos_field)
        assert_records_identical(resumed.records, fault_free.records)
        assert any(quarantine_dir(run_dir).iterdir())
        assert "shard_quarantined" in event_kinds(run_dir)

    def test_corrupt_manifest_fails_loudly_on_resume(
        self, chaos_field, chaos_config, tmp_path
    ):
        run_dir = tmp_path / "manifest"
        run_campaign(chaos_field, "posit8", chaos_config, run_dir=run_dir)
        manifest_path = run_dir / MANIFEST_NAME
        manifest_path.write_text('{"status": "comp')  # torn mid-write
        with pytest.raises(ManifestError) as excinfo:
            resume_campaign(run_dir, chaos_field)
        message = str(excinfo.value)
        assert MANIFEST_NAME in message
        assert "recovery" in message

    def test_quarantine_preserves_the_corrupt_bytes(
        self, chaos_field, chaos_config, tmp_path
    ):
        run_dir = tmp_path / "evidence"
        run_campaign(chaos_field, "posit8", chaos_config, run_dir=run_dir)
        shard = RunManifest.shard_path(run_dir, 2)
        damaged = b"not,a,trial,log\n"
        shard.write_bytes(damaged)
        resume_campaign(run_dir, chaos_field)
        preserved = list(quarantine_dir(run_dir).iterdir())
        assert len(preserved) == 1
        assert preserved[0].read_bytes() == damaged
        # ...and the recomputed shard is clean again.
        assert verify_run(run_dir).exit_code in (0, 2)
