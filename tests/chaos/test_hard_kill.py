"""SIGKILL between shards: the power-loss half of the chaos plan.

A forked child runs a campaign whose fault plan SIGKILLs the process
after a shard persists (optionally corrupting the manifest first).
The invariant: the run dies hard, the event log still shows the
injected fault, and either a resume finishes bit-identically or the
corruption is reported loudly with recovery guidance.
"""

import multiprocessing
import signal

import numpy as np
import pytest

from repro.chaos import FaultPlan, FaultSpec
from repro.inject.campaign import CampaignConfig, run_campaign
from repro.runner import ManifestError, read_event_log, resume_campaign, verify_run
from repro.runner.manifest import RunManifest
from tests.runner.test_runner import assert_records_identical


def _chaos_inputs():
    rng = np.random.default_rng(404)
    field = np.abs(rng.normal(loc=10.0, scale=3.0, size=256)).astype(np.float32)
    return field, CampaignConfig(trials_per_bit=3, seed=11)


def _run_doomed_campaign(run_dir, fault_specs):
    """Child target: a serial campaign that the fault plan will SIGKILL."""
    field, config = _chaos_inputs()
    plan = FaultPlan([FaultSpec(**spec) for spec in fault_specs], seed=6)
    run_campaign(field, "posit8", config, run_dir=run_dir, chaos=plan)


def _fork_and_kill(run_dir, fault_specs):
    context = multiprocessing.get_context("fork")
    child = context.Process(target=_run_doomed_campaign, args=(run_dir, fault_specs))
    child.start()
    child.join(timeout=120)
    assert not child.is_alive(), "doomed campaign child never died"
    return child.exitcode


class TestKillRun:
    def test_kill_is_logged_and_resume_completes_identically(
        self, chaos_field, chaos_config, fault_free, tmp_path
    ):
        run_dir = tmp_path / "killed"
        exitcode = _fork_and_kill(run_dir, [{"kind": "kill-run", "bits": (3,)}])
        assert exitcode == -signal.SIGKILL

        # The injection was flushed to the event log before the process died.
        events = read_event_log(run_dir / "events.jsonl")
        chaos_events = [e for e in events if e["kind"] == "chaos_fault"]
        assert any(e["detail"]["kind"] == "kill-run" for e in chaos_events)
        # ...and no run_finish: the run really was cut short.
        assert "run_finish" not in [e["kind"] for e in events]

        manifest = RunManifest.load(run_dir)
        assert 0 < len(manifest.completed_bits()) < len(manifest.shards)

        resumed = resume_campaign(run_dir, chaos_field)
        assert_records_identical(resumed.records, fault_free.records)
        assert RunManifest.load(run_dir).status == "completed"

    def test_manifest_corrupted_then_killed_fails_loudly(
        self, chaos_field, tmp_path
    ):
        # manifest-truncate guarantees a parse failure (a byte flip might
        # leave valid JSON); pairing it with kill-run in the same shard
        # means no later checkpoint can rewrite a healthy manifest over it.
        run_dir = tmp_path / "torn-manifest"
        exitcode = _fork_and_kill(
            run_dir,
            [
                {"kind": "manifest-truncate", "bits": (3,)},
                {"kind": "kill-run", "bits": (3,)},
            ],
        )
        assert exitcode == -signal.SIGKILL

        with pytest.raises(ManifestError) as excinfo:
            resume_campaign(run_dir, chaos_field)
        message = str(excinfo.value)
        assert "manifest.json" in message
        assert "recovery" in message

        report = verify_run(run_dir)
        assert report.exit_code == 1
        assert any(f.check == "manifest-parse" for f in report.errors)
