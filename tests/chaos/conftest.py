"""Shared fixtures for the chaos suite: one tiny, fast posit8 campaign.

256 elements x 8 bits x 3 trials keeps every chaos scenario under a
second of compute, so the suite can afford full fault-free reference
runs, resumes, and forked hard-kill children per test.
"""

import numpy as np
import pytest

from repro.inject.campaign import CampaignConfig, run_campaign


@pytest.fixture(scope="session")
def chaos_field() -> np.ndarray:
    rng = np.random.default_rng(404)
    return np.abs(rng.normal(loc=10.0, scale=3.0, size=256)).astype(np.float32)


@pytest.fixture(scope="session")
def chaos_config() -> CampaignConfig:
    return CampaignConfig(trials_per_bit=3, seed=11)


@pytest.fixture(scope="session")
def fault_free(chaos_field, chaos_config):
    """The reference result every chaos run must be bit-identical to."""
    return run_campaign(chaos_field, "posit8", chaos_config)
