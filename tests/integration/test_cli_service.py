"""End-to-end tests for the campaign service CLI verbs.

Covers the submit -> worker -> watch -> get lifecycle against an
isolated ``REPRO_HOME``, and locks the machine-readable status schema:
``campaign status --json`` and ``campaign get --json`` must emit the
same payload under the same schema id.
"""

import json

import pytest

from repro.cli import main
from repro.service import STATUS_SCHEMA


@pytest.fixture
def service_home(tmp_path, monkeypatch):
    home = tmp_path / "home"
    monkeypatch.setenv("REPRO_HOME", str(home))
    return home


def _submit(capsys) -> dict:
    assert main([
        "campaign", "submit", "cesm/cloud", "posit16",
        "--size", "512", "--trials", "2", "--bits", "4", "--json",
    ]) == 0
    return json.loads(capsys.readouterr().out)


class TestConfigCommands:
    def test_init_and_show(self, service_home, capsys):
        assert main(["config", "init"]) == 0
        out = capsys.readouterr().out
        assert str(service_home) in out
        assert (service_home / "config.json").is_file()

        assert main(["config", "show"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["home"] == str(service_home)
        assert payload["runs_dir"] == str(service_home / "runs")


class TestSubmitLifecycle:
    def test_submit_worker_get_watch(self, service_home, capsys):
        entry = _submit(capsys)
        assert entry["run_id"] == "posit16-0001"

        assert main(["campaign", "list"]) == 0
        listing = capsys.readouterr().out
        assert "posit16-0001" in listing
        assert "submitted" in listing

        assert main(["campaign", "worker", entry["run_id"],
                     "--worker-id", "cli-w1"]) == 0
        out = capsys.readouterr().out
        assert "4 shard(s) computed" in out
        assert "finalized the run" in out

        assert main(["campaign", "get", entry["run_id"]]) == 0
        assert "completed" in capsys.readouterr().out

        assert main(["campaign", "watch", entry["run_id"],
                     "--until-done", "--timeout", "5"]) == 0
        assert "run completed" in capsys.readouterr().out

        assert main(["campaign", "verify", entry["run_dir"]]) == 0

    def test_unknown_run_ref_exits_1(self, service_home, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "get", "nope-0001"])
        assert exc.value.code == 1
        assert "unknown run id" in capsys.readouterr().err

    def test_cancel_stops_workers(self, service_home, capsys):
        entry = _submit(capsys)
        assert main(["campaign", "cancel", entry["run_id"],
                     "--reason", "test"]) == 0
        assert main(["campaign", "worker", entry["run_id"]]) == 3
        out = capsys.readouterr().out
        assert "cancelled" in out


class TestStatusSchemaLock:
    """`campaign status --json` and `campaign get --json` are one schema."""

    EXPECTED_KEYS = {
        "schema", "run_dir", "target", "fault_model", "app", "label",
        "status", "executor", "complete", "cancelled", "shards", "trials",
        "pending_bits", "missing_shard_files", "quarantined_files", "workers",
    }

    def test_get_and_status_emit_identical_payloads(self, service_home, capsys):
        entry = _submit(capsys)
        main(["campaign", "worker", entry["run_id"]])
        capsys.readouterr()

        assert main(["campaign", "get", entry["run_id"], "--json"]) == 0
        get_payload = json.loads(capsys.readouterr().out)

        assert main(["campaign", "status", entry["run_dir"], "--json"]) == 0
        status_payload = json.loads(capsys.readouterr().out)

        assert get_payload == status_payload
        assert get_payload["schema"] == STATUS_SCHEMA == "repro.run-status/1"
        assert set(get_payload) == self.EXPECTED_KEYS
        assert get_payload["shards"] == {"done": 4, "total": 4}
        assert get_payload["trials"] == {"done": 8, "total": 8}
        assert get_payload["complete"] is True

    def test_status_json_mid_run(self, service_home, capsys):
        entry = _submit(capsys)
        capsys.readouterr()
        assert main(["campaign", "status", entry["run_dir"], "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == STATUS_SCHEMA
        assert payload["complete"] is False
        assert payload["status"] == "submitted"
        assert payload["pending_bits"] == [0, 1, 2, 3]
