"""End-to-end pipeline tests spanning every subsystem.

Dataset generation -> storage conversion -> fault injection -> CSV log ->
re-load -> stratified analysis, with cross-module consistency assertions
at each joint.
"""

import numpy as np
import pytest

from repro.analysis.aggregate import aggregate_by_bit
from repro.analysis.predict import predict_flip
from repro.analysis.stratify import group_by_regime_size, magnitude_split
from repro.datasets.registry import get as get_preset
from repro.inject.campaign import CampaignConfig, run_campaign
from repro.inject.results import TrialRecords
from repro.formats import resolve
from repro.posit.config import POSIT32
from repro.posit.encode import encode


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    data = get_preset("hurricane/pf48").generate(seed=17, size=1 << 13)
    config = CampaignConfig(trials_per_bit=16, seed=17)
    result = run_campaign(data, "posit32", config, label="e2e")
    path = tmp_path_factory.mktemp("logs") / "trials.csv"
    result.records.write_csv(path)
    loaded = TrialRecords.read_csv(path)
    return data, result, loaded


class TestPipeline:
    def test_csv_preserves_everything(self, pipeline):
        _, result, loaded = pipeline
        for column in result.records.column_names():
            lhs = getattr(result.records, column)
            rhs = getattr(loaded, column)
            assert np.array_equal(lhs, rhs, equal_nan=lhs.dtype.kind == "f"), column

    def test_reloaded_records_analyze_identically(self, pipeline):
        _, result, loaded = pipeline
        direct = aggregate_by_bit(result.records, 32)
        reloaded = aggregate_by_bit(loaded, 32)
        assert np.array_equal(direct.mean_rel_err, reloaded.mean_rel_err, equal_nan=True)

    def test_recorded_faults_are_reproducible(self, pipeline):
        # Every (original, bit) in the log must reproduce its recorded
        # faulty value when re-injected independently.
        _, result, _ = pipeline
        records = result.records
        for bit in (0, 14, 29, 30, 31):
            subset = records.for_bit(bit)
            patterns = encode(subset.original, POSIT32)
            from repro.posit.decode import decode

            refaulted = np.asarray(
                decode(np.asarray(patterns, dtype=np.uint64) ^ np.uint64(1 << bit), POSIT32)
            )
            same = (refaulted == subset.faulty) | (
                np.isnan(refaulted) & np.isnan(subset.faulty)
            )
            assert np.all(same), bit

    def test_prediction_agrees_with_log(self, pipeline):
        _, result, _ = pipeline
        subset = result.records.for_bit(27)
        patterns = encode(subset.original, POSIT32)
        prediction = predict_flip(np.asarray(patterns, dtype=np.uint64), 27, POSIT32)
        same = (prediction.faulty == subset.faulty) | (
            np.isnan(prediction.faulty) & np.isnan(subset.faulty)
        )
        assert np.all(same)

    def test_stratification_partitions_consistently(self, pipeline):
        _, result, _ = pipeline
        greater, less = magnitude_split(result.records)
        groups = group_by_regime_size(result.records, 32, min_trials=1)
        grouped_total = sum(g.trial_count for g in groups)
        assert grouped_total == len(result.records)

    def test_regime_k_column_matches_reencoding(self, pipeline):
        _, result, _ = pipeline
        from repro.posit.fields import regime_k

        records = result.records
        patterns = encode(records.original, POSIT32)
        assert np.array_equal(
            regime_k(np.asarray(patterns, dtype=np.uint64), POSIT32), records.regime_k
        )

    def test_conversion_report_consistency(self, pipeline):
        data, result, _ = pipeline
        target = resolve("posit32")
        stored = target.round_trip(data)
        exact = float(np.mean(stored == data.astype(np.float64)))
        assert result.conversion.exact_fraction == pytest.approx(exact)


class TestCrossTargetComparison:
    def test_paper_headline_on_fresh_field(self):
        data = get_preset("nyx/dark-matter-density").generate(seed=23, size=1 << 13)
        config = CampaignConfig(trials_per_bit=24, seed=23)
        ieee = run_campaign(data, "ieee32", config)
        posit = run_campaign(data, "posit32", config)
        ieee_curve = aggregate_by_bit(ieee.records, 32).mean_rel_err
        posit_curve = aggregate_by_bit(posit.records, 32).mean_rel_err
        # The paper's summary claim, end to end.
        assert np.nanmax(posit_curve) < np.nanmax(ieee_curve)
