"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListCommands:
    def test_targets(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        assert "posit32" in out
        assert "ieee32" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "Figure 10" in out

    def test_datasets(self, capsys):
        assert main(["datasets", "--size", "2000"]) == 0
        out = capsys.readouterr().out
        assert "nyx/temperature" in out


    def test_targets_with_extra_specs(self, capsys):
        assert main(["targets", "--spec", "posit16es1", "--spec", "binary(6,9)"]) == 0
        out = capsys.readouterr().out
        assert "posit16es1" in out
        assert "binary(6,9)" in out


class TestInspect:
    def test_value(self, capsys):
        assert main(["inspect", "186.25"]) == 0
        out = capsys.readouterr().out
        assert "0x433a4000" in out
        assert "0x6dd20000" in out
        assert "186.25" in out

    def test_spec_targets(self, capsys):
        code = main([
            "inspect", "186.25",
            "--target", "posit16es1", "--target", "fixedposit(16,es=2,r=3)",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "posit16es1" in out
        assert "fixedposit(16,es=2,r=3)" in out
        assert "0x433a4000" not in out  # defaults replaced, not appended


class TestExperiment:
    def test_single_experiment(self, capsys):
        assert main(["experiment", "worked", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out
        assert "[FAIL]" not in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiment", "fig99", "--quick"])


class TestCampaign:
    def test_prints_aggregate(self, capsys):
        code = main([
            "campaign", "run", "cesm/cloud", "posit32",
            "--size", "4096", "--trials", "4", "--workers", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign: 128 trials" in out
        assert "conversion" in out

    def test_legacy_form_rejected(self, capsys):
        # The pre-subcommand `campaign FIELD TARGET` shim is removed:
        # argparse rejects the unknown subcommand with its usage error.
        with pytest.raises(SystemExit) as exc:
            main([
                "campaign", "cesm/cloud", "posit32",
                "--size", "2048", "--trials", "2", "--workers", "1",
            ])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "trials.csv"
        code = main([
            "campaign", "run", "cesm/cloud", "ieee32",
            "--size", "4096", "--trials", "3", "--workers", "1",
            "--out", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()
        from repro.inject.results import TrialRecords

        records = TrialRecords.read_csv(out_path)
        assert len(records) == 3 * 32


class TestCampaignRunCommand:
    def test_run_with_jobs(self, capsys):
        code = main([
            "campaign", "run", "cesm/cloud", "posit32",
            "--size", "2048", "--trials", "2", "--jobs", "2",
        ])
        assert code == 0
        assert "campaign: 64 trials" in capsys.readouterr().out

    def test_rejects_zero_jobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "run", "cesm/cloud", "posit32", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_rejects_non_integer_jobs(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "cesm/cloud", "posit32", "--jobs", "two"])
        assert "must be an integer" in capsys.readouterr().err

    def test_rejects_jobs_and_workers_together(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "campaign", "run", "cesm/cloud", "posit32",
                "--size", "1024", "--trials", "1", "--jobs", "1", "--workers", "1",
            ])

    def test_workers_alias_warns(self, capsys):
        with pytest.warns(DeprecationWarning, match="--jobs"):
            code = main([
                "campaign", "run", "cesm/cloud", "posit32",
                "--size", "1024", "--trials", "1", "--workers", "1",
            ])
        assert code == 0

    def test_suite_rejects_bad_workers(self, capsys):
        with pytest.raises(SystemExit):
            main(["suite", "--workers", "-2"])
        assert "jobs must be >= 1" in capsys.readouterr().err


class TestCampaignRunDir:
    def test_run_status_resume_cycle(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        base = [
            "cesm/cloud", "posit32",
            "--size", "1024", "--trials", "2", "--jobs", "1",
            "--run-dir", str(run_dir),
        ]
        assert main(["campaign", "run", *base]) == 0
        out = capsys.readouterr().out
        assert "campaign: 64 trials" in out
        assert str(run_dir) in out

        assert main(["campaign", "status", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "32/32 completed" in out

        assert main(["campaign", "resume", str(run_dir), "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "campaign: 64 trials" in out
        assert "32 shard(s) restored" in out

    def test_status_of_interrupted_run(self, tmp_path, capsys):
        from repro.datasets.registry import get as get_preset
        from repro.inject.campaign import CampaignConfig, run_campaign
        from repro.runner import RunnerHooks

        class Kill(RunnerHooks):
            def on_shard_finish(self, event):
                if event.kind == "shard_finish" and event.shards_done >= 3:
                    raise KeyboardInterrupt

        data = get_preset("cesm/cloud").generate(seed=2023, size=1024)
        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                data, "posit32", CampaignConfig(trials_per_bit=2, seed=2023),
                run_dir=run_dir, hooks=Kill(),
                dataset={"kind": "preset", "field": "cesm/cloud",
                         "size": 1024, "seed": 2023},
            )

        assert main(["campaign", "status", str(run_dir)]) == 2
        out = capsys.readouterr().out
        assert "interrupted" in out
        assert "pending" in out

        # Resume regenerates the dataset from the manifest's provenance.
        assert main(["campaign", "resume", str(run_dir), "--jobs", "1"]) == 0
        assert main(["campaign", "status", str(run_dir)]) == 0

    def test_status_missing_dir(self, tmp_path, capsys):
        assert main(["campaign", "status", str(tmp_path / "nope")]) == 1
        assert "error" in capsys.readouterr().err


class TestPredict:
    def test_table_rendered(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["predict", "186.25"]) == 0
        out = capsys.readouterr().out
        assert "SIGN_FLIP" in out
        assert "REGIME_EXPANSION" in out
        assert "EXPONENT_CHANGE" in out

    def test_spec_targets(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["predict", "1.5", "--target", "posit8", "--target", "ieee16"]) == 0
        out = capsys.readouterr().out
        assert "posit8" in out
        assert "ieee16" in out
        assert "SIGN_FLIP" in out


class TestSuiteCommand:
    def test_runs_and_resumes(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        args = [
            "suite", "--out", str(tmp_path), "--fields", "cesm/cloud",
            "--size", "1024", "--trials", "2", "--workers", "1",
        ]
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "[done] cesm/cloud x posit32" in out
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "[skip]" in out


class TestReportCommand:
    def test_writes_report(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        import repro.reporting.report as report_module

        # Patch experiment list to keep the CLI test fast.
        original = report_module.generate_report

        def tiny(directory, params=None, ids=None):
            return original(directory, params, ids=["worked"])

        report_module.generate_report = tiny
        try:
            assert cli_main(["report", "--out", str(tmp_path), "--quick"]) == 0
        finally:
            report_module.generate_report = original
        assert (tmp_path / "report.md").exists()
