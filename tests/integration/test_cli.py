"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListCommands:
    def test_targets(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        assert "posit32" in out
        assert "ieee32" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "Figure 10" in out

    def test_datasets(self, capsys):
        assert main(["datasets", "--size", "2000"]) == 0
        out = capsys.readouterr().out
        assert "nyx/temperature" in out


    def test_targets_with_extra_specs(self, capsys):
        assert main(["targets", "--spec", "posit16es1", "--spec", "binary(6,9)"]) == 0
        out = capsys.readouterr().out
        assert "posit16es1" in out
        assert "binary(6,9)" in out


class TestInspect:
    def test_value(self, capsys):
        assert main(["inspect", "186.25"]) == 0
        out = capsys.readouterr().out
        assert "0x433a4000" in out
        assert "0x6dd20000" in out
        assert "186.25" in out

    def test_spec_targets(self, capsys):
        code = main([
            "inspect", "186.25",
            "--target", "posit16es1", "--target", "fixedposit(16,es=2,r=3)",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "posit16es1" in out
        assert "fixedposit(16,es=2,r=3)" in out
        assert "0x433a4000" not in out  # defaults replaced, not appended


class TestExperiment:
    def test_single_experiment(self, capsys):
        assert main(["experiment", "worked", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out
        assert "[FAIL]" not in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiment", "fig99", "--quick"])


class TestCampaign:
    def test_prints_aggregate(self, capsys):
        code = main([
            "campaign", "cesm/cloud", "posit32",
            "--size", "4096", "--trials", "4", "--workers", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign: 128 trials" in out
        assert "conversion" in out

    def test_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "trials.csv"
        code = main([
            "campaign", "cesm/cloud", "ieee32",
            "--size", "4096", "--trials", "3", "--workers", "1",
            "--out", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()
        from repro.inject.results import TrialRecords

        records = TrialRecords.read_csv(out_path)
        assert len(records) == 3 * 32


class TestPredict:
    def test_table_rendered(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["predict", "186.25"]) == 0
        out = capsys.readouterr().out
        assert "SIGN_FLIP" in out
        assert "REGIME_EXPANSION" in out
        assert "EXPONENT_CHANGE" in out

    def test_spec_targets(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["predict", "1.5", "--target", "posit8", "--target", "ieee16"]) == 0
        out = capsys.readouterr().out
        assert "posit8" in out
        assert "ieee16" in out
        assert "SIGN_FLIP" in out


class TestSuiteCommand:
    def test_runs_and_resumes(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        args = [
            "suite", "--out", str(tmp_path), "--fields", "cesm/cloud",
            "--size", "1024", "--trials", "2", "--workers", "1",
        ]
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "[done] cesm/cloud x posit32" in out
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "[skip]" in out


class TestReportCommand:
    def test_writes_report(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        import repro.reporting.report as report_module

        # Patch experiment list to keep the CLI test fast.
        original = report_module.generate_report

        def tiny(directory, params=None, ids=None):
            return original(directory, params, ids=["worked"])

        report_module.generate_report = tiny
        try:
            assert cli_main(["report", "--out", str(tmp_path), "--quick"]) == 0
        finally:
            report_module.generate_report = original
        assert (tmp_path / "report.md").exists()
