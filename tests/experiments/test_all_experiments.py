"""Integration: every experiment runs at quick scale with all checks green.

This is the repository's statement that the paper's qualitative results
reproduce — each experiment's checks encode the claims of the
corresponding paper section.
"""

import pytest

from repro.experiments import ExperimentParams, experiment_ids, get_experiment

#: Quick-scale parameters shared by the whole module (campaigns are
#: memoized inside repro.experiments._campaigns, so experiments that
#: share field/target pools reuse them).
PARAMS = ExperimentParams(data_size=1 << 13, trials_per_bit=40, seed=2023)


@pytest.mark.parametrize("exp_id", sorted(experiment_ids()))
def test_experiment_checks_pass(exp_id):
    output = get_experiment(exp_id).run(PARAMS)
    assert output.exp_id == exp_id
    assert output.checks, f"{exp_id} produced no checks"
    assert output.all_checks_pass, (
        f"{exp_id} failed checks: {output.failed_checks()}"
    )
    # Every experiment must render without crashing.
    text = output.render()
    assert exp_id in text


def test_every_experiment_produces_output():
    for exp_id in experiment_ids():
        output = get_experiment(exp_id).run(PARAMS)
        assert output.figures or output.tables, exp_id
