"""Tests for the experiment harness machinery."""

import pytest

from repro.experiments import (
    ExperimentOutput,
    ExperimentParams,
    experiment_ids,
    get_experiment,
    run_experiments,
)
from repro.experiments.base import register_experiment


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        ids = experiment_ids()
        for expected in ("table1", "fig03", "fig07", "fig10", "fig11", "fig14",
                         "fig16", "fig18", "fig20", "worked", "survey",
                         "ext-sizes", "ext-multibit", "ext-predict"):
            assert expected in ids

    def test_get_unknown(self):
        with pytest.raises(KeyError, match="known"):
            get_experiment("fig99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(KeyError):
            register_experiment("table1", "dup", "x")(lambda params: None)

    def test_spec_metadata(self):
        spec = get_experiment("fig10")
        assert spec.paper_ref == "Figure 10"
        assert "IEEE" in spec.title


class TestParams:
    def test_defaults(self):
        params = ExperimentParams()
        assert params.trials_per_bit == 313

    def test_quick_smaller(self):
        quick = ExperimentParams.quick()
        assert quick.data_size < ExperimentParams().data_size
        assert quick.trials_per_bit < 313

    def test_paper_scale(self):
        paper = ExperimentParams.paper_scale()
        assert paper.trials_per_bit == 313
        assert paper.data_size == 1 << 22


class TestOutput:
    def test_checks(self):
        output = ExperimentOutput(exp_id="x", title="t")
        output.check("good", True)
        output.check("bad", False)
        assert not output.all_checks_pass
        assert output.failed_checks() == ["bad"]

    def test_render_contains_sections(self):
        from repro.reporting.series import Table

        output = ExperimentOutput(exp_id="x", title="demo title")
        table = Table("tbl", columns=["a"])
        table.add_row([1])
        output.tables.append(table)
        output.findings.append("something interesting")
        output.check("claim", True)
        text = output.render()
        assert "demo title" in text
        assert "tbl" in text
        assert "something interesting" in text
        assert "[PASS] claim" in text


class TestRunExperiments:
    def test_runs_subset(self, quick_params):
        outputs = run_experiments(["worked"], quick_params)
        assert len(outputs) == 1
        assert outputs[0].exp_id == "worked"
        assert outputs[0].all_checks_pass
