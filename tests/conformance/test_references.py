"""The oracle's reference codecs and samplers, tested in their own right.

A broken reference would either mask codec bugs or cry wolf; these tests
pin the references against hand-computed values and the samplers against
their coverage and determinism contracts.
"""

import math

import numpy as np
import pytest

from repro.conformance.references import (
    ORACLE_SEED,
    float_bits,
    pattern_sample,
    reference_for,
    same_float,
    value_sample,
)
from repro.formats import resolve


class TestStructReferences:
    @pytest.mark.parametrize("spec,pattern,value", [
        ("ieee32", 0x3F800000, 1.0),
        ("ieee32", 0xC2BA8000, -93.25),
        ("ieee32", 0x7F800000, math.inf),
        ("ieee32", 0x00000001, 2.0**-149),
        ("ieee16", 0x3C00, 1.0),
        ("ieee16", 0xFC00, -math.inf),
        ("bfloat16", 0x3F80, 1.0),
        ("bfloat16", 0xC039, -2.890625),
    ])
    def test_known_decodes(self, spec, pattern, value):
        reference = reference_for(resolve(spec))
        assert reference.decode(pattern) == value
        assert reference.encode(value) == pattern

    def test_overflowing_encode_saturates_to_infinity(self):
        # struct.pack raises OverflowError for these; the reference must
        # translate that into the IEEE answer instead of crashing.
        for spec in ("ieee16", "ieee32", "bfloat16"):
            reference = reference_for(resolve(spec))
            pos = reference.encode(1e300)
            neg = reference.encode(-1e300)
            assert math.isinf(reference.decode(pos)) and reference.decode(pos) > 0
            assert math.isinf(reference.decode(neg)) and reference.decode(neg) < 0

    def test_bfloat16_rne_on_truncated_half(self):
        reference = reference_for(resolve("bfloat16"))
        # 1.0 + 2**-8 sits exactly between bfloat16 neighbors 0x3F80 and
        # 0x3F81; RNE keeps the even pattern.
        assert reference.encode(1.0 + 2.0**-8) == 0x3F80
        assert reference.encode(1.0 + 3 * 2.0**-8) == 0x3F82

    def test_nan_encodes_to_nan_pattern(self):
        for spec in ("ieee16", "ieee32", "bfloat16"):
            reference = reference_for(resolve(spec))
            assert math.isnan(reference.decode(reference.encode(math.nan)))


class TestPositReference:
    @pytest.mark.parametrize("spec,pattern,value", [
        ("posit8", 0x40, 1.0),
        ("posit8", 0x00, 0.0),
        ("posit16", 0x4000, 1.0),
        ("posit32", 0x40000000, 1.0),
        ("posit32", 0x61A40000, 22.5625),
    ])
    def test_known_decodes(self, spec, pattern, value):
        reference = reference_for(resolve(spec))
        assert reference.decode(pattern) == value
        assert reference.encode(value) == pattern

    def test_nar_decodes_to_nan(self):
        reference = reference_for(resolve("posit16"))
        assert math.isnan(reference.decode(0x8000))


class TestReferenceAvailability:
    def test_paper_roster_all_have_references(self):
        for spec in ("posit8", "posit16", "posit32", "posit64",
                     "ieee16", "ieee32", "ieee64", "bfloat16"):
            assert reference_for(resolve(spec)) is not None, spec

    def test_custom_binary_has_none(self):
        assert reference_for(resolve("binary(6,9)")) is None


class TestPatternSample:
    def test_exhaustive_below_threshold(self):
        fmt = resolve("posit8")
        sample = pattern_sample(fmt, 32, exhaustive_max_bits=8)
        assert sample.size == 256
        assert sample[0] == 0 and sample[-1] == 255

    def test_stratified_above_threshold(self):
        fmt = resolve("posit32")
        sample = pattern_sample(fmt, 512, exhaustive_max_bits=8)
        assert sample.size <= 512 + 8
        # Every leading byte stratum is populated.
        leading = np.unique(sample >> np.uint64(24))
        assert leading.size >= 250
        # Corners always present.
        for corner in (0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF):
            assert np.uint64(corner) in sample

    def test_deterministic_per_seed(self):
        fmt = resolve("posit32")
        a = pattern_sample(fmt, 256, exhaustive_max_bits=8, seed=5)
        b = pattern_sample(fmt, 256, exhaustive_max_bits=8, seed=5)
        c = pattern_sample(fmt, 256, exhaustive_max_bits=8, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_patterns_fit_the_width(self):
        fmt = resolve("posit16")
        sample = pattern_sample(fmt, 64, exhaustive_max_bits=8)
        assert int(sample.max()) < (1 << 16)


class TestValueSample:
    def test_includes_specials(self):
        sample = value_sample(resolve("posit16"), 64)
        assert np.any(np.isnan(sample))
        assert np.any(np.isposinf(sample))
        assert np.any(np.isneginf(sample))
        assert np.any(sample == 0.0)
        signs = np.signbit(sample[sample == 0.0])
        assert signs.any() and not signs.all(), "both zero signs present"

    def test_deterministic_per_seed(self):
        fmt = resolve("ieee32")
        assert np.array_equal(
            value_sample(fmt, 128, seed=ORACLE_SEED),
            value_sample(fmt, 128, seed=ORACLE_SEED),
            equal_nan=True,
        )

    def test_spans_magnitudes(self):
        sample = value_sample(resolve("posit32"), 512)
        finite = sample[np.isfinite(sample) & (sample != 0)]
        magnitudes = np.log2(np.abs(finite))
        assert magnitudes.min() < -60 and magnitudes.max() > 60


class TestFloatHelpers:
    def test_float_bits_distinguishes_zero_signs(self):
        assert float_bits(np.array([0.0]))[0] != float_bits(np.array([-0.0]))[0]

    def test_same_float_semantics(self):
        assert same_float(1.5, 1.5)
        assert not same_float(0.0, -0.0)
        assert same_float(math.nan, math.nan)
        assert not same_float(math.nan, 1.0)
        assert same_float(math.inf, math.inf)
        assert not same_float(math.inf, -math.inf)
