"""Invariant checks: clean on real codecs, loud on deliberately-broken ones."""

import numpy as np
import pytest

from repro.conformance import BUDGETS
from repro.conformance.invariants import (
    check_idempotence,
    check_lowery_exponent,
    check_metrics_metamorphic,
    check_negation_symmetry,
    check_posit_monotonic,
    check_rne_ties,
)
from repro.conformance.oracle import OracleContext
from repro.formats import resolve


@pytest.fixture
def ctx(tmp_path):
    return OracleContext(
        level="smoke", budget=BUDGETS["smoke"], seed=3, golden_dir=tmp_path
    )


ROSTER = ("posit8", "posit16", "posit32", "ieee16", "ieee32", "bfloat16")


class TestCleanOnRealCodecs:
    @pytest.mark.parametrize("spec", ROSTER)
    def test_idempotence(self, ctx, spec):
        result = check_idempotence(ctx, resolve(spec))
        assert result.ok, [f.message for f in result.findings]
        assert result.checked > 0

    @pytest.mark.parametrize("spec", ROSTER)
    def test_rne_ties(self, ctx, spec):
        result = check_rne_ties(ctx, resolve(spec))
        assert result.ok, [f.message for f in result.findings]

    @pytest.mark.parametrize("spec", ("posit8", "posit16", "posit32", "posit64"))
    def test_posit_monotonic(self, ctx, spec):
        result = check_posit_monotonic(ctx, resolve(spec))
        assert result.ok, [f.message for f in result.findings]
        assert result.checked > 0

    @pytest.mark.parametrize("spec", ROSTER)
    def test_negation_symmetry(self, ctx, spec):
        result = check_negation_symmetry(ctx, resolve(spec))
        assert result.ok, [f.message for f in result.findings]

    @pytest.mark.parametrize("spec", ROSTER + ("ieee64", "posit64"))
    def test_lowery_closed_forms(self, ctx, spec):
        result = check_lowery_exponent(ctx, resolve(spec))
        assert result.ok, [f.message for f in result.findings]

    def test_metrics_metamorphic(self, ctx):
        result = check_metrics_metamorphic(ctx)
        assert result.ok, [f.message for f in result.findings]
        assert result.checked > 0

    def test_monotonic_skips_ieee(self, ctx):
        result = check_posit_monotonic(ctx, resolve("ieee32"))
        assert result.skipped


def _broken_decode(spec: str, *, poison_pattern: int, poison_value: float):
    """A fresh format instance whose decode corrupts one pattern.

    Patched on the instance (not a proxy) so ``isinstance`` checks inside
    the invariants still see a real PositTarget/IEEETarget.
    """
    from repro.formats import parse_spec

    fmt = parse_spec(spec, "direct")
    true_from_bits = fmt.from_bits

    def from_bits(patterns):
        values = np.array(true_from_bits(patterns), dtype=np.float64, copy=True)
        hit = np.asarray(patterns).astype(np.uint64) == np.uint64(poison_pattern)
        values[hit] = poison_value
        return values

    fmt.from_bits = from_bits
    return fmt


class TestDetection:
    def test_poisoned_decode_breaks_idempotence(self, ctx):
        broken = _broken_decode("posit8", poison_pattern=0x42, poison_value=7.75)
        result = check_idempotence(ctx, broken)
        assert not result.ok
        assert any("0x42" in f.message for f in result.findings)

    def test_poisoned_decode_breaks_monotonicity(self, ctx):
        broken = _broken_decode("posit8", poison_pattern=0x42, poison_value=1e20)
        result = check_posit_monotonic(ctx, broken)
        assert not result.ok

    def test_poisoned_decode_breaks_negation_symmetry(self, ctx):
        broken = _broken_decode("posit8", poison_pattern=0x42, poison_value=-3.0)
        result = check_negation_symmetry(ctx, broken)
        assert not result.ok

    def test_finding_names_the_format_and_check(self, ctx):
        broken = _broken_decode("posit8", poison_pattern=0x42, poison_value=7.75)
        result = check_idempotence(ctx, broken)
        assert result.check == "idempotence"
        assert result.subject == "posit8"
        assert all("posit8" in f.message for f in result.findings)


class TestLoweryWidths:
    def test_ieee64_high_exponent_bits_do_not_crash(self, ctx):
        # 2**(2**j) overflows float64 from j=10 up; the check must treat
        # those flips as out-of-closed-form rather than raising.
        result = check_lowery_exponent(ctx, resolve("ieee64"))
        assert result.ok
        assert result.checked > 0

    def test_posit_es0_skips(self, ctx):
        result = check_lowery_exponent(ctx, resolve("posit8es0"))
        assert result.skipped
