"""End-to-end oracle behavior: clean runs, perturbation detection, CLI."""

import numpy as np
import pytest

from repro.conformance import BUDGETS, bless, run_conformance
from repro.conformance.oracle import OracleContext


@pytest.fixture(scope="module")
def golden_dir(tmp_path_factory):
    """A blessed fixture directory for the narrow formats (fast)."""
    path = tmp_path_factory.mktemp("golden")
    bless(path, formats=["posit8", "posit16", "bfloat16"])
    return path


def _ctx(level="smoke", **overrides):
    defaults = dict(
        level=level, budget=BUDGETS[level], seed=7, golden_dir="unused", formats=None
    )
    defaults.update(overrides)
    return OracleContext(**defaults)


class TestCleanRun:
    def test_smoke_clean_on_narrow_roster(self, golden_dir):
        report = run_conformance(
            "smoke", ["posit8", "posit16", "bfloat16"], golden_dir=golden_dir
        )
        assert report.render().startswith("conformance: level=smoke")
        assert report.exit_code == 0, report.render()
        assert report.checks_run > 0
        assert report.units_checked > 0

    def test_missing_fixtures_warn_but_do_not_error(self, tmp_path):
        report = run_conformance("smoke", ["posit8"], golden_dir=tmp_path / "nowhere")
        assert report.errors == []
        assert report.warnings, "missing fixtures should surface as warnings"
        assert report.exit_code == 2

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="level"):
            run_conformance("exhaustive")


class TestPerturbationDetection:
    def test_perturbed_fast_metric_is_caught(self, golden_dir, monkeypatch):
        """Nudging a metric constant must fail the differential check."""
        from repro.metrics import fast

        true_fast = fast.single_fault_metrics

        def skewed(baseline, old_value, new_value):
            metrics = true_fast(baseline, old_value, new_value)
            return type(metrics)(
                **{
                    **metrics.__dict__,
                    "mean_squared_error": metrics.mean_squared_error * (1 + 1e-6),
                }
            )

        monkeypatch.setattr(fast, "single_fault_metrics", skewed)
        report = run_conformance("smoke", ["posit8"], golden_dir=golden_dir)
        assert report.exit_code == 1
        assert any(
            f.check == "metrics-fast-vs-full" and "mse" in f.message
            for f in report.errors
        ), report.render()

    def test_perturbed_reference_metric_is_caught(self, golden_dir, monkeypatch):
        """The metamorphic check guards the full reduction side too."""
        from repro.metrics import pointwise

        true_compare = pointwise.compare_arrays

        def skewed(original, faulty):
            metrics = true_compare(original, faulty)
            return type(metrics)(
                **{
                    **metrics.__dict__,
                    "mean_absolute_error": metrics.mean_absolute_error + 1e-6,
                }
            )

        monkeypatch.setattr(pointwise, "compare_arrays", skewed)
        report = run_conformance("smoke", ["posit8"], golden_dir=golden_dir)
        assert report.exit_code == 1
        assert any(f.subject == "metrics" for f in report.results if not f.ok)

    def test_crashing_check_becomes_finding_not_exception(self, golden_dir, monkeypatch):
        from repro.conformance import differential

        def boom(fmt):
            raise RuntimeError("synthetic check crash")

        monkeypatch.setattr(differential, "reference_for", boom)
        report = run_conformance("smoke", ["posit8"], golden_dir=golden_dir)
        assert report.exit_code == 1
        assert any("synthetic check crash" in f.message for f in report.errors)


class TestContextRoster:
    def test_explicit_roster_restricts_golden_fixtures(self, golden_dir):
        report = run_conformance("smoke", ["posit16"], golden_dir=golden_dir)
        subjects = {r.subject for r in report.results}
        assert "posit16" in subjects
        assert not any("posit8" == s for s in subjects)

    def test_budgets_escalate_with_level(self):
        assert BUDGETS["full"].patterns > BUDGETS["smoke"].patterns
        assert BUDGETS["full"].exhaustive_max_bits >= BUDGETS["smoke"].exhaustive_max_bits


class TestTelemetryIntegration:
    def test_counters_recorded_when_enabled(self, golden_dir):
        from repro.telemetry import Telemetry, telemetry_scope

        with telemetry_scope(Telemetry()) as collector:
            run_conformance("smoke", ["posit8"], golden_dir=golden_dir)
            snapshot = collector.snapshot()
        assert snapshot.counters.get("conformance.checks_run", 0) > 0
        assert snapshot.counters.get("conformance.units_checked", 0) > 0
        assert any(name.startswith("conformance.") for name in snapshot.spans)


class TestCli:
    def test_cli_run_smoke_exits_zero(self, golden_dir, capsys):
        from repro.cli import main

        code = main([
            "conformance", "run", "--level", "smoke",
            "--format", "posit8", "--golden-dir", str(golden_dir),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "result: clean" in out

    def test_cli_run_writes_report_file(self, golden_dir, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "report.txt"
        code = main([
            "conformance", "run", "--level", "smoke",
            "--format", "posit8", "--golden-dir", str(golden_dir),
            "--out", str(out_file),
        ])
        assert code == 0
        assert "result: clean" in out_file.read_text()

    def test_cli_bless_writes_fixtures(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "conformance", "bless", "--format", "posit8",
            "--golden-dir", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "codec-posit8.json").is_file()
        assert "blessed" in capsys.readouterr().out


class TestDeterminism:
    def test_same_seed_same_report(self, golden_dir):
        first = run_conformance("smoke", ["posit8"], golden_dir=golden_dir, seed=11)
        second = run_conformance("smoke", ["posit8"], golden_dir=golden_dir, seed=11)
        assert first.render() == second.render()
        assert first.units_checked == second.units_checked

    def test_oracle_context_is_frozen(self):
        ctx = _ctx()
        with pytest.raises(AttributeError):
            ctx.level = "full"

    def test_sampling_never_touches_global_numpy_state(self, golden_dir):
        np.random.seed(4)
        before = np.random.get_state()[1].copy()
        run_conformance("smoke", ["posit8"], golden_dir=golden_dir)
        assert np.array_equal(np.random.get_state()[1], before)
