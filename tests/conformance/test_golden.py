"""Golden-fixture regression locks: bless, verify, and tamper detection.

The acceptance bar for the whole oracle: flipping any single bit of a
codec fixture, or nudging any locked campaign statistic, must turn a
clean run into a non-zero exit with a finding naming the format (or
statistic) that drifted.
"""

import json

import numpy as np
import pytest

from repro.conformance import (
    bless,
    codec_fixture_path,
    campaign_fixture_path,
    load_fixture,
    run_conformance,
    write_fixture,
)

pytestmark = pytest.mark.golden


@pytest.fixture(scope="module")
def blessed_dir(tmp_path_factory):
    """Codec fixtures for the fast formats plus one campaign fixture."""
    path = tmp_path_factory.mktemp("golden")
    bless(path, formats=["posit8", "posit16", "posit32"])
    return path


def _run(golden_dir, formats):
    return run_conformance("smoke", formats, golden_dir=golden_dir)


class TestCleanFixtures:
    def test_blessed_tree_is_clean(self, blessed_dir):
        report = _run(blessed_dir, ["posit8", "posit16"])
        assert report.exit_code == 0, report.render()

    def test_fixture_files_are_stable_json(self, blessed_dir):
        path = codec_fixture_path(blessed_dir, "posit32")
        payload = load_fixture(path)
        assert payload["kind"] == "codec-lattice"
        assert payload["format"] == "posit32"
        rewritten = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        assert path.read_text(encoding="utf-8") == rewritten

    def test_bless_is_deterministic(self, blessed_dir, tmp_path):
        bless(tmp_path, formats=["posit32"])
        first = codec_fixture_path(blessed_dir, "posit32").read_text()
        second = codec_fixture_path(tmp_path, "posit32").read_text()
        assert first == second


class TestCodecTamperDetection:
    """Any single-bit flip of the posit32 lattice fixture must be caught."""

    @pytest.mark.parametrize("field", ["pattern", "decoded"])
    def test_single_bit_flip_fails_with_finding(self, blessed_dir, tmp_path, field):
        src = load_fixture(codec_fixture_path(blessed_dir, "posit32"))
        payload = json.loads(json.dumps(src))
        entry = payload["entries"][17]
        if field == "pattern":
            entry["pattern"] = f"0x{int(entry['pattern'], 16) ^ (1 << 5):x}"
        else:
            bits = np.float64(float.fromhex(entry["decoded"])).view(np.uint64)
            entry["decoded"] = float(
                (bits ^ np.uint64(1 << 20)).view(np.float64)
            ).hex()
        write_fixture(codec_fixture_path(tmp_path, "posit32"), payload)
        report = _run(tmp_path, ["posit32"])
        assert report.exit_code == 1, report.render()
        assert any(
            f.check == "golden-codec" and "posit32" in f.message for f in report.errors
        ), report.render()

    def test_every_pattern_bit_position_is_caught(self, blessed_dir, tmp_path):
        """Sweep bit positions across entries: decode is injective, so no
        flipped pattern can silently alias the recorded decode."""
        src = load_fixture(codec_fixture_path(blessed_dir, "posit32"))
        caught = 0
        for bit in range(0, 32, 7):
            payload = json.loads(json.dumps(src))
            entry = payload["entries"][bit % len(payload["entries"])]
            entry["pattern"] = f"0x{int(entry['pattern'], 16) ^ (1 << bit):x}"
            target = tmp_path / f"bit{bit}"
            write_fixture(codec_fixture_path(target, "posit32"), payload)
            report = _run(target, ["posit32"])
            assert report.exit_code == 1, f"bit {bit} flip went undetected"
            caught += 1
        assert caught == 5

    def test_missing_entry_changes_nothing_else(self, blessed_dir, tmp_path):
        payload = json.loads(
            json.dumps(load_fixture(codec_fixture_path(blessed_dir, "posit8")))
        )
        payload["entries"] = payload["entries"][:-1]
        write_fixture(codec_fixture_path(tmp_path, "posit8"), payload)
        report = _run(tmp_path, ["posit8"])
        assert report.exit_code == 0, "fewer entries is weaker, not wrong"


class TestCampaignTamperDetection:
    def test_perturbed_statistic_names_the_statistic(self, blessed_dir, tmp_path):
        path = campaign_fixture_path(blessed_dir, "cesm/cloud", "posit32")
        payload = json.loads(json.dumps(load_fixture(path)))
        payload["stats"]["mse_mean"] *= 1 + 1e-6
        write_fixture(campaign_fixture_path(tmp_path, "cesm/cloud", "posit32"), payload)
        report = _run(tmp_path, ["posit32"])
        assert report.exit_code == 1, report.render()
        assert any(
            f.check == "golden-campaign" and "mse_mean" in f.message
            for f in report.errors
        ), report.render()

    def test_perturbed_field_count_is_exact_compare(self, blessed_dir, tmp_path):
        path = campaign_fixture_path(blessed_dir, "cesm/cloud", "posit32")
        payload = json.loads(json.dumps(load_fixture(path)))
        key = next(iter(payload["stats"]["field_counts"]))
        payload["stats"]["field_counts"][key] += 1
        write_fixture(campaign_fixture_path(tmp_path, "cesm/cloud", "posit32"), payload)
        report = _run(tmp_path, ["posit32"])
        assert report.exit_code == 1
        assert any("stratification" in f.message for f in report.errors)

    def test_perturbed_fast_metrics_fail_campaign_golden(self, blessed_dir, monkeypatch):
        """Drift in the trial metric pipeline surfaces as statistic drift."""
        import dataclasses

        from repro.inject import trial as trial_module

        true_vectorized = trial_module.vectorized_single_fault

        def skewed(baseline, originals, faulty):
            rows = true_vectorized(baseline, originals, faulty)
            return dataclasses.replace(rows, mse=rows.mse * (1 + 1e-6))

        monkeypatch.setattr(trial_module, "vectorized_single_fault", skewed)
        report = _run(blessed_dir, ["posit32"])
        assert report.exit_code == 1, report.render()
        assert any(
            f.check == "golden-campaign" and "mse_mean" in f.message
            for f in report.errors
        ), report.render()


class TestCheckedInTree:
    """The repo's own tests/golden fixtures must match the working tree."""

    def test_repo_fixtures_are_current(self):
        report = run_conformance("smoke", ["posit8", "posit16", "bfloat16"])
        assert report.exit_code == 0, report.render()
