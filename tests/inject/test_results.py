"""Tests for trial records and CSV round-trip."""

import numpy as np
import pytest

from repro.inject.campaign import CampaignConfig, run_campaign
from repro.inject.results import TrialRecords


@pytest.fixture
def records(small_field):
    result = run_campaign(small_field, "posit32", CampaignConfig(trials_per_bit=4, seed=2))
    return result.records


class TestFilters:
    def test_for_bit(self, records):
        subset = records.for_bit(31)
        assert len(subset) == 4
        assert np.all(subset.bit == 31)

    def test_for_field_and_regime(self, records):
        from repro.posit.fields import PositField

        sign_trials = records.for_field(int(PositField.SIGN))
        assert np.all(sign_trials.bit == 31)
        k1 = records.for_regime_size(1)
        assert np.all(k1.regime_k == 1)

    def test_finite(self, records):
        finite = records.finite()
        assert not np.any(finite.non_finite)

    def test_select_mask(self, records):
        mask = records.abs_err > 0
        subset = records.select(mask)
        assert len(subset) == int(np.sum(mask))


class TestConcat:
    def test_concatenate(self, records):
        merged = TrialRecords.concatenate([records, records])
        assert len(merged) == 2 * len(records)

    def test_concatenate_empty_list(self):
        assert len(TrialRecords.concatenate([])) == 0

    def test_empty(self):
        empty = TrialRecords.empty()
        assert len(empty) == 0
        assert empty.trial.dtype == np.int64

    def test_mismatched_columns_rejected(self, records):
        import dataclasses

        kwargs = {name: getattr(records, name) for name in records.column_names()}
        kwargs["bit"] = kwargs["bit"][:-1]
        with pytest.raises(ValueError):
            TrialRecords(**kwargs)


class TestCsvRoundtrip:
    def test_file_roundtrip_exact(self, records, tmp_path):
        path = tmp_path / "trials.csv"
        records.write_csv(path)
        loaded = TrialRecords.read_csv(path)
        for column in records.column_names():
            lhs = getattr(records, column)
            rhs = getattr(loaded, column)
            assert np.array_equal(lhs, rhs, equal_nan=lhs.dtype.kind == "f"), column

    def test_preserves_nan_and_inf(self, tmp_path):
        records = TrialRecords.empty()
        import dataclasses

        kwargs = {name: getattr(records, name) for name in records.column_names()}
        for name in kwargs:
            if kwargs[name].dtype.kind == "f":
                kwargs[name] = np.array([np.nan, np.inf, -np.inf, 1.5])
            elif kwargs[name].dtype.kind == "b":
                kwargs[name] = np.array([True, False, True, False])
            else:
                kwargs[name] = np.arange(4, dtype=np.int64)
        crafted = TrialRecords(**kwargs)
        path = tmp_path / "special.csv"
        crafted.write_csv(path)
        loaded = TrialRecords.read_csv(path)
        assert np.isnan(loaded.abs_err[0])
        assert loaded.abs_err[1] == np.inf
        assert loaded.abs_err[2] == -np.inf
        assert loaded.abs_err[3] == 1.5

    def test_string_roundtrip(self, records):
        text = records.to_csv_string()
        loaded = TrialRecords.from_csv_string(text)
        assert len(loaded) == len(records)
        assert text.startswith("# schema_version=")

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="schema"):
            TrialRecords.read_csv(path)

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            TrialRecords.read_csv(path)

    def test_float_values_bit_exact(self, records, tmp_path):
        # repr-based serialization must preserve every float64 bit.
        path = tmp_path / "exact.csv"
        records.write_csv(path)
        loaded = TrialRecords.read_csv(path)
        assert np.array_equal(
            records.faulty.view(np.uint64), loaded.faulty.view(np.uint64)
        )
