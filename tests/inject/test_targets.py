"""Tests for injection targets (served by the format registry)."""

import numpy as np
import pytest

from repro.formats import FormatSpecError, PositTarget, available_formats, resolve
from repro.ieee.fields import IEEEField
from repro.posit.fields import PositField


class TestRegistry:
    def test_expected_targets(self):
        names = available_formats()
        for expected in ("ieee16", "ieee32", "ieee64", "bfloat16",
                         "posit8", "posit16", "posit32", "posit64"):
            assert expected in names

    def test_lookup(self):
        assert resolve("posit32").nbits == 32
        assert resolve("IEEE32").nbits == 32

    def test_unknown(self):
        with pytest.raises(FormatSpecError):
            resolve("posit128")


class TestIEEETarget:
    def test_roundtrip_float32_exact(self, rng):
        target = resolve("ieee32")
        values = rng.normal(0, 100, 500).astype(np.float32)
        assert np.array_equal(target.round_trip(values), values.astype(np.float64))

    def test_classification(self):
        target = resolve("ieee32")
        bits = target.to_bits(np.array([1.0, 2.0], dtype=np.float32))
        assert np.all(target.classify_bits(bits, 31) == int(IEEEField.SIGN))
        assert np.all(target.classify_bits(bits, 5) == int(IEEEField.FRACTION))
        assert target.field_label(int(IEEEField.EXPONENT)) == "EXPONENT"

    def test_regime_sizes_zero(self):
        target = resolve("ieee32")
        bits = target.to_bits(np.array([1.0], dtype=np.float32))
        assert target.regime_sizes(bits).tolist() == [0]


class TestPositTarget:
    def test_roundtrip_rounds_once(self, rng):
        target = resolve("posit32")
        values = rng.normal(0, 100, 500).astype(np.float32)
        stored = target.round_trip(values)
        # Idempotent: storing the stored value changes nothing.
        assert np.array_equal(target.round_trip(stored), stored)

    def test_classification_is_per_value(self):
        target = resolve("posit32")
        bits = target.to_bits(np.array([1.5, 186250.0]))
        fields = target.classify_bits(bits, 28)
        # Bit 28: exponent for 1.5 (k=1), regime for 186250 (k=5).
        assert fields[0] == int(PositField.EXPONENT)
        assert fields[1] == int(PositField.REGIME)

    def test_regime_sizes(self):
        target = resolve("posit32")
        bits = target.to_bits(np.array([1.5, 20.0, 400.0]))
        assert target.regime_sizes(bits).tolist() == [1, 2, 3]

    def test_field_label(self):
        target = resolve("posit32")
        assert target.field_label(int(PositField.REGIME_TERM)) == "REGIME_TERM"

    def test_nonstandard_name(self):
        from repro.posit.config import PositConfig

        target = PositTarget(PositConfig(nbits=16, es=1))
        assert target.name == "posit16es1"


class TestBfloat16Target:
    def test_roundtrip(self):
        target = resolve("bfloat16")
        values = np.array([1.0, -2.5, 100.0], dtype=np.float32)
        assert np.array_equal(target.round_trip(values), values.astype(np.float64))
