"""Tests for fault models."""

import numpy as np
import pytest

from repro.bitops import popcount
from repro.inject.faults import (
    AdjacentBitFlip,
    MultiBitFlip,
    RandomBitFlip,
    SingleBitFlip,
    StuckAt,
)


@pytest.fixture
def bits(rng):
    return rng.integers(0, 1 << 32, 200, dtype=np.uint64).astype(np.uint32)


@pytest.fixture
def fault_rng():
    return np.random.default_rng(0)


class TestSingleBitFlip:
    def test_flips_exactly_one(self, bits, fault_rng):
        for bit in (0, 15, 31):
            faulty = SingleBitFlip(bit).apply(bits, 32, fault_rng)
            assert np.all((faulty ^ bits) == np.uint32(1 << bit))

    def test_involution(self, bits, fault_rng):
        fault = SingleBitFlip(7)
        twice = fault.apply(fault.apply(bits, 32, fault_rng), 32, fault_rng)
        assert np.array_equal(twice, bits)

    def test_out_of_range(self, bits, fault_rng):
        with pytest.raises(ValueError):
            SingleBitFlip(32).apply(bits, 32, fault_rng)

    def test_describe(self):
        assert "bit 5" in SingleBitFlip(5).describe()


class TestMultiBitFlip:
    def test_flips_requested_set(self, bits, fault_rng):
        fault = MultiBitFlip((1, 8, 30))
        faulty = fault.apply(bits, 32, fault_rng)
        assert np.all((faulty ^ bits) == np.uint32((1 << 1) | (1 << 8) | (1 << 30)))

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiBitFlip(())
        with pytest.raises(ValueError):
            MultiBitFlip((1, 1))

    def test_out_of_range(self, bits, fault_rng):
        with pytest.raises(ValueError):
            MultiBitFlip((1, 40)).apply(bits, 32, fault_rng)


class TestAdjacentBitFlip:
    def test_burst(self, bits, fault_rng):
        faulty = AdjacentBitFlip(4, 3).apply(bits, 32, fault_rng)
        assert np.all((faulty ^ bits) == np.uint32(0b111 << 4))

    def test_truncated_at_word_end(self, bits, fault_rng):
        faulty = AdjacentBitFlip(30, 4).apply(bits, 32, fault_rng)
        assert np.all((faulty ^ bits) == np.uint32(0b11 << 30))

    def test_validation(self):
        with pytest.raises(ValueError):
            AdjacentBitFlip(0, 0)


class TestRandomBitFlip:
    def test_flips_exactly_count_bits(self, bits, fault_rng):
        for count in (1, 2, 3):
            faulty = RandomBitFlip(count).apply(bits, 32, fault_rng)
            flipped = popcount((faulty ^ bits).astype(np.uint64), 32)
            assert np.all(flipped == count)

    def test_count_exceeds_width(self, fault_rng):
        with pytest.raises(ValueError):
            RandomBitFlip(9).apply(np.zeros(2, dtype=np.uint8), 8, fault_rng)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomBitFlip(0)

    def test_deterministic_given_rng(self, bits):
        a = RandomBitFlip(2).apply(bits, 32, np.random.default_rng(3))
        b = RandomBitFlip(2).apply(bits, 32, np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestStuckAt:
    def test_stuck_at_one(self, bits, fault_rng):
        faulty = StuckAt(5, 1).apply(bits, 32, fault_rng)
        assert np.all((faulty >> np.uint32(5)) & np.uint32(1) == 1)
        cleared_elsewhere = faulty ^ bits
        assert np.all((cleared_elsewhere & ~np.uint32(1 << 5)) == 0)

    def test_stuck_at_zero(self, bits, fault_rng):
        faulty = StuckAt(5, 0).apply(bits, 32, fault_rng)
        assert np.all((faulty >> np.uint32(5)) & np.uint32(1) == 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StuckAt(5, 2)
