"""Tests for the parallel campaign executor."""

import numpy as np
import pytest

from repro.inject.campaign import CampaignConfig, run_campaign
from repro.inject.parallel import (
    default_worker_count,
    resolve_worker_count,
    validate_jobs,
)


def _assert_results_identical(a, b) -> None:
    assert a.target_name == b.target_name
    assert a.trial_count == b.trial_count
    for column in a.records.column_names():
        lhs = getattr(a.records, column)
        rhs = getattr(b.records, column)
        assert np.array_equal(lhs, rhs, equal_nan=lhs.dtype.kind == "f"), column


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_posit32(self, small_field, workers):
        config = CampaignConfig(trials_per_bit=6, seed=42)
        serial = run_campaign(small_field, "posit32", config)
        parallel = run_campaign(small_field, "posit32", config, jobs=workers)
        _assert_results_identical(serial, parallel)

    def test_ieee32(self, small_field):
        config = CampaignConfig(trials_per_bit=6, seed=42)
        serial = run_campaign(small_field, "ieee32", config)
        parallel = run_campaign(small_field, "ieee32", config, jobs=3)
        _assert_results_identical(serial, parallel)

    def test_single_worker_falls_back(self, small_field):
        config = CampaignConfig(trials_per_bit=4, seed=1)
        serial = run_campaign(small_field, "posit32", config)
        fallback = run_campaign(small_field, "posit32", config, jobs=1)
        _assert_results_identical(serial, fallback)

    def test_single_shard_falls_back(self, small_field):
        config = CampaignConfig(trials_per_bit=4, seed=1, bits=(31,))
        serial = run_campaign(small_field, "posit32", config)
        parallel = run_campaign(small_field, "posit32", config, jobs=4)
        _assert_results_identical(serial, parallel)

    @pytest.mark.parametrize("spec", ["posit16es1", "binary(8,23)", "fixedposit(16,es=2,r=3)"])
    def test_spec_parsed_targets(self, small_field, spec):
        # Workers rehydrate the target from its spec string; the campaign
        # must still be bit-identical to the serial run.
        config = CampaignConfig(trials_per_bit=5, seed=99)
        serial = run_campaign(small_field, spec, config)
        parallel = run_campaign(small_field, spec, config, jobs=3)
        _assert_results_identical(serial, parallel)


class TestMisc:
    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1

    def test_default_worker_count_caps_at_shard_count(self):
        assert default_worker_count(shard_count=1) == 1
        assert default_worker_count(shard_count=2) <= 2
        assert default_worker_count(shard_count=10**6) == default_worker_count()

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(np.array([]), "posit32", jobs=2)

    def test_run_campaign_parallel_removed(self):
        # The deprecated wrapper is gone; run_campaign(jobs=N) is the API.
        import repro.inject
        import repro.inject.parallel as parallel

        assert not hasattr(parallel, "run_campaign_parallel")
        with pytest.raises(AttributeError):
            repro.inject.run_campaign_parallel


class TestJobsValidation:
    def test_none_means_auto(self):
        assert validate_jobs(None) is None
        assert resolve_worker_count(None, shard_count=4) <= 4

    @pytest.mark.parametrize("jobs", [0, -3])
    def test_nonpositive_rejected(self, jobs):
        with pytest.raises(ValueError, match=">= 1"):
            validate_jobs(jobs)

    @pytest.mark.parametrize("jobs", [True, 2.5, "4"])
    def test_non_integers_rejected(self, jobs):
        with pytest.raises(ValueError, match="positive integer"):
            validate_jobs(jobs)

    def test_numpy_integers_accepted(self):
        assert validate_jobs(np.int64(3)) == 3

    def test_oversized_request_capped_with_warning(self):
        with pytest.warns(RuntimeWarning, match="capping"):
            assert resolve_worker_count(16, shard_count=2) == 2

    def test_exact_fit_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_worker_count(2, shard_count=2) == 2
