"""Tests for trial execution (scalar flow vs vectorized hot path)."""

import numpy as np
import pytest

from repro.formats import resolve
from repro.inject.trial import run_bit_trials, run_single_trial
from repro.metrics.pointwise import compare_arrays
from repro.metrics.summary import SummaryStats


@pytest.fixture
def stored(small_field):
    target = resolve("posit32")
    return target.round_trip(small_field)


class TestScalarVsVectorized:
    @pytest.mark.parametrize("target_name", ["ieee32", "posit32"])
    def test_records_match_scalar_flow(self, small_field, target_name):
        target = resolve(target_name)
        stored = target.round_trip(small_field)
        baseline = SummaryStats.from_array(stored)
        indices = np.array([0, 5, 100, 2500], dtype=np.int64)
        for bit in (0, 12, 24, 29, 30, 31):
            records = run_bit_trials(stored, indices, bit, target, baseline)
            for i, index in enumerate(indices):
                single = run_single_trial(stored, int(index), bit, target)
                assert records.original[i] == single.original
                same_faulty = records.faulty[i] == single.faulty or (
                    np.isnan(records.faulty[i]) and np.isnan(single.faulty)
                )
                assert same_faulty, (bit, i)
                assert records.field[i] == single.field
                assert records.regime_k[i] == single.regime_k
                assert records.non_finite[i] == single.non_finite

    def test_metrics_match_full_array_comparison(self, stored):
        target = resolve("posit32")
        baseline = SummaryStats.from_array(stored)
        indices = np.array([3, 77], dtype=np.int64)
        records = run_bit_trials(stored, indices, 20, target, baseline)
        for i, index in enumerate(indices):
            faulty_array = stored.copy()
            faulty_array[index] = records.faulty[i]
            full = compare_arrays(stored, faulty_array)
            assert records.abs_err[i] == pytest.approx(full.max_absolute_error)
            assert records.mse[i] == pytest.approx(full.mean_squared_error)
            if stored[index] != 0:
                assert records.rel_err[i] == pytest.approx(full.max_pointwise_relative)

    def test_faulty_summary_matches_recompute(self, stored):
        target = resolve("posit32")
        baseline = SummaryStats.from_array(stored)
        # Deliberately include the dataset's extremum index.
        extremum = int(np.argmax(stored))
        indices = np.array([extremum, 1], dtype=np.int64)
        records = run_bit_trials(stored, indices, 30, target, baseline)
        for i, index in enumerate(indices):
            if not np.isfinite(records.faulty[i]):
                continue
            replaced = stored.copy()
            replaced[index] = records.faulty[i]
            assert records.faulty_max[i] == np.max(replaced)
            assert records.faulty_min[i] == np.min(replaced)
            assert records.faulty_mean[i] == pytest.approx(np.mean(replaced), rel=1e-9)
            assert records.faulty_std[i] == pytest.approx(np.std(replaced), rel=1e-6, abs=1e-9)


class TestRecordContents:
    def test_bit_and_trial_columns(self, stored):
        target = resolve("posit32")
        baseline = SummaryStats.from_array(stored)
        indices = np.arange(10, dtype=np.int64)
        records = run_bit_trials(stored, indices, 17, target, baseline)
        assert len(records) == 10
        assert np.all(records.bit == 17)
        assert np.array_equal(records.trial, np.arange(10))
        assert np.array_equal(records.index, indices)

    def test_posit_original_is_representable(self, small_field):
        target = resolve("posit32")
        stored = target.round_trip(small_field)
        baseline = SummaryStats.from_array(stored)
        records = run_bit_trials(stored, np.array([0, 1]), 3, target, baseline)
        # The recorded original must be the posit-rounded value.
        assert np.array_equal(records.original, stored[[0, 1]])
