"""The encode-once field pipeline and the one-pass batched campaign path.

The contract under test is byte-identity: routing the hot path through
``FieldPipeline`` / ``run_field_trials`` must reproduce the per-bit
shard output of ``run_campaign_shard`` exactly, down to the CSV bytes a
run directory would contain.
"""

import numpy as np
import pytest

from repro.formats import resolve
from repro.inject import (
    CampaignConfig,
    FieldPipeline,
    bit_seeds,
    field_pipeline,
    run_campaign_shard,
    run_field_trials,
    run_single_trial,
)
from repro.metrics.summary import SummaryStats


@pytest.fixture
def field(rng):
    return np.concatenate(
        [rng.normal(50, 20, 512), rng.lognormal(-2, 2, 512)]
    ).astype(np.float32)


class TestFieldBatchIdentity:
    @pytest.mark.parametrize("name", ["posit16", "posit32", "ieee32", "posit8"])
    def test_slices_match_per_bit_shards(self, name, field):
        target = resolve(name)
        stored = target.round_trip(field)
        baseline = SummaryStats.from_array(stored)
        config = CampaignConfig(trials_per_bit=37, seed=11)
        seeds = bit_seeds(config, target)

        batched = run_field_trials(stored, target, baseline, config)
        assert len(batched) == target.nbits * 37
        rows = batched.to_csv_string().splitlines()[2:]
        for bit in range(target.nbits):
            shard = run_campaign_shard(stored, target, bit, 37, seeds[bit], baseline)
            chunk = shard.to_csv_string().splitlines()[2:]
            assert rows[bit * 37 : (bit + 1) * 37] == chunk, (name, bit)

    def test_bit_subset(self, field):
        target = resolve("posit16")
        stored = target.round_trip(field)
        baseline = SummaryStats.from_array(stored)
        config = CampaignConfig(trials_per_bit=5, bits=(1, 7, 15), seed=3)
        batched = run_field_trials(stored, target, baseline, config)
        assert sorted(set(batched.bit.tolist())) == [1, 7, 15]
        assert len(batched) == 15


class TestPipelineCache:
    def test_same_content_shares_pipeline(self, field):
        target = resolve("posit16")
        first = field_pipeline(target, field)
        second = field_pipeline(target, field.copy())
        assert first is second

    def test_distinct_targets_do_not_collide(self, field):
        p16 = field_pipeline(resolve("posit16"), field)
        p32 = field_pipeline(resolve("posit32"), field)
        assert p16 is not p32
        assert p16.target.nbits == 16 and p32.target.nbits == 32

    def test_pipeline_encodes_once(self, field):
        target = resolve("posit32")
        pipeline = FieldPipeline(target, field)
        assert np.array_equal(
            np.asarray(pipeline.bits), np.asarray(target.to_bits(field))
        )
        assert np.array_equal(pipeline.stored, target.round_trip(field))


class TestScalarRelErrConvention:
    """run_single_trial shares the zero-original convention of the
    vectorized path (pinned in tests/metrics/test_edgecases.py)."""

    def _trial(self, original, faulty_target_value, name="ieee32"):
        target = resolve(name)
        data = np.array([original], dtype=np.float64)
        stored = target.round_trip(data)
        bits = np.asarray(target.to_bits(stored))
        goal = np.asarray(target.to_bits(np.array([faulty_target_value])))
        flip = int(bits[0] ^ goal[0])
        assert flip != 0 and (flip & (flip - 1)) == 0, "need a single-bit flip"
        bit = flip.bit_length() - 1
        return run_single_trial(stored, 0, bit, target)

    def test_zero_original_nonzero_faulty_is_nan(self):
        result = self._trial(0.0, 2.0 ** -126)
        assert result.original == 0.0 and result.faulty != 0.0
        assert np.isnan(result.rel_err)

    def test_zero_original_zero_faulty_is_zero(self):
        # Flipping the IEEE sign bit of +0.0 lands on -0.0.
        result = self._trial(0.0, -0.0)
        assert result.original == 0.0 and result.faulty == 0.0
        assert result.rel_err == 0.0

    def test_nonzero_original_plain_ratio(self):
        target = resolve("posit16")
        data = np.array([8.0])
        result = run_single_trial(data, 0, 3, target)
        expected = abs(result.original - result.faulty) / abs(result.original)
        assert result.rel_err == expected
