"""Tests for campaign suite orchestration."""

import numpy as np
import pytest

from repro.inject.suite import SuiteConfig, load_manifest, run_suite


@pytest.fixture
def small_config():
    return SuiteConfig(
        fields=("cesm/cloud", "hurricane/uf30"),
        targets=("ieee32", "posit32"),
        data_size=1 << 11,
        trials_per_bit=3,
        seed=5,
    )


class TestSuiteConfig:
    def test_paper_grid_covers_all_fields(self):
        config = SuiteConfig.paper_grid(trials_per_bit=1)
        assert len(config.fields) == 16
        assert config.targets == ("ieee32", "posit32")

    def test_log_name(self, small_config):
        assert small_config.log_name("cesm/cloud", "posit32") == "cesm__cloud--posit32.csv"


class TestRunSuite:
    def test_runs_full_grid(self, small_config, tmp_path):
        result = run_suite(small_config, tmp_path, workers=1)
        assert len(result.completed) == 4
        assert result.skipped == []
        for field_key in small_config.fields:
            for target in small_config.targets:
                records = result.records(field_key, target)
                assert len(records) == 3 * 32

    def test_manifest_written(self, small_config, tmp_path):
        run_suite(small_config, tmp_path, workers=1)
        manifest = load_manifest(tmp_path)
        assert manifest["trials_per_bit"] == 3
        assert len(manifest["campaigns"]) == 4
        statuses = {entry["status"] for entry in manifest["campaigns"].values()}
        assert statuses == {"completed"}

    def test_resume_skips_existing(self, small_config, tmp_path):
        run_suite(small_config, tmp_path, workers=1)
        second = run_suite(small_config, tmp_path, workers=1)
        assert second.completed == []
        assert len(second.skipped) == 4

    def test_no_resume_reruns(self, small_config, tmp_path):
        run_suite(small_config, tmp_path, workers=1)
        second = run_suite(small_config, tmp_path, workers=1, resume=False)
        assert len(second.completed) == 4

    def test_progress_callback(self, small_config, tmp_path):
        seen = []
        run_suite(
            small_config, tmp_path, workers=1,
            progress=lambda field, target, campaign: seen.append((field, target, campaign is None)),
        )
        assert len(seen) == 4
        assert all(not skipped for _, _, skipped in seen)

    def test_all_records_concatenates(self, small_config, tmp_path):
        result = run_suite(small_config, tmp_path, workers=1)
        merged = result.all_records("posit32")
        assert len(merged) == 2 * 3 * 32

    def test_results_deterministic_across_runs(self, small_config, tmp_path_factory):
        a_dir = tmp_path_factory.mktemp("a")
        b_dir = tmp_path_factory.mktemp("b")
        a = run_suite(small_config, a_dir, workers=1)
        b = run_suite(small_config, b_dir, workers=2)
        ra = a.records("cesm/cloud", "posit32")
        rb = b.records("cesm/cloud", "posit32")
        assert np.array_equal(ra.faulty, rb.faulty, equal_nan=True)

    def test_missing_log_raises(self, small_config, tmp_path):
        result = run_suite(small_config, tmp_path, workers=1)
        with pytest.raises(FileNotFoundError):
            result.records("nyx/temperature", "posit32")

    def test_unknown_field_fails_fast(self, tmp_path):
        config = SuiteConfig(fields=("no/such",), trials_per_bit=1, data_size=128)
        with pytest.raises(KeyError):
            run_suite(config, tmp_path)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_manifest(tmp_path)
