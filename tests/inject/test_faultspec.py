"""The fault-spec grammar, mask properties, and batched/scalar identity."""

import numpy as np
import pytest

from repro.formats import resolve
from repro.inject.faults import (
    AdjacentBitFlip,
    BurstBitFlip,
    FaultMasks,
    RandomBitFlip,
    SingleBitFlip,
    StuckAt,
    apply_masks,
)
from repro.inject.faultspec import (
    DEFAULT_FAULT_SPEC,
    FAULT_GRAMMAR,
    FaultSpecError,
    canonical_fault_spec,
    registered_fault_examples,
    resolve_fault,
)


class TestGrammar:
    @pytest.mark.parametrize("spec, canonical", [
        ("single", "single"),
        ("SINGLE", "single"),
        (" adjacent( 2 ) ", "adjacent(2)"),
        ("adjacent(3)", "adjacent(3)"),
        ("random(1)", "random(1)"),
        ("Random(4)", "random(4)"),
        ("burst(4,0.5)", "burst(4,0.5)"),
        ("burst(2, 1.0)", "burst(2,1)"),
        ("burst(3,0.25)", "burst(3,0.25)"),
        ("stuckat(31,1)", "stuckat(31,1)"),
        ("StuckAt(0, 0)", "stuckat(0,0)"),
    ])
    def test_canonicalization(self, spec, canonical):
        assert canonical_fault_spec(spec) == canonical

    def test_canonical_round_trips(self):
        for spec in registered_fault_examples():
            assert canonical_fault_spec(spec) == spec

    @pytest.mark.parametrize("spec, fragment", [
        ("adjacent(0)", "k >= 2"),
        ("adjacent(1)", "k >= 2"),
        ("random(0)", "k >= 1"),
        ("burst(1,0.5)", "k >= 2"),
        ("burst(4,0)", "0 < p <= 1"),
        ("burst(4,1.5)", "0 < p <= 1"),
        ("stuckat(-1,1)", ">= 0"),
        ("stuckat(3,2)", "0 or 1"),
        ("bogus", "does not match the fault grammar"),
        ("adjacent", "does not match the fault grammar"),
        ("single(2)", "does not match the fault grammar"),
    ])
    def test_invalid_specs_name_spec_and_constraint(self, spec, fragment):
        with pytest.raises(FaultSpecError) as excinfo:
            resolve_fault(spec)
        message = str(excinfo.value)
        assert repr(spec) in message
        assert fragment in message
        assert "examples" in message  # error style: always show valid specs

    def test_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            resolve_fault("nope")

    def test_grammar_table_covers_every_production(self):
        kinds = {resolve_fault(ex).kind for _, ex in FAULT_GRAMMAR.values()}
        assert kinds == {"single", "adjacent", "random", "burst", "stuckat"}


class TestForBit:
    def test_single_and_adjacent_anchor_at_the_shard_bit(self):
        assert resolve_fault("single").for_bit(5, 16) == SingleBitFlip(5)
        assert resolve_fault("adjacent(3)").for_bit(5, 16) == AdjacentBitFlip(5, 3)

    def test_burst_anchors_with_parameters(self):
        model = resolve_fault("burst(4,0.25)").for_bit(2, 16)
        assert model == BurstBitFlip(2, 4, 0.25)

    def test_random_and_stuckat_ignore_the_anchor(self):
        assert resolve_fault("random(2)").for_bit(0, 16) == RandomBitFlip(2)
        assert resolve_fault("random(2)").for_bit(9, 16) == RandomBitFlip(2)
        assert resolve_fault("stuckat(7,1)").for_bit(3, 16) == StuckAt(7, 1)

    def test_bit_out_of_range_rejected(self):
        with pytest.raises(FaultSpecError, match="out of range"):
            resolve_fault("single").for_bit(16, 16)

    def test_random_wider_than_word_rejected(self):
        with pytest.raises(FaultSpecError, match="only 8"):
            resolve_fault("random(9)").for_bit(0, 8)

    def test_stuckat_past_word_top_rejected(self):
        with pytest.raises(FaultSpecError, match="only 16 bits"):
            resolve_fault("stuckat(31,1)").for_bit(0, 16)

    def test_default_flag(self):
        assert resolve_fault("single").is_default
        assert resolve_fault(DEFAULT_FAULT_SPEC).is_default
        assert not resolve_fault("adjacent(2)").is_default


class TestSupport:
    def test_single_support_is_the_anchor(self):
        assert resolve_fault("single").support(5, 16) == (5,)

    def test_adjacent_clips_at_the_word_top(self):
        assert resolve_fault("adjacent(3)").support(14, 16) == (14, 15)

    def test_random_support_is_the_whole_word(self):
        assert resolve_fault("random(2)").support(3, 8) == tuple(range(8))

    def test_stuckat_support_is_its_position(self):
        assert resolve_fault("stuckat(7,1)").support(0, 16) == (7,)

    def test_odd_flip_guarantees(self):
        assert resolve_fault("single").odd_flips_guaranteed(0, 16)
        assert resolve_fault("adjacent(3)").odd_flips_guaranteed(0, 16)
        assert not resolve_fault("adjacent(2)").odd_flips_guaranteed(0, 16)
        # adjacent(2) clipped to one bit at the top is a single flip
        assert resolve_fault("adjacent(2)").odd_flips_guaranteed(15, 16)
        assert resolve_fault("random(3)").odd_flips_guaranteed(0, 16)
        assert not resolve_fault("random(2)").odd_flips_guaranteed(0, 16)
        assert not resolve_fault("burst(3,0.5)").odd_flips_guaranteed(0, 16)
        assert resolve_fault("stuckat(7,1)").odd_flips_guaranteed(0, 16)


def _models_for(nbits):
    """One concrete model per production, valid for this word width."""
    return [
        resolve_fault("single").for_bit(nbits // 2, nbits),
        resolve_fault("adjacent(2)").for_bit(nbits - 1, nbits),
        resolve_fault("random(2)").for_bit(0, nbits),
        resolve_fault("burst(3,0.5)").for_bit(1, nbits),
        resolve_fault(f"stuckat({nbits - 1},1)").for_bit(0, nbits),
        resolve_fault(f"stuckat({nbits // 2},0)").for_bit(0, nbits),
    ]


class TestMaskProperties:
    """XOR involution for flip models, idempotence for stuck-at."""

    @pytest.mark.parametrize("nbits", [8, 16, 32])
    def test_flip_masks_are_involutive(self, nbits):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 1 << min(nbits, 62), size=64).astype(np.uint64)
        for model in _models_for(nbits):
            if isinstance(model, StuckAt):
                continue
            masks = model.masks(bits.shape, nbits, np.random.default_rng(3))
            once = apply_masks(bits, masks, nbits)
            twice = apply_masks(once, masks, nbits)
            np.testing.assert_array_equal(twice, bits)

    @pytest.mark.parametrize("nbits", [8, 16, 32])
    def test_stuckat_masks_are_idempotent(self, nbits):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 1 << min(nbits, 62), size=64).astype(np.uint64)
        for value in (0, 1):
            model = StuckAt(nbits - 1, value)
            masks = model.masks(bits.shape, nbits, np.random.default_rng(3))
            once = apply_masks(bits, masks, nbits)
            twice = apply_masks(once, masks, nbits)
            np.testing.assert_array_equal(twice, once)

    def test_apply_masks_matches_model_apply(self):
        nbits = 16
        bits = np.random.default_rng(11).integers(
            0, 1 << nbits, size=128
        ).astype(np.uint64)
        for model in _models_for(nbits):
            via_apply = model.apply(bits, nbits, np.random.default_rng(5))
            masks = model.masks(bits.shape, nbits, np.random.default_rng(5))
            via_masks = apply_masks(bits, masks, nbits)
            np.testing.assert_array_equal(via_apply, via_masks)

    def test_masks_stay_inside_the_word(self):
        nbits = 12
        word = (1 << nbits) - 1
        bits = np.arange(64, dtype=np.uint64)
        for model in _models_for(nbits):
            masks = model.masks(bits.shape, nbits, np.random.default_rng(9))
            out = apply_masks(bits, masks, nbits)
            assert int(out.max()) <= word


@pytest.mark.parametrize("spec", ["posit8", "posit16", "ieee16", "bfloat16", "posit32", "ieee32"])
def test_batched_masked_decode_is_bit_identical_to_scalar(spec):
    """decode_masked over a block == per-element scalar application."""
    fmt = resolve(spec)
    nbits = fmt.nbits
    rng = np.random.default_rng(13)
    bits = rng.integers(0, 1 << min(nbits, 62), size=96).astype(fmt.dtype)
    for model in _models_for(nbits):
        masks = model.masks(bits.shape, nbits, np.random.default_rng(21))
        batched = np.asarray(fmt.decode_masked(bits, masks))
        xor = np.broadcast_to(np.asarray(masks.xor, dtype=np.uint64), bits.shape)
        set_mask = np.broadcast_to(np.asarray(masks.set, dtype=np.uint64), bits.shape)
        clear = np.broadcast_to(np.asarray(masks.clear, dtype=np.uint64), bits.shape)
        for i in range(len(bits)):
            one = apply_masks(
                bits[i : i + 1], FaultMasks(xor[i], set_mask[i], clear[i]), nbits
            )
            scalar = np.asarray(fmt.from_bits(one))[0]
            if np.isnan(scalar) and np.isnan(batched[i]):
                continue
            assert scalar == batched[i], (spec, model, i)
