"""Deprecated entry points: still working, now warning.

The unified run API (PR: resumable campaign runner) kept historical
names alive as thin forwarding shims; these tests pin both halves of
that contract — the warning and the unchanged behavior.  (The
``run_campaign_parallel`` wrapper completed its deprecation cycle and
was removed; its absence is pinned in ``tests/inject/test_parallel.py``.)
"""

import warnings

import pytest


class TestTargetsShim:
    def test_target_by_name_warns(self):
        from repro.inject.targets import target_by_name

        with pytest.warns(DeprecationWarning, match="repro.formats.resolve"):
            target = target_by_name("posit32")
        assert target.nbits == 32

    def test_target_by_name_keeps_keyerror_contract(self):
        from repro.inject.targets import target_by_name

        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError, match="known"):
                target_by_name("posit128")

    def test_available_targets_warns_and_matches_formats(self):
        from repro.formats import available_formats
        from repro.inject.targets import available_targets

        with pytest.warns(DeprecationWarning, match="available_formats"):
            names = available_targets()
        assert names == available_formats()

    def test_injection_target_alias_warns(self):
        import repro.inject.targets as targets
        from repro.formats import NumberFormat

        with pytest.warns(DeprecationWarning, match="NumberFormat"):
            alias = targets.InjectionTarget
        assert alias is NumberFormat

    def test_package_level_lazy_aliases_warn(self):
        import repro.inject as inject

        with pytest.warns(DeprecationWarning):
            assert inject.target_by_name("ieee32").nbits == 32

    def test_importing_package_stays_quiet(self):
        # The shims are lazy: merely importing repro.inject must not warn.
        import importlib

        import repro.inject as inject

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            importlib.reload(inject)

    def test_resolve_is_the_canonical_path(self):
        from repro.formats import resolve

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert resolve("posit32").nbits == 32
            assert resolve("binary(8,23)").nbits == 32
