"""Deprecated entry points: still working, now warning.

The unified run API (PR: resumable campaign runner) kept every
historical name alive as a thin forwarding shim; these tests pin both
halves of that contract — the warning and the unchanged behavior.
"""

import warnings

import numpy as np
import pytest

from repro.inject.campaign import CampaignConfig, run_campaign


def _identical(a, b) -> bool:
    return all(
        np.array_equal(
            getattr(a.records, col), getattr(b.records, col),
            equal_nan=getattr(a.records, col).dtype.kind == "f",
        )
        for col in a.records.column_names()
    )


class TestRunCampaignParallelWrapper:
    def test_warns_and_matches_unified_api(self, small_field):
        from repro.inject.parallel import run_campaign_parallel

        config = CampaignConfig(trials_per_bit=4, seed=21)
        expected = run_campaign(small_field, "posit32", config, jobs=2)
        with pytest.warns(DeprecationWarning, match="jobs=N"):
            legacy = run_campaign_parallel(small_field, "posit32", config, workers=2)
        assert _identical(expected, legacy)

    def test_importable_from_package(self, small_field):
        from repro.inject import run_campaign_parallel

        config = CampaignConfig(trials_per_bit=2, bits=(0,), seed=21)
        with pytest.warns(DeprecationWarning):
            result = run_campaign_parallel(small_field, "posit32", config, workers=1)
        assert result.trial_count == 2


class TestTargetsShim:
    def test_target_by_name_warns(self):
        from repro.inject.targets import target_by_name

        with pytest.warns(DeprecationWarning, match="repro.formats.resolve"):
            target = target_by_name("posit32")
        assert target.nbits == 32

    def test_target_by_name_keeps_keyerror_contract(self):
        from repro.inject.targets import target_by_name

        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError, match="known"):
                target_by_name("posit128")

    def test_available_targets_warns_and_matches_formats(self):
        from repro.formats import available_formats
        from repro.inject.targets import available_targets

        with pytest.warns(DeprecationWarning, match="available_formats"):
            names = available_targets()
        assert names == available_formats()

    def test_injection_target_alias_warns(self):
        import repro.inject.targets as targets
        from repro.formats import NumberFormat

        with pytest.warns(DeprecationWarning, match="NumberFormat"):
            alias = targets.InjectionTarget
        assert alias is NumberFormat

    def test_package_level_lazy_aliases_warn(self):
        import repro.inject as inject

        with pytest.warns(DeprecationWarning):
            assert inject.target_by_name("ieee32").nbits == 32

    def test_importing_package_stays_quiet(self):
        # The shims are lazy: merely importing repro.inject must not warn.
        import importlib

        import repro.inject as inject

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            importlib.reload(inject)

    def test_resolve_is_the_canonical_path(self):
        from repro.formats import resolve

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert resolve("posit32").nbits == 32
            assert resolve("binary(8,23)").nbits == 32
