"""Removed entry points stay removed.

The ``repro.inject.targets`` forwarding shims (``target_by_name``,
``InjectionTarget``, ``available_targets``) completed their deprecation
cycle and were deleted alongside the batched-codec API redesign; these
tests pin the removal and that the canonical replacements work without
warnings.  (The ``run_campaign_parallel`` wrapper's absence is pinned
in ``tests/inject/test_parallel.py``.)
"""

import warnings

import pytest


class TestTargetsRemoved:
    def test_targets_module_is_gone(self):
        with pytest.raises(ModuleNotFoundError):
            import repro.inject.targets  # noqa: F401

    def test_package_level_aliases_are_gone(self):
        import repro.inject as inject

        for name in ("target_by_name", "InjectionTarget", "available_targets"):
            with pytest.raises(AttributeError):
                getattr(inject, name)
            assert name not in inject.__all__

    def test_importing_package_stays_quiet(self):
        import importlib

        import repro.inject as inject

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            importlib.reload(inject)

    def test_resolve_is_the_canonical_path(self):
        from repro.formats import NumberFormat, available_formats, resolve

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert resolve("posit32").nbits == 32
            assert resolve("binary(8,23)").nbits == 32
            assert isinstance(resolve("posit32"), NumberFormat)
            assert "posit32" in available_formats()

    def test_resolve_backend_is_keyword_only(self):
        from repro.formats import resolve

        with pytest.raises(TypeError):
            resolve("posit16", "direct")  # noqa: too-many-function-args
        assert resolve("posit16", backend="direct").backend_name == "direct"
