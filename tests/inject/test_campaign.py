"""Tests for the campaign engine."""

import numpy as np
import pytest

from repro.inject.campaign import (
    CampaignConfig,
    PAPER_TRIALS_PER_BIT,
    bit_seeds,
    conversion_report,
    run_campaign,
)
from repro.formats import resolve


class TestConfig:
    def test_paper_default(self):
        assert CampaignConfig().trials_per_bit == PAPER_TRIALS_PER_BIT == 313

    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            CampaignConfig(trials_per_bit=0)

    def test_resolved_bits_default_all(self):
        target = resolve("posit32")
        assert CampaignConfig().resolved_bits(target) == tuple(range(32))

    def test_resolved_bits_subset(self):
        target = resolve("posit32")
        assert CampaignConfig(bits=(31, 5)).resolved_bits(target) == (31, 5)

    def test_resolved_bits_out_of_range(self):
        target = resolve("posit8")
        with pytest.raises(ValueError):
            CampaignConfig(bits=(9,)).resolved_bits(target)


class TestDeterminism:
    def test_same_seed_same_records(self, small_field):
        config = CampaignConfig(trials_per_bit=8, seed=5)
        a = run_campaign(small_field, "posit32", config)
        b = run_campaign(small_field, "posit32", config)
        for column in a.records.column_names():
            lhs = getattr(a.records, column)
            rhs = getattr(b.records, column)
            assert np.array_equal(lhs, rhs, equal_nan=lhs.dtype.kind == "f"), column

    def test_different_seed_differs(self, small_field):
        a = run_campaign(small_field, "posit32", CampaignConfig(trials_per_bit=8, seed=5))
        b = run_campaign(small_field, "posit32", CampaignConfig(trials_per_bit=8, seed=6))
        assert not np.array_equal(a.records.index, b.records.index)

    def test_bit_subset_reproduces_full_campaign_streams(self, small_field):
        full = run_campaign(small_field, "posit32", CampaignConfig(trials_per_bit=8, seed=5))
        subset = run_campaign(
            small_field, "posit32", CampaignConfig(trials_per_bit=8, seed=5, bits=(7, 20))
        )
        for bit in (7, 20):
            full_bit = full.records.for_bit(bit)
            subset_bit = subset.records.for_bit(bit)
            assert np.array_equal(full_bit.index, subset_bit.index)
            assert np.array_equal(full_bit.faulty, subset_bit.faulty, equal_nan=True)


class TestStructure:
    def test_trial_count(self, small_field):
        result = run_campaign(small_field, "ieee32", CampaignConfig(trials_per_bit=5))
        assert result.trial_count == 5 * 32
        assert result.target_name == "ieee32"
        assert result.data_size == small_field.size

    def test_baseline_is_stored_representation(self, small_field):
        result = run_campaign(small_field, "posit32", CampaignConfig(trials_per_bit=2))
        target = resolve("posit32")
        stored = target.round_trip(small_field)
        assert result.baseline.mean == pytest.approx(float(np.mean(stored)))

    def test_every_bit_covered(self, small_field):
        result = run_campaign(small_field, "posit16", CampaignConfig(trials_per_bit=3))
        assert set(result.records.bit.tolist()) == set(range(16))

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(np.array([], dtype=np.float32), "posit32")

    def test_label(self, small_field):
        result = run_campaign(small_field, "posit32",
                              CampaignConfig(trials_per_bit=2), label="demo")
        assert result.label == "demo"


class TestConversionReport:
    def test_ieee32_exact_for_float32(self, small_field):
        report = conversion_report(small_field, resolve("ieee32"))
        assert report.exact_fraction == 1.0
        assert report.mean_relative_error == 0.0

    def test_posit32_small_error(self, small_field):
        report = conversion_report(small_field, resolve("posit32"))
        # The paper quotes ~1e-5 for the double conversion; the direct
        # conversion is far tighter but must be nonzero for generic data.
        assert report.max_relative_error < 1e-4
        assert 0.0 <= report.mean_relative_error < 1e-6

    def test_posit8_coarse(self, small_field):
        report = conversion_report(small_field, resolve("posit8"))
        assert report.exact_fraction < 1.0
        assert report.mean_relative_error > 1e-4


class TestBitSeeds:
    def test_one_seed_per_bit(self):
        target = resolve("posit32")
        seeds = bit_seeds(CampaignConfig(seed=1), target)
        assert set(seeds) == set(range(32))

    def test_subset_keeps_bit_alignment(self):
        target = resolve("posit32")
        full = bit_seeds(CampaignConfig(seed=1), target)
        subset = bit_seeds(CampaignConfig(seed=1, bits=(3, 9)), target)
        assert set(subset) == {3, 9}
        for bit in (3, 9):
            assert np.array_equal(
                np.random.default_rng(full[bit]).integers(0, 100, 5),
                np.random.default_rng(subset[bit]).integers(0, 100, 5),
            )
