"""Tests for trial-log verification."""

import numpy as np
import pytest

from repro.inject.campaign import CampaignConfig, run_campaign
from repro.inject.results import TrialRecords
from repro.inject.validate import verify_records


@pytest.fixture(scope="module")
def genuine(small_field_module):
    return run_campaign(
        small_field_module, "posit32", CampaignConfig(trials_per_bit=6, seed=3)
    ).records


@pytest.fixture(scope="module")
def small_field_module():
    rng = np.random.default_rng(12345)
    return np.concatenate([
        rng.normal(50.0, 20.0, 1000),
        rng.lognormal(-2, 2, 500),
    ]).astype(np.float32)


class TestVerify:
    def test_genuine_log_verifies(self, genuine):
        report = verify_records(genuine, "posit32")
        assert report.ok, report.summary()
        assert report.total == len(genuine)
        assert "OK" in report.summary()

    def test_tampered_faulty_detected(self, genuine):
        tampered = genuine.select(slice(None))
        tampered.faulty = tampered.faulty.copy()
        tampered.faulty[7] *= 1.0001
        report = verify_records(tampered, "posit32")
        assert not report.ok
        assert report.mismatched_faulty >= 1
        assert report.examples

    def test_wrong_target_detected(self, genuine):
        report = verify_records(genuine, "ieee32")
        assert not report.ok

    def test_tampered_field_detected(self, genuine):
        tampered = genuine.select(slice(None))
        tampered.field = tampered.field.copy()
        tampered.field[0] = 99
        report = verify_records(tampered, "posit32")
        assert report.mismatched_fields >= 1

    def test_empty_log_ok(self):
        report = verify_records(TrialRecords.empty(), "posit32")
        assert report.ok
        assert report.total == 0

    def test_csv_roundtrip_preserves_verifiability(self, genuine, tmp_path):
        path = tmp_path / "log.csv"
        genuine.write_csv(path)
        loaded = TrialRecords.read_csv(path)
        assert verify_records(loaded, "posit32").ok

    def test_cli_verify(self, genuine, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = tmp_path / "log.csv"
        genuine.write_csv(path)
        assert cli_main(["verify", str(path), "posit32"]) == 0
        assert "OK" in capsys.readouterr().out
        assert cli_main(["verify", str(path), "ieee32"]) == 1
