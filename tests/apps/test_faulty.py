"""Tests for application-level fault injection."""

import numpy as np
import pytest

from repro.apps.faulty import (
    AppFaultSpec,
    bit_sweep_campaign,
    run_faulty_solve,
    summarize_outcomes,
)
from repro.apps.stencil import PoissonProblem

PROBLEM = PoissonProblem(grid=8)


class TestSingleFault:
    def test_fraction_flip_self_heals(self):
        # A low fraction bit barely perturbs the state; Jacobi recovers.
        spec = AppFaultSpec(iteration=5, flat_index=10, bit=2)
        outcome = run_faulty_solve(PROBLEM, "posit32", spec,
                                   max_iterations=4000, tolerance=1e-7)
        assert outcome.converged
        assert outcome.solution_error < 1e-4
        assert outcome.iteration_overhead >= 0 or outcome.iteration_overhead == 0

    def test_exponent_flip_costs_iterations_ieee(self):
        # IEEE bit 30 flip inflates a value enormously mid-solve.
        spec = AppFaultSpec(iteration=5, flat_index=10, bit=30)
        clean_spec = AppFaultSpec(iteration=5, flat_index=10, bit=0)
        big = run_faulty_solve(PROBLEM, "ieee32", spec,
                               max_iterations=8000, tolerance=1e-7)
        small = run_faulty_solve(PROBLEM, "ieee32", clean_spec,
                                 max_iterations=8000, tolerance=1e-7)
        assert big.iteration_overhead > small.iteration_overhead

    def test_outcome_fields(self):
        spec = AppFaultSpec(iteration=3, flat_index=0, bit=1)
        outcome = run_faulty_solve(PROBLEM, "posit16", spec,
                                   max_iterations=3000, tolerance=1e-6)
        assert outcome.spec == spec
        assert outcome.clean_iterations > 0
        assert np.isfinite(outcome.solution_error)


class TestCampaign:
    def test_sweep_shape(self):
        outcomes = bit_sweep_campaign(
            PROBLEM, "posit16", iteration=4, seed=1, trials_per_bit=1,
            max_iterations=2000, tolerance=1e-6,
        )
        assert len(outcomes) == 16
        bits = sorted(o.spec.bit for o in outcomes)
        assert bits == list(range(16))

    def test_deterministic(self):
        a = bit_sweep_campaign(PROBLEM, "posit16", iteration=4, seed=9,
                               trials_per_bit=1, max_iterations=500)
        b = bit_sweep_campaign(PROBLEM, "posit16", iteration=4, seed=9,
                               trials_per_bit=1, max_iterations=500)
        assert [o.spec for o in a] == [o.spec for o in b]
        assert [o.solution_error for o in a] == [o.solution_error for o in b]

    def test_summary(self):
        outcomes = bit_sweep_campaign(PROBLEM, "posit16", iteration=4, seed=1,
                                      trials_per_bit=1, max_iterations=2000,
                                      tolerance=1e-6)
        summary = summarize_outcomes(outcomes)
        assert summary["trials"] == 16
        assert 0.0 <= summary["converged_fraction"] <= 1.0
        assert summary["max_iteration_overhead"] >= summary["mean_iteration_overhead"]

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_outcomes([])
