"""Tests for application-level fault injection."""

import numpy as np
import pytest

from repro.apps.campaign import OUTCOMES, AppCampaignConfig, run_app_campaign
from repro.apps.faulty import (
    AppFaultSpec,
    run_faulty_solve,
    summarize_outcomes,
)
from repro.apps.stencil import PoissonProblem

PROBLEM = PoissonProblem(grid=8)


class TestSingleFault:
    def test_fraction_flip_self_heals(self):
        # A low fraction bit barely perturbs the state; Jacobi recovers.
        spec = AppFaultSpec(iteration=5, flat_index=10, bit=2)
        outcome = run_faulty_solve(PROBLEM, "posit32", spec,
                                   max_iterations=4000, tolerance=1e-7)
        assert outcome.converged
        assert outcome.solution_error < 1e-4
        assert outcome.iteration_overhead >= 0 or outcome.iteration_overhead == 0

    def test_exponent_flip_costs_iterations_ieee(self):
        # IEEE bit 30 flip inflates a value enormously mid-solve.
        spec = AppFaultSpec(iteration=5, flat_index=10, bit=30)
        clean_spec = AppFaultSpec(iteration=5, flat_index=10, bit=0)
        big = run_faulty_solve(PROBLEM, "ieee32", spec,
                               max_iterations=8000, tolerance=1e-7)
        small = run_faulty_solve(PROBLEM, "ieee32", clean_spec,
                                 max_iterations=8000, tolerance=1e-7)
        assert big.iteration_overhead > small.iteration_overhead

    def test_outcome_fields(self):
        spec = AppFaultSpec(iteration=3, flat_index=0, bit=1)
        outcome = run_faulty_solve(PROBLEM, "posit16", spec,
                                   max_iterations=3000, tolerance=1e-6)
        assert outcome.spec == spec
        assert outcome.clean_iterations > 0
        assert np.isfinite(outcome.solution_error)


class TestCampaign:
    # The bit_sweep_campaign loop this class used to cover is gone;
    # app-scale sweeps run through repro.apps.campaign now.

    def test_sweep_shape(self):
        config = AppCampaignConfig(
            app="jacobi", grid=8, iterations=(4,), trials_per_cell=1, seed=1,
        )
        result = run_app_campaign(config, "posit16")
        assert result.trial_count == 16
        assert sorted(int(b) for b in np.unique(result.records.bit)) == list(range(16))
        assert set(result.records.outcome) <= set(OUTCOMES)

    def test_deterministic(self):
        config = AppCampaignConfig(
            app="jacobi", grid=8, iterations=(4,), trials_per_cell=1, seed=9,
            max_iterations=500,
        )
        a = run_app_campaign(config, "posit16")
        b = run_app_campaign(config, "posit16")
        assert a.records.to_csv_string() == b.records.to_csv_string()

    def test_summary(self):
        outcomes = [
            run_faulty_solve(
                PROBLEM, "posit16", AppFaultSpec(iteration=4, flat_index=i, bit=b),
                max_iterations=2000, tolerance=1e-6,
            )
            for i, b in ((3, 1), (10, 14))
        ]
        summary = summarize_outcomes(outcomes)
        assert summary["trials"] == 2
        assert 0.0 <= summary["converged_fraction"] <= 1.0
        assert summary["max_iteration_overhead"] >= summary["mean_iteration_overhead"]

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_outcomes([])
