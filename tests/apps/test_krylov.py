"""Tests for the conjugate-gradient workload."""

import numpy as np
import pytest

from repro.apps.krylov import cg_fault_outcome, cg_solve, poisson_matvec
from repro.apps.stencil import PoissonProblem

PROBLEM = PoissonProblem(grid=12)


class TestMatvec:
    def test_symmetric(self, rng):
        grid = 8
        spacing = 1.0 / (grid + 1)
        x = rng.normal(0, 1, grid * grid)
        y = rng.normal(0, 1, grid * grid)
        left = float(np.dot(y, poisson_matvec(x, grid, spacing)))
        right = float(np.dot(x, poisson_matvec(y, grid, spacing)))
        assert left == pytest.approx(right, rel=1e-12)

    def test_positive_definite_sample(self, rng):
        grid = 8
        spacing = 1.0 / (grid + 1)
        for _ in range(20):
            x = rng.normal(0, 1, grid * grid)
            assert np.dot(x, poisson_matvec(x, grid, spacing)) > 0


class TestSolve:
    def test_converges_float64_smooth_rhs(self):
        # The sine rhs is a discrete eigenvector: CG nails it immediately
        # and the solution matches the analytic one.
        result = cg_solve(PROBLEM, None, max_iterations=300, tolerance=1e-10,
                          rhs=PROBLEM.rhs())
        assert result.converged
        exact = PROBLEM.exact_solution().reshape(-1)
        assert result.error_vs(exact) < 0.02

    def test_point_source_needs_many_iterations(self):
        result = cg_solve(PROBLEM, None, max_iterations=500, tolerance=1e-8)
        assert result.converged
        assert result.iterations > 5

    def test_matches_direct_solution(self):
        # CG on the point source agrees with a dense direct solve.
        import numpy.linalg as la

        grid = PROBLEM.grid
        n = grid * grid
        matrix = np.zeros((n, n))
        identity = np.eye(n)
        for j in range(n):
            matrix[:, j] = poisson_matvec(identity[:, j], grid, PROBLEM.spacing)
        rhs = PROBLEM.point_source_rhs().reshape(-1)
        direct = la.solve(matrix, rhs)
        cg = cg_solve(PROBLEM, None, max_iterations=1000, tolerance=1e-12)
        assert cg.error_vs(direct) < 1e-8

    @pytest.mark.parametrize("target", ["ieee32", "posit32"])
    def test_converges_with_stored_state(self, target):
        result = cg_solve(PROBLEM, target, max_iterations=500, tolerance=1e-6)
        assert result.converged

    def test_residuals_recorded(self):
        result = cg_solve(PROBLEM, None, max_iterations=5, tolerance=0.0)
        assert len(result.residual_norms) == 5


class TestFaults:
    """CG's recursive residual never re-reads x, so a flip in the
    solution vector is *silent*: the solver still reports convergence
    while the corruption lands in the answer — the classic Krylov SDC
    behaviour (Elliott et al.), the opposite of Jacobi's self-healing."""

    #: Index of the point source — the one place x is sure to be nonzero
    #: after a few iterations (CG's influence spreads one ring per step).
    SOURCE = (PROBLEM.grid // 3) * PROBLEM.grid + (2 * PROBLEM.grid) // 3

    def test_low_bit_flip_negligible(self):
        outcome = cg_fault_outcome(
            PROBLEM, "posit32", iteration=3, flat_index=self.SOURCE, bit=2,
            max_iterations=1000, tolerance=1e-6,
        )
        assert outcome["converged"]
        assert outcome["solution_error"] < 1e-3

    def test_high_bit_flip_is_silent_corruption(self):
        high = cg_fault_outcome(
            PROBLEM, "ieee32", iteration=3, flat_index=self.SOURCE, bit=30,
            max_iterations=2000, tolerance=1e-6,
        )
        # Convergence is still reported (silent!) but the answer is wrong.
        assert high["converged"]
        assert high["iteration_overhead"] == 0
        assert high["solution_error"] > 0.1

    def test_posit_silent_corruption_orders_smaller_than_ieee(self):
        ieee = cg_fault_outcome(
            PROBLEM, "ieee32", iteration=3, flat_index=self.SOURCE, bit=30,
            max_iterations=2000, tolerance=1e-6,
        )
        posit = cg_fault_outcome(
            PROBLEM, "posit32", iteration=3, flat_index=self.SOURCE, bit=30,
            max_iterations=2000, tolerance=1e-6,
        )
        assert posit["solution_error"] < ieee["solution_error"] / 1e6

    def test_jacobi_self_heals_where_cg_does_not(self):
        from repro.apps.faulty import AppFaultSpec, run_faulty_solve

        cg = cg_fault_outcome(
            PROBLEM, "ieee32", iteration=3, flat_index=self.SOURCE, bit=28,
            max_iterations=2000, tolerance=1e-6,
        )
        jacobi = run_faulty_solve(
            PROBLEM, "ieee32",
            AppFaultSpec(iteration=3, flat_index=self.SOURCE, bit=28),
            max_iterations=8000, tolerance=1e-6,
        )
        assert jacobi.solution_error < cg["solution_error"] / 10

    def test_deterministic(self):
        a = cg_fault_outcome(PROBLEM, "posit32", 3, 10, 20, max_iterations=400)
        b = cg_fault_outcome(PROBLEM, "posit32", 3, 10, 20, max_iterations=400)
        assert a == b
