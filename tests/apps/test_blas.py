"""Tests for the stored-format BLAS kernels."""

import numpy as np
import pytest

from repro.apps.blas import (
    dot_error_comparison,
    fused_posit_dot,
    stored_axpy,
    stored_dot,
)
from repro.formats import resolve


class TestStoredDot:
    def test_exact_for_small_integers(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([4.0, 5.0, 6.0])
        result = stored_dot(a, b, "posit32")
        assert result.value == 32.0
        assert result.reference == 32.0
        assert result.relative_error == 0.0

    def test_accumulation_error_appears_in_low_precision(self, rng):
        a = rng.normal(0, 1, 200)
        b = rng.normal(0, 1, 200)
        coarse = stored_dot(a, b, "posit8")
        fine = stored_dot(a, b, "posit32")
        assert coarse.relative_error > fine.relative_error

    def test_reference_is_exact_not_float64(self):
        # Exact cancellation: float64 np.dot may keep residue, the exact
        # reference must not.
        a = np.array([1e16, -1e16, 1.0])
        b = np.array([1.0, 1.0, 1.0])
        result = stored_dot(a, b, "ieee64")
        assert result.reference == 1.0


class TestQuireDot:
    def test_single_rounding(self, rng):
        a = rng.normal(0, 100, 50)
        b = rng.normal(0, 100, 50)
        fused = fused_posit_dot(a, b, "posit32")
        sequential = stored_dot(a, b, "posit32")
        assert fused.relative_error <= sequential.relative_error + 1e-12
        # Quire result differs from the exact value by at most one
        # posit32 rounding (~2^-27 relative near 1).
        assert fused.relative_error < 1e-7

    def test_cancellation_recovered(self):
        big = np.array([1e6, -1e6, 2.0])
        ones = np.ones(3)
        fused = fused_posit_dot(big, ones, "posit32")
        assert fused.value == 2.0

    def test_rejects_ieee_target(self):
        with pytest.raises(TypeError):
            fused_posit_dot(np.ones(2), np.ones(2), "ieee32")


class TestAxpy:
    def test_stored(self):
        result = stored_axpy(2.0, np.array([1.0, 2.0]), np.array([3.0, 4.0]), "posit32")
        assert result.tolist() == [5.0, 8.0]

    def test_storage_rounds(self):
        target = resolve("posit8")
        result = stored_axpy(1.0, np.array([1.0]), np.array([1e-4]), target)
        # 1 + 1e-4 is not representable in posit8; it rounds back to 1.
        assert result[0] == 1.0


class TestComparison:
    def test_strategies_ranked(self):
        rng = np.random.default_rng(0)
        big = rng.normal(0, 1e6, 10)
        x = np.concatenate([big, -big, [1.0]])
        y = np.concatenate([np.ones(20), [1.0]])
        errors = dot_error_comparison(x, y)
        assert set(errors) == {"ieee32_sequential", "posit32_sequential", "posit32_quire"}
        assert errors["posit32_quire"] <= errors["posit32_sequential"]
