"""Tests for the Jacobi Poisson solver substrate."""

import numpy as np
import pytest

from repro.apps.stencil import PoissonProblem, jacobi_solve


class TestProblem:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonProblem(grid=2)

    def test_exact_solution_satisfies_discrete_equation(self):
        problem = PoissonProblem(grid=20)
        u = problem.exact_solution()
        f = problem.rhs()
        padded = np.pad(u, 1)
        laplacian = (
            4 * u
            - padded[:-2, 1:-1] - padded[2:, 1:-1]
            - padded[1:-1, :-2] - padded[1:-1, 2:]
        ) / problem.spacing**2
        # Discrete Laplacian of the continuous solution matches f to
        # O(h^2) truncation error.
        assert np.max(np.abs(laplacian - f)) < 0.1


class TestSolver:
    def test_converges_float64(self):
        problem = PoissonProblem(grid=12)
        result = jacobi_solve(problem, None, max_iterations=5000, tolerance=1e-9)
        assert result.converged
        assert not result.diverged
        # Converged solution approximates the analytic one to the
        # discretization error.
        assert result.error_vs(problem.exact_solution()) < 0.02

    def test_residuals_monotone_tail(self):
        problem = PoissonProblem(grid=12)
        result = jacobi_solve(problem, None, max_iterations=500, tolerance=0.0)
        tail = np.asarray(result.residuals[50:])
        assert np.all(np.diff(tail) <= 1e-15)

    @pytest.mark.parametrize("target", ["ieee32", "posit32", "posit16"])
    def test_converges_with_stored_state(self, target):
        problem = PoissonProblem(grid=10)
        result = jacobi_solve(problem, target, max_iterations=5000, tolerance=1e-6)
        assert result.converged
        assert np.all(np.isfinite(result.solution))

    def test_posit32_matches_float64_closely(self):
        problem = PoissonProblem(grid=10)
        exact = jacobi_solve(problem, None, max_iterations=3000, tolerance=1e-8)
        stored = jacobi_solve(problem, "posit32", max_iterations=3000, tolerance=1e-8)
        assert stored.error_vs(exact.solution) < 1e-4

    def test_fault_hook_called(self):
        problem = PoissonProblem(grid=8)
        seen = []

        def hook(iteration, state):
            seen.append(iteration)
            return state

        jacobi_solve(problem, None, max_iterations=5, tolerance=0.0, fault_hook=hook)
        assert seen == [1, 2, 3, 4, 5]

    def test_max_iterations_cap(self):
        problem = PoissonProblem(grid=12)
        result = jacobi_solve(problem, None, max_iterations=7, tolerance=0.0)
        assert result.iterations == 7
        assert not result.converged

    def test_error_vs_zero_reference(self):
        problem = PoissonProblem(grid=8)
        result = jacobi_solve(problem, None, max_iterations=3, tolerance=0.0)
        zero = np.zeros_like(result.solution)
        assert result.error_vs(zero) == float(np.linalg.norm(result.solution))
