"""App-campaign core: config identity, cell mapping, outcome taxonomy.

Covers the layer's pure contracts — schedule validation, cell id
round-trips, scalar/vector classification agreement (hypothesis-driven),
the zero-mask ≡ no-fault identity — and the seeding discipline:
``run_app_shard`` replayed in a fresh process must be byte-identical,
because work-stealing workers rely on it.
"""

import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.campaign import (
    OUTCOMES,
    AppCampaignConfig,
    AppTrialRecords,
    cell_seeds,
    classify_outcome,
    classify_outcomes,
    run_app_shard,
)
from repro.apps.campaign import _clean_solve, _mask_injector, _solve
from repro.formats import resolve
from repro.inject.faults import FaultMasks


class TestConfig:
    def test_solver_defaults_resolve_per_app(self):
        cg = AppCampaignConfig(app="cg")
        assert (cg.max_iterations, cg.tolerance) == (500, 1e-8)
        jacobi = AppCampaignConfig(app="jacobi")
        assert (jacobi.max_iterations, jacobi.tolerance) == (2000, 1e-6)

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="app"):
            AppCampaignConfig(app="gmres")

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            AppCampaignConfig(app="cg", iterations=())
        with pytest.raises(ValueError):
            AppCampaignConfig(app="cg", iterations=(0,))
        with pytest.raises(ValueError):
            AppCampaignConfig(app="cg", iterations=(5, 5))
        with pytest.raises(ValueError):
            AppCampaignConfig(app="cg", iterations=(7, 3))

    def test_schedule_must_fit_the_solver_budget(self):
        with pytest.raises(ValueError, match="max_iterations"):
            AppCampaignConfig(app="cg", iterations=(10,), max_iterations=5)

    def test_fault_spec_canonicalized(self):
        config = AppCampaignConfig(app="cg", fault="burst(3, 0.5)")
        assert config.fault == "burst(3,0.5)"

    def test_manifest_round_trip(self):
        config = AppCampaignConfig(
            app="jacobi", grid=10, iterations=(2, 9), trials_per_cell=2,
            seed=7, fault="adjacent(2)", sdc_threshold=1e-2,
        )
        payload = config.manifest_payload()
        assert payload["name"] == "jacobi"
        assert payload["iterations"] == [2, 9]
        assert payload["sdc_threshold"] == 1e-2


class TestCellMapping:
    def test_cells_invert_to_schedule_and_bits(self):
        config = AppCampaignConfig(app="cg", iterations=(2, 7), bits=(0, 3, 15))
        target = resolve("posit16")
        cells = config.cells(target)
        assert len(cells) == 6
        located = {config.cell_location(cell, target.nbits) for cell in cells}
        assert located == {(i, b) for i in (2, 7) for b in (0, 3, 15)}

    def test_cell_beyond_schedule_rejected(self):
        config = AppCampaignConfig(app="cg", iterations=(2,))
        with pytest.raises(ValueError, match="schedule"):
            config.cell_location(64, 16)

    def test_cell_seeds_are_pure_functions_of_identity(self):
        config = AppCampaignConfig(app="cg", iterations=(2, 7), seed=5)
        first = cell_seeds(config, "posit16")
        second = cell_seeds(config, "posit16")
        assert first.keys() == second.keys()
        for cell in first:
            assert (
                first[cell].generate_state(4).tolist()
                == second[cell].generate_state(4).tolist()
            )


class TestClassifyOutcome:
    def test_priority_order(self):
        assert classify_outcome(False, False, 0, 0.0, 1e-3) == "diverged"
        assert classify_outcome(True, True, 0, 0.0, 1e-3) == "diverged"
        assert classify_outcome(True, False, 3, 1.0, 1e-3) == "sdc"
        assert classify_outcome(True, False, 0, float("nan"), 1e-3) == "sdc"
        assert classify_outcome(True, False, 3, 0.0, 1e-3) == "delayed"
        assert classify_outcome(True, False, 0, 1e-6, 1e-3) == "converged"

    @settings(max_examples=200, deadline=None)
    @given(
        converged=st.booleans(),
        diverged=st.booleans(),
        overhead=st.integers(min_value=-5, max_value=500),
        error=st.one_of(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            st.just(float("nan")),
            st.just(float("inf")),
        ),
        threshold=st.floats(min_value=1e-9, max_value=1.0, allow_nan=False),
    )
    def test_vectorized_matches_scalar(
        self, converged, diverged, overhead, error, threshold
    ):
        scalar = classify_outcome(converged, diverged, overhead, error, threshold)
        vector = classify_outcomes(
            np.array([converged]),
            np.array([diverged]),
            np.array([overhead]),
            np.array([error]),
            threshold,
        )
        assert scalar in OUTCOMES
        assert vector[0] == scalar

    @settings(max_examples=200, deadline=None)
    @given(
        overhead=st.integers(min_value=0, max_value=50),
        error=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        lo=st.floats(min_value=1e-9, max_value=1.0, allow_nan=False),
        hi=st.floats(min_value=1e-9, max_value=1.0, allow_nan=False),
    )
    def test_sdc_set_shrinks_as_threshold_grows(self, overhead, error, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        at_hi = classify_outcome(True, False, overhead, error, hi)
        at_lo = classify_outcome(True, False, overhead, error, lo)
        if at_hi == "sdc":
            assert at_lo == "sdc"

    @settings(max_examples=50, deadline=None)
    @given(threshold=st.floats(min_value=1e-12, max_value=1e3, allow_nan=False))
    def test_no_fault_always_converged(self, threshold):
        # A clean replay: converged, no overhead, zero error vs itself.
        assert classify_outcome(True, False, 0, 0.0, threshold) == "converged"


class TestZeroMaskIsNoFault:
    @pytest.mark.parametrize("app", ["cg", "jacobi"])
    def test_zero_mask_at_final_iteration_matches_clean(self, app):
        config = AppCampaignConfig(app=app, grid=8, iterations=(4,))
        target = resolve("posit16")
        clean = _clean_solve(config, target)
        zero = FaultMasks(xor=0, set=0, clear=0)
        faulty = _solve(config, target, _mask_injector(4, 10, zero, target))
        assert faulty.iterations == clean.iterations
        assert faulty.converged == clean.converged
        assert faulty.diverged == clean.diverged
        error = faulty.error_vs(clean.solution)
        assert error == 0.0
        outcome = classify_outcome(
            faulty.converged, faulty.diverged,
            faulty.iterations - clean.iterations, error, config.sdc_threshold,
        )
        no_fault = classify_outcome(
            clean.converged, clean.diverged, 0, 0.0, config.sdc_threshold
        )
        assert outcome == no_fault


class TestShardRecords:
    def test_csv_round_trip_exact(self):
        config = AppCampaignConfig(
            app="cg", grid=8, iterations=(3,), trials_per_cell=2, seed=11,
            fault="adjacent(2)",
        )
        target = resolve("posit16")
        cell = config.cells(target)[5]
        records = run_app_shard(
            config, target, cell, config.trials_per_cell,
            cell_seeds(config, target)[cell],
        )
        clone = AppTrialRecords.from_csv_string(records.to_csv_string())
        assert clone.to_csv_string() == records.to_csv_string()
        assert set(records.outcome) <= set(OUTCOMES)
        assert set(records.fault_spec) == {"adjacent(2)"}

    def test_default_fault_has_no_spec_column(self):
        config = AppCampaignConfig(
            app="cg", grid=8, iterations=(3,), trials_per_cell=1, seed=11
        )
        target = resolve("posit16")
        cell = config.cells(target)[0]
        records = run_app_shard(
            config, target, cell, 1, cell_seeds(config, target)[cell]
        )
        assert records.fault_spec is None
        assert "fault_spec" not in records.to_csv_string().splitlines()[1]


class TestCrossProcessReplay:
    """Satellite: shard RNG must derive purely from (seed, iteration, bit)."""

    def test_shard_replay_is_byte_identical_in_a_fresh_process(self, tmp_path):
        config = AppCampaignConfig(
            app="cg", grid=8, iterations=(3,), trials_per_cell=2, seed=11,
            fault="adjacent(2)",
        )
        target = resolve("posit16")
        cell = config.cells(target)[7]
        records = run_app_shard(
            config, target, cell, config.trials_per_cell,
            cell_seeds(config, target)[cell],
        )
        here = tmp_path / "in_process.csv"
        records.write_csv(here)

        there = tmp_path / "fresh_process.csv"
        script = textwrap.dedent(f"""
            from repro.apps.campaign import (
                AppCampaignConfig, cell_seeds, run_app_shard,
            )
            from repro.formats import resolve

            config = AppCampaignConfig(
                app="cg", grid=8, iterations=(3,), trials_per_cell=2,
                seed=11, fault="adjacent(2)",
            )
            target = resolve("posit16")
            records = run_app_shard(
                config, target, {cell}, 2, cell_seeds(config, target)[{cell}],
            )
            records.write_csv({str(there)!r})
        """)
        subprocess.run([sys.executable, "-c", script], check=True, timeout=300)
        assert there.read_bytes() == here.read_bytes()
