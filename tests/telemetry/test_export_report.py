"""Tests for telemetry exporters and the markdown run report."""

import numpy as np
import pytest

from repro.formats import resolve
from repro.inject import CampaignConfig, run_campaign
from repro.telemetry import (
    Telemetry,
    TelemetrySnapshot,
    format_duration,
    load_run_snapshot,
    load_snapshot,
    render_prometheus,
    render_run_report,
    telemetry_path,
    write_run_report,
    write_snapshot,
)


@pytest.fixture
def snapshot():
    t = Telemetry()
    t.count("inject.trials", 64)
    with t.span("inject.shard"):
        with t.span("formats.decode"):
            pass
    return t.snapshot()


class TestJsonExport:
    def test_write_load_round_trip(self, tmp_path, snapshot):
        path = write_snapshot(snapshot, tmp_path / "telemetry.json")
        restored = load_snapshot(path)
        assert restored.counters == snapshot.counters
        assert set(restored.spans) == {"inject.shard", "formats.decode"}

    def test_write_creates_parent_dirs(self, tmp_path, snapshot):
        path = write_snapshot(snapshot, tmp_path / "deep" / "nest" / "t.json")
        assert path.is_file()

    def test_no_tmp_file_left_behind(self, tmp_path, snapshot):
        write_snapshot(snapshot, tmp_path / "telemetry.json")
        assert [p.name for p in tmp_path.iterdir()] == ["telemetry.json"]

    def test_load_run_snapshot_absent(self, tmp_path):
        assert load_run_snapshot(tmp_path) is None

    def test_telemetry_path(self, tmp_path):
        assert telemetry_path(tmp_path).name == "telemetry.json"


class TestPrometheus:
    def test_counters_and_spans_rendered(self, snapshot):
        text = render_prometheus(snapshot)
        assert 'repro_counter_total{name="inject.trials"} 64' in text
        assert 'repro_span_count{name="inject.shard"} 1' in text
        assert 'repro_span_seconds_total{name="formats.decode"}' in text
        assert 'repro_span_self_seconds_total{name="inject.shard"}' in text
        assert "# TYPE repro_counter_total counter" in text

    def test_custom_prefix_and_labels(self, snapshot):
        text = render_prometheus(snapshot, prefix="posit", labels={"run": "r1"})
        assert 'posit_counter_total{name="inject.trials",run="r1"} 64' in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(TelemetrySnapshot()) == ""


@pytest.fixture(scope="module")
def profiled_run(tmp_path_factory):
    """A real small profiled campaign run directory."""
    run_dir = tmp_path_factory.mktemp("runs") / "profiled"
    rng = np.random.default_rng(7)
    data = rng.normal(size=256)
    result = run_campaign(
        data,
        "posit16",
        CampaignConfig(trials_per_bit=4, bits=(0, 3, 9), seed=11),
        run_dir=run_dir,
        telemetry=True,
    )
    return run_dir, result


class TestRunReport:
    def test_profiled_run_writes_telemetry_json(self, profiled_run):
        run_dir, result = profiled_run
        assert telemetry_path(run_dir).is_file()
        assert "telemetry" in result.extras
        snapshot = load_run_snapshot(run_dir)
        assert snapshot.counters["inject.trials"] == 12
        assert snapshot.spans["inject.shard"].count == 3

    def test_report_sections(self, profiled_run):
        run_dir, _ = profiled_run
        report = render_run_report(run_dir)
        assert "# Campaign run report" in report
        assert "## Where the time went" in report
        assert "## Spans" in report
        assert "## Counters" in report
        assert "## Reconciliation" in report
        assert "## Shards" in report
        assert "`inject.shard`" in report
        assert "posit16" in report

    def test_reconciliation_agrees(self, profiled_run):
        run_dir, _ = profiled_run
        snapshot = load_run_snapshot(run_dir)
        from repro.runner import RunManifest, read_event_log

        events = read_event_log(RunManifest.event_log_path(run_dir))
        event_total = sum(
            e["detail"]["duration"]
            for e in events
            if e.get("kind") == "shard_finish" and "duration" in e.get("detail", {})
        )
        span_total = snapshot.spans["inject.shard"].total_seconds
        # the two independent clocks measure the same work
        assert event_total > 0
        assert span_total == pytest.approx(event_total, rel=0.25)

    def test_write_run_report_default_path(self, profiled_run):
        run_dir, _ = profiled_run
        path = write_run_report(run_dir)
        assert path == run_dir / "report.md"
        assert "## Where the time went" in path.read_text()

    def test_unprofiled_run_degrades_gracefully(self, tmp_path):
        run_dir = tmp_path / "plain"
        run_campaign(
            np.linspace(0.5, 2.0, 64),
            "posit16",
            CampaignConfig(trials_per_bit=2, bits=(1, 5), seed=3),
            run_dir=run_dir,
            telemetry=False,
        )
        report = render_run_report(run_dir)
        assert "No `telemetry.json`" in report
        assert "## Shards" in report
        assert "## Spans" not in report


class TestCounterParity:
    def test_jobs_1_vs_4_counters_identical(self, tmp_path):
        """The acceptance criterion: scheduling must not change counters."""
        rng = np.random.default_rng(21)
        data = rng.normal(size=128)
        config = CampaignConfig(trials_per_bit=3, bits=(0, 2, 7, 14), seed=5)
        target = resolve("posit32")

        def run(jobs):
            # the format's round-trip memo is content-hash keyed and
            # process-global; clear it so both runs do identical work
            target._round_trip_cache.clear()
            collector = Telemetry()
            run_campaign(data, target, config, jobs=jobs, telemetry=collector)
            return collector.snapshot()

        # Warm the process-global one-time state (encode-once pipeline,
        # composed decode tables) outside the measured runs, so both see
        # identical cache conditions and only scheduling can differ.
        run(1)

        serial = run(1)
        parallel = run(4)
        assert serial.counters == parallel.counters
        assert serial.counters["inject.trials"] == 12
        assert serial.counters["inject.shards"] == 4
        assert {k: v.count for k, v in serial.spans.items()} == {
            k: v.count for k, v in parallel.spans.items()
        }


class TestHumanize:
    @pytest.mark.parametrize("seconds,expected", [
        (8640.0, "2h 24m"),
        (309.0, "5m 09s"),
        (45.2, "45.2s"),
        (0.25, "250ms"),
        (0.000002, "2us"),
        (93600.0, "1d 2h"),
    ])
    def test_format_duration(self, seconds, expected):
        assert format_duration(seconds) == expected
