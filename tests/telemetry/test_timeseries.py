"""Unit tests for the run-dir time-series layer (sampler + aggregation)."""

import json

from repro.telemetry.timeseries import (
    METRICS_SCHEMA,
    MetricsSampler,
    MetricsWriter,
    aggregate_metrics,
    latest_points,
    metrics_path,
    process_rss_bytes,
    read_metrics,
    render_metrics_prometheus,
)


class TestWriter:
    def test_points_stamped_and_readable(self, tmp_path):
        writer = MetricsWriter(tmp_path, "w1")
        record = writer.append({"trials_done": 5, "skipped": None})
        writer.close()
        assert record["schema"] == METRICS_SCHEMA
        assert record["worker"] == "w1"
        assert "ts" in record
        assert "skipped" not in record
        series = read_metrics(tmp_path)
        assert list(series) == ["w1"]
        assert series["w1"][0]["trials_done"] == 5

    def test_worker_slug_is_filesystem_safe(self, tmp_path):
        writer = MetricsWriter(tmp_path, "host.example/worker 1")
        writer.close()
        assert writer.path.parent == tmp_path / "metrics"
        assert "/" not in writer.path.name.replace(".jsonl", "")


class TestSampler:
    def test_start_and_stop_both_sample(self, tmp_path):
        sampler = MetricsSampler(
            MetricsWriter(tmp_path, "w"), lambda: {"trials_done": 1},
            interval=60.0,
        )
        sampler.start()
        sampler.stop()
        points = read_metrics(tmp_path)["w"]
        assert len(points) == 2  # immediate sample + final sample

    def test_derives_trials_per_sec(self, tmp_path):
        ticks = iter([{"trials_done": 0, "ts": 100.0},
                      {"trials_done": 50, "ts": 110.0}])
        sampler = MetricsSampler(MetricsWriter(tmp_path, "w"), lambda: next(ticks))
        sampler._take()
        sampler._take()
        first, second = read_metrics(tmp_path)["w"]
        assert first["trials_per_sec"] == 0.0
        assert second["trials_per_sec"] == 5.0
        assert first["rss_bytes"] > 0

    def test_none_skips_and_exceptions_swallowed(self, tmp_path):
        responses = iter([None, RuntimeError("boom"), {"trials_done": 1}])

        def sample():
            value = next(responses)
            if isinstance(value, Exception):
                raise value
            return value

        sampler = MetricsSampler(MetricsWriter(tmp_path, "w"), sample)
        for _ in range(3):
            sampler._take()
        sampler.writer.close()
        assert len(read_metrics(tmp_path)["w"]) == 1


class TestReaders:
    def test_read_skips_torn_lines(self, tmp_path):
        writer = MetricsWriter(tmp_path, "w")
        writer.append({"trials_done": 1, "ts": 1.0})
        writer.close()
        with metrics_path(tmp_path, "w").open("a") as handle:
            handle.write('{"ts": 2.0, "trials_done"')
        assert len(read_metrics(tmp_path)["w"]) == 1

    def test_latest_points(self, tmp_path):
        writer = MetricsWriter(tmp_path, "w")
        writer.append({"trials_done": 1, "ts": 1.0})
        writer.append({"trials_done": 9, "ts": 2.0})
        writer.close()
        assert latest_points(read_metrics(tmp_path))["w"]["trials_done"] == 9

    def test_rss_positive(self):
        assert process_rss_bytes() > 0


class TestAggregation:
    SERIES = {
        "w1": [
            {"ts": 1.0, "trials_done": 10, "trials_per_sec": 2.0,
             "rss_bytes": 100, "leases_active": 1},
            {"ts": 2.0, "trials_done": 20, "trials_per_sec": 4.0,
             "rss_bytes": 100, "leases_active": 1},
        ],
        "w2": [
            {"ts": 1.5, "trials_done": 5, "trials_per_sec": 1.0,
             "rss_bytes": 50, "leases_active": 0},
        ],
    }

    def test_rates_sum_across_workers(self):
        [point] = aggregate_metrics(self.SERIES, bucket_seconds=5.0)
        assert point["workers"] == 2
        # w1 contributes its in-bucket mean (3.0), w2 its only point (1.0).
        assert point["trials_per_sec"] == 4.0
        assert point["rss_bytes"] == 150
        assert point["trials_done"] == 25.0  # max per worker, summed

    def test_buckets_split_on_grid(self):
        series = {"w": [{"ts": 0.5, "trials_done": 1},
                        {"ts": 7.5, "trials_done": 2}]}
        points = aggregate_metrics(series, bucket_seconds=5.0)
        assert [p["ts"] for p in points] == [0.0, 5.0]

    def test_empty_series(self):
        assert aggregate_metrics({}) == []


class TestPrometheus:
    def test_rendered_gauges(self):
        text = render_metrics_prometheus(TestAggregation.SERIES)
        assert 'repro_fleet_trials_per_sec{worker="w1"} 4.0' in text
        assert 'repro_fleet_trials_done{worker="w2"} 5' in text
        assert "repro_fleet_workers 2" in text
        assert "repro_fleet_trials_per_sec_total 5.0" in text
        assert text.endswith("\n")

    def test_empty_series_still_valid(self):
        text = render_metrics_prometheus({})
        assert "repro_fleet_workers 0" in text
