"""Campaign-runner integration: telemetry through interrupts and status."""

import numpy as np
import pytest

from repro.inject import CampaignConfig, run_campaign
from repro.runner import RunnerHooks, run_status
from repro.telemetry import load_run_snapshot, telemetry_path


class KillAfter(RunnerHooks):
    """Simulate ctrl-C after N completed shards."""

    def __init__(self, shards: int):
        self.shards = shards

    def on_shard_finish(self, event) -> None:
        if event.shards_done >= self.shards:
            raise KeyboardInterrupt


@pytest.fixture
def field():
    return np.random.default_rng(13).normal(size=128)


class TestInterruptPath:
    def test_partial_telemetry_written_on_interrupt(self, field, tmp_path):
        run_dir = tmp_path / "run"
        config = CampaignConfig(trials_per_bit=2, bits=(0, 1, 2, 3, 4, 5), seed=9)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                field, "posit16", config,
                run_dir=run_dir, hooks=KillAfter(3), telemetry=True,
            )
        snapshot = load_run_snapshot(run_dir)
        assert snapshot is not None
        # the three completed shards' work is preserved
        assert snapshot.counters["inject.shards"] == 3
        assert snapshot.counters["inject.trials"] == 6
        assert snapshot.spans["inject.shard"].count == 3

    def test_unprofiled_interrupt_writes_no_telemetry(self, field, tmp_path):
        run_dir = tmp_path / "run"
        config = CampaignConfig(trials_per_bit=2, bits=(0, 1, 2), seed=9)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                field, "posit16", config,
                run_dir=run_dir, hooks=KillAfter(1), telemetry=False,
            )
        assert not telemetry_path(run_dir).is_file()


class TestRunStatus:
    def test_status_reports_phases_for_profiled_run(self, field, tmp_path):
        run_dir = tmp_path / "run"
        config = CampaignConfig(trials_per_bit=2, bits=(0, 4), seed=9)
        run_campaign(field, "posit16", config, run_dir=run_dir, telemetry=True)
        status = run_status(run_dir)
        assert status.phase_seconds
        assert "inject" in status.phase_seconds
        assert "phases:" in status.summary()

    def test_status_without_telemetry_has_no_phase_line(self, field, tmp_path):
        run_dir = tmp_path / "run"
        config = CampaignConfig(trials_per_bit=2, bits=(0,), seed=9)
        run_campaign(field, "posit16", config, run_dir=run_dir, telemetry=False)
        status = run_status(run_dir)
        assert status.phase_seconds is None
        assert "phases:" not in status.summary()


class TestResultExtras:
    def test_snapshot_attached_without_run_dir(self, field):
        config = CampaignConfig(trials_per_bit=2, bits=(0, 1), seed=9)
        result = run_campaign(field, "posit16", config, telemetry=True)
        snapshot = result.extras["telemetry"]
        assert snapshot.counters["inject.shards"] == 2

    def test_no_extras_entry_when_disabled(self, field):
        config = CampaignConfig(trials_per_bit=2, bits=(0,), seed=9)
        result = run_campaign(field, "posit16", config, telemetry=False)
        assert "telemetry" not in result.extras
