"""Unit tests for the distributed-trace layer (span files + export).

Integration coverage — real campaigns writing traces from multiple
processes — lives in ``tests/runner/test_observability.py``; here we
pin the building blocks: enablement resolution, deterministic span
ids, the record format, torn-tail-tolerant reads, and the Chrome
trace-event export.
"""

import json

import pytest

from repro.telemetry.trace import (
    TRACE_ENV_VAR,
    TRACE_SCHEMA,
    TraceContext,
    TraceWriter,
    chrome_trace,
    read_trace,
    resolve_trace,
    trace_enabled_by_env,
    trace_path,
    trace_workers,
    write_chrome_trace,
)

IDENTITY = {
    "target_spec": "posit16",
    "trials_per_bit": 3,
    "bits": [0, 1, 2],
    "seed": 42,
    "data_fingerprint": "abc123",
    "data_size": 256,
}


class TestEnablement:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        assert trace_enabled_by_env() is False
        assert resolve_trace(None) is False

    @pytest.mark.parametrize("raw,expected", [("1", True), ("on", True),
                                              ("0", False), ("off", False)])
    def test_env_vocabulary(self, monkeypatch, raw, expected):
        monkeypatch.setenv(TRACE_ENV_VAR, raw)
        assert trace_enabled_by_env() is expected

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, "maybe")
        with pytest.raises(ValueError, match="REPRO_TRACE"):
            trace_enabled_by_env()

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, "1")
        assert resolve_trace(False) is False
        monkeypatch.setenv(TRACE_ENV_VAR, "0")
        assert resolve_trace(True) is True

    def test_non_bool_rejected(self):
        with pytest.raises(TypeError):
            resolve_trace("yes")


class TestContext:
    def test_trace_id_deterministic_across_workers(self, tmp_path):
        a = TraceContext.for_run(IDENTITY, tmp_path / "run", worker="alpha")
        b = TraceContext.for_run(IDENTITY, tmp_path / "run", worker="beta")
        assert a.trace_id == b.trace_id
        assert a.worker_span_id != b.worker_span_id
        assert a.run_span_id == b.run_span_id

    def test_trace_id_tracks_identity(self, tmp_path):
        other = dict(IDENTITY, seed=43)
        a = TraceContext.for_run(IDENTITY, tmp_path, worker="w")
        b = TraceContext.for_run(other, tmp_path, worker="w")
        assert a.trace_id != b.trace_id

    def test_span_id_shapes(self, tmp_path):
        ctx = TraceContext.for_run(IDENTITY, tmp_path / "run-7", worker="w1")
        assert ctx.run_id == "run-7"
        assert ctx.run_span_id == f"{ctx.trace_id}/run"
        assert ctx.worker_span_id == f"{ctx.trace_id}/worker/w1"
        assert ctx.shard_span_id(5, 1) == f"{ctx.trace_id}/shard/5/1/w1"


class TestWriterAndReader:
    def _writer(self, tmp_path, worker="w1"):
        ctx = TraceContext.for_run(IDENTITY, tmp_path, worker=worker)
        return TraceWriter(tmp_path, ctx)

    def test_records_schema_and_drops_nones(self, tmp_path):
        with self._writer(tmp_path) as writer:
            record = writer.emit(
                "run", ts=10.0, duration=2.5,
                span_id=writer.context.run_span_id, category="run",
            )
        assert record["schema"] == TRACE_SCHEMA
        assert "parent_id" not in record
        assert "bit" not in record
        [stored] = read_trace(tmp_path)
        assert stored == record

    def test_shard_span_parents_to_worker(self, tmp_path):
        with self._writer(tmp_path) as writer:
            record = writer.shard_span(
                bit=3, attempt=0, ts=1.0, duration=0.5, args={"trials": 7}
            )
        assert record["parent_id"] == writer.context.worker_span_id
        assert record["span_id"] == writer.context.shard_span_id(3, 0)
        assert record["cat"] == "shard"
        assert record["bit"] == 3
        assert record["args"] == {"trials": 7}

    def test_negative_duration_clamped(self, tmp_path):
        with self._writer(tmp_path) as writer:
            record = writer.emit(
                "x", ts=1.0, duration=-0.25, span_id="s")
        assert record["dur"] == 0.0

    def test_read_sorts_and_skips_torn_tail(self, tmp_path):
        with self._writer(tmp_path, "w1") as one:
            one.emit("late", ts=20.0, duration=1.0, span_id="b")
        with self._writer(tmp_path, "w2") as two:
            two.emit("early", ts=10.0, duration=1.0, span_id="a")
        # Simulate a SIGKILLed writer: a ragged, non-JSON final line.
        with trace_path(tmp_path, "w1").open("a") as handle:
            handle.write('{"schema": "repro.trace/1", "ts": 99')
        records = read_trace(tmp_path)
        assert [r["name"] for r in records] == ["early", "late"]
        assert trace_workers(records) == ["w2", "w1"]

    def test_read_missing_dir_is_empty(self, tmp_path):
        assert read_trace(tmp_path / "nothing") == []


class TestChromeExport:
    def _populate(self, tmp_path):
        for worker, ts in (("w1", 100.0), ("w2", 100.5)):
            ctx = TraceContext.for_run(IDENTITY, tmp_path, worker=worker)
            with TraceWriter(tmp_path, ctx) as writer:
                writer.shard_span(bit=0, attempt=0, ts=ts, duration=0.25)

    def test_one_process_lane_per_worker(self, tmp_path):
        self._populate(tmp_path)
        document = chrome_trace(tmp_path)
        metas = [e for e in document["traceEvents"] if e["ph"] == "M"]
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert {m["args"]["name"] for m in metas} == {"w1", "w2"}
        assert {s["pid"] for s in spans} == {m["pid"] for m in metas}
        assert document["otherData"]["workers"] == ["w1", "w2"]

    def test_timestamps_relative_microseconds(self, tmp_path):
        self._populate(tmp_path)
        spans = sorted(
            (e for e in chrome_trace(tmp_path)["traceEvents"] if e["ph"] == "X"),
            key=lambda e: e["ts"],
        )
        assert spans[0]["ts"] == 0.0
        assert spans[1]["ts"] == pytest.approx(0.5e6)
        assert spans[0]["dur"] == pytest.approx(0.25e6)

    def test_write_chrome_trace_default_path(self, tmp_path):
        self._populate(tmp_path)
        path = write_chrome_trace(tmp_path)
        assert path == tmp_path / "trace" / "chrome-trace.json"
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert document["traceEvents"]
