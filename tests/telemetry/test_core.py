"""Tests for the telemetry core: counters, spans, merging, scoping."""

import pickle
import threading
import time

import pytest

from repro.telemetry import (
    DISABLED,
    TELEMETRY_ENV_VAR,
    SpanStats,
    Telemetry,
    TelemetrySnapshot,
    get_telemetry,
    resolve_collector,
    telemetry_enabled_by_env,
    telemetry_scope,
)


class TestCounters:
    def test_accumulate(self):
        t = Telemetry()
        t.count("a")
        t.count("a", 4)
        t.count("b", 2.5)
        snap = t.snapshot()
        assert snap.counters == {"a": 5, "b": 2.5}

    def test_integral_floats_stay_integers(self):
        t = Telemetry()
        t.count("n", 3.0)
        assert t.snapshot().counters["n"] == 3
        assert isinstance(t.snapshot().counters["n"], int)

    def test_thread_safety(self):
        t = Telemetry()

        def worker():
            for _ in range(1000):
                t.count("hits")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert t.snapshot().counters["hits"] == 8000


class TestSpans:
    def test_records_count_and_time(self):
        t = Telemetry()
        for _ in range(3):
            with t.span("work"):
                time.sleep(0.001)
        stats = t.snapshot().spans["work"]
        assert stats.count == 3
        assert stats.total_ns >= 3_000_000
        assert 0 < stats.min_ns <= stats.max_ns <= stats.total_ns

    def test_nested_spans_split_self_time(self):
        t = Telemetry()
        with t.span("outer"):
            time.sleep(0.002)
            with t.span("inner"):
                time.sleep(0.005)
        snap = t.snapshot()
        outer, inner = snap.spans["outer"], snap.spans["inner"]
        assert outer.total_ns > inner.total_ns
        # outer self time excludes the nested inner span
        assert outer.self_ns == outer.total_ns - inner.total_ns
        assert inner.self_ns == inner.total_ns

    def test_phase_seconds_sums_self_time_without_double_count(self):
        t = Telemetry()
        with t.span("inject.shard"):
            with t.span("formats.decode"):
                time.sleep(0.001)
        phases = t.snapshot().phase_seconds()
        assert set(phases) == {"inject", "formats"}
        total = t.snapshot().spans["inject.shard"].total_seconds
        assert sum(phases.values()) == pytest.approx(total, rel=1e-9)

    def test_decorator(self):
        t = Telemetry()

        @t.timed("fn")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3
        assert t.snapshot().spans["fn"].count == 1

    def test_span_records_on_exception(self):
        t = Telemetry()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("x")
        assert t.snapshot().spans["boom"].count == 1


class TestSnapshotMerge:
    def _make(self, n):
        t = Telemetry()
        t.count("trials", n)
        with t.span("s"):
            pass
        return t.snapshot()

    def test_merge_adds_counters_and_spans(self):
        merged = self._make(3).merge(self._make(4))
        assert merged.counters["trials"] == 7
        assert merged.spans["s"].count == 2

    def test_merge_is_associative(self):
        parts = [self._make(i) for i in (1, 2, 3)]

        def combine(order):
            out = TelemetrySnapshot()
            for i in order:
                out.merge(parts[i])
            return out

        a, b = combine([0, 1, 2]), combine([2, 0, 1])
        assert a.counters == b.counters
        assert {k: (v.count, v.total_ns) for k, v in a.spans.items()} == {
            k: (v.count, v.total_ns) for k, v in b.spans.items()
        }

    def test_merge_empty_identity(self):
        snap = self._make(5)
        before = dict(snap.counters)
        snap.merge(TelemetrySnapshot())
        assert snap.counters == before

    def test_merge_combines_extremes(self):
        a = TelemetrySnapshot(spans={"s": SpanStats(1, 10, 10, 10, 10)})
        b = TelemetrySnapshot(spans={"s": SpanStats(1, 30, 30, 30, 30)})
        a.merge(b)
        assert a.spans["s"].min_ns == 10
        assert a.spans["s"].max_ns == 30
        assert a.spans["s"].total_ns == 40

    def test_json_round_trip(self):
        snap = self._make(9)
        restored = TelemetrySnapshot.from_json(snap.to_json())
        assert restored.counters == snap.counters
        assert restored.spans["s"].to_json() == snap.spans["s"].to_json()

    def test_snapshot_pickles(self):
        snap = self._make(2)
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.counters == snap.counters

    def test_merge_snapshot_into_collector(self):
        t = Telemetry()
        t.count("trials", 1)
        t.merge_snapshot(self._make(10))
        assert t.snapshot().counters["trials"] == 11


class TestDisabled:
    def test_null_collector_is_inert(self):
        DISABLED.count("x", 5)
        with DISABLED.span("y"):
            pass
        snap = DISABLED.snapshot()
        assert snap.empty

    def test_null_decorator_returns_function_unchanged(self):
        def fn():
            return 42

        assert DISABLED.timed("z")(fn) is fn


class TestScoping:
    def test_scope_installs_and_restores(self):
        base = get_telemetry()
        t = Telemetry()
        with telemetry_scope(t):
            assert get_telemetry() is t
            inner = Telemetry()
            with telemetry_scope(inner):
                assert get_telemetry() is inner
            assert get_telemetry() is t
        assert get_telemetry() is base


class TestEnvAndResolution:
    def test_env_default_off(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV_VAR, raising=False)
        assert telemetry_enabled_by_env() is False

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("ON", True),
        ("0", False), ("false", False), ("off", False), ("", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(TELEMETRY_ENV_VAR, value)
        assert telemetry_enabled_by_env() is expected

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV_VAR, "maybe")
        with pytest.raises(ValueError, match="REPRO_TELEMETRY"):
            telemetry_enabled_by_env()

    def test_resolve_none_follows_env(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV_VAR, raising=False)
        assert resolve_collector(None) is DISABLED
        monkeypatch.setenv(TELEMETRY_ENV_VAR, "1")
        assert resolve_collector(None).enabled

    def test_resolve_bools_and_instances(self):
        assert resolve_collector(False) is DISABLED
        assert resolve_collector(True).enabled
        t = Telemetry()
        assert resolve_collector(t) is t

    def test_resolve_rejects_junk(self):
        with pytest.raises(TypeError, match="telemetry"):
            resolve_collector("yes")
