"""Tests for regime-population analysis."""

import numpy as np
import pytest

from repro.analysis.population import (
    band_width_vs_spread,
    magnitude_spread,
    rank_correlation,
    regime_population,
)
from repro.posit.config import POSIT16, POSIT32


class TestRegimePopulation:
    def test_known_mixture(self):
        # Half the values have k=1 (|x| in [1,16)), half k=2 ([16,256)).
        data = np.concatenate([np.full(50, 2.0), np.full(50, 100.0)])
        population = regime_population(data, POSIT32)
        assert population.fraction(1) == pytest.approx(0.5)
        assert population.fraction(2) == pytest.approx(0.5)
        assert population.fraction(5) == 0.0
        assert population.total == 100

    def test_zero_fraction(self):
        data = np.array([0.0, 0.0, 1.5, 2.0])
        population = regime_population(data, POSIT32)
        assert population.zero_fraction == 0.5
        assert population.total == 2

    def test_dominant_size(self):
        data = np.concatenate([np.full(10, 2.0), np.full(3, 1e6)])
        assert regime_population(data, POSIT32).dominant_size() == 1

    def test_spike_band_positions(self):
        data = np.full(20, 2.0)  # k = 1 only -> R_k at bit 29
        population = regime_population(data, POSIT32)
        assert population.spike_band(32) == (29, 29)

    def test_spike_band_orders_low_high(self, rng):
        data = rng.lognormal(0, 12, 2000)
        low, high = regime_population(data, POSIT32).spike_band(32)
        assert low <= high

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            regime_population(np.array([]), POSIT32)

    def test_other_width(self):
        data = np.full(5, 2.0)
        population = regime_population(data, POSIT16)
        assert population.dominant_size() == 1


class TestMagnitudeSpread:
    def test_constant_field_zero_spread(self):
        assert magnitude_spread(np.full(10, 7.0)) == pytest.approx(0.0, abs=1e-12)

    def test_wider_distribution_larger_spread(self, rng):
        narrow = rng.lognormal(0, 1, 2000)
        wide = rng.lognormal(0, 6, 2000)
        assert magnitude_spread(wide) > magnitude_spread(narrow)

    def test_ignores_zeros(self):
        assert magnitude_spread(np.array([0.0, 2.0, 2.0])) == 0.0

    def test_all_zero(self):
        assert magnitude_spread(np.zeros(4)) == 0.0


class TestRankCorrelation:
    def test_perfect_monotone(self):
        assert rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert rank_correlation([1, 2, 3, 4], [8, 6, 4, 2]) == pytest.approx(-1.0)

    def test_uncorrelated_bounded(self, rng):
        x = rng.normal(0, 1, 200)
        y = rng.normal(0, 1, 200)
        assert abs(rank_correlation(x, y)) < 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_correlation([1], [2])
        with pytest.raises(ValueError):
            rank_correlation([1, 2], [1, 2, 3])

    def test_constant_input(self):
        assert rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0


class TestBandWidthVsSpread:
    def test_rows_structure(self, rng):
        fields = {
            "narrow": rng.lognormal(0, 1, 500),
            "wide": rng.lognormal(0, 10, 500),
        }
        rows = band_width_vs_spread(fields, POSIT32)
        assert [row["field"] for row in rows] == ["narrow", "wide"]
        wide_row = rows[1]
        narrow_row = rows[0]
        assert wide_row["spread"] > narrow_row["spread"]
        assert wide_row["distinct_regimes"] >= narrow_row["distinct_regimes"]
