"""Tests for magnitude/regime-size stratification."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.stratify import (
    group_by_regime_size,
    magnitude_split,
    regime_size_from_value,
    terminating_bit_position,
)
from repro.inject.campaign import CampaignConfig, run_campaign
from repro.posit.config import POSIT8, POSIT32
from repro.posit.encode import encode
from repro.posit.fields import regime_k


class TestRegimeSizeFromValue:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (1.5, 1), (15.9, 1), (16.0, 2), (255.0, 2), (256.0, 3),
            (0.9, 1), (0.0626, 1), (0.0624, 2), (1 / 256.0, 2),
        ],
    )
    def test_known(self, value, expected):
        assert regime_size_from_value(value, POSIT32) == expected

    @given(st.floats(min_value=1e-30, max_value=1e30))
    def test_matches_bit_level(self, value):
        # Eq. 1 (value space) must agree with the run length of the
        # encoded pattern — except when rounding crosses a regime
        # boundary, where the pattern's k is authoritative.
        pattern = encode(np.float64(value), POSIT32)
        bit_k = int(regime_k(np.uint64(pattern), POSIT32))
        value_k = regime_size_from_value(value, POSIT32)
        from repro.posit.decode import decode

        stored = float(decode(np.uint64(pattern), POSIT32))
        stored_k = regime_size_from_value(stored, POSIT32)
        assert bit_k == stored_k

    def test_specials(self):
        assert regime_size_from_value(0.0, POSIT32) == 31
        assert regime_size_from_value(float("nan"), POSIT32) == 31

    def test_clamped_to_body(self):
        assert regime_size_from_value(2.0**500, POSIT8) == 7


class TestMagnitudeSplit:
    def test_partitions(self, small_field):
        result = run_campaign(small_field, "posit32", CampaignConfig(trials_per_bit=5, seed=9))
        greater, less = magnitude_split(result.records)
        assert np.all(np.abs(greater.original) > 1)
        assert np.all((np.abs(less.original) < 1) & (np.abs(less.original) > 0))
        assert len(greater) + len(less) <= len(result.records)


class TestGroups:
    def test_grouping(self, small_field):
        result = run_campaign(small_field, "posit32", CampaignConfig(trials_per_bit=10, seed=9))
        groups = group_by_regime_size(result.records, 32, max_k=5, min_trials=1)
        assert groups, "expected at least one regime group"
        for group in groups:
            assert np.all(group.records.regime_k == group.k)
            assert group.k <= 5
            assert group.aggregate.bits.shape == (32,)

    def test_min_trials_filter(self, small_field):
        result = run_campaign(small_field, "posit32", CampaignConfig(trials_per_bit=4, seed=9))
        groups = group_by_regime_size(result.records, 32, min_trials=10**9)
        assert groups == []


class TestTerminatingBit:
    def test_positions(self):
        assert terminating_bit_position(1, 32) == 29
        assert terminating_bit_position(5, 32) == 25
        assert terminating_bit_position(1, 16) == 13

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            terminating_bit_position(0, 32)
        with pytest.raises(ValueError):
            terminating_bit_position(31, 32)

    def test_agrees_with_field_classification(self):
        from repro.posit.fields import PositField, classify_bit

        for value, k in ((1.5, 1), (20.0, 2), (400.0, 3)):
            pattern = encode(np.float64(value), POSIT32)
            rk_bit = terminating_bit_position(k, 32)
            field = classify_bit(np.uint64(pattern), rk_bit, POSIT32)
            assert int(field) == int(PositField.REGIME_TERM), value
