"""Tests for closed-form posit flip prediction."""

import numpy as np
import pytest

from repro.analysis.predict import (
    exponent_flip_factor,
    max_exponent_flip_error,
    predict_flip,
    sign_flip_value,
)
from repro.posit.config import POSIT8, POSIT16, POSIT32, PositConfig
from repro.posit.decode import decode
from repro.posit.encode import encode


def _assert_prediction_exact(patterns: np.ndarray, config) -> None:
    for bit in range(config.nbits):
        prediction = predict_flip(patterns, bit, config)
        actual = decode(patterns ^ np.uint64(1 << bit), config)
        same = (prediction.faulty == actual) | (
            np.isnan(prediction.faulty) & np.isnan(actual)
        )
        assert np.all(same), f"bit {bit}: {np.sum(~same)} mismatches"


class TestExactness:
    def test_exhaustive_p8(self):
        _assert_prediction_exact(np.arange(256, dtype=np.uint64), POSIT8)

    def test_sampled_p16(self, rng):
        patterns = rng.integers(0, 1 << 16, 2000, dtype=np.uint64)
        _assert_prediction_exact(patterns, POSIT16)

    def test_sampled_p32(self, rng):
        patterns = rng.integers(0, 1 << 32, 500, dtype=np.uint64)
        _assert_prediction_exact(patterns, POSIT32)

    def test_es_variants(self, rng):
        for es in (0, 1, 3):
            config = PositConfig(nbits=10, es=es)
            _assert_prediction_exact(np.arange(1 << 10, dtype=np.uint64), config)

    def test_rejects_out_of_range_bit(self):
        with pytest.raises(ValueError):
            predict_flip(np.array([0], dtype=np.uint64), 32, POSIT32)


class TestErrorColumns:
    def test_relative_error_conventions(self):
        patterns = np.array([0, int(encode(np.float64(2.0), POSIT32))], dtype=np.uint64)
        prediction = predict_flip(patterns, 0, POSIT32)
        # Flipping bit 0 of zero gives minpos: undefined relative error.
        assert np.isnan(prediction.relative_error[0])
        assert prediction.relative_error[1] > 0

    def test_event_and_field_populated(self):
        pattern = np.array([int(encode(np.float64(0.1), POSIT32))], dtype=np.uint64)
        prediction = predict_flip(pattern, 30, POSIT32)
        from repro.analysis.edgecases import FlipEvent
        from repro.posit.fields import PositField

        assert prediction.event[0] == FlipEvent.REGIME_INVERSION
        assert prediction.field[0] in (PositField.REGIME, PositField.REGIME_TERM)


class TestSignFlip:
    def test_matches_actual_flip(self, rng):
        patterns = rng.integers(0, 1 << 32, 1000, dtype=np.uint64)
        patterns = patterns[(patterns != 0) & (patterns != POSIT32.nar_pattern)]
        predicted = sign_flip_value(patterns, POSIT32)
        actual = decode(patterns ^ np.uint64(1 << 31), POSIT32)
        mask = ~np.isnan(actual)
        assert np.array_equal(predicted[mask], np.asarray(actual)[mask])

    def test_paper_claim_not_negation(self):
        pattern = np.array([int(encode(np.float64(13.5), POSIT32))], dtype=np.uint64)
        flipped = float(sign_flip_value(pattern, POSIT32)[0])
        assert flipped != -13.5


class TestExponentFormulas:
    def test_factor(self):
        assert exponent_flip_factor(1, bit_was_set=False, sign=0) == 2.0
        assert exponent_flip_factor(1, bit_was_set=True, sign=0) == 0.5
        assert exponent_flip_factor(2, bit_was_set=False, sign=0) == 4.0
        # Negative posit: scale sign inverted.
        assert exponent_flip_factor(1, bit_was_set=False, sign=1) == 0.5

    def test_max_error(self):
        assert max_exponent_flip_error(POSIT32) == 3.0  # 2**2 - 1
        assert max_exponent_flip_error(PositConfig(nbits=16, es=0)) == 0.0
        assert max_exponent_flip_error(PositConfig(nbits=16, es=1)) == 1.0

    def test_factor_matches_measurement(self):
        # For a k=1 posit, bit 28 is the exponent MSB (weight 2).
        pattern = encode(np.float64(1.5), POSIT32)
        original = float(decode(np.uint64(pattern), POSIT32))
        faulty = float(decode(np.uint64(pattern) ^ np.uint64(1 << 28), POSIT32))
        assert faulty / original == exponent_flip_factor(2, bit_was_set=False, sign=0)
