"""Tests for record aggregation."""

import numpy as np
import pytest

from repro.analysis.aggregate import (
    aggregate_by_bit,
    aggregate_by_field,
    catastrophic_fraction,
    sdc_threshold_fraction,
)
from repro.inject.campaign import CampaignConfig, run_campaign
from repro.inject.results import TrialRecords


@pytest.fixture
def records(small_field):
    return run_campaign(
        small_field, "posit32", CampaignConfig(trials_per_bit=10, seed=3)
    ).records


class TestAggregateByBit:
    def test_shapes_and_counts(self, records):
        agg = aggregate_by_bit(records, 32)
        assert agg.bits.shape == (32,)
        assert np.all(agg.trial_counts == 10)

    def test_matches_manual_mean(self, records):
        agg = aggregate_by_bit(records, 32)
        for bit in (0, 15, 31):
            rel = records.for_bit(bit).rel_err
            finite = rel[np.isfinite(rel)]
            assert agg.mean_rel_err[bit] == pytest.approx(float(np.mean(finite)))
            assert agg.median_rel_err[bit] == pytest.approx(float(np.median(finite)))
            assert agg.max_rel_err[bit] == float(np.max(finite))

    def test_incl_inf_mean(self):
        records = _craft_records(
            bits=[0, 0, 0], rel=[1.0, np.inf, np.nan]
        )
        agg = aggregate_by_bit(records, 1)
        assert agg.mean_rel_err[0] == 1.0          # finite-only
        assert agg.mean_rel_err_incl_inf[0] == np.inf
        assert agg.non_finite_counts[0] == 2

    def test_empty_bit(self, records):
        agg = aggregate_by_bit(records.for_bit(5), 32)
        assert np.isnan(agg.mean_rel_err[6])
        assert agg.trial_counts[6] == 0

    def test_series_accessor(self, records):
        agg = aggregate_by_bit(records, 32)
        bits, values = agg.series("mean_abs_err")
        assert np.array_equal(bits, np.arange(32))
        assert values is agg.mean_abs_err


def _craft_records(bits, rel) -> TrialRecords:
    n = len(bits)
    zeros_f = np.zeros(n)
    return TrialRecords(
        trial=np.arange(n, dtype=np.int64),
        bit=np.asarray(bits, dtype=np.int64),
        index=np.zeros(n, dtype=np.int64),
        original=np.ones(n),
        faulty=np.ones(n),
        field=np.zeros(n, dtype=np.int64),
        regime_k=np.ones(n, dtype=np.int64),
        abs_err=np.abs(np.asarray(rel, dtype=np.float64)),
        rel_err=np.asarray(rel, dtype=np.float64),
        range_rel_err=zeros_f,
        mse=zeros_f,
        faulty_mean=zeros_f,
        faulty_std=zeros_f,
        faulty_max=zeros_f,
        faulty_min=zeros_f,
        non_finite=~np.isfinite(np.asarray(rel, dtype=np.float64)),
    )


class TestAggregateByField:
    def test_covers_all_fields(self, records):
        from repro.formats import resolve

        target = resolve("posit32")
        rows = aggregate_by_field(records, target.field_label)
        labels = {row.label for row in rows}
        assert "SIGN" in labels
        assert "FRACTION" in labels
        total = sum(row.trial_count for row in rows)
        assert total == len(records)

    def test_mean_matches_manual(self, records):
        from repro.formats import resolve

        target = resolve("posit32")
        rows = aggregate_by_field(records, target.field_label)
        for row in rows:
            rel = records.for_field(row.field_id).rel_err
            finite = rel[np.isfinite(rel)]
            assert row.mean_rel_err == pytest.approx(float(np.mean(finite)))


class TestFractions:
    def test_catastrophic_fraction(self):
        records = _craft_records(bits=[0, 0, 0, 0], rel=[1.0, np.nan, np.inf, 2.0])
        assert catastrophic_fraction(records) == 0.5

    def test_catastrophic_empty(self):
        assert catastrophic_fraction(TrialRecords.empty()) == 0.0

    def test_sdc_threshold(self):
        records = _craft_records(bits=[0] * 4, rel=[0.5, 2.0, np.inf, 0.1])
        assert sdc_threshold_fraction(records, 1.0) == 0.5
        assert sdc_threshold_fraction(records, 0.01) == 1.0

    def test_sdc_threshold_empty(self):
        assert sdc_threshold_fraction(TrialRecords.empty(), 1.0) == 0.0
