"""Tests for exhaustive expected-error analysis."""

import numpy as np
import pytest

from repro.analysis.aggregate import aggregate_by_bit
from repro.analysis.theory import expected_error_by_bit, sampling_error_profile
from repro.inject.campaign import CampaignConfig, run_campaign
from repro.formats import resolve


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(3)
    return np.concatenate([
        rng.normal(50, 20, 1500),
        rng.lognormal(-4, 2, 500),
    ]).astype(np.float32)


class TestExpectedErrorByBit:
    def test_matches_brute_force_small(self):
        target = resolve("posit16")
        data = np.array([1.5, -200.0, 0.004, 7.0, 0.0], dtype=np.float32)
        result = expected_error_by_bit(data, target)
        stored = target.round_trip(data)
        bits = target.to_bits(stored)
        for b in (0, 7, 13, 15):
            rels = []
            for i in range(len(stored)):
                faulty = float(target.from_bits(bits[i : i + 1] ^ bits.dtype.type(1 << b))[0])
                original = float(stored[i])
                if original == 0:
                    if faulty == 0:
                        rels.append(0.0)
                    continue  # undefined, excluded
                if np.isfinite(faulty):
                    rels.append(abs(original - faulty) / abs(original))
            assert result.mean_rel_err[b] == pytest.approx(np.mean(rels)), b

    def test_chunking_invariant(self, field):
        a = expected_error_by_bit(field, "posit32", chunk=128)
        b = expected_error_by_bit(field, "posit32", chunk=1 << 20)
        assert np.array_equal(a.mean_rel_err, b.mean_rel_err, equal_nan=True)
        assert np.array_equal(a.catastrophic_fraction, b.catastrophic_fraction)

    def test_sampled_campaign_converges(self, field):
        exact = expected_error_by_bit(field, "posit32")
        result = run_campaign(field, "posit32", CampaignConfig(trials_per_bit=500, seed=0))
        sampled = aggregate_by_bit(result.records, 32).mean_rel_err
        # Fraction bits: value-independent errors, tight convergence.
        for b in range(10):
            assert sampled[b] == pytest.approx(exact.mean_rel_err[b], rel=0.5), b

    def test_ieee_catastrophic_fraction(self):
        # 1e38 has biased exponent 253 (11111101); flipping the clear
        # weight-2 exponent bit (bit 24) lands on 255 = Inf/NaN for
        # every element; the set MSB (bit 30) merely divides by 2**128.
        data = np.full(16, 1e38, dtype=np.float32)
        result = expected_error_by_bit(data, "ieee32")
        assert result.catastrophic_fraction[24] == 1.0
        assert result.catastrophic_fraction[30] == 0.0
        assert result.catastrophic_fraction[0] == 0.0

    def test_undefined_fraction_counts_zero_originals(self):
        data = np.zeros(8, dtype=np.float32)
        result = expected_error_by_bit(data, "ieee32")
        # Flipping any non-sign bit of +0.0 yields a nonzero float ->
        # undefined relative error; the sign flip gives -0.0 == 0.
        assert np.all(result.undefined_fraction[:31] > 0.99)
        assert result.undefined_fraction[31] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            expected_error_by_bit(np.array([]), "posit32")


class TestSamplingProfile:
    def test_deviation_shrinks_with_trials(self, field):
        profile = sampling_error_profile(
            field, "posit32", trial_counts=(8, 256), seed=11
        )
        assert set(profile) == {8, 256}
        assert np.isfinite(profile[8])
        # More trials should not be dramatically worse.
        assert profile[256] < profile[8] * 5
