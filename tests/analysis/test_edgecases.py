"""Tests for posit flip edge-case classification."""

import numpy as np

from repro.analysis.edgecases import (
    FlipEvent,
    classify_flip,
    count_flip_events,
    expansion_growth,
    regime_inversion_mask,
)
from repro.posit.config import POSIT8, POSIT32
from repro.posit.encode import encode


def _pattern(value: float) -> np.ndarray:
    return np.array([int(encode(np.float64(value), POSIT32))], dtype=np.uint64)


class TestClassifyFlip:
    def test_sign_flip(self):
        assert classify_flip(_pattern(3.0), 31, POSIT32)[0] == FlipEvent.SIGN_FLIP

    def test_fraction_change(self):
        assert classify_flip(_pattern(1.5), 0, POSIT32)[0] == FlipEvent.FRACTION_CHANGE

    def test_exponent_change(self):
        # k=1 posit: exponent at bits 28-27.
        assert classify_flip(_pattern(1.5), 28, POSIT32)[0] == FlipEvent.EXPONENT_CHANGE

    def test_regime_expansion_fig12(self):
        # 250 ~= regime 110, e=11, fraction 1110...: flipping R_k at bit
        # 28 absorbs the exponent/fraction ones.
        assert classify_flip(_pattern(250.0), 28, POSIT32)[0] == FlipEvent.REGIME_EXPANSION

    def test_regime_shrink(self):
        # 2**18: regime 111110; flipping R_0 (bit 30) shrinks the run to
        # a single zero — a shrink, even though the polarity changed.
        assert classify_flip(_pattern(2.0**18), 30, POSIT32)[0] == FlipEvent.REGIME_SHRINK
        # Flipping an interior body bit (R_1) also shrinks.
        assert classify_flip(_pattern(2.0**18), 29, POSIT32)[0] == FlipEvent.REGIME_SHRINK

    def test_regime_inversion_fig15(self):
        # 0.1 has regime 01 (k=1); flipping the sole zero inverts.
        assert classify_flip(_pattern(0.1), 30, POSIT32)[0] == FlipEvent.REGIME_INVERSION

    def test_special_zero(self):
        zero = np.array([0], dtype=np.uint64)
        events = classify_flip(zero, 31, POSIT32)
        assert events[0] == FlipEvent.SPECIAL  # 0 -> NaR

    def test_special_into_nar(self):
        # NaR pattern with any flip is SPECIAL.
        nar = np.array([POSIT32.nar_pattern], dtype=np.uint64)
        assert classify_flip(nar, 5, POSIT32)[0] == FlipEvent.SPECIAL

    def test_vectorized_mixed(self):
        patterns = np.concatenate([_pattern(250.0), _pattern(0.1), _pattern(1.5)])
        events = classify_flip(patterns, 28, POSIT32)
        assert events[0] == FlipEvent.REGIME_EXPANSION
        assert events.shape == (3,)


class TestExpansionGrowth:
    def test_positive_growth_fig12(self):
        growth = expansion_growth(_pattern(250.0), 28, POSIT32)[0]
        assert growth >= 2

    def test_shrink_negative(self):
        growth = expansion_growth(_pattern(2.0**18), 30, POSIT32)[0]
        assert growth < 0

    def test_fraction_flip_no_growth(self):
        assert expansion_growth(_pattern(1.5), 0, POSIT32)[0] == 0

    def test_magnitude_scales_with_growth(self):
        from repro.posit.decode import decode

        pattern = _pattern(250.0)
        growth = int(expansion_growth(pattern, 28, POSIT32)[0])
        before = float(decode(pattern, POSIT32)[0])
        after = float(decode(pattern ^ np.uint64(1 << 28), POSIT32)[0])
        assert after / before >= 2.0 ** (4 * (growth - 1))


class TestMaskAndCounts:
    def test_inversion_mask(self):
        # 0.1 (k=1, regime 01) inverts; 20.0 (k=2, regime 110) merely
        # shrinks when R_0 flips.
        patterns = np.concatenate([_pattern(0.1), _pattern(20.0)])
        mask = regime_inversion_mask(patterns, 30, POSIT32)
        assert mask.tolist() == [True, False]

    def test_k1_above_one_also_inverts(self):
        # The structural event is symmetric: flipping the sole regime bit
        # of a k=1 posit above one (regime 10) also expands-and-inverts,
        # collapsing the value far below one.
        assert classify_flip(_pattern(1.5), 30, POSIT32)[0] == FlipEvent.REGIME_INVERSION

    def test_count_flip_events_p8(self, rng):
        patterns = rng.integers(0, 256, 100, dtype=np.uint64)
        counts = count_flip_events(patterns, POSIT8)
        assert sum(counts.values()) == 100 * 8
        assert counts[FlipEvent.SIGN_FLIP] >= 100 - np.sum(
            (patterns == 0) | (patterns == 128)
        )
