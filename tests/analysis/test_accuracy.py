"""Tests for the accuracy-profile analysis (Fig. 7)."""

import math

import numpy as np
import pytest

from repro.analysis.accuracy import (
    accuracy_profile,
    ieee_decimal_accuracy,
    posit_decimal_accuracy,
    posit_fraction_bits_at_scale,
)
from repro.ieee.formats import BINARY32
from repro.posit.config import POSIT8, POSIT32


class TestPositFractionBits:
    def test_peak_at_zero(self):
        assert posit_fraction_bits_at_scale(0, POSIT32) == 27

    def test_decays_by_regime(self):
        assert posit_fraction_bits_at_scale(4, POSIT32) == 26
        assert posit_fraction_bits_at_scale(8, POSIT32) == 25
        assert posit_fraction_bits_at_scale(-5, POSIT32) == 26

    def test_saturates_to_zero(self):
        assert posit_fraction_bits_at_scale(118, POSIT32) == 0

    def test_matches_encoded_pattern(self):
        from repro.posit.encode import encode
        from repro.posit.fields import decompose

        for h in (-20, -4, 0, 3, 17, 40):
            value = float(2.0**h) * 1.3
            pattern = encode(np.float64(value), POSIT32)
            fields = decompose(np.atleast_1d(pattern).astype(np.uint64), POSIT32)
            assert int(fields.fraction_bits[0]) == posit_fraction_bits_at_scale(h, POSIT32), h


class TestDecimalAccuracy:
    def test_posit_formula(self):
        assert posit_decimal_accuracy(0, POSIT32) == pytest.approx(28 * math.log10(2))

    def test_posit_outside_range(self):
        assert posit_decimal_accuracy(500, POSIT32) == 0.0

    def test_ieee_flat_in_normal_range(self):
        for h in (-100, 0, 100):
            assert ieee_decimal_accuracy(h, BINARY32) == pytest.approx(24 * math.log10(2))

    def test_ieee_subnormal_decay(self):
        emin = 1 - BINARY32.bias
        full = ieee_decimal_accuracy(emin, BINARY32)
        assert ieee_decimal_accuracy(emin - 4, BINARY32) < full
        assert ieee_decimal_accuracy(emin - 200, BINARY32) == 0.0

    def test_ieee_overflow_zero(self):
        assert ieee_decimal_accuracy(200, BINARY32) == 0.0


class TestProfileFigure:
    def test_structure(self):
        figure = accuracy_profile(POSIT32, BINARY32, h_range=(-10, 10))
        assert figure.labels() == ["posit32", "binary32"]
        assert figure.get("posit32").x.shape == (21,)

    def test_default_range(self):
        figure = accuracy_profile(POSIT8, BINARY32)
        x = figure.get("posit8").x
        assert x[0] == -POSIT8.max_scale
        assert x[-1] == POSIT8.max_scale
