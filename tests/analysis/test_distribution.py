"""Tests for error-distribution analysis."""

import numpy as np
import pytest

from repro.analysis.distribution import (
    erraticness,
    log_histogram,
    percentile_bands,
    sdc_rate_curve,
)
from repro.inject.campaign import CampaignConfig, run_campaign
from repro.inject.results import TrialRecords


@pytest.fixture(scope="module")
def campaigns():
    rng = np.random.default_rng(1)
    data = np.concatenate([
        rng.normal(100, 40, 3000),
        rng.lognormal(-3, 2, 1000),
    ]).astype(np.float32)
    config = CampaignConfig(trials_per_bit=24, seed=1)
    return {
        "ieee32": run_campaign(data, "ieee32", config).records,
        "posit32": run_campaign(data, "posit32", config).records,
    }


class TestPercentileBands:
    def test_shape_and_order(self, campaigns):
        bands = percentile_bands(campaigns["posit32"], 32)
        assert bands.values.shape == (4, 32)
        p10 = bands.band(10.0)
        p90 = bands.band(90.0)
        mask = np.isfinite(p10) & np.isfinite(p90)
        assert np.all(p10[mask] <= p90[mask] + 1e-18)

    def test_matches_numpy(self, campaigns):
        records = campaigns["ieee32"]
        bands = percentile_bands(records, 32, percentiles=(50.0,))
        rel = records.for_bit(5).rel_err
        finite = rel[np.isfinite(rel)]
        assert bands.band(50.0)[5] == pytest.approx(np.percentile(finite, 50))

    def test_empty_bit_is_nan(self):
        bands = percentile_bands(TrialRecords.empty(), 4)
        assert np.all(np.isnan(bands.values))


class TestLogHistogram:
    def test_counts_conserved(self, rng):
        values = rng.lognormal(0, 4, 5000)
        edges, counts = log_histogram(values, decades=(-12, 12))
        assert counts.sum() == 5000
        assert len(edges) == len(counts) + 1

    def test_drops_nonpositive_and_nonfinite(self):
        edges, counts = log_histogram([0.0, -1.0, np.nan, np.inf, 1.0])
        assert counts.sum() == 1

    def test_out_of_range_clipped(self):
        edges, counts = log_histogram([1e-30, 1e30], decades=(-2, 2))
        assert counts[0] == 1
        assert counts[-1] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            log_histogram([1.0], decades=(3, 3))


class TestSdcRateCurve:
    def test_monotone_nonincreasing(self, campaigns):
        thresholds, rates = sdc_rate_curve(campaigns["posit32"])
        assert np.all(np.diff(rates) <= 1e-12)
        assert np.all((rates >= 0) & (rates <= 1))

    def test_matches_manual(self, campaigns):
        records = campaigns["ieee32"]
        thresholds, rates = sdc_rate_curve(records, thresholds=[1.0])
        rel = records.rel_err
        expected = float(np.mean(~np.isfinite(rel) | (rel > 1.0)))
        assert rates[0] == expected

    def test_empty(self):
        thresholds, rates = sdc_rate_curve(TrialRecords.empty())
        assert np.all(rates == 0)

    def test_posit_better_at_large_tolerances(self, campaigns):
        # The paper's claim as a reliability curve: at tolerance 10^4,
        # fewer posit flips are SDCs than IEEE flips.
        _, posit_rates = sdc_rate_curve(campaigns["posit32"], thresholds=[1e4])
        _, ieee_rates = sdc_rate_curve(campaigns["ieee32"], thresholds=[1e4])
        assert posit_rates[0] < ieee_rates[0]


class TestErraticness:
    def test_posit_more_erratic_than_ieee(self, campaigns):
        posit = erraticness(campaigns["posit32"], 32)
        ieee = erraticness(campaigns["ieee32"], 32)
        assert np.isfinite(posit) and np.isfinite(ieee)
        # Section 5.3: posit upper-bit error is "more distributed and
        # erratic"; IEEE's is a clean exponential ramp (small residual).
        assert posit > ieee

    def test_insufficient_data(self):
        assert np.isnan(erraticness(TrialRecords.empty(), 32))
