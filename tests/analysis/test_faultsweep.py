"""Fault-model-aware aggregation and protection replay (analysis.faultsweep)."""

import numpy as np
import pytest

from repro.analysis.faultsweep import (
    evaluate_scheme_under_fault,
    fault_frontier,
    frontier_from_run_dir,
    split_by_fault,
    summarize_by_fault,
    aggregate_by_fault,
    sweep_frontier,
    temporal_detection_report,
)
from repro.inject.campaign import CampaignConfig, run_campaign
from repro.inject.results import TrialRecords
from repro.protect.evaluate import evaluate_scheme
from repro.protect.schemes import (
    FullDuplication,
    FullTMR,
    NoProtection,
    SelectiveParity,
    SelectiveTMR,
)

NBITS = 16


@pytest.fixture(scope="module")
def campaigns():
    """One small posit16 campaign per fault model over a fixed field."""
    data = np.random.default_rng(8).normal(20.0, 5.0, 256)
    out = {}
    for fault in ("single", "adjacent(2)", "stuckat(15,1)"):
        config = CampaignConfig(trials_per_bit=8, seed=17, fault=fault)
        out[fault] = run_campaign(data, "posit16", config).records
    return out


class TestSplitAndSummaries:
    def test_records_without_column_are_single(self, campaigns):
        parts = split_by_fault(campaigns["single"])
        assert list(parts) == ["single"]
        assert len(parts["single"]) == len(campaigns["single"])

    def test_mixed_concatenation_splits_per_model(self, campaigns):
        merged = TrialRecords.concatenate(
            [campaigns["adjacent(2)"], campaigns["stuckat(15,1)"]]
        )
        parts = split_by_fault(merged)
        assert sorted(parts) == ["adjacent(2)", "stuckat(15,1)"]
        for fault, part in parts.items():
            assert len(part) == len(campaigns[fault])
            assert set(part.fault_spec) == {fault}

    def test_summaries_cover_each_model(self, campaigns):
        merged = TrialRecords.concatenate(
            [campaigns["adjacent(2)"], campaigns["stuckat(15,1)"]]
        )
        rows = summarize_by_fault(merged)
        assert [row.fault for row in rows] == ["adjacent(2)", "stuckat(15,1)"]
        for row in rows:
            assert row.trial_count == 8 * NBITS
            assert 0.0 <= row.serious_fraction <= 1.0
            assert len(row.as_row()) == 6

    def test_aggregate_by_fault_matches_per_model_curves(self, campaigns):
        from repro.analysis.aggregate import aggregate_by_bit

        merged = TrialRecords.concatenate(
            [campaigns["adjacent(2)"], campaigns["stuckat(15,1)"]]
        )
        curves = aggregate_by_fault(merged, NBITS)
        direct = aggregate_by_bit(campaigns["adjacent(2)"], NBITS)
        np.testing.assert_array_equal(
            curves["adjacent(2)"].mean_rel_err, direct.mean_rel_err
        )


class TestEvaluateUnderFault:
    def test_single_model_reduces_to_legacy_evaluator(self, campaigns):
        records = campaigns["single"]
        for scheme in (
            NoProtection(),
            FullTMR(),
            FullDuplication(),
            SelectiveTMR((15, 14, 13)),
            SelectiveParity((15, 14, 13)),
        ):
            legacy = evaluate_scheme(records, scheme, NBITS)
            replay = evaluate_scheme_under_fault(records, scheme, NBITS, "single")
            assert replay == legacy, scheme.describe()

    def test_tmr_needs_the_whole_support_covered(self, campaigns):
        records = campaigns["adjacent(2)"]
        # Covering bit 14 alone cannot neutralize the adjacent(2) trial
        # anchored there (it also touches 15)...
        partial = evaluate_scheme_under_fault(
            records, SelectiveTMR((14,)), NBITS, "adjacent(2)"
        )
        assert partial.covered_fraction == 0.0
        # ...but covering both positions neutralizes the shards anchored
        # at 14 and at 15 (the latter clips to a single covered bit).
        both = evaluate_scheme_under_fault(
            records, SelectiveTMR((15, 14)), NBITS, "adjacent(2)"
        )
        anchored_in_top_two = float(np.mean(records.bit >= 14))
        assert both.covered_fraction == pytest.approx(anchored_in_top_two)

    def test_parity_is_blind_to_even_flip_counts(self, campaigns):
        records = campaigns["adjacent(2)"]
        parity = evaluate_scheme_under_fault(
            records, SelectiveParity(tuple(range(NBITS))), NBITS, "adjacent(2)"
        )
        duplication = evaluate_scheme_under_fault(
            records, FullDuplication(), NBITS, "adjacent(2)"
        )
        # Full-word parity sees XOR of everything: an interior adjacent
        # pair cancels; only the clipped top-bit shard flips one bit.
        top_only = float(np.mean(records.bit == NBITS - 1))
        assert parity.covered_fraction == pytest.approx(top_only)
        # Duplication compares words, so every flip pattern is visible.
        assert duplication.covered_fraction == 1.0
        assert duplication.residual_serious_fraction == 0.0

    def test_stuckat_support_is_its_own_position(self, campaigns):
        records = campaigns["stuckat(15,1)"]
        covering = evaluate_scheme_under_fault(
            records, SelectiveTMR((15,)), NBITS, "stuckat(15,1)"
        )
        assert covering.covered_fraction == 1.0
        assert covering.residual_serious_fraction == 0.0
        missing = evaluate_scheme_under_fault(
            records, SelectiveTMR((14,)), NBITS, "stuckat(15,1)"
        )
        assert missing.covered_fraction == 0.0

    def test_zero_trials_rejected(self, campaigns):
        empty = campaigns["single"].select(np.zeros(len(campaigns["single"]), bool))
        with pytest.raises(ValueError, match="zero trials"):
            evaluate_scheme_under_fault(empty, NoProtection(), NBITS)


class TestTemporalReport:
    def test_threshold_partitions_trials(self, campaigns):
        records = campaigns["single"]
        report = temporal_detection_report(records, NBITS, theta=8.0)
        assert report.overhead_bits == 0
        assert report.scheme == "temporal[theta=8]"
        assert 0.0 <= report.covered_fraction <= 1.0
        # Every catastrophic (non-finite) trial is always detected.
        assert report.residual_catastrophic_fraction == 0.0

    def test_lower_theta_detects_no_less(self, campaigns):
        records = campaigns["adjacent(2)"]
        loose = temporal_detection_report(records, NBITS, theta=64.0)
        tight = temporal_detection_report(records, NBITS, theta=0.5)
        assert tight.covered_fraction >= loose.covered_fraction


class TestFrontier:
    def test_cell_shape_and_monotone_tmr(self, campaigns):
        cell = fault_frontier(
            campaigns["adjacent(2)"], "posit16", NBITS, "adjacent(2)",
            max_protected=NBITS,
        )
        assert cell.fault == "adjacent(2)"
        assert cell.trial_count == 8 * NBITS
        assert len(cell.tmr) == NBITS + 1
        residuals = [r.residual_serious_fraction for r in cell.tmr]
        assert all(a >= b - 1e-12 for a, b in zip(residuals, residuals[1:]))
        needed = cell.bits_needed_for_reduction(0.95)
        assert 0 < needed <= NBITS + 1

    def test_sweep_splits_mixed_records(self, campaigns):
        merged = TrialRecords.concatenate(
            [campaigns["adjacent(2)"], campaigns["stuckat(15,1)"]]
        )
        cells = sweep_frontier([("posit16", merged)], max_protected=4)
        assert [(c.target, c.fault) for c in cells] == [
            ("posit16", "adjacent(2)"), ("posit16", "stuckat(15,1)"),
        ]

    def test_frontier_from_run_dir(self, tmp_path):
        data = np.random.default_rng(8).normal(20.0, 5.0, 256)
        config = CampaignConfig(
            trials_per_bit=4, bits=(0, 14, 15), seed=17, fault="adjacent(2)"
        )
        run_campaign(data, "posit16", config, run_dir=tmp_path / "run")
        cell = frontier_from_run_dir(tmp_path / "run", max_protected=2)
        assert cell.fault == "adjacent(2)"
        assert cell.target == "posit16"
        assert cell.trial_count == 12

    def test_empty_run_dir_rejected(self, tmp_path):
        from repro.runner.manifest import RunManifest, ShardState

        manifest = RunManifest(
            target_spec="posit16",
            label="empty",
            trials_per_bit=2,
            bits=(0,),
            seed=1,
            data_fingerprint="abc",
            data_size=64,
            shards={0: ShardState(bit=0, trials=2)},
        )
        manifest.write(tmp_path)
        with pytest.raises(ValueError, match="no completed shards"):
            frontier_from_run_dir(tmp_path)
