"""Tests for the sign-bit analysis."""

import numpy as np
import pytest

from repro.analysis.signbit import (
    BoxStats,
    ieee_sign_flip_identity,
    median_growth_factor,
    sign_bit_trials,
    sign_flip_boxes,
)
from repro.inject.campaign import CampaignConfig, run_campaign


class TestBoxStats:
    def test_matches_numpy_percentiles(self, rng):
        values = rng.lognormal(0, 2, 1000)
        box = BoxStats.from_values(3, values)
        assert box.group == 3
        assert box.count == 1000
        assert box.median == pytest.approx(np.median(values))
        assert box.q1 == pytest.approx(np.percentile(values, 25))
        assert box.q3 == pytest.approx(np.percentile(values, 75))
        assert box.minimum == np.min(values)
        assert box.maximum == np.max(values)

    def test_empty(self):
        box = BoxStats.from_values(1, np.array([]))
        assert box.count == 0
        assert np.isnan(box.median)

    def test_non_finite_dropped(self):
        box = BoxStats.from_values(1, np.array([1.0, np.inf, np.nan, 3.0]))
        assert box.count == 2
        assert box.maximum == 3.0


class TestSignFlipBoxes:
    def test_only_sign_bit_trials(self, small_field):
        result = run_campaign(small_field, "posit32", CampaignConfig(trials_per_bit=10, seed=4))
        trials = sign_bit_trials(result.records, 32)
        assert np.all(trials.bit == 31)
        boxes = sign_flip_boxes(result.records, 32, max_k=4)
        assert all(box.group <= 4 for box in boxes)
        assert sum(box.count for box in boxes) <= len(trials)

    def test_growth_factor_on_synthetic_exponential(self):
        boxes = [
            BoxStats(group=k, count=10, minimum=0, q1=0,
                     median=float(16.0**k), q3=0, maximum=0)
            for k in range(1, 6)
        ]
        assert median_growth_factor(boxes) == pytest.approx(16.0, rel=1e-6)

    def test_growth_factor_insufficient_data(self):
        assert np.isnan(median_growth_factor([]))
        one = [BoxStats(1, 5, 0, 0, 1.0, 0, 0)]
        assert np.isnan(median_growth_factor(one))


class TestIeeeIdentity:
    def test_exact_on_campaign(self, small_field):
        result = run_campaign(small_field, "ieee32", CampaignConfig(trials_per_bit=10, seed=4))
        assert ieee_sign_flip_identity(result.records, 32) == 0.0

    def test_empty(self):
        from repro.inject.results import TrialRecords

        assert ieee_sign_flip_identity(TrialRecords.empty(), 32) == 0.0
