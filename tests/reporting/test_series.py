"""Tests for series/figure/table containers."""

import numpy as np
import pytest

from repro.reporting.series import Figure, Series, Table


class TestSeries:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Series("bad", np.arange(3), np.arange(4))

    def test_finite(self):
        series = Series("s", np.arange(4), np.array([1.0, np.nan, np.inf, 2.0]))
        clean = series.finite()
        assert clean.x.tolist() == [0, 3]
        assert clean.y.tolist() == [1.0, 2.0]

    def test_max_point(self):
        series = Series("s", np.arange(3), np.array([1.0, 5.0, np.nan]))
        assert series.max_point() == (1.0, 5.0)

    def test_max_point_empty(self):
        series = Series("s", np.arange(2), np.array([np.nan, np.nan]))
        x, y = series.max_point()
        assert np.isnan(x) and np.isnan(y)


class TestFigure:
    def test_add_get_labels(self):
        figure = Figure("t", "x", "y")
        figure.add(Series("a", np.arange(2), np.arange(2)))
        figure.add(Series("b", np.arange(2), np.arange(2)))
        assert figure.labels() == ["a", "b"]
        assert figure.get("a").label == "a"
        with pytest.raises(KeyError):
            figure.get("c")


class TestTable:
    def test_add_row_list_and_dict(self):
        table = Table("t", columns=["a", "b"])
        table.add_row([1, 2])
        table.add_row({"b": 4, "a": 3})
        assert table.rows == [[1, 2], [3, 4]]
        assert table.column("b") == [2, 4]

    def test_row_length_validation(self):
        table = Table("t", columns=["a"])
        with pytest.raises(ValueError):
            table.add_row([1, 2])
