"""Tests for plain-text rendering."""

import numpy as np

from repro.reporting.series import Figure, Series, Table
from repro.reporting.tables import (
    format_cell,
    render_ascii_plot,
    render_series_table,
    render_table,
)


class TestFormatCell:
    def test_float_styles(self):
        assert format_cell(0.0) == "0"
        assert format_cell(1.5) == "1.5"
        assert format_cell(1.23456789e-9) == "1.235e-09"
        assert format_cell(float("nan")) == "nan"
        assert format_cell(float("inf")) == "inf"
        assert format_cell(float("-inf")) == "-inf"
        assert format_cell(np.float64(2.0)) == "2"

    def test_non_float(self):
        assert format_cell("abc") == "abc"
        assert format_cell(7) == "7"


class TestRenderTable:
    def test_contains_cells_and_title(self):
        table = Table("demo", columns=["name", "value"])
        table.add_row(["alpha", 1.5])
        table.notes.append("a note")
        text = render_table(table)
        assert "== demo ==" in text
        assert "alpha" in text
        assert "1.5" in text
        assert "note: a note" in text

    def test_alignment(self):
        table = Table("demo", columns=["c"])
        table.add_row(["x"])
        lines = render_table(table).splitlines()
        assert len(lines) == 4


class TestRenderSeriesTable:
    def test_common_grid(self):
        figure = Figure("fig", "bit", "err")
        figure.add(Series("a", np.arange(3), np.array([1.0, 2.0, 3.0])))
        figure.add(Series("b", np.arange(3), np.array([4.0, 5.0, 6.0])))
        text = render_series_table(figure)
        assert "fig" in text
        assert "a" in text and "b" in text

    def test_mismatched_grids_fall_back(self):
        figure = Figure("fig", "bit", "err")
        figure.add(Series("a", np.arange(3), np.arange(3).astype(float)))
        figure.add(Series("b", np.arange(5, 7), np.arange(2).astype(float)))
        text = render_series_table(figure)
        assert "-- a" in text
        assert "-- b" in text


class TestAsciiPlot:
    def test_plot_contains_points(self):
        series = Series("curve", np.arange(10), np.arange(10).astype(float))
        text = render_ascii_plot(series)
        assert "*" in text
        assert "[curve]" in text

    def test_log_scale(self):
        series = Series("log", np.arange(5), 10.0 ** np.arange(5))
        text = render_ascii_plot(series, log_y=True)
        assert "(log10 y)" in text

    def test_empty(self):
        series = Series("none", np.array([0.0]), np.array([np.nan]))
        assert "no finite points" in render_ascii_plot(series)

    def test_log_all_negative(self):
        series = Series("neg", np.arange(2), np.array([-1.0, -2.0]))
        assert "no positive points" in render_ascii_plot(series, log_y=True)
