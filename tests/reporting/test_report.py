"""Tests for the full-study report generator."""

from repro.experiments import ExperimentParams
from repro.reporting.report import generate_report


class TestGenerateReport:
    def test_subset_report(self, tmp_path):
        params = ExperimentParams(data_size=1 << 12, trials_per_bit=16, seed=1)
        path = generate_report(tmp_path, params, ids=["worked", "fig07"])
        text = path.read_text()
        assert "# Posit resiliency study" in text
        assert "## worked" in text
        assert "## fig07" in text
        assert "[FAIL]" not in text
        assert "checks:" in text

    def test_csv_exports_written(self, tmp_path):
        params = ExperimentParams(data_size=1 << 12, trials_per_bit=16, seed=1)
        generate_report(tmp_path, params, ids=["fig07"])
        csvs = list(tmp_path.glob("fig07-*.csv"))
        assert csvs, "expected per-figure CSV exports"
