"""Tests for CSV export of tables and figures."""

import csv

import numpy as np

from repro.reporting.export import write_figure_csv, write_table_csv
from repro.reporting.series import Figure, Series, Table


class TestTableCsv:
    def test_roundtrip_content(self, tmp_path):
        table = Table("t", columns=["a", "b"])
        table.add_row([1, 2.5])
        path = tmp_path / "table.csv"
        write_table_csv(table, path)
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]


class TestFigureCsv:
    def test_long_form(self, tmp_path):
        figure = Figure("f", "x", "y")
        figure.add(Series("s1", np.arange(2), np.array([1.0, np.inf])))
        path = tmp_path / "figure.csv"
        write_figure_csv(figure, path)
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["series", "x", "y"]
        assert rows[1][0] == "s1"
        assert rows[2][2] == "inf"
