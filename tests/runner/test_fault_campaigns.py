"""Fault models through the campaign stack: identity, persistence, resume.

The golden test pins the byte layout of a default (``single``) campaign
run directory: any change to the RNG discipline, CSV schema, or manifest
serialization that shifts those bytes breaks resumability of existing
run dirs and must show up here, not in the field.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.inject.campaign import (
    CampaignConfig,
    run_campaign,
    run_campaign_shard,
    run_field_trials,
    bit_seeds,
)
from repro.inject.faultspec import FaultSpecError
from repro.inject.results import TrialRecords
from repro.metrics.summary import SummaryStats
from repro.runner import RunManifest, verify_run
from repro.runner.manifest import MANIFEST_NAME

# sha256 of each shard CSV from the pre-fault-dimension code path, for
# default_rng(42).normal(0, 10, 64) stored in posit16 with
# CampaignConfig(trials_per_bit=7, bits=(0, 3, 14, 15), seed=99).
GOLDEN_SHARDS = {
    0: "6d981b6d0520448eec79ac9da1968761e48ce78b0196f3f8658eb459d117d098",
    3: "1331b38a2b6c42f177de46998027f25048fd37a2c8783c539f775545b4200dac",
    14: "5e42a6fec556c149b6af0ae01daf13bdcfe74aa9b358912e747594c7461fa378",
    15: "ee77db95ff7f3ddb925097bf189997665dd445ebae9229ef7ee618c550145797",
}


def _golden_run(tmp_path, **overrides):
    data = np.random.default_rng(42).normal(0, 10, 64)
    kwargs = dict(trials_per_bit=7, bits=(0, 3, 14, 15), seed=99)
    kwargs.update(overrides)
    config = CampaignConfig(**kwargs)
    run_dir = tmp_path / "run"
    result = run_campaign(data, "posit16", config, label="golden", run_dir=run_dir)
    return result, run_dir


class TestDefaultRunsStayByteIdentical:
    """Satellite: `single` campaigns must match pre-PR run dirs exactly."""

    def test_shard_csvs_match_golden_checksums(self, tmp_path):
        _, run_dir = _golden_run(tmp_path)
        for bit, expected in GOLDEN_SHARDS.items():
            payload = RunManifest.shard_path(run_dir, bit).read_bytes()
            assert hashlib.sha256(payload).hexdigest() == expected, f"bit {bit}"

    def test_manifest_config_has_no_fault_key(self, tmp_path):
        _, run_dir = _golden_run(tmp_path)
        payload = json.loads((run_dir / MANIFEST_NAME).read_text())
        assert payload["config"] == {
            "trials_per_bit": 7, "bits": [0, 3, 14, 15], "seed": 99,
        }

    def test_single_shards_have_no_fault_spec_column(self, tmp_path):
        _, run_dir = _golden_run(tmp_path)
        header = RunManifest.shard_path(run_dir, 0).read_text().splitlines()[0]
        assert "fault_spec" not in header

    def test_non_default_shards_carry_the_spec_column(self, tmp_path):
        _, run_dir = _golden_run(tmp_path, fault="adjacent(2)")
        shard = RunManifest.shard_path(run_dir, 0)
        lines = [
            line for line in shard.read_text().splitlines()
            if not line.startswith("#")
        ]
        assert lines[0].split(",")[-1] == "fault_spec"
        assert lines[1].endswith("adjacent(2)")
        records = TrialRecords.read_csv(shard)
        assert set(records.fault_spec) == {"adjacent(2)"}


class TestManifestFaultIdentity:
    def test_fault_joins_identity_only_when_non_default(self, tmp_path):
        _, single_dir = _golden_run(tmp_path / "a")
        single = RunManifest.load(single_dir)
        assert "fault" not in single.identity()
        _, multi_dir = _golden_run(tmp_path / "b", fault="adjacent(2)")
        multi = RunManifest.load(multi_dir)
        assert multi.identity()["fault"] == "adjacent(2)"

    def test_mismatch_is_named(self, tmp_path):
        _, single_dir = _golden_run(tmp_path / "a")
        _, multi_dir = _golden_run(tmp_path / "b", fault="stuckat(3,1)")
        diffs = RunManifest.load(multi_dir).mismatches(RunManifest.load(single_dir))
        assert len(diffs) == 1
        assert "fault" in diffs[0]
        assert "stuckat(3,1)" in diffs[0]

    def test_manifest_round_trips_fault(self, tmp_path):
        _, run_dir = _golden_run(tmp_path, fault="burst(3, 0.5)")
        manifest = RunManifest.load(run_dir)
        assert manifest.fault == "burst(3,0.5)"  # canonical form on disk
        clone = RunManifest.from_json(manifest.to_json())
        assert clone.fault == "burst(3,0.5)"

    def test_invalid_fault_rejected_at_config_time(self):
        with pytest.raises(FaultSpecError, match="adjacent"):
            CampaignConfig(trials_per_bit=2, fault="adjacent(1)")


class TestExecutorsAgreeUnderFaults:
    @pytest.mark.parametrize("fault", ["adjacent(2)", "random(2)", "stuckat(3,1)"])
    def test_serial_pool_and_work_stealing_match(self, small_field, tmp_path, fault):
        config = CampaignConfig(
            trials_per_bit=4, bits=(0, 3, 14, 15), seed=5, fault=fault
        )
        checksums = {}
        for name in ("serial", "pool", "work-stealing"):
            run_dir = tmp_path / name.replace("(", "-")
            run_campaign(small_field, "posit16", config, jobs=2,
                         run_dir=run_dir, executor=name)
            report = verify_run(run_dir)
            assert report.ok, report.render()
            checksums[name] = [
                RunManifest.shard_path(run_dir, bit).read_bytes()
                for bit in config.bits
            ]
        assert checksums["serial"] == checksums["pool"]
        assert checksums["serial"] == checksums["work-stealing"]


class TestBatchedFieldPathMatchesShards:
    @pytest.mark.parametrize(
        "fault", ["single", "adjacent(2)", "random(2)", "burst(3,0.5)", "stuckat(3,1)"]
    )
    def test_run_field_trials_equals_per_shard(self, small_field, fault):
        from repro.formats import resolve

        target = resolve("posit16")
        config = CampaignConfig(trials_per_bit=6, bits=(0, 2, 14, 15), seed=31,
                                fault=fault)
        stored = target.round_trip(np.asarray(small_field, dtype=np.float64))
        baseline = SummaryStats.from_array(stored)
        batched = run_field_trials(stored, target, baseline, config)
        seeds = bit_seeds(config, target)
        shards = [
            run_campaign_shard(stored, target, bit, config.trials_per_bit,
                               seeds[bit], baseline, fault_spec=config.fault)
            for bit in config.bits
        ]
        merged = TrialRecords.concatenate(shards)
        assert len(batched) == len(merged)
        for column in batched.column_names():
            lhs, rhs = getattr(batched, column), getattr(merged, column)
            if lhs is None or rhs is None:
                assert lhs is None and rhs is None, column
                continue
            assert np.array_equal(
                np.asarray(lhs), np.asarray(rhs),
                equal_nan=getattr(lhs, "dtype", np.dtype(object)).kind == "f",
            ), column


class TestVerifyIsFaultAware:
    def test_clean_non_default_run_verifies(self, tmp_path):
        _, run_dir = _golden_run(tmp_path, fault="adjacent(2)")
        report = verify_run(run_dir)
        assert report.ok, report.render()

    def test_model_mismatch_is_an_error(self, tmp_path):
        _, run_dir = _golden_run(tmp_path, fault="adjacent(2)")
        manifest = RunManifest.load(run_dir)
        manifest.fault = "stuckat(3,1)"
        manifest.write(run_dir)
        report = verify_run(run_dir)
        assert not report.ok
        assert any(f.check == "shard-fault" for f in report.findings)

    def test_missing_column_against_non_default_manifest_is_an_error(
        self, tmp_path
    ):
        _, run_dir = _golden_run(tmp_path)  # single: no fault_spec column
        manifest = RunManifest.load(run_dir)
        manifest.fault = "adjacent(2)"
        manifest.write(run_dir)
        report = verify_run(run_dir)
        assert not report.ok
        assert any(
            f.check == "shard-fault" and "no fault_spec column" in f.message
            for f in report.findings
        )


class TestResumeGuard:
    def test_resume_keeps_the_recorded_fault(self, small_field, tmp_path):
        config = CampaignConfig(trials_per_bit=3, bits=(0, 1), seed=9,
                                fault="adjacent(2)")
        run_dir = tmp_path / "run"
        run_campaign(small_field, "posit16", config, run_dir=run_dir)
        # Resuming with the same config is a no-op completion.
        result = run_campaign(small_field, "posit16", config, run_dir=run_dir,
                              resume=True)
        assert result.extras["resumed_shards"] == 2
        assert set(result.records.fault_spec) == {"adjacent(2)"}

    def test_resume_with_different_fault_is_an_identity_mismatch(
        self, small_field, tmp_path
    ):
        run_dir = tmp_path / "run"
        run_campaign(
            small_field, "posit16",
            CampaignConfig(trials_per_bit=3, bits=(0, 1), seed=9, fault="adjacent(2)"),
            run_dir=run_dir,
        )
        with pytest.raises(Exception, match="fault"):
            run_campaign(
                small_field, "posit16",
                CampaignConfig(trials_per_bit=3, bits=(0, 1), seed=9),
                run_dir=run_dir, resume=True,
            )
