"""Fleet observability integration: tracing on ≡ tracing off, serial ≡ fleet.

The contract under test (PR invariants):

- tracing/metrics are strictly side-channel — shard CSVs stay
  **byte-identical** across serial, pool, and multi-process
  work-stealing runs with tracing enabled, and against an untraced
  serial baseline;
- every participating process leaves its own span + metrics files, and
  the Chrome export covers all of them on one time axis;
- shard-scoped telemetry counters (``inject.*``, ``metrics.*``) merge
  to identical values whatever the process topology.  (Process-scoped
  families — ``formats.*``, ``datasets.*`` LUT/cache traffic — scale
  with the number of processes by design and are excluded.)
"""

import multiprocessing

import pytest

from repro.datasets.registry import get as get_preset
from repro.inject.campaign import CampaignConfig, run_campaign
from repro.runner import RunManifest, read_event_log, run_worker
from repro.runner.manifest import RUN_COMPLETED
from repro.runner.runner import CampaignRunner
from repro.telemetry import (
    chrome_trace,
    load_run_snapshot,
    load_worker_snapshots,
    read_metrics,
    read_trace,
    trace_workers,
)

FIELD = "cesm/cloud"
SIZE = 256
DATA_SEED = 2023
TRIALS = 2
BITS = tuple(range(6))
SEED = 42

#: Counter families produced per shard (identical for any topology), as
#: opposed to per-process cache/LUT traffic.
SHARD_SCOPED = ("inject.", "metrics.")


def _data():
    return get_preset(FIELD).generate(seed=DATA_SEED, size=SIZE)


def _config():
    return CampaignConfig(trials_per_bit=TRIALS, bits=BITS, seed=SEED)


def _run(run_dir, **kwargs):
    return run_campaign(
        _data(), "posit16", _config(), run_dir=run_dir,
        dataset={"kind": "preset", "field": FIELD, "size": SIZE,
                 "seed": DATA_SEED},
        **kwargs,
    )


def _shard_bytes(run_dir):
    return {
        bit: RunManifest.shard_path(run_dir, bit).read_bytes() for bit in BITS
    }


def _scoped_counters(run_dir):
    snapshot = load_run_snapshot(run_dir)
    assert snapshot is not None
    return {
        key: value
        for key, value in snapshot.counters.items()
        if key.startswith(SHARD_SCOPED)
    }


def _worker_process(run_dir, **kwargs):
    context = multiprocessing.get_context("fork")
    process = context.Process(
        target=run_worker, args=(run_dir,),
        kwargs={"telemetry": True, "lease_timeout": 30.0, **kwargs},
        daemon=True,
    )
    process.start()
    process.join(timeout=120)
    assert process.exitcode == 0
    return process


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Untraced serial run: the byte-identity reference."""
    run_dir = tmp_path_factory.mktemp("obs") / "baseline"
    _run(run_dir, trace=False)
    return run_dir


class TestTracedSerial:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("obs") / "serial"
        _run(run_dir, trace=True, telemetry=True)
        return run_dir

    def test_csv_bytes_match_untraced_baseline(self, run_dir, baseline):
        assert _shard_bytes(run_dir) == _shard_bytes(baseline)

    def test_span_categories_and_parenting(self, run_dir):
        records = read_trace(run_dir)
        by_cat = {r["cat"] for r in records}
        assert by_cat == {"run", "worker", "shard"}
        shards = [r for r in records if r["cat"] == "shard"]
        assert sorted(r["bit"] for r in shards) == list(BITS)
        [worker_span] = [r for r in records if r["cat"] == "worker"]
        [run_span] = [r for r in records if r["cat"] == "run"]
        assert worker_span["parent_id"] == run_span["span_id"]
        assert all(r["parent_id"] == worker_span["span_id"] for r in shards)
        assert len({r["trace_id"] for r in records}) == 1

    def test_metrics_series_written(self, run_dir):
        series = read_metrics(run_dir)
        assert len(series) == 1
        points = next(iter(series.values()))
        assert points[-1]["trials_done"] == TRIALS * len(BITS)
        assert points[-1]["shards_done"] == len(BITS)
        assert all(p["rss_bytes"] > 0 for p in points)

    def test_events_carry_trace_id(self, run_dir):
        events = read_event_log(RunManifest.event_log_path(run_dir))
        trace_ids = {e.get("trace_id") for e in events}
        assert len(trace_ids) == 1 and None not in trace_ids
        assert trace_ids == {read_trace(run_dir)[0]["trace_id"]}

    def test_manifest_records_trace_flag(self, run_dir, baseline):
        assert RunManifest.load(run_dir).trace is True
        assert RunManifest.load(baseline).trace is False


class TestUntracedStaysClean:
    def test_no_side_channel_files_or_fields(self, baseline):
        assert not (baseline / "trace").exists()
        assert not (baseline / "metrics").exists()
        events = read_event_log(RunManifest.event_log_path(baseline))
        assert all("trace_id" not in e for e in events)


class TestTopologyIdentity:
    """Serial, pool, and two subprocess workers agree exactly."""

    @pytest.fixture(scope="class")
    def serial_dir(self, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("obs") / "serial"
        _run(run_dir, trace=True, telemetry=True)
        return run_dir

    @pytest.fixture(scope="class")
    def pool_dir(self, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("obs") / "pool"
        _run(run_dir, jobs=2, executor="pool", trace=True, telemetry=True)
        return run_dir

    @pytest.fixture(scope="class")
    def fleet_dir(self, tmp_path_factory):
        """Submit, then two standalone worker processes drain the run."""
        run_dir = tmp_path_factory.mktemp("obs") / "fleet"
        runner = CampaignRunner(
            _data(), "posit16", _config(), run_dir=run_dir,
            dataset={"kind": "preset", "field": FIELD, "size": SIZE,
                     "seed": DATA_SEED},
            trace=True,
        )
        runner.submit()
        # Sequential for determinism: the first worker computes exactly
        # half the shards, the second takes the rest and finalizes.
        _worker_process(run_dir, worker_id="obs-w1",
                        max_claims=len(BITS) // 2, max_idle_seconds=10.0)
        _worker_process(run_dir, worker_id="obs-w2", max_idle_seconds=10.0)
        assert RunManifest.load(run_dir).status == RUN_COMPLETED
        return run_dir

    def test_csv_bytes_identical_across_topologies(
        self, baseline, serial_dir, pool_dir, fleet_dir
    ):
        expected = _shard_bytes(baseline)
        assert _shard_bytes(serial_dir) == expected
        assert _shard_bytes(pool_dir) == expected
        assert _shard_bytes(fleet_dir) == expected

    def test_shard_scoped_counters_identical(
        self, serial_dir, pool_dir, fleet_dir
    ):
        expected = _scoped_counters(serial_dir)
        assert expected  # the filter must not be vacuous
        assert _scoped_counters(pool_dir) == expected
        assert _scoped_counters(fleet_dir) == expected

    def test_each_worker_left_trace_and_metrics(self, fleet_dir):
        records = read_trace(fleet_dir)
        assert set(trace_workers(records)) == {"obs-w1", "obs-w2"}
        assert set(read_metrics(fleet_dir)) == {"obs-w1", "obs-w2"}
        for worker in ("obs-w1", "obs-w2"):
            mine = [r for r in records
                    if r["worker"] == worker and r["cat"] == "shard"]
            assert len(mine) == len(BITS) // 2

    def test_worker_snapshots_written_and_merged(self, fleet_dir):
        snapshots = load_worker_snapshots(fleet_dir)
        assert set(snapshots) == {"obs-w1", "obs-w2"}
        merged = load_run_snapshot(fleet_dir)
        for key in _scoped_counters(fleet_dir):
            assert merged.counters[key] == sum(
                s.counters.get(key, 0) for s in snapshots.values()
            )

    def test_chrome_export_covers_both_workers(self, fleet_dir):
        document = chrome_trace(fleet_dir)
        lanes = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert lanes == {"obs-w1", "obs-w2"}
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        pids = {e["pid"] for e in spans}
        assert len(pids) == 2
        assert all(e["ts"] >= 0 for e in spans)
