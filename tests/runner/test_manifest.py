"""Tests for the run manifest and dataset fingerprinting."""

import json

import numpy as np
import pytest

from repro.runner.errors import ManifestError
from repro.runner.manifest import (
    MANIFEST_NAME,
    RUN_COMPLETED,
    RUN_RUNNING,
    SHARD_COMPLETED,
    SHARD_PENDING,
    RunManifest,
    ShardState,
    dataset_fingerprint,
    quarantine_file,
    shard_checksum,
    shard_file_name,
)


def _manifest(**overrides) -> RunManifest:
    base = dict(
        target_spec="posit32",
        label="nyx/temperature",
        trials_per_bit=8,
        bits=None,
        seed=2023,
        data_fingerprint="abc123",
        data_size=4096,
        shards={b: ShardState(bit=b, trials=8) for b in range(4)},
        dataset={"kind": "preset", "field": "nyx/temperature", "size": 4096, "seed": 2023},
    )
    base.update(overrides)
    return RunManifest(**base)


class TestFingerprint:
    def test_stable_for_same_content(self):
        a = np.arange(100, dtype=np.float32)
        assert dataset_fingerprint(a) == dataset_fingerprint(a.copy())

    def test_sensitive_to_values(self):
        a = np.arange(100, dtype=np.float32)
        b = a.copy()
        b[50] += 1
        assert dataset_fingerprint(a) != dataset_fingerprint(b)

    def test_sensitive_to_dtype(self):
        a = np.arange(100, dtype=np.float32)
        assert dataset_fingerprint(a) != dataset_fingerprint(a.astype(np.float64))

    def test_flattens(self):
        a = np.arange(100, dtype=np.float32)
        assert dataset_fingerprint(a) == dataset_fingerprint(a.reshape(10, 10))


class TestRoundTrip:
    def test_json_round_trip(self):
        manifest = _manifest()
        manifest.shards[2].status = SHARD_COMPLETED
        manifest.shards[2].attempts = 2
        manifest.shards[2].duration = 0.125
        clone = RunManifest.from_json(manifest.to_json())
        assert clone.identity() == manifest.identity()
        assert clone.label == manifest.label
        assert clone.dataset == manifest.dataset
        assert clone.completed_bits() == [2]
        assert clone.shards[2].attempts == 2
        assert clone.shards[2].duration == pytest.approx(0.125)

    def test_bits_subset_round_trip(self):
        manifest = _manifest(bits=(3, 7, 31), shards={})
        clone = RunManifest.from_json(manifest.to_json())
        assert clone.bits == (3, 7, 31)

    def test_disk_round_trip(self, tmp_path):
        manifest = _manifest(status=RUN_COMPLETED)
        manifest.write(tmp_path)
        assert (tmp_path / MANIFEST_NAME).is_file()
        clone = RunManifest.load(tmp_path)
        assert clone.status == RUN_COMPLETED
        assert clone.identity() == manifest.identity()
        assert clone.created_at == manifest.created_at > 0

    def test_write_is_atomic_replace(self, tmp_path):
        manifest = _manifest()
        manifest.write(tmp_path)
        manifest.status = RUN_COMPLETED
        manifest.write(tmp_path)
        assert not (tmp_path / (MANIFEST_NAME + ".tmp")).exists()
        assert json.loads((tmp_path / MANIFEST_NAME).read_text())["status"] == RUN_COMPLETED

    def test_load_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            RunManifest.load(tmp_path)

    def test_checksum_round_trip(self):
        manifest = _manifest()
        manifest.shards[2].status = SHARD_COMPLETED
        manifest.shards[2].checksum = "f" * 64
        clone = RunManifest.from_json(manifest.to_json())
        assert clone.shards[2].checksum == "f" * 64
        assert clone.shards[1].checksum is None

    @pytest.mark.parametrize("payload", ['{"status": "comp', "not json at all", "[1, 2]"])
    def test_load_corrupt_raises_manifest_error(self, tmp_path, payload):
        (tmp_path / MANIFEST_NAME).write_text(payload)
        with pytest.raises(ManifestError) as excinfo:
            RunManifest.load(tmp_path)
        message = str(excinfo.value)
        assert MANIFEST_NAME in message
        assert "recovery" in message


class TestChecksumAndQuarantine:
    def test_shard_checksum_matches_hashlib(self, tmp_path):
        import hashlib

        path = tmp_path / "bit-000.csv"
        payload = b"trial,bit\r\n1,0\r\n"
        path.write_bytes(payload)
        assert shard_checksum(path) == hashlib.sha256(payload).hexdigest()

    def test_quarantine_preserves_and_avoids_collisions(self, tmp_path):
        shards = tmp_path / "shards"
        shards.mkdir()
        first = shards / "bit-002.csv"
        first.write_text("one")
        moved_one = quarantine_file(tmp_path, first)
        second = shards / "bit-002.csv"
        second.write_text("two")
        moved_two = quarantine_file(tmp_path, second)
        assert moved_one != moved_two
        assert moved_one.read_text() == "one"
        assert moved_two.read_text() == "two"
        assert not first.exists()


class TestIdentity:
    def test_identical(self):
        assert _manifest().mismatches(_manifest()) == []

    @pytest.mark.parametrize(
        "field_name, value",
        [
            ("target_spec", "ieee32"),
            ("trials_per_bit", 9),
            ("seed", 7),
            ("data_fingerprint", "zzz"),
            ("data_size", 1),
            ("bits", (1, 2)),
        ],
    )
    def test_mismatch_is_named(self, field_name, value):
        diffs = _manifest(**{field_name: value}).mismatches(_manifest())
        assert len(diffs) == 1
        key = "bits" if field_name == "bits" else field_name
        assert key in diffs[0]


class TestProgress:
    def test_counters(self):
        manifest = _manifest()
        assert manifest.trials_total == 32
        assert manifest.trials_done == 0
        manifest.shards[1].status = SHARD_COMPLETED
        manifest.shards[3].status = SHARD_COMPLETED
        assert manifest.trials_done == 16
        assert manifest.completed_bits() == [1, 3]
        assert manifest.pending_bits() == [0, 2]

    def test_shard_state_defaults(self):
        state = ShardState(bit=5, trials=10)
        assert state.status == SHARD_PENDING
        assert ShardState.from_json(state.to_json()) == state

    def test_shard_file_name(self):
        assert shard_file_name(7) == "bit-007.csv"
        assert shard_file_name(31) == "bit-031.csv"

    def test_fresh_status(self):
        assert _manifest().status == RUN_RUNNING
