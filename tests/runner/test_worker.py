"""Tests for work-stealing workers cooperating on a submitted run.

The scenarios the executor refactor promises: two independent worker
processes share one run directory without computing any shard twice,
their shards are bit-identical to a serial run, and SIGKILLing a worker
mid-run costs a lease steal, not the campaign.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.datasets.registry import get as get_preset
from repro.inject.campaign import CampaignConfig, run_campaign
from repro.runner import (
    RunManifest,
    RunnerError,
    read_event_log,
    request_cancel,
    run_worker,
    verify_run,
)
from repro.runner.leases import try_claim
from repro.runner.manifest import RUN_COMPLETED, RUN_RUNNING
from repro.runner.runner import CampaignRunner
from repro.runner.worker import ShardWorker, fold_run

FIELD = "cesm/cloud"
SIZE = 1024
DATA_SEED = 2023


def _dataset():
    return get_preset(FIELD).generate(seed=DATA_SEED, size=SIZE)


def _provenance():
    return {"kind": "preset", "field": FIELD, "size": SIZE, "seed": DATA_SEED}


def _submit(run_dir, *, trials=3, bits=tuple(range(8)), seed=42, size=SIZE):
    data = get_preset(FIELD).generate(seed=DATA_SEED, size=size)
    runner = CampaignRunner(
        data, "posit16",
        CampaignConfig(trials_per_bit=trials, bits=bits, seed=seed),
        run_dir=run_dir,
        dataset={"kind": "preset", "field": FIELD, "size": size,
                 "seed": DATA_SEED},
    )
    return runner.submit(), data


def _spawn_worker(run_dir, **kwargs):
    context = multiprocessing.get_context("fork")
    process = context.Process(
        target=run_worker, args=(run_dir,), kwargs=kwargs, daemon=True
    )
    process.start()
    return process


def _events(run_dir):
    return read_event_log(RunManifest.event_log_path(run_dir))


class TestSubmit:
    def test_submit_writes_submitted_manifest(self, tmp_path):
        manifest, _ = _submit(tmp_path / "run")
        assert manifest.status == "submitted"
        assert manifest.executor == "work-stealing"
        loaded = RunManifest.load(tmp_path / "run")
        assert loaded.status == "submitted"
        assert not loaded.completed_bits()
        kinds = [e["kind"] for e in _events(tmp_path / "run")]
        assert kinds == ["run_submitted"]

    def test_submit_requires_run_dir(self):
        runner = CampaignRunner(
            _dataset(), "posit16", CampaignConfig(trials_per_bit=2, bits=(0,))
        )
        with pytest.raises(RunnerError, match="run_dir"):
            runner.submit()

    def test_submit_refuses_existing_campaign(self, tmp_path):
        _submit(tmp_path / "run")
        with pytest.raises(RunnerError, match="already holds a campaign"):
            _submit(tmp_path / "run")


class TestSingleWorker:
    def test_one_worker_completes_and_finalizes(self, tmp_path):
        run_dir = tmp_path / "run"
        _submit(run_dir, bits=(0, 3, 15))
        result = run_worker(run_dir, worker_id="solo", poll_interval=0.02)
        assert result.status == "completed"
        assert result.claims == 3
        assert result.finalized is True
        manifest = RunManifest.load(run_dir)
        assert manifest.status == RUN_COMPLETED
        assert {s.worker for s in manifest.shards.values()} == {"solo"}
        assert verify_run(run_dir).ok
        kinds = [e["kind"] for e in _events(run_dir)]
        assert kinds[0] == "run_submitted"
        assert "run_finish" in kinds
        assert kinds[-1] == "worker_exit"

    def test_worker_on_finished_run_is_a_noop(self, tmp_path):
        run_dir = tmp_path / "run"
        _submit(run_dir, bits=(0, 1))
        run_worker(run_dir, worker_id="first", poll_interval=0.02)
        again = run_worker(run_dir, worker_id="second", poll_interval=0.02)
        assert again.claims == 0
        assert again.status == "completed"
        assert again.finalized is False  # the marker is one-shot

    def test_worker_refuses_foreign_executor_mid_run(self, tmp_path):
        run_dir = tmp_path / "run"
        _submit(run_dir, bits=(0, 1))
        manifest = RunManifest.load(run_dir)
        manifest.status = RUN_RUNNING
        manifest.executor = "pool"
        manifest.write(run_dir)
        with pytest.raises(RunnerError, match="cannot join"):
            ShardWorker(run_dir)._load()

    def test_cancel_stops_the_worker(self, tmp_path):
        run_dir = tmp_path / "run"
        _submit(run_dir, bits=(0, 1, 2))
        request_cancel(run_dir, reason="test")
        result = run_worker(run_dir, worker_id="w", poll_interval=0.02)
        assert result.status == "cancelled"
        assert result.claims == 0

    def test_idle_timeout_when_all_leased_elsewhere(self, tmp_path):
        run_dir = tmp_path / "run"
        _submit(run_dir, bits=(0, 1))
        assert try_claim(run_dir, 0, "other") is not None
        assert try_claim(run_dir, 1, "other") is not None
        result = run_worker(run_dir, worker_id="w", poll_interval=0.02,
                            max_idle_seconds=0.3, lease_timeout=60.0)
        assert result.status == "idle"
        assert result.claims == 0


class TestTwoWorkersCooperate:
    def test_split_run_is_bit_identical_to_serial(self, tmp_path):
        bits = tuple(range(8))
        run_dir = tmp_path / "shared"
        _submit(run_dir, bits=bits)

        # Cap each worker at half the shards so both identities must
        # appear in the claim log regardless of scheduling luck.
        workers = [
            _spawn_worker(run_dir, worker_id=f"w{i}", poll_interval=0.02,
                          max_claims=len(bits) // 2, finalize=False)
            for i in (1, 2)
        ]
        for process in workers:
            process.join(timeout=120)
            assert process.exitcode == 0

        # A capped worker exits idle without finalizing; a final no-op
        # worker folds the done records and emits run_finish.
        finisher = run_worker(run_dir, worker_id="finisher", poll_interval=0.02)
        assert finisher.claims == 0
        assert finisher.finalized is True
        manifest = RunManifest.load(run_dir)
        assert manifest.status == RUN_COMPLETED

        events = _events(run_dir)
        claimed = [e for e in events if e["kind"] == "shard_claimed"]
        claimed_bits = [e["bit"] for e in claimed]
        assert sorted(claimed_bits) == sorted(bits)  # no shard claimed twice
        identities = {e["detail"]["worker"] for e in claimed}
        assert identities == {"w1", "w2"}
        by_worker = {s.worker for s in manifest.shards.values()}
        assert by_worker == {"w1", "w2"}

        assert verify_run(run_dir).ok

        # Bit-identical to a serial run of the same campaign.
        serial_dir = tmp_path / "serial"
        run_campaign(
            _dataset(), "posit16",
            CampaignConfig(trials_per_bit=3, bits=bits, seed=42),
            run_dir=serial_dir, executor="serial", dataset=_provenance(),
        )
        for bit in bits:
            assert (RunManifest.shard_path(run_dir, bit).read_bytes()
                    == RunManifest.shard_path(serial_dir, bit).read_bytes()), (
                f"shard bit={bit} diverged from serial"
            )


class TestLeaseExpirySteal:
    def test_aged_lease_is_stolen_and_recomputed(self, tmp_path):
        run_dir = tmp_path / "run"
        _submit(run_dir, bits=(0, 1, 2))
        # A worker that died mid-shard: its lease exists but its mtime
        # never advances.  Rewind the mtime instead of sleeping out a
        # real timeout.
        lease = try_claim(run_dir, 1, "dead-worker")
        assert lease is not None
        old = time.time() - 3600.0
        os.utime(lease.path, (old, old))

        result = run_worker(run_dir, worker_id="healthy",
                            poll_interval=0.02, lease_timeout=30.0)
        assert result.status == "completed"
        assert result.stolen == 1
        assert result.claims == 3
        steals = [e for e in _events(run_dir) if e["kind"] == "lease_stolen"]
        assert len(steals) == 1
        assert steals[0]["bit"] == 1
        assert steals[0]["detail"]["stolen_from"] == "dead-worker"
        assert RunManifest.load(run_dir).status == RUN_COMPLETED
        assert verify_run(run_dir).ok

    def test_sigkilled_worker_does_not_sink_the_run(self, tmp_path):
        # Slow-ish shards so the victim is mid-compute when killed.
        bits = (0, 1, 2, 3)
        run_dir = tmp_path / "run"
        _submit(run_dir, bits=bits, trials=60, size=30_000)

        victim = _spawn_worker(run_dir, worker_id="victim",
                               poll_interval=0.02, lease_timeout=2.0)
        # Wait for the victim to claim its first shard, then kill it.
        deadline = time.monotonic() + 30.0
        leases_dir = run_dir / "leases"
        while not (leases_dir.is_dir() and any(
                p.suffix == ".lease" for p in leases_dir.iterdir())):
            assert time.monotonic() < deadline, "victim never claimed a shard"
            time.sleep(0.005)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)

        survivor = run_worker(run_dir, worker_id="survivor",
                              poll_interval=0.02, lease_timeout=0.5)
        assert survivor.status == "completed"
        manifest = RunManifest.load(run_dir)
        assert manifest.status == RUN_COMPLETED
        assert set(manifest.shards) == set(bits)
        assert not manifest.pending_bits()
        assert verify_run(run_dir).ok

        # The survivor either stole the victim's expired lease or the
        # victim's shard landed before the kill; both identities claimed
        # only if the victim got that far — but the run itself must be
        # whole and bit-identical to serial either way.
        serial_dir = tmp_path / "serial"
        run_campaign(
            get_preset(FIELD).generate(seed=DATA_SEED, size=30_000), "posit16",
            CampaignConfig(trials_per_bit=60, bits=bits, seed=42),
            run_dir=serial_dir, executor="serial",
            dataset={"kind": "preset", "field": FIELD, "size": 30_000,
                     "seed": DATA_SEED},
        )
        for bit in bits:
            assert (RunManifest.shard_path(run_dir, bit).read_bytes()
                    == RunManifest.shard_path(serial_dir, bit).read_bytes())

    def test_stale_temp_from_killed_writer_is_swept(self, tmp_path):
        # A SIGKILLed writer can die between writing bit-N.csv.tmp-<pid>
        # and the rename; whoever recomputes the shard must sweep the
        # orphan or `verify` flags the run dir.
        run_dir = tmp_path / "run"
        _submit(run_dir, bits=(0, 1), trials=2)
        shard = RunManifest.shard_path(run_dir, 0)
        shard.parent.mkdir(parents=True, exist_ok=True)
        orphan = shard.with_name(shard.name + ".tmp-99999")
        orphan.write_bytes(b"torn partial csv from a killed writer")

        result = run_worker(run_dir, worker_id="janitor", poll_interval=0.02)
        assert result.status == "completed"
        assert not list(shard.parent.glob("*.tmp-*"))
        assert verify_run(run_dir).ok


class TestFoldRun:
    def test_fold_is_idempotent(self, tmp_path):
        run_dir = tmp_path / "run"
        _submit(run_dir, bits=(0, 1))
        run_worker(run_dir, worker_id="w", poll_interval=0.02)
        first = fold_run(run_dir)
        second = fold_run(run_dir)
        assert first.to_json() == second.to_json()
        assert second.status == RUN_COMPLETED

    def test_fold_skips_record_with_missing_shard_file(self, tmp_path):
        run_dir = tmp_path / "run"
        _submit(run_dir, bits=(0, 1))
        run_worker(run_dir, worker_id="w", poll_interval=0.02)
        # Simulate a record whose shard file vanished: the fold must
        # leave that shard pending rather than trust the record.
        RunManifest.shard_path(run_dir, 0).unlink()
        manifest = RunManifest.load(run_dir)
        for state in manifest.shards.values():
            state.status = "pending"
            state.checksum = None
            state.worker = None
        manifest.status = "submitted"
        manifest.write(run_dir)
        folded = fold_run(run_dir)
        assert folded.pending_bits() == [0]
        assert folded.shards[1].status == "completed"
