"""Tests for the lease protocol (repro.runner.leases)."""

import json
import os
import time

import pytest

from repro.runner.leases import (
    Lease,
    LeaseHeartbeat,
    active_leases,
    cancel_requested,
    lease_age,
    lease_path,
    read_done_records,
    read_lease,
    request_cancel,
    try_acquire_finalize,
    try_claim,
    write_done_record,
)


class TestClaim:
    def test_claim_creates_lease_file(self, tmp_path):
        lease = try_claim(tmp_path, 3, "w1")
        assert lease is not None
        assert lease.bit == 3 and lease.worker == "w1"
        assert lease_path(tmp_path, 3).is_file()
        payload = read_lease(lease_path(tmp_path, 3))
        assert payload["worker"] == "w1"

    def test_second_claim_loses(self, tmp_path):
        assert try_claim(tmp_path, 0, "w1") is not None
        assert try_claim(tmp_path, 0, "w2") is None

    def test_release_frees_the_bit(self, tmp_path):
        lease = try_claim(tmp_path, 1, "w1")
        lease.release()
        assert not lease_path(tmp_path, 1).is_file()
        assert try_claim(tmp_path, 1, "w2") is not None

    def test_release_is_idempotent(self, tmp_path):
        lease = try_claim(tmp_path, 1, "w1")
        lease.release()
        lease.release()  # second release must not raise

    def test_distinct_bits_are_independent(self, tmp_path):
        assert try_claim(tmp_path, 0, "w1") is not None
        assert try_claim(tmp_path, 1, "w2") is not None
        leases = active_leases(tmp_path)
        assert {entry["bit"] for entry in leases} == {0, 1}
        assert {entry["worker"] for entry in leases} == {"w1", "w2"}


class TestSteal:
    def test_fresh_lease_is_not_stolen(self, tmp_path):
        assert try_claim(tmp_path, 5, "w1", lease_timeout=30.0) is not None
        assert try_claim(tmp_path, 5, "w2", lease_timeout=30.0) is None

    def test_expired_lease_is_stolen(self, tmp_path):
        assert try_claim(tmp_path, 5, "w1", lease_timeout=30.0) is not None
        # Age the lease file past the timeout by rewinding its mtime.
        path = lease_path(tmp_path, 5)
        old = time.time() - 120.0
        os.utime(path, (old, old))
        assert lease_age(lease_path(tmp_path, 5)) > 30.0
        stolen = try_claim(tmp_path, 5, "w2", lease_timeout=30.0)
        assert stolen is not None
        assert stolen.worker == "w2"
        assert stolen.stolen_from == "w1"
        assert read_lease(lease_path(tmp_path, 5))["worker"] == "w2"

    def test_heartbeat_refresh_prevents_steal(self, tmp_path):
        lease = try_claim(tmp_path, 2, "w1", lease_timeout=30.0)
        path = lease_path(tmp_path, 2)
        old = time.time() - 120.0
        os.utime(path, (old, old))
        lease.refresh()
        assert lease_age(lease_path(tmp_path, 2)) < 30.0
        assert try_claim(tmp_path, 2, "w2", lease_timeout=30.0) is None

    def test_heartbeat_thread_refreshes(self, tmp_path):
        lease = try_claim(tmp_path, 4, "w1", lease_timeout=30.0)
        path = lease_path(tmp_path, 4)
        with LeaseHeartbeat(lease, interval=0.05):
            old = time.time() - 120.0
            os.utime(path, (old, old))
            deadline = time.monotonic() + 5.0
            while lease_age(lease_path(tmp_path, 4)) > 30.0:
                assert time.monotonic() < deadline, "heartbeat never refreshed"
                time.sleep(0.02)

    def test_refresh_after_release_is_harmless(self, tmp_path):
        lease = try_claim(tmp_path, 6, "w1")
        lease.release()
        lease.refresh()  # OSError swallowed


class TestDoneRecords:
    def test_round_trip(self, tmp_path):
        write_done_record(
            tmp_path, 7, trials=10, duration=0.25, attempts=1,
            checksum="abc123", worker="w1",
        )
        records = read_done_records(tmp_path)
        assert set(records) == {7}
        assert records[7]["worker"] == "w1"
        assert records[7]["checksum"] == "abc123"
        assert records[7]["trials"] == 10

    def test_rewrite_is_atomic_replace(self, tmp_path):
        write_done_record(tmp_path, 7, trials=10, duration=0.1, attempts=1,
                          checksum="aaa", worker="w1")
        write_done_record(tmp_path, 7, trials=10, duration=0.2, attempts=2,
                          checksum="aaa", worker="w2")
        assert read_done_records(tmp_path)[7]["worker"] == "w2"

    def test_torn_record_skipped(self, tmp_path):
        write_done_record(tmp_path, 1, trials=5, duration=0.1, attempts=1,
                          checksum="aaa", worker="w1")
        torn = tmp_path / "leases" / "bit-002.done.json"
        torn.write_text('{"bit": 2, "trials"')
        records = read_done_records(tmp_path)
        assert set(records) == {1}

    def test_empty_dir(self, tmp_path):
        assert read_done_records(tmp_path) == {}
        assert active_leases(tmp_path) == []


class TestFinalizeAndCancel:
    def test_finalize_elects_exactly_one(self, tmp_path):
        assert try_acquire_finalize(tmp_path, "w1") is True
        assert try_acquire_finalize(tmp_path, "w2") is False

    def test_cancel_sentinel(self, tmp_path):
        assert not cancel_requested(tmp_path)
        request_cancel(tmp_path, reason="operator said so")
        assert cancel_requested(tmp_path)
        payload = json.loads((tmp_path / "CANCELLED").read_text())
        assert payload["reason"] == "operator said so"

    def test_cancel_is_idempotent(self, tmp_path):
        request_cancel(tmp_path)
        request_cancel(tmp_path, reason="again")
        assert cancel_requested(tmp_path)


class TestLeaseValue:
    def test_frozen(self, tmp_path):
        lease = try_claim(tmp_path, 0, "w1")
        with pytest.raises(AttributeError):
            lease.bit = 9
        assert isinstance(lease, Lease)
