"""Interrupt/resume determinism: the tentpole guarantee of the runner.

A campaign killed after k shards and then resumed must produce trial
records bit-identical to an uninterrupted run — for the serial and the
pool backend, in any combination across the interrupt boundary.
"""

import pytest

from repro.inject.campaign import CampaignConfig, run_campaign
from repro.runner import (
    RunnerHooks,
    read_event_log,
    resume_campaign,
    run_status,
)
from repro.runner.manifest import RUN_INTERRUPTED, RunManifest

from tests.runner.test_runner import assert_records_identical


class KillAfter(RunnerHooks):
    """Simulates an interrupt by raising after k completed shards."""

    def __init__(self, shards: int):
        self.remaining = shards

    def on_shard_finish(self, event) -> None:
        if event.kind != "shard_finish":
            return
        self.remaining -= 1
        if self.remaining <= 0:
            raise KeyboardInterrupt


@pytest.fixture
def config() -> CampaignConfig:
    return CampaignConfig(trials_per_bit=4, seed=77)


@pytest.fixture
def uninterrupted(small_field, config):
    return run_campaign(small_field, "posit32", config)


class TestResumeBitIdentical:
    @pytest.mark.parametrize("first_jobs, second_jobs", [(1, 1), (1, 3), (3, 1), (3, 3)])
    def test_kill_then_resume(
        self, small_field, config, uninterrupted, tmp_path, first_jobs, second_jobs
    ):
        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                small_field, "posit32", config,
                run_dir=run_dir, jobs=first_jobs, hooks=KillAfter(5),
            )

        status = run_status(run_dir)
        assert status.status == RUN_INTERRUPTED
        assert status.shards_done >= 5  # pool backend may land extra shards
        assert status.pending_bits

        resumed = resume_campaign(run_dir, small_field, jobs=second_jobs)
        assert_records_identical(uninterrupted.records, resumed.records)
        assert resumed.extras["resumed_shards"] == status.shards_done
        assert run_status(run_dir).complete

    def test_double_interrupt_then_resume(self, small_field, config, uninterrupted, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(small_field, "posit32", config,
                         run_dir=run_dir, hooks=KillAfter(3))
        with pytest.raises(KeyboardInterrupt):
            resume_campaign(run_dir, small_field, hooks=KillAfter(4))
        resumed = resume_campaign(run_dir, small_field)
        assert_records_identical(uninterrupted.records, resumed.records)

    def test_resume_via_run_campaign_resume_flag(
        self, small_field, config, uninterrupted, tmp_path
    ):
        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(small_field, "posit32", config,
                         run_dir=run_dir, hooks=KillAfter(5))
        resumed = run_campaign(small_field, "posit32", config,
                               run_dir=run_dir, resume=True)
        assert_records_identical(uninterrupted.records, resumed.records)

    def test_resume_regenerates_preset_dataset(self, tmp_path):
        from repro.datasets.registry import get as get_preset

        data = get_preset("cesm/cloud").generate(seed=5, size=2048)
        config = CampaignConfig(trials_per_bit=3, seed=5)
        provenance = {"kind": "preset", "field": "cesm/cloud", "size": 2048, "seed": 5}
        uninterrupted = run_campaign(data, "posit32", config)

        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(data, "posit32", config, run_dir=run_dir,
                         dataset=provenance, hooks=KillAfter(4))
        # No data argument: the manifest's provenance regenerates it.
        resumed = resume_campaign(run_dir)
        assert_records_identical(uninterrupted.records, resumed.records)

    def test_resume_without_provenance_needs_data(self, small_field, config, tmp_path):
        from repro.runner import RunnerError

        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(small_field, "posit32", config,
                         run_dir=run_dir, hooks=KillAfter(2))
        with pytest.raises(RunnerError, match="dataset source"):
            resume_campaign(run_dir)


class TestShardIntegrity:
    def _interrupted_run(self, small_field, config, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(small_field, "posit32", config,
                         run_dir=run_dir, hooks=KillAfter(5))
        return run_dir

    def test_corrupt_shard_is_recomputed(
        self, small_field, config, uninterrupted, tmp_path
    ):
        run_dir = self._interrupted_run(small_field, config, tmp_path)
        victim = run_status(run_dir).shards_done - 1
        bit = RunManifest.load(run_dir).completed_bits()[victim]
        RunManifest.shard_path(run_dir, bit).write_text("not,a,trial,log\n")

        resumed = resume_campaign(run_dir, small_field)
        assert_records_identical(uninterrupted.records, resumed.records)

    def test_missing_shard_file_is_recomputed(
        self, small_field, config, uninterrupted, tmp_path
    ):
        run_dir = self._interrupted_run(small_field, config, tmp_path)
        bit = RunManifest.load(run_dir).completed_bits()[0]
        RunManifest.shard_path(run_dir, bit).unlink()

        status = run_status(run_dir)
        assert bit in status.missing_shard_files
        assert "missing" in status.summary()

        resumed = resume_campaign(run_dir, small_field)
        assert_records_identical(uninterrupted.records, resumed.records)

    def test_interrupt_event_logged_and_resume_appends(
        self, small_field, config, tmp_path
    ):
        run_dir = self._interrupted_run(small_field, config, tmp_path)
        events = read_event_log(RunManifest.event_log_path(run_dir))
        kinds = [event["kind"] for event in events]
        assert kinds[-1] == "run_interrupted"

        resume_campaign(run_dir, small_field)
        kinds = [e["kind"] for e in read_event_log(RunManifest.event_log_path(run_dir))]
        assert kinds.count("run_start") == 2
        assert kinds[-1] == "run_finish"
        assert kinds.count("shard_skipped") >= 5

    def test_completed_shards_never_rerun(self, small_field, config, tmp_path):
        run_dir = self._interrupted_run(small_field, config, tmp_path)
        done_before = {
            bit: RunManifest.shard_path(run_dir, bit).stat().st_mtime_ns
            for bit in RunManifest.load(run_dir).completed_bits()
        }
        resume_campaign(run_dir, small_field)
        for bit, mtime in done_before.items():
            assert RunManifest.shard_path(run_dir, bit).stat().st_mtime_ns == mtime
