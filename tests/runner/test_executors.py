"""Tests for the pluggable executor layer (repro.runner.executors)."""

import numpy as np
import pytest

from repro.inject.campaign import CampaignConfig, run_campaign
from repro.runner import RunManifest, RunnerError, verify_run
from repro.runner.executors import (
    EXECUTOR_REGISTRY,
    Executor,
    PoolExecutor,
    SerialExecutor,
    WorkStealingExecutor,
    resolve_executor,
)

EXECUTOR_NAMES = ("serial", "pool", "work-stealing")


class TestResolveExecutor:
    def test_none_with_one_job_is_serial(self):
        assert isinstance(resolve_executor(None, jobs=1, pending=8), SerialExecutor)

    def test_none_with_one_pending_is_serial(self):
        assert isinstance(resolve_executor(None, jobs=4, pending=1), SerialExecutor)

    def test_none_with_real_parallelism_is_pool(self):
        assert isinstance(resolve_executor(None, jobs=4, pending=8), PoolExecutor)

    @pytest.mark.parametrize("name", EXECUTOR_NAMES)
    def test_registry_names_resolve(self, name):
        executor = resolve_executor(name)
        assert executor.name == name
        assert isinstance(executor, EXECUTOR_REGISTRY[name])

    def test_instance_passes_through(self):
        instance = WorkStealingExecutor(workers=3)
        assert resolve_executor(instance) is instance

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("carrier-pigeon")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="Executor instance"):
            resolve_executor(42)

    def test_registry_covers_all_names(self):
        assert set(EXECUTOR_REGISTRY) == set(EXECUTOR_NAMES)
        for cls in EXECUTOR_REGISTRY.values():
            assert issubclass(cls, Executor)

    def test_work_stealing_rejects_bad_lease_timeout(self):
        with pytest.raises(ValueError, match="positive"):
            WorkStealingExecutor(lease_timeout=0)


def _assert_results_identical(a, b) -> None:
    assert a.target_name == b.target_name
    assert a.trial_count == b.trial_count
    for column in a.records.column_names():
        lhs = getattr(a.records, column)
        rhs = getattr(b.records, column)
        assert np.array_equal(lhs, rhs, equal_nan=lhs.dtype.kind == "f"), column


class TestExecutorsBitIdentical:
    """The acceptance gate: every executor produces the same run."""

    def test_all_executors_match_and_verify(self, small_field, tmp_path):
        config = CampaignConfig(trials_per_bit=5, bits=tuple(range(8)), seed=42)
        results = {}
        for name in EXECUTOR_NAMES:
            run_dir = tmp_path / name
            results[name] = run_campaign(
                small_field, "posit16", config, jobs=2,
                run_dir=run_dir, executor=name,
            )
            assert results[name].extras["executor"] == name
            assert RunManifest.load(run_dir).executor == name
            report = verify_run(run_dir)
            assert report.ok, report.render()

        _assert_results_identical(results["serial"], results["pool"])
        _assert_results_identical(results["serial"], results["work-stealing"])

        # The shard CSVs on disk must be byte-identical too: the run
        # directories differ only in events/telemetry/lease bookkeeping.
        for name in ("pool", "work-stealing"):
            for bit in config.bits:
                serial_shard = RunManifest.shard_path(tmp_path / "serial", bit)
                other_shard = RunManifest.shard_path(tmp_path / name, bit)
                assert serial_shard.read_bytes() == other_shard.read_bytes(), (
                    f"{name} shard bit={bit} diverged from serial"
                )

    def test_executor_instance_accepted(self, small_field, tmp_path):
        config = CampaignConfig(trials_per_bit=3, bits=(0, 5, 15), seed=7)
        result = run_campaign(
            small_field, "posit16", config, run_dir=tmp_path / "run",
            executor=WorkStealingExecutor(workers=2, lease_timeout=10.0),
        )
        assert result.extras["executor"] == "work-stealing"
        assert result.trial_count == 9

    def test_serial_name_without_run_dir(self, small_field):
        config = CampaignConfig(trials_per_bit=3, bits=(0, 1), seed=7)
        result = run_campaign(small_field, "posit16", config, executor="serial")
        assert result.extras["executor"] == "serial"

    def test_work_stealing_requires_run_dir(self, small_field):
        config = CampaignConfig(trials_per_bit=2, bits=(0, 1), seed=7)
        with pytest.raises(RunnerError, match="run directory"):
            run_campaign(small_field, "posit16", config, executor="work-stealing")

    def test_unknown_executor_name_surfaces(self, small_field):
        with pytest.raises(ValueError, match="unknown executor"):
            run_campaign(
                small_field, "posit16",
                CampaignConfig(trials_per_bit=2, bits=(0,), seed=7),
                executor="quantum",
            )


class TestManifestRecordsExecutor:
    def test_auto_policy_records_resolved_name(self, small_field, tmp_path):
        config = CampaignConfig(trials_per_bit=2, bits=(0, 1, 2), seed=3)
        run_campaign(small_field, "posit16", config, jobs=1,
                     run_dir=tmp_path / "run")
        assert RunManifest.load(tmp_path / "run").executor == "serial"

    def test_executor_excluded_from_identity(self, small_field, tmp_path):
        # Resuming under a different executor must not trip the identity
        # check — executor choice is mechanism, not campaign identity.
        config = CampaignConfig(trials_per_bit=2, bits=(0, 1, 2), seed=3)
        run_campaign(small_field, "posit16", config, run_dir=tmp_path / "run",
                     executor="serial")
        manifest = RunManifest.load(tmp_path / "run")
        manifest.executor = "work-stealing"
        assert manifest.identity() == RunManifest.load(tmp_path / "run").identity()
