"""Tests for the campaign runner: planning, execution, retries, events."""

import numpy as np
import pytest

from repro.inject.campaign import CampaignConfig, run_campaign
from repro.runner import (
    CampaignRunner,
    RunnerError,
    RunnerEvent,
    RunnerHooks,
    read_event_log,
    run_status,
)
from repro.runner.events import EVENT_KINDS, ProgressRenderer, dispatch_event
from repro.runner.manifest import RunManifest


def assert_records_identical(a, b) -> None:
    assert len(a) == len(b)
    for column in a.column_names():
        lhs, rhs = getattr(a, column), getattr(b, column)
        assert np.array_equal(lhs, rhs, equal_nan=lhs.dtype.kind == "f"), column


class RecordingHooks(RunnerHooks):
    """Collects every event for assertions."""

    def __init__(self):
        self.events: list[RunnerEvent] = []
        self.closed = False

    def on_event(self, event: RunnerEvent) -> None:
        self.events.append(event)

    def kinds(self) -> list[str]:
        return [event.kind for event in self.events]

    def close(self) -> None:
        self.closed = True


class TestPlanning:
    def test_plan_covers_all_bits_in_order(self, small_field):
        runner = CampaignRunner(small_field, "posit32", CampaignConfig(trials_per_bit=3))
        plan = runner.plan()
        assert [spec.bit for spec in plan] == list(range(32))
        assert all(spec.trials == 3 for spec in plan)

    def test_plan_respects_bit_subset(self, small_field):
        config = CampaignConfig(trials_per_bit=3, bits=(0, 15, 31))
        runner = CampaignRunner(small_field, "posit32", config)
        assert [spec.bit for spec in runner.plan()] == [0, 15, 31]

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            CampaignRunner(np.array([]), "posit32")

    @pytest.mark.parametrize("jobs", [0, -1])
    def test_bad_jobs_rejected(self, small_field, jobs):
        with pytest.raises(ValueError, match="jobs"):
            CampaignRunner(small_field, "posit32", jobs=jobs)

    def test_bool_jobs_rejected(self, small_field):
        with pytest.raises(ValueError):
            CampaignRunner(small_field, "posit32", jobs=True)


class TestUnifiedRunCampaign:
    def test_serial_matches_parallel(self, small_field):
        config = CampaignConfig(trials_per_bit=5, seed=11)
        serial = run_campaign(small_field, "posit32", config)
        parallel = run_campaign(small_field, "posit32", config, jobs=3)
        assert_records_identical(serial.records, parallel.records)
        assert parallel.extras["jobs"] == 3

    def test_result_extras(self, small_field):
        result = run_campaign(small_field, "posit32", CampaignConfig(trials_per_bit=2))
        assert result.extras["resumed_shards"] == 0
        assert result.extras["shard_retries"] == 0
        assert result.extras["run_dir"] is None

    def test_oversized_jobs_capped_with_warning(self, small_field):
        config = CampaignConfig(trials_per_bit=2, bits=(0, 1), seed=5)
        serial = run_campaign(small_field, "posit32", config)
        with pytest.warns(RuntimeWarning, match="capping"):
            capped = run_campaign(small_field, "posit32", config, jobs=64)
        assert_records_identical(serial.records, capped.records)
        assert capped.extras["jobs"] == 2


class TestPersistence:
    def test_run_dir_layout(self, small_field, tmp_path):
        run_dir = tmp_path / "run"
        config = CampaignConfig(trials_per_bit=3, seed=9)
        run_campaign(small_field, "posit32", config, run_dir=run_dir)
        manifest = RunManifest.load(run_dir)
        assert manifest.status == "completed"
        assert manifest.completed_bits() == list(range(32))
        assert RunManifest.shard_path(run_dir, 0).is_file()
        assert RunManifest.event_log_path(run_dir).is_file()

    def test_completed_dir_refuses_fresh_run(self, small_field, tmp_path):
        run_dir = tmp_path / "run"
        config = CampaignConfig(trials_per_bit=2, bits=(0, 1), seed=9)
        run_campaign(small_field, "posit32", config, run_dir=run_dir)
        with pytest.raises(RunnerError, match="resume"):
            run_campaign(small_field, "posit32", config, run_dir=run_dir)

    def test_different_campaign_rejected(self, small_field, tmp_path):
        run_dir = tmp_path / "run"
        config = CampaignConfig(trials_per_bit=2, bits=(0, 1), seed=9)
        run_campaign(small_field, "posit32", config, run_dir=run_dir)
        other = CampaignConfig(trials_per_bit=2, bits=(0, 1), seed=10)
        with pytest.raises(RunnerError, match="different campaign"):
            run_campaign(small_field, "posit32", other, run_dir=run_dir, resume=True)

    def test_different_data_rejected(self, small_field, tmp_path):
        run_dir = tmp_path / "run"
        config = CampaignConfig(trials_per_bit=2, bits=(0, 1), seed=9)
        run_campaign(small_field, "posit32", config, run_dir=run_dir)
        with pytest.raises(RunnerError, match="fingerprint"):
            run_campaign(small_field + 1, "posit32", config, run_dir=run_dir, resume=True)

    def test_resume_without_run_dir_rejected(self, small_field):
        with pytest.raises(RunnerError, match="run_dir"):
            run_campaign(small_field, "posit32", CampaignConfig(trials_per_bit=2), resume=True)

    def test_run_status(self, small_field, tmp_path):
        run_dir = tmp_path / "run"
        config = CampaignConfig(trials_per_bit=3, bits=(0, 5), seed=9)
        run_campaign(small_field, "posit16", config, run_dir=run_dir)
        status = run_status(run_dir)
        assert status.complete
        assert status.target_spec == "posit16"
        assert status.shards_done == status.shards_total == 2
        assert status.trials_done == 6
        assert "completed" in status.summary()


class TestRetries:
    def test_serial_retry_recovers(self, small_field, monkeypatch):
        config = CampaignConfig(trials_per_bit=4, bits=(0, 1, 2), seed=3)
        expected = run_campaign(small_field, "posit32", config)

        original = CampaignRunner._compute_shard
        failures = {"left": 2}

        def flaky(self, spec):
            if spec.bit == 1 and failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("transient worker failure")
            return original(self, spec)

        monkeypatch.setattr(CampaignRunner, "_compute_shard", flaky)
        hooks = RecordingHooks()
        result = run_campaign(
            small_field, "posit32", config, hooks=hooks, max_retries=2
        )
        assert_records_identical(expected.records, result.records)
        assert result.extras["shard_retries"] == 2
        assert hooks.kinds().count("shard_retry") == 2

    def test_serial_retries_exhausted(self, small_field, monkeypatch):
        def always_fails(self, spec):
            raise OSError("permanent failure")

        monkeypatch.setattr(CampaignRunner, "_compute_shard", always_fails)
        config = CampaignConfig(trials_per_bit=2, bits=(0,), seed=3)
        with pytest.raises(RunnerError, match="failed after"):
            run_campaign(
                small_field, "posit32", config, max_retries=1
            )

    def test_pool_failure_falls_back_in_process(self, small_field, monkeypatch):
        import repro.inject.parallel as parallel_module

        config = CampaignConfig(trials_per_bit=3, bits=(0, 1, 2, 3), seed=8)
        expected = run_campaign(small_field, "posit32", config)

        def broken_worker(args):
            raise RuntimeError("worker exploded")

        monkeypatch.setattr(parallel_module, "_run_shard_timed", broken_worker)
        hooks = RecordingHooks()
        result = run_campaign(
            small_field, "posit32", config, jobs=2, hooks=hooks, max_retries=1
        )
        assert_records_identical(expected.records, result.records)
        assert "shard_fallback" in hooks.kinds()


class TestEvents:
    def test_lifecycle_and_log(self, small_field, tmp_path):
        run_dir = tmp_path / "run"
        config = CampaignConfig(trials_per_bit=3, bits=(0, 1, 2), seed=4)
        hooks = RecordingHooks()
        run_campaign(small_field, "posit32", config, run_dir=run_dir, hooks=hooks)

        kinds = hooks.kinds()
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_finish"
        assert kinds.count("shard_start") == 3
        assert kinds.count("shard_finish") == 3
        assert all(kind in EVENT_KINDS for kind in kinds)

        logged = read_event_log(RunManifest.event_log_path(run_dir))
        assert [entry["kind"] for entry in logged] == kinds
        finish = logged[-1]
        assert finish["shards_done"] == 3
        assert finish["trials_done"] == 9
        assert finish["trials_per_sec"] > 0
        assert "ts" in finish

    def test_progress_counters_monotonic(self, small_field):
        hooks = RecordingHooks()
        config = CampaignConfig(trials_per_bit=2, bits=(0, 1, 2, 3), seed=4)
        run_campaign(small_field, "posit32", config, jobs=2, hooks=hooks)
        done = [e.shards_done for e in hooks.events if e.kind == "shard_finish"]
        assert done == [1, 2, 3, 4]

    def test_user_hooks_not_closed_owned_hooks_closed(self, small_field, tmp_path):
        hooks = RecordingHooks()
        config = CampaignConfig(trials_per_bit=2, bits=(0,), seed=4)
        run_campaign(small_field, "posit32", config, run_dir=tmp_path / "r", hooks=hooks)
        assert not hooks.closed  # caller-owned hooks are the caller's to close
        # The owned event-log handle is closed: appending again reopens cleanly.
        assert read_event_log(RunManifest.event_log_path(tmp_path / "r"))

    def test_dispatch_routes_failure_stages_to_on_shard_error(self):
        seen = []

        class Hook(RunnerHooks):
            def on_shard_error(self, event):
                seen.append(event.kind)

        hook = Hook()
        for kind in ("shard_error", "shard_retry", "shard_fallback"):
            dispatch_event(hook, RunnerEvent(kind=kind))
        assert seen == ["shard_error", "shard_retry", "shard_fallback"]

    def test_event_json_drops_nones(self):
        payload = RunnerEvent(kind="shard_start", bit=3).to_json()
        assert payload["bit"] == 3
        assert "error" not in payload
        assert "eta_seconds" not in payload

    def test_progress_renderer_writes_lines(self, small_field):
        import io

        stream = io.StringIO()
        config = CampaignConfig(trials_per_bit=2, bits=(0, 1), seed=4)
        renderer = ProgressRenderer(stream=stream, min_interval=0.0)
        run_campaign(small_field, "posit32", config, hooks=renderer)
        text = stream.getvalue()
        assert "[campaign]" in text
        assert "2 shard(s)" in text
        assert "done: 4 trials" in text
