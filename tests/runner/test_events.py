"""Tests for runner observability plumbing: event log, hooks, progress."""

import io
import json

import pytest

from repro.runner import EventLogWriter, ProgressRenderer, RunnerEvent, close_hooks, read_event_log
from repro.runner.events import dispatch_event


def _write_lines(path, lines):
    path.write_text("".join(line + "\n" for line in lines))


class TestReadEventLog:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogWriter(path) as log:
            log.on_event(RunnerEvent(kind="run_start", shards_total=2))
            log.on_event(RunnerEvent(kind="run_finish", trials_done=8))
        events = read_event_log(path)
        assert [e["kind"] for e in events] == ["run_start", "run_finish"]
        assert all("ts" in e for e in events)

    def test_truncated_final_line_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = [json.dumps({"kind": "run_start"}), json.dumps({"kind": "shard_finish"})]
        path.write_text("\n".join(good) + "\n" + '{"kind": "run_fin')
        events = read_event_log(path)
        assert [e["kind"] for e in events] == ["run_start", "shard_finish"]

    def test_strict_raises_on_truncation(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "run_start"}\n{"kind": "run_fin')
        with pytest.raises(json.JSONDecodeError):
            read_event_log(path, strict=True)

    def test_stops_at_first_bad_line(self, tmp_path):
        # a corrupt middle line ends the trustworthy prefix; lines after
        # it are not resynchronized
        path = tmp_path / "events.jsonl"
        _write_lines(path, ['{"kind": "run_start"}', "garbage", '{"kind": "run_finish"}'])
        events = read_event_log(path)
        assert [e["kind"] for e in events] == ["run_start"]

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_lines(path, ['{"kind": "run_start"}', "", '{"kind": "run_finish"}'])
        assert len(read_event_log(path)) == 2


class TestEventLogWriter:
    def test_context_manager_closes_handle(self, tmp_path):
        with EventLogWriter(tmp_path / "events.jsonl") as log:
            handle = log._handle
            assert not handle.closed
        assert handle.closed

    def test_close_is_idempotent(self, tmp_path):
        log = EventLogWriter(tmp_path / "events.jsonl")
        log.close()
        log.close()

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogWriter(path) as log:
            log.on_event(RunnerEvent(kind="run_start"))
        with EventLogWriter(path) as log:
            log.on_event(RunnerEvent(kind="run_finish"))
        assert len(read_event_log(path)) == 2


class TestCloseHooks:
    def test_failure_does_not_skip_later_hooks(self):
        closed = []

        class Good:
            def __init__(self, name):
                self.name = name

            def close(self):
                closed.append(self.name)

        class Bad:
            def close(self):
                raise RuntimeError("boom")

        with pytest.warns(RuntimeWarning, match="boom"):
            close_hooks([Good("a"), Bad(), Good("b")])
        assert closed == ["a", "b"]

    def test_hooks_without_close_are_fine(self):
        close_hooks([object(), object()])


class TestDispatchDuckTyping:
    def test_partial_hook_without_base_class(self):
        """Hooks need not subclass RunnerHooks nor implement every method."""
        seen = []

        class OnlyFinish:
            def on_shard_finish(self, event):
                seen.append(event.kind)

        hook = OnlyFinish()
        dispatch_event(hook, RunnerEvent(kind="run_start"))
        dispatch_event(hook, RunnerEvent(kind="shard_finish"))
        dispatch_event(hook, RunnerEvent(kind="shard_skipped"))
        dispatch_event(hook, RunnerEvent(kind="run_finish"))
        assert seen == ["shard_finish", "shard_skipped"]

    def test_catch_all_sees_everything(self):
        seen = []

        class CatchAll:
            def on_event(self, event):
                seen.append(event.kind)

        for kind in ("run_start", "shard_retry", "run_finish"):
            dispatch_event(CatchAll(), RunnerEvent(kind=kind))
        assert seen == ["run_start", "shard_retry", "run_finish"]

    def test_specific_handler_runs_before_catch_all(self):
        order = []

        class Both:
            def on_shard_finish(self, event):
                order.append("specific")

            def on_event(self, event):
                order.append("catch_all")

        dispatch_event(Both(), RunnerEvent(kind="shard_finish"))
        assert order == ["specific", "catch_all"]


def _finish_event(done, total=10, **kw):
    return RunnerEvent(
        kind="shard_finish", shards_done=done, shards_total=total,
        trials_done=done * 4, trials_total=total * 4, **kw,
    )


class TestProgressRendererNonTTY:
    def test_min_interval_suppresses_intermediate_lines(self):
        stream = io.StringIO()  # not a TTY
        renderer = ProgressRenderer(stream=stream, min_interval=3600)
        for done in range(1, 6):
            renderer.on_shard_finish(_finish_event(done))
        lines = stream.getvalue().splitlines()
        # only the first shard emits; the rest fall inside min_interval
        assert len(lines) == 1
        assert "shard 1/10" in lines[0]

    def test_final_line_always_emitted(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, min_interval=3600)
        renderer.on_shard_finish(_finish_event(1))
        renderer.on_shard_finish(_finish_event(10))  # done, despite throttle
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "shard 10/10" in lines[-1]

    def test_zero_interval_emits_every_line(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, min_interval=0.0)
        for done in range(1, 4):
            renderer.on_shard_finish(_finish_event(done))
        assert len(stream.getvalue().splitlines()) == 3

    def test_eta_is_humanized(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, min_interval=0.0)
        renderer.on_shard_finish(_finish_event(1, eta_seconds=8640.0))
        text = stream.getvalue()
        assert "ETA 2h 24m" in text
        assert "8640" not in text

    def test_finish_line_humanized(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, min_interval=0.0)
        renderer.on_run_finish(RunnerEvent(kind="run_finish", trials_done=40, elapsed=125.0))
        assert "done: 40 trials in 2m 05s" in stream.getvalue()
