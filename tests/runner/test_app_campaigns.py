"""App campaigns through the runner stack: executors, fleets, resume, goldens.

The contract mirrors the value-campaign suite (test_fault_campaigns):
every executor — serial, pool, work-stealing, and standalone subprocess
workers draining a submitted run — must leave **byte-identical** shard
CSVs; interrupt/resume must reproduce the uninterrupted bytes; `campaign
verify` must pass on clean app run dirs and name manifest mismatches.
The golden fixtures pin the outcome counts of small seeded CG/Jacobi
campaigns: any drift in solver, injection, or classification shows up
here, not in the field.
"""

import json
import multiprocessing
from pathlib import Path

import pytest

from repro.apps.campaign import (
    AppCampaignConfig,
    AppCampaignRunner,
    run_app_campaign,
)
from repro.analysis.appsweep import outcome_counts
from repro.runner import RunManifest, resume_campaign, run_status, run_worker, verify_run
from repro.runner.manifest import RUN_COMPLETED
from repro.runner.runner import CampaignRunner

from tests.runner.test_resume import KillAfter
from tests.runner.test_runner import assert_records_identical

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def _config(**overrides):
    kwargs = dict(
        app="cg", grid=8, iterations=(2, 5), trials_per_cell=2,
        bits=(0, 7, 15), seed=2023, fault="adjacent(2)",
    )
    kwargs.update(overrides)
    return AppCampaignConfig(**kwargs)


def _shard_bytes(run_dir):
    manifest = RunManifest.load(run_dir)
    return {
        cell: RunManifest.shard_path(run_dir, cell).read_bytes()
        for cell in sorted(manifest.completed_bits())
    }


def _worker_process(run_dir, **kwargs):
    context = multiprocessing.get_context("fork")
    process = context.Process(
        target=run_worker, args=(run_dir,),
        kwargs={"lease_timeout": 30.0, **kwargs}, daemon=True,
    )
    process.start()
    process.join(timeout=300)
    assert process.exitcode == 0


class TestExecutorsAgree:
    """Satellite: serial, pool, and work-stealing are bit-identical."""

    def test_all_executors_match_and_verify(self, tmp_path):
        config = _config()
        shard_bytes = {}
        for name in ("serial", "pool", "work-stealing"):
            run_dir = tmp_path / name
            run_app_campaign(config, "posit16", run_dir=run_dir, jobs=2,
                             executor=name)
            report = verify_run(run_dir)
            assert report.ok, report.render()
            shard_bytes[name] = _shard_bytes(run_dir)
        assert shard_bytes["serial"] == shard_bytes["pool"]
        assert shard_bytes["serial"] == shard_bytes["work-stealing"]

    def test_submitted_run_drained_by_two_subprocess_workers(self, tmp_path):
        config = _config()
        serial_dir = tmp_path / "serial"
        run_app_campaign(config, "posit16", run_dir=serial_dir)

        fleet_dir = tmp_path / "fleet"
        AppCampaignRunner(config, "posit16", run_dir=fleet_dir).submit()
        cells = len(config.cells("posit16"))
        # Sequential for determinism: the first worker computes exactly
        # half the shards, the second takes the rest and finalizes.
        _worker_process(fleet_dir, worker_id="app-w1",
                        max_claims=cells // 2, max_idle_seconds=10.0)
        _worker_process(fleet_dir, worker_id="app-w2", max_idle_seconds=10.0)
        assert RunManifest.load(fleet_dir).status == RUN_COMPLETED
        assert _shard_bytes(fleet_dir) == _shard_bytes(serial_dir)
        report = verify_run(fleet_dir)
        assert report.ok, report.render()


class TestResumeAfterInterrupt:
    """Satellite: kill after k shards, resume, byte-identity holds."""

    @pytest.mark.parametrize("kill_after, resume_jobs", [(2, 1), (3, 2)])
    def test_kill_then_resume_is_byte_identical(
        self, tmp_path, kill_after, resume_jobs
    ):
        config = _config()
        clean_dir = tmp_path / "clean"
        uninterrupted = run_app_campaign(config, "posit16", run_dir=clean_dir)

        run_dir = tmp_path / "interrupted"
        with pytest.raises(KeyboardInterrupt):
            run_app_campaign(config, "posit16", run_dir=run_dir,
                             hooks=KillAfter(kill_after))
        status = run_status(run_dir)
        assert 0 < status.shards_done < status.shards_total
        resumed = resume_campaign(run_dir, jobs=resume_jobs)
        assert_records_identical(uninterrupted.records, resumed.records)
        assert resumed.extras["resumed_shards"] == status.shards_done
        assert _shard_bytes(run_dir) == _shard_bytes(clean_dir)
        report = verify_run(run_dir)
        assert report.ok, report.render()

    def test_resume_regenerates_the_app_dataset(self, tmp_path):
        # No data argument on resume: the manifest's app payload is the
        # complete provenance.
        config = _config(iterations=(2,), bits=(0, 15))
        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            run_app_campaign(config, "posit16", run_dir=run_dir,
                             hooks=KillAfter(1))
        resumed = resume_campaign(run_dir)
        assert resumed.extras["run_dir"] == str(run_dir)
        assert RunManifest.load(run_dir).status == RUN_COMPLETED


class TestManifestAppIdentity:
    def test_app_joins_the_identity(self, tmp_path):
        run_dir = tmp_path / "run"
        run_app_campaign(_config(), "posit16", run_dir=run_dir)
        manifest = RunManifest.load(run_dir)
        assert manifest.app["name"] == "cg"
        assert manifest.identity()["app"] == manifest.app

    def test_app_mismatch_is_named(self, tmp_path):
        cg_dir, jacobi_dir = tmp_path / "cg", tmp_path / "jacobi"
        run_app_campaign(_config(iterations=(2,), bits=(0,)), "posit16",
                         run_dir=cg_dir)
        run_app_campaign(_config(app="jacobi", iterations=(2,), bits=(0,)),
                         "posit16", run_dir=jacobi_dir)
        diffs = RunManifest.load(cg_dir).mismatches(RunManifest.load(jacobi_dir))
        assert any("app" in diff for diff in diffs)

    def test_from_run_dir_dispatches_to_app_runner(self, tmp_path):
        run_dir = tmp_path / "run"
        run_app_campaign(_config(iterations=(2,), bits=(0,)), "posit16",
                         run_dir=run_dir)
        runner = CampaignRunner.from_run_dir(run_dir)
        assert isinstance(runner, AppCampaignRunner)
        assert runner.app_config.app == "cg"

    def test_status_reports_the_app(self, tmp_path):
        run_dir = tmp_path / "run"
        run_app_campaign(_config(iterations=(2,), bits=(0,)), "posit16",
                         run_dir=run_dir)
        status = run_status(run_dir)
        assert status.app == "cg"
        assert status.complete


class TestGoldenOutcomes:
    """Satellite: pinned outcome counts for small seeded campaigns."""

    @pytest.mark.parametrize("app", ["cg", "jacobi"])
    def test_outcome_counts_match_golden(self, app):
        fixture = json.loads(
            (GOLDEN_DIR / f"app-campaign-{app}.json").read_text()
        )
        assert fixture["kind"] == "app-campaign-outcomes"
        params = dict(fixture["config"])
        params["iterations"] = tuple(params["iterations"])
        params["bits"] = tuple(params["bits"])
        config = AppCampaignConfig(app=fixture["app"], **params)
        result = run_app_campaign(config, fixture["target"])
        assert result.trial_count == fixture["trials"]
        assert outcome_counts(result.records) == fixture["outcomes"]
