"""Tests for the impact-driven SDC detector."""

import numpy as np

from repro.apps.faulty import AppFaultSpec
from repro.apps.stencil import PoissonProblem
from repro.detect.temporal import (
    LinearExtrapolationDetector,
    detection_sweep,
    evaluate_on_jacobi,
)

PROBLEM = PoissonProblem(grid=10)
CENTER = (PROBLEM.grid // 2) * PROBLEM.grid + PROBLEM.grid // 2


class TestDetectorCore:
    def test_no_flags_on_smooth_sequence(self):
        detector = LinearExtrapolationDetector(theta=8.0)
        state = np.zeros(16)
        for step in range(20):
            state = state + 0.1 * (1.0 - state)  # smooth relaxation
            flags = detector.observe(state)
            assert not np.any(flags), step

    def test_flags_a_jump(self):
        detector = LinearExtrapolationDetector(theta=8.0)
        state = np.zeros(16)
        for _ in range(6):
            state = state + 0.1 * (1.0 - state)
            detector.observe(state)
        corrupted = state.copy()
        corrupted[5] += 100.0
        flags = detector.observe(corrupted)
        assert flags[5]
        assert np.sum(flags) == 1

    def test_flags_non_finite_always(self):
        detector = LinearExtrapolationDetector()
        state = np.zeros(4)
        detector.observe(state)
        detector.observe(state)
        bad = state.copy()
        bad[2] = np.nan
        assert detector.observe(bad)[2]

    def test_reset(self):
        detector = LinearExtrapolationDetector()
        detector.observe(np.zeros(4))
        detector.reset()
        assert not np.any(detector.observe(np.full(4, 100.0)))

    def test_warmup_suppresses_early_flags(self):
        detector = LinearExtrapolationDetector(theta=0.1, warmup=10)
        state = np.zeros(8)
        for step in range(5):
            state = state + np.sin(step)  # erratic early motion
            assert not np.any(detector.observe(state))


class TestOnJacobi:
    def test_large_flip_detected_at_injection(self):
        spec = AppFaultSpec(iteration=10, flat_index=CENTER, bit=30)
        outcome = evaluate_on_jacobi(PROBLEM, "ieee32", spec)
        assert outcome.detected
        assert outcome.latency == 0
        assert outcome.detection_index_correct
        assert outcome.false_positives_before == 0

    def test_tiny_flip_not_flagged(self):
        spec = AppFaultSpec(iteration=10, flat_index=CENTER, bit=0)
        outcome = evaluate_on_jacobi(PROBLEM, "ieee32", spec)
        assert not outcome.detected

    def test_posit_regime_flip_detected(self):
        spec = AppFaultSpec(iteration=10, flat_index=CENTER, bit=29)
        outcome = evaluate_on_jacobi(PROBLEM, "posit32", spec)
        assert outcome.detected

    def test_sweep_recall_tracks_impact(self):
        outcomes = detection_sweep(
            PROBLEM, "ieee32", iteration=10, bits=range(32), theta=8.0
        )
        assert len(outcomes) == 32
        detected_bits = {o.bit for o in outcomes if o.detected}
        missed_bits = {o.bit for o in outcomes if not o.detected}
        # Impact-driven detection catches the high-impact bits and is
        # blind to the negligible ones — by design.
        assert 30 in detected_bits
        assert 0 in missed_bits
        # No false positives on the clean prefix of any run.
        assert all(o.false_positives_before == 0 for o in outcomes)

    def test_detection_tradeoff_posit_vs_ieee(self):
        # Posit flips cause less damage, so fewer of them cross an
        # impact threshold: detection recall is lower, but the *missed*
        # flips are precisely the low-impact ones.
        ieee = detection_sweep(PROBLEM, "ieee32", iteration=10, bits=range(20, 31))
        posit = detection_sweep(PROBLEM, "posit32", iteration=10, bits=range(20, 31))
        ieee_recall = np.mean([o.detected for o in ieee])
        posit_recall = np.mean([o.detected for o in posit])
        assert ieee_recall >= posit_recall
