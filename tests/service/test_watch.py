"""Tests for the streamable run feed (repro.service.watch)."""

import io
import json

import pytest

from repro.runner import RunManifest, request_cancel, run_worker
from repro.service import (
    WATCH_CANCELLED,
    WATCH_DONE,
    WATCH_EOF,
    WATCH_IDLE,
    RunRegistry,
    detect_stall,
    format_event,
    throughput_from_events,
    watch_run,
)


@pytest.fixture
def submitted(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_HOME", str(tmp_path / "home"))
    entry = RunRegistry().submit_run(
        "cesm/cloud", "posit16", trials_per_bit=2, bits=(0, 1, 2), size=512
    )
    return entry


class TestFormatEvent:
    def test_renders_core_fields(self):
        line = format_event({
            "kind": "shard_claimed", "elapsed": 1.5, "bit": 7,
            "shards_done": 2, "shards_total": 8,
            "detail": {"worker": "w1"},
        })
        assert "shard_claimed" in line
        assert "bit=7" in line
        assert "2/8 shards" in line
        assert "worker=w1" in line

    def test_renders_error(self):
        line = format_event({"kind": "shard_error", "error": "boom"})
        assert "error=boom" in line


class TestWatchRun:
    def test_single_pass_shows_feed(self, submitted):
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, follow=False, stream=out)
        assert outcome == WATCH_EOF
        assert "run_submitted" in out.getvalue()

    def test_until_done_on_completed_run(self, submitted):
        run_worker(submitted.run_dir, worker_id="w", poll_interval=0.02)
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, until_done=True,
                            poll_interval=0.01, stream=out)
        assert outcome == WATCH_DONE
        text = out.getvalue()
        assert "run_finish" in text
        assert "run completed" in text

    def test_cancelled_run_terminates_feed(self, submitted):
        request_cancel(submitted.run_dir, reason="test")
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, until_done=True,
                            poll_interval=0.01, stream=out)
        assert outcome == WATCH_CANCELLED
        assert "cancelled" in out.getvalue()

    def test_quiet_feed_times_out(self, submitted):
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, until_done=True,
                            timeout=0.1, poll_interval=0.02, stream=out)
        assert outcome == WATCH_IDLE
        assert "giving up" in out.getvalue()

    def test_plain_follow_stops_after_quiet_spell(self, submitted):
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, follow=True, until_done=False,
                            poll_interval=0.01, stream=out)
        assert outcome == WATCH_IDLE

    def test_torn_tail_tolerated(self, submitted):
        # A worker killed mid-append leaves a partial final line; the
        # feed must render the complete lines and not crash.
        log = RunManifest.event_log_path(submitted.run_dir)
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "worker_st')
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, follow=False, stream=out)
        assert outcome == WATCH_EOF
        assert "run_submitted" in out.getvalue()

    def test_missing_run_dir_waits_then_times_out(self, tmp_path):
        out = io.StringIO()
        outcome = watch_run(tmp_path / "nothing-here", until_done=True,
                            timeout=0.1, poll_interval=0.02, stream=out)
        assert outcome == WATCH_IDLE


class TestThroughput:
    EVENTS = [
        {"kind": "run_start", "ts": 100.0, "trials_done": 0,
         "trials_total": 60, "shards_done": 0, "shards_total": 6, "jobs": 2},
        {"kind": "shard_finish", "ts": 110.0, "trials_done": 20,
         "trials_total": 60, "shards_done": 2, "shards_total": 6, "jobs": 2},
        {"kind": "shard_finish", "ts": 120.0, "trials_done": 40,
         "trials_total": 60, "shards_done": 4, "shards_total": 6, "jobs": 2},
    ]

    def test_rate_and_eta_from_slope(self):
        summary = throughput_from_events(self.EVENTS)
        assert summary["trials_done"] == 40
        assert summary["trials_per_sec"] == pytest.approx(2.0)
        assert summary["eta_seconds"] == pytest.approx(10.0)
        assert summary["active_workers"] == 2  # jobs fallback

    def test_worker_events_override_jobs(self):
        events = self.EVENTS + [
            {"kind": "worker_start", "ts": 121.0, "detail": {"worker": "a"}},
            {"kind": "worker_start", "ts": 122.0, "detail": {"worker": "b"}},
            {"kind": "worker_exit", "ts": 123.0, "detail": {"worker": "a"}},
        ]
        assert throughput_from_events(events)["active_workers"] == 1

    def test_done_run_has_zero_eta(self):
        events = self.EVENTS + [
            {"kind": "run_finish", "ts": 130.0, "trials_done": 60,
             "trials_total": 60, "shards_done": 6, "shards_total": 6},
        ]
        assert throughput_from_events(events)["eta_seconds"] == 0.0

    def test_empty_stream(self):
        summary = throughput_from_events([])
        assert summary["trials_per_sec"] is None
        assert summary["active_workers"] == 0


class TestDetectStall:
    def test_quiet_run_is_stalled(self):
        events = [{"kind": "shard_finish", "ts": 100.0}]
        stalled, quiet = detect_stall(events, stall_after=30.0, now=200.0)
        assert stalled and quiet == pytest.approx(100.0)

    def test_recent_progress_is_not_stalled(self):
        events = [{"kind": "shard_finish", "ts": 100.0}]
        assert detect_stall(events, stall_after=30.0, now=110.0) == (False, 10.0)

    def test_finished_run_never_stalls(self):
        events = [{"kind": "shard_finish", "ts": 100.0},
                  {"kind": "run_finish", "ts": 101.0}]
        assert detect_stall(events, stall_after=30.0, now=500.0) == (False, 0.0)

    def test_no_progress_events_no_stall(self):
        assert detect_stall([], stall_after=1.0, now=100.0) == (False, 0.0)


class TestWatchObservability:
    def test_feed_includes_throughput_line(self, submitted):
        run_worker(submitted.run_dir, worker_id="w", poll_interval=0.02)
        out = io.StringIO()
        watch_run(submitted.run_dir, until_done=True,
                  poll_interval=0.01, stream=out)
        assert "[watch]" in out.getvalue()
        assert "worker(s)" in out.getvalue()

    def test_json_mode_emits_machine_lines(self, submitted):
        run_worker(submitted.run_dir, worker_id="w", poll_interval=0.02)
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, until_done=True,
                            poll_interval=0.01, stream=out, json_mode=True)
        assert outcome == WATCH_DONE
        lines = [json.loads(line) for line in out.getvalue().splitlines()]
        kinds = [line["kind"] for line in lines]
        assert "run_finish" in kinds
        assert "watch_throughput" in kinds
        assert kinds[-1] == "watch_done"
        summary = next(l for l in lines if l["kind"] == "watch_throughput")
        assert summary["trials_done"] == summary["trials_total"] == 6

    def test_stall_warning_fires_once(self, submitted):
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, until_done=True,
                            timeout=0.3, poll_interval=0.02, stream=out,
                            stall_after=0.05)
        assert outcome == WATCH_IDLE
        assert out.getvalue().count("flatlined") == 1
