"""Tests for the streamable run feed (repro.service.watch)."""

import io

import pytest

from repro.runner import RunManifest, request_cancel, run_worker
from repro.service import (
    WATCH_CANCELLED,
    WATCH_DONE,
    WATCH_EOF,
    WATCH_IDLE,
    RunRegistry,
    format_event,
    watch_run,
)


@pytest.fixture
def submitted(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_HOME", str(tmp_path / "home"))
    entry = RunRegistry().submit_run(
        "cesm/cloud", "posit16", trials_per_bit=2, bits=(0, 1, 2), size=512
    )
    return entry


class TestFormatEvent:
    def test_renders_core_fields(self):
        line = format_event({
            "kind": "shard_claimed", "elapsed": 1.5, "bit": 7,
            "shards_done": 2, "shards_total": 8,
            "detail": {"worker": "w1"},
        })
        assert "shard_claimed" in line
        assert "bit=7" in line
        assert "2/8 shards" in line
        assert "worker=w1" in line

    def test_renders_error(self):
        line = format_event({"kind": "shard_error", "error": "boom"})
        assert "error=boom" in line


class TestWatchRun:
    def test_single_pass_shows_feed(self, submitted):
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, follow=False, stream=out)
        assert outcome == WATCH_EOF
        assert "run_submitted" in out.getvalue()

    def test_until_done_on_completed_run(self, submitted):
        run_worker(submitted.run_dir, worker_id="w", poll_interval=0.02)
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, until_done=True,
                            poll_interval=0.01, stream=out)
        assert outcome == WATCH_DONE
        text = out.getvalue()
        assert "run_finish" in text
        assert "run completed" in text

    def test_cancelled_run_terminates_feed(self, submitted):
        request_cancel(submitted.run_dir, reason="test")
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, until_done=True,
                            poll_interval=0.01, stream=out)
        assert outcome == WATCH_CANCELLED
        assert "cancelled" in out.getvalue()

    def test_quiet_feed_times_out(self, submitted):
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, until_done=True,
                            timeout=0.1, poll_interval=0.02, stream=out)
        assert outcome == WATCH_IDLE
        assert "giving up" in out.getvalue()

    def test_plain_follow_stops_after_quiet_spell(self, submitted):
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, follow=True, until_done=False,
                            poll_interval=0.01, stream=out)
        assert outcome == WATCH_IDLE

    def test_torn_tail_tolerated(self, submitted):
        # A worker killed mid-append leaves a partial final line; the
        # feed must render the complete lines and not crash.
        log = RunManifest.event_log_path(submitted.run_dir)
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "worker_st')
        out = io.StringIO()
        outcome = watch_run(submitted.run_dir, follow=False, stream=out)
        assert outcome == WATCH_EOF
        assert "run_submitted" in out.getvalue()

    def test_missing_run_dir_waits_then_times_out(self, tmp_path):
        out = io.StringIO()
        outcome = watch_run(tmp_path / "nothing-here", until_done=True,
                            timeout=0.1, poll_interval=0.02, stream=out)
        assert outcome == WATCH_IDLE
