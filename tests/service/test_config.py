"""Tests for service home resolution and config (repro.service.config)."""

import json

import pytest

from repro.service import init_config, load_config, repro_home
from repro.service.config import CONFIG_NAME, HOME_ENV


class TestHomeResolution:
    def test_explicit_argument_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(HOME_ENV, str(tmp_path / "env-home"))
        assert repro_home(tmp_path / "arg-home") == tmp_path / "arg-home"

    def test_env_beats_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(HOME_ENV, str(tmp_path / "env-home"))
        assert repro_home() == tmp_path / "env-home"

    def test_default_is_dot_repro(self, tmp_path, monkeypatch):
        monkeypatch.delenv(HOME_ENV, raising=False)
        monkeypatch.setenv("HOME", str(tmp_path))
        assert repro_home() == tmp_path / ".repro"


class TestLoadConfig:
    def test_missing_file_yields_defaults(self, tmp_path):
        config = load_config(tmp_path / "home")
        assert config.home == tmp_path / "home"
        assert config.runs_dir == tmp_path / "home" / "runs"
        assert config.cache_dir == tmp_path / "home" / "cache"

    def test_corrupt_config_raises(self, tmp_path):
        home = tmp_path / "home"
        home.mkdir()
        (home / CONFIG_NAME).write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            load_config(home)

    def test_custom_runs_dir_honoured(self, tmp_path):
        home = tmp_path / "home"
        home.mkdir()
        shared = tmp_path / "shared-runs"
        (home / CONFIG_NAME).write_text(json.dumps({"runs_dir": str(shared)}))
        assert load_config(home).runs_dir == shared


class TestInitConfig:
    def test_creates_layout(self, tmp_path):
        config = init_config(tmp_path / "home")
        assert config.runs_dir.is_dir()
        assert config.cache_dir.is_dir()
        assert (config.home / CONFIG_NAME).is_file()

    def test_idempotent(self, tmp_path):
        home = tmp_path / "home"
        init_config(home)
        before = (home / CONFIG_NAME).read_text()
        init_config(home)
        assert (home / CONFIG_NAME).read_text() == before

    def test_force_rewrites(self, tmp_path):
        home = tmp_path / "home"
        init_config(home)
        (home / CONFIG_NAME).write_text(json.dumps(
            {"runs_dir": str(home / "elsewhere")}))
        config = init_config(home, force=True)
        assert config.runs_dir == home / "runs"
