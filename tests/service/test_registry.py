"""Tests for the run registry and the canonical status payload."""

import json

import pytest

from repro.runner import RunManifest, run_worker
from repro.service import (
    STATUS_SCHEMA,
    RunRegistry,
    ServiceError,
    run_status_payload,
)


@pytest.fixture
def registry(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_HOME", str(tmp_path / "home"))
    return RunRegistry()


def _submit(registry, **overrides):
    kwargs = dict(trials_per_bit=2, bits=(0, 1, 2), size=512, seed=7)
    kwargs.update(overrides)
    return registry.submit_run("cesm/cloud", "posit16", **kwargs)


class TestSubmitRun:
    def test_submit_registers_and_writes_manifest(self, registry):
        entry = _submit(registry)
        assert entry.run_id == "posit16-0001"
        assert entry.project == "default"
        assert entry.target == "posit16"
        manifest = RunManifest.load(entry.run_dir)
        assert manifest.status == "submitted"
        assert manifest.executor == "work-stealing"
        assert manifest.dataset == {"kind": "preset", "field": "cesm/cloud",
                                    "seed": 777, "size": 512}

    def test_sequence_increments_across_targets(self, registry):
        assert _submit(registry).run_id == "posit16-0001"
        second = registry.submit_run("cesm/cloud", "ieee32",
                                     trials_per_bit=2, bits=(0,), size=512)
        assert second.run_id == "ieee32-0002"

    def test_unknown_field_surfaces(self, registry):
        with pytest.raises(KeyError):
            registry.submit_run("no/such-field", "posit16", trials_per_bit=2)

    def test_slugs_keep_paths_safe(self, registry):
        entry = _submit(registry, project="team/alpha beta")
        assert "/" not in entry.run_id
        assert "team-alpha-beta" in entry.run_dir


class TestListAndGet:
    def test_list_runs_sorted_and_filtered(self, registry):
        _submit(registry)
        _submit(registry, project="other")
        everything = registry.list_runs()
        assert [entry.run_id for entry in everything] == [
            "posit16-0001", "posit16-0002",
        ]
        assert [e.run_id for e in registry.list_runs("other")] == ["posit16-0002"]
        assert registry.list_runs("nope") == []

    def test_get_round_trips(self, registry):
        entry = _submit(registry)
        assert registry.get(entry.run_id) == entry

    def test_get_unknown_lists_known(self, registry):
        _submit(registry)
        with pytest.raises(ServiceError, match="posit16-0001"):
            registry.get("posit16-9999")


class TestResolveRunDir:
    def test_resolves_registry_id(self, registry):
        entry = _submit(registry)
        assert str(registry.resolve_run_dir(entry.run_id)) == entry.run_dir

    def test_resolves_plain_path(self, registry):
        entry = _submit(registry)
        from pathlib import Path

        assert registry.resolve_run_dir(Path(entry.run_dir)) == Path(entry.run_dir)

    def test_dir_without_manifest_is_explicit(self, registry, tmp_path):
        empty = tmp_path / "not-a-run"
        empty.mkdir()
        with pytest.raises(ServiceError, match="no campaign manifest"):
            registry.resolve_run_dir(empty)

    def test_unknown_id_raises(self, registry):
        with pytest.raises(ServiceError, match="unknown run id"):
            registry.resolve_run_dir("nope-0001")


class TestCancel:
    def test_cancel_drops_sentinel(self, registry):
        entry = _submit(registry)
        run_dir = registry.cancel(entry.run_id, reason="test says stop")
        payload = json.loads((run_dir / "CANCELLED").read_text())
        assert payload["reason"] == "test says stop"
        assert run_status_payload(run_dir)["cancelled"] is True


class TestStatusPayload:
    EXPECTED_KEYS = {
        "schema", "run_dir", "target", "fault_model", "app", "label",
        "status", "executor", "complete", "cancelled", "shards", "trials",
        "pending_bits", "missing_shard_files", "quarantined_files", "workers",
    }

    def test_submitted_payload(self, registry):
        entry = _submit(registry)
        payload = run_status_payload(entry.run_dir)
        assert payload["schema"] == STATUS_SCHEMA
        assert set(payload) == self.EXPECTED_KEYS
        assert payload["fault_model"] == "single"
        assert payload["status"] == "submitted"
        assert payload["executor"] == "work-stealing"
        assert payload["complete"] is False
        assert payload["shards"] == {"done": 0, "total": 3}
        assert payload["trials"] == {"done": 0, "total": 6}
        assert payload["pending_bits"] == [0, 1, 2]

    def test_completed_payload(self, registry):
        entry = _submit(registry)
        run_worker(entry.run_dir, worker_id="w", poll_interval=0.02)
        payload = run_status_payload(entry.run_dir)
        assert payload["complete"] is True
        assert payload["status"] == "completed"
        assert payload["shards"] == {"done": 3, "total": 3}
        assert payload["trials"] == {"done": 6, "total": 6}
        assert payload["pending_bits"] == []
        assert payload["workers"] == []

    def test_payload_is_json_serializable(self, registry):
        entry = _submit(registry)
        json.dumps(run_status_payload(entry.run_dir))
