"""Tests for the live fleet view (repro.service.top)."""

import io
import time

import pytest

from repro.runner import RunManifest, request_cancel, run_worker
from repro.runner.leases import write_done_record
from repro.service import RunRegistry, campaign_top, fleet_snapshot, render_top


@pytest.fixture
def submitted(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_HOME", str(tmp_path / "home"))
    return RunRegistry().submit_run(
        "cesm/cloud", "posit16", trials_per_bit=2, bits=(0, 1, 2, 3, 4, 5),
        size=512, trace=True,
    )


@pytest.fixture
def completed(submitted):
    run_worker(submitted.run_dir, worker_id="top-w", poll_interval=0.02)
    return submitted


def _fake_done(run_dir, durations, worker="w"):
    for bit, duration in enumerate(durations):
        write_done_record(
            run_dir, bit, trials=2, duration=duration, attempts=1,
            checksum="x", worker=worker,
        )


class TestFleetSnapshot:
    def test_completed_run(self, completed):
        snapshot = fleet_snapshot(completed.run_dir)
        assert snapshot.status == "completed"
        assert snapshot.terminal
        assert snapshot.shards_done == snapshot.shards_total == 6
        assert snapshot.trials_done == snapshot.trials_total == 12
        assert snapshot.trace_id  # submitted with trace=True
        [worker] = [w for w in snapshot.workers if w["worker"] == "top-w"]
        assert worker["shards_done"] == 6
        assert worker["claims"] == 6
        assert worker["status"] == "completed"

    def test_metrics_series_feed_worker_gauges(self, completed):
        snapshot = fleet_snapshot(completed.run_dir)
        [worker] = [w for w in snapshot.workers if w["worker"] == "top-w"]
        assert worker["rss_bytes"] and worker["rss_bytes"] > 0
        assert worker["last_seen_age"] is not None

    def test_submitted_run_is_not_terminal(self, submitted):
        snapshot = fleet_snapshot(submitted.run_dir)
        assert not snapshot.terminal
        assert snapshot.shards_done == 0
        assert snapshot.workers == ()

    def test_cancelled_flag(self, submitted):
        request_cancel(submitted.run_dir, reason="test")
        assert fleet_snapshot(submitted.run_dir).cancelled

    def test_stalled_when_events_go_quiet(self, submitted):
        snapshot = fleet_snapshot(
            submitted.run_dir, stall_after=30.0, now=time.time() + 300.0
        )
        assert snapshot.stalled
        assert snapshot.stall_seconds > 30.0

    def test_to_json_schema(self, completed):
        payload = fleet_snapshot(completed.run_dir).to_json()
        assert payload["schema"] == "repro.fleet-snapshot/1"
        assert payload["shards_done"] == 6
        assert isinstance(payload["workers"], list)


class TestStragglers:
    def test_slow_shard_flagged(self, submitted):
        _fake_done(submitted.run_dir, [1.0, 1.0, 1.0, 1.0, 1.0, 5.0])
        snapshot = fleet_snapshot(submitted.run_dir)
        [straggler] = snapshot.stragglers
        assert straggler["bit"] == 5
        assert straggler["state"] == "completed"
        assert straggler["duration"] == pytest.approx(5.0)
        assert straggler["median"] == pytest.approx(1.0)

    def test_uniform_fleet_flags_nothing(self, submitted):
        _fake_done(submitted.run_dir, [1.0] * 6)
        assert fleet_snapshot(submitted.run_dir).stragglers == ()

    def test_too_few_samples_flags_nothing(self, submitted):
        _fake_done(submitted.run_dir, [1.0, 9.0])
        assert fleet_snapshot(submitted.run_dir).stragglers == ()


class TestRenderTop:
    def test_frame_contents(self, completed):
        frame = render_top(fleet_snapshot(completed.run_dir))
        assert "status completed" in frame
        assert "top-w" in frame
        assert "WORKER" in frame
        assert "trials 12/12" in frame

    def test_straggler_section(self, submitted):
        _fake_done(submitted.run_dir, [1.0, 1.0, 1.0, 1.0, 1.0, 5.0])
        frame = render_top(fleet_snapshot(submitted.run_dir))
        assert "stragglers" in frame
        assert "bit   5" in frame

    def test_stall_banner(self, submitted):
        snapshot = fleet_snapshot(
            submitted.run_dir, stall_after=30.0, now=time.time() + 300.0
        )
        assert "STALLED" in render_top(snapshot)


class TestCampaignTop:
    def test_completed_run_exits_zero(self, completed):
        out = io.StringIO()
        code = campaign_top(completed.run_dir, iterations=1, stream=out)
        assert code == 0
        assert "status completed" in out.getvalue()

    def test_cancelled_run_exits_three(self, submitted):
        request_cancel(submitted.run_dir, reason="test")
        out = io.StringIO()
        assert campaign_top(submitted.run_dir, iterations=1, stream=out) == 3

    def test_iterations_bound_frames(self, submitted):
        out = io.StringIO()
        code = campaign_top(
            submitted.run_dir, iterations=2, refresh=0.01, stream=out
        )
        assert code == 0
        assert out.getvalue().count("run posit16-0001") == 2
