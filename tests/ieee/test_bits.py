"""Tests for IEEE bit-level access."""

import numpy as np
import pytest

from repro.ieee.bits import (
    assemble,
    bits_to_float,
    extract_exponent,
    extract_fraction,
    extract_sign,
    flip_bit,
    flip_float_bit,
    float_to_bits,
)
from repro.ieee.formats import BFLOAT16, BINARY16, BINARY32, BINARY64


class TestViews:
    @pytest.mark.parametrize(
        "fmt, dtype",
        [(BINARY16, np.float16), (BINARY32, np.float32), (BINARY64, np.float64)],
    )
    def test_roundtrip(self, fmt, dtype, rng):
        values = rng.normal(0, 100, 1000).astype(dtype)
        bits = float_to_bits(values, fmt)
        assert bits.dtype == fmt.dtype
        back = bits_to_float(bits, fmt)
        assert np.array_equal(back.view(fmt.dtype), bits)
        assert np.array_equal(back, values)

    def test_known_pattern_186_25(self):
        assert int(float_to_bits(np.float32(186.25), BINARY32)) == 0x433A4000

    def test_one(self):
        assert int(float_to_bits(np.float32(1.0), BINARY32)) == 0x3F800000

    def test_float64_to_float32_rounds_like_store(self):
        value = np.float64(0.1)
        bits = float_to_bits(value, BINARY32)
        assert int(bits) == int(np.float32(0.1).view(np.uint32))


class TestBfloat16:
    def test_exact_values_roundtrip(self):
        values = np.array([1.0, -2.0, 0.5, 186.0], dtype=np.float32)
        bits = float_to_bits(values, BFLOAT16)
        assert bits.dtype == np.uint16
        back = bits_to_float(bits, BFLOAT16)
        assert np.array_equal(back, values)

    def test_round_to_nearest_even(self):
        # 1 + 2**-8 is exactly between bfloat16 neighbors 1.0 and 1+2**-7;
        # ties go to the even pattern (1.0, fraction 0).
        value = np.float32(1.0 + 2.0**-8)
        bits = int(float_to_bits(value, BFLOAT16))
        assert bits == 0x3F80  # 1.0
        value = np.float32(1.0 + 3 * 2.0**-8)
        bits = int(float_to_bits(value, BFLOAT16))
        assert bits == 0x3F82  # 1 + 2**-7 * 2

    def test_nan_preserved(self):
        bits = float_to_bits(np.float32(np.nan), BFLOAT16)
        back = bits_to_float(bits, BFLOAT16)
        assert np.isnan(back)


class TestFlip:
    def test_flip_bit_is_xor(self, rng):
        values = rng.normal(0, 10, 100).astype(np.float32)
        bits = float_to_bits(values, BINARY32)
        for bit in (0, 15, 22, 23, 30, 31):
            flipped = flip_bit(bits, bit, BINARY32)
            assert np.all((flipped ^ bits) == np.uint32(1 << bit))

    def test_flip_float_bit_sign(self):
        assert float(flip_float_bit(np.float32(3.5), 31, BINARY32)) == -3.5

    def test_flip_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            flip_bit(np.array([0], dtype=np.uint32), 32, BINARY32)

    def test_flip_exponent_halves_or_doubles(self):
        # Bit 23 is the exponent LSB.  1.0 has exponent 127 (LSB set), so
        # the flip clears it: 0.5.  2.0 has exponent 128 (LSB clear): 4.0.
        assert float(flip_float_bit(np.float32(1.0), 23, BINARY32)) == 0.5
        assert float(flip_float_bit(np.float32(2.0), 23, BINARY32)) == 4.0


class TestFieldAccess:
    def test_extract_and_assemble_roundtrip(self, rng):
        values = rng.normal(0, 100, 500).astype(np.float32)
        bits = float_to_bits(values, BINARY32)
        sign = extract_sign(bits, BINARY32)
        exponent = extract_exponent(bits, BINARY32)
        fraction = extract_fraction(bits, BINARY32)
        rebuilt = assemble(sign, exponent, fraction, BINARY32)
        assert np.array_equal(rebuilt, bits)

    def test_extract_known(self):
        bits = np.array([0x433A4000], dtype=np.uint32)  # 186.25
        assert extract_sign(bits, BINARY32)[0] == 0
        assert extract_exponent(bits, BINARY32)[0] == 134
        assert extract_fraction(bits, BINARY32)[0] == 0x3A4000

    def test_assemble_validates_field_width(self):
        with pytest.raises(ValueError):
            assemble(np.array([0]), np.array([256]), np.array([0]), BINARY32)
        with pytest.raises(ValueError):
            assemble(np.array([0]), np.array([0]), np.array([1 << 23]), BINARY32)

    def test_binary64(self):
        bits = float_to_bits(np.float64(1.0), BINARY64)
        assert extract_exponent(bits, BINARY64) == 1023
