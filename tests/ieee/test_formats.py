"""Tests for IEEE format descriptions."""

import numpy as np
import pytest

from repro.ieee.formats import (
    BFLOAT16,
    BINARY16,
    BINARY32,
    BINARY64,
    FORMATS,
    format_by_name,
)


class TestAgainstNumpyFinfo:
    @pytest.mark.parametrize(
        "fmt, dtype",
        [(BINARY16, np.float16), (BINARY32, np.float32), (BINARY64, np.float64)],
    )
    def test_extremes(self, fmt, dtype):
        info = np.finfo(dtype)
        assert fmt.max_finite == float(info.max)
        assert fmt.min_normal == float(info.tiny)
        assert fmt.min_subnormal == float(info.smallest_subnormal)

    def test_bias(self):
        assert BINARY16.bias == 15
        assert BINARY32.bias == 127
        assert BINARY64.bias == 1023
        assert BFLOAT16.bias == 127

    def test_widths(self):
        assert BINARY32.nbits == 32
        assert BINARY64.nbits == 64
        assert BFLOAT16.nbits == 16


class TestMasks:
    def test_binary32_masks(self):
        assert BINARY32.sign_mask == 0x80000000
        assert BINARY32.exponent_mask == 0x7F800000
        assert BINARY32.fraction_mask == 0x007FFFFF
        assert BINARY32.exponent_all_ones == 255

    def test_masks_partition_word(self):
        for fmt in FORMATS.values():
            combined = fmt.sign_mask | fmt.exponent_mask | fmt.fraction_mask
            assert combined == fmt.mask
            assert fmt.sign_mask & fmt.exponent_mask == 0
            assert fmt.exponent_mask & fmt.fraction_mask == 0


class TestRegistry:
    def test_lookup(self):
        assert format_by_name("binary32") is BINARY32
        assert format_by_name("bfloat16") is BFLOAT16

    def test_unknown_raises_with_hint(self):
        with pytest.raises(KeyError, match="binary32"):
            format_by_name("float32")

    def test_describe(self):
        assert "8 exponent" in BINARY32.describe()
