"""Tests for the software codec behind arbitrary ``binary(e,f)`` layouts."""

import numpy as np
import pytest

from repro.ieee.bits import (
    bits_to_float,
    float_to_bits,
    software_bits_to_float,
    software_float_to_bits,
)
from repro.ieee.formats import BINARY16, IEEEFormat

SOFT16 = IEEEFormat("binary(5,10)", exponent_bits=5, fraction_bits=10, float_dtype=None)


class TestAgainstNativeBinary16:
    """The software codec on a (5,10) layout must match the hardware dtype."""

    def test_decode_every_pattern(self):
        patterns = np.arange(1 << 16, dtype=np.uint64)
        native = bits_to_float(patterns.astype(np.uint16), BINARY16).astype(np.float64)
        soft = software_bits_to_float(patterns, SOFT16)
        nan_mask = np.isnan(native)
        assert np.array_equal(nan_mask, np.isnan(soft))
        assert np.array_equal(native[~nan_mask], soft[~nan_mask])
        # Signed zero survives.
        assert np.signbit(soft[0x8000]) and not np.signbit(soft[0])

    def test_encode_matches_native_rounding(self, rng):
        values = np.concatenate([
            rng.normal(0, 1e4, 50000),
            rng.normal(0, 1e-6, 50000),  # deep subnormal territory
            np.array([0.0, -0.0, np.inf, -np.inf, 65504.0, 65519.9, 65520.0,
                      2.0**-24, 2.0**-25, 2.0**-25 * 1.5, 6e-8, 2.0**-14]),
        ])
        with np.errstate(over="ignore"):
            native = float_to_bits(values, BINARY16).astype(np.uint64)
        assert np.array_equal(native, software_float_to_bits(values, SOFT16))


class TestCustomLayouts:
    @pytest.mark.parametrize("exponent_bits,fraction_bits", [(6, 9), (4, 3), (10, 21)])
    def test_round_trip_every_pattern(self, exponent_bits, fraction_bits):
        fmt = IEEEFormat(
            f"binary({exponent_bits},{fraction_bits})",
            exponent_bits=exponent_bits,
            fraction_bits=fraction_bits,
            float_dtype=None,
        )
        nbits = fmt.nbits
        patterns = np.arange(1 << min(nbits, 16), dtype=np.uint64)
        if nbits > 16:
            rng = np.random.default_rng(0)
            patterns = rng.integers(0, 1 << nbits, 200000, dtype=np.uint64)
        values = software_bits_to_float(patterns, fmt)
        finite = np.isfinite(values)
        re_encoded = software_float_to_bits(values[finite], fmt)
        assert np.array_equal(re_encoded.astype(np.uint64), patterns[finite])

    def test_rne_ties_to_even(self):
        fmt = IEEEFormat("binary(6,9)", exponent_bits=6, fraction_bits=9, float_dtype=None)
        # Halfway between fraction 0 and 1 at scale 0 rounds to even (0);
        # halfway between 1 and 2 rounds to even (2).
        half_ulp = 2.0**-10
        assert int(software_float_to_bits(np.array([1.0 + half_ulp]), fmt)[0] & 0x1FF) == 0
        assert int(software_float_to_bits(np.array([1.0 + 3 * half_ulp]), fmt)[0] & 0x1FF) == 2

    def test_overflow_saturates_to_inf(self):
        fmt = IEEEFormat("binary(4,3)", exponent_bits=4, fraction_bits=3, float_dtype=None)
        bits = software_float_to_bits(np.array([1e9, -1e9]), fmt)
        assert np.isinf(software_bits_to_float(bits, fmt)).all()

    def test_out_of_range_layouts_rejected(self):
        wide = IEEEFormat("binary(12,40)", exponent_bits=12, fraction_bits=40, float_dtype=None)
        with pytest.raises(ValueError, match="exponent"):
            software_float_to_bits(np.array([1.0]), wide)
