"""Tests for IEEE bit classification."""

import numpy as np
import pytest

from repro.ieee.fields import IEEEField, classify_bit, field_map, field_of_bit, layout_string
from repro.ieee.formats import BINARY16, BINARY32, BINARY64


class TestFieldOfBit:
    def test_binary32_boundaries(self):
        assert field_of_bit(31, BINARY32) == IEEEField.SIGN
        assert field_of_bit(30, BINARY32) == IEEEField.EXPONENT
        assert field_of_bit(23, BINARY32) == IEEEField.EXPONENT
        assert field_of_bit(22, BINARY32) == IEEEField.FRACTION
        assert field_of_bit(0, BINARY32) == IEEEField.FRACTION

    def test_binary64_boundaries(self):
        assert field_of_bit(63, BINARY64) == IEEEField.SIGN
        assert field_of_bit(52, BINARY64) == IEEEField.EXPONENT
        assert field_of_bit(51, BINARY64) == IEEEField.FRACTION

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            field_of_bit(32, BINARY32)
        with pytest.raises(ValueError):
            field_of_bit(-1, BINARY32)

    def test_field_map_counts(self):
        counts = {field: 0 for field in IEEEField}
        for field in field_map(BINARY32):
            counts[field] += 1
        assert counts[IEEEField.SIGN] == 1
        assert counts[IEEEField.EXPONENT] == 8
        assert counts[IEEEField.FRACTION] == 23

    def test_classify_bit_array_shape(self):
        bits = np.zeros((3, 4), dtype=np.uint32)
        result = classify_bit(bits, 31, BINARY32)
        assert result.shape == (3, 4)
        assert np.all(result == int(IEEEField.SIGN))

    def test_short_names(self):
        assert IEEEField.SIGN.short_name() == "S"
        assert IEEEField.EXPONENT.short_name() == "E"


class TestLayoutString:
    def test_186_25(self):
        text = layout_string(0x433A4000, BINARY32)
        assert text == "0|10000110|01110100100000000000000"

    def test_positive_infinity(self):
        # The paper's Fig. 2.
        text = layout_string(0x7F800000, BINARY32)
        assert text == "0|11111111|" + "0" * 23

    def test_binary16(self):
        text = layout_string(0x3C00, BINARY16)  # 1.0
        assert text == "0|01111|0000000000"
