"""Tests for software IEEE arithmetic (bfloat16 focus)."""

import numpy as np
import pytest

from repro.ieee.arithmetic import absolute, add, divide, multiply, negate, sqrt, subtract
from repro.ieee.bits import bits_to_float, float_to_bits
from repro.ieee.formats import BFLOAT16, BINARY16, BINARY32


def _bf16(values) -> np.ndarray:
    return float_to_bits(np.asarray(values, dtype=np.float32), BFLOAT16)


class TestBfloat16:
    def test_exact_small_integers(self):
        a = _bf16([1.0, 2.0, 3.0])
        b = _bf16([4.0, 5.0, 6.0])
        assert bits_to_float(add(a, b, BFLOAT16), BFLOAT16).tolist() == [5.0, 7.0, 9.0]
        assert bits_to_float(multiply(a, b, BFLOAT16), BFLOAT16).tolist() == [4.0, 10.0, 18.0]
        assert bits_to_float(subtract(b, a, BFLOAT16), BFLOAT16).tolist() == [3.0, 3.0, 3.0]
        assert bits_to_float(divide(b, a, BFLOAT16), BFLOAT16).tolist() == [4.0, 2.5, 2.0]

    def test_result_rounds_to_bfloat16_grid(self):
        # 1 + 1/256 is below bfloat16 resolution at 1: absorbed.
        a = _bf16([1.0])
        b = _bf16([2.0**-9])
        result = bits_to_float(add(a, b, BFLOAT16), BFLOAT16)
        assert result[0] == 1.0

    def test_division_by_zero(self):
        result = bits_to_float(divide(_bf16([1.0]), _bf16([0.0]), BFLOAT16), BFLOAT16)
        assert np.isinf(result[0])

    def test_negate_and_abs_exact(self):
        a = _bf16([1.5, -2.0])
        assert bits_to_float(negate(a, BFLOAT16), BFLOAT16).tolist() == [-1.5, 2.0]
        assert bits_to_float(absolute(a, BFLOAT16), BFLOAT16).tolist() == [1.5, 2.0]

    def test_sqrt(self):
        result = bits_to_float(sqrt(_bf16([4.0, -1.0]), BFLOAT16), BFLOAT16)
        assert result[0] == 2.0
        assert np.isnan(result[1])

    def test_correct_rounding_vs_reference(self, rng):
        # Reference: exact float64 op rounded float64->float32->bfloat16
        # (innocuous: float32 has > 2*8+2 bits of bfloat16 precision).
        values_a = rng.normal(0, 100, 500).astype(np.float32)
        values_b = rng.normal(0, 100, 500).astype(np.float32)
        a = _bf16(values_a)
        b = _bf16(values_b)
        got = add(a, b, BFLOAT16)
        stored_a = bits_to_float(a, BFLOAT16)
        stored_b = bits_to_float(b, BFLOAT16)
        expected = float_to_bits(stored_a + stored_b, BFLOAT16)
        assert np.array_equal(got, expected)


class TestNativeFormats:
    @pytest.mark.parametrize("fmt, dtype", [(BINARY16, np.float16), (BINARY32, np.float32)])
    def test_matches_numpy(self, fmt, dtype, rng):
        values_a = rng.normal(0, 10, 300).astype(dtype)
        values_b = rng.normal(0, 10, 300).astype(dtype)
        a = float_to_bits(values_a, fmt)
        b = float_to_bits(values_b, fmt)
        got = bits_to_float(multiply(a, b, fmt), fmt)
        expected = (values_a.astype(np.float32) * values_b.astype(np.float32)).astype(dtype)
        assert np.array_equal(got.astype(dtype), expected)
