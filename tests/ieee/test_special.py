"""Tests for IEEE special-value predicates (on raw patterns)."""

import numpy as np

from repro.ieee.bits import float_to_bits
from repro.ieee.formats import BFLOAT16, BINARY32
from repro.ieee.special import is_finite, is_inf, is_nan, is_subnormal, is_zero


class TestAgainstNumpy:
    def test_predicates_match_numpy(self, rng):
        values = np.concatenate([
            rng.normal(0, 1e30, 500).astype(np.float32),
            np.array([np.nan, np.inf, -np.inf, 0.0, -0.0, 1e-40, -1e-42,
                      np.float32(np.finfo(np.float32).tiny)], dtype=np.float32),
        ])
        bits = float_to_bits(values, BINARY32)
        assert np.array_equal(is_nan(bits, BINARY32), np.isnan(values))
        assert np.array_equal(is_inf(bits, BINARY32), np.isinf(values))
        assert np.array_equal(is_finite(bits, BINARY32), np.isfinite(values))
        assert np.array_equal(is_zero(bits, BINARY32), values == 0)

    def test_subnormal(self):
        values = np.array([1e-40, np.finfo(np.float32).tiny, 1.0, 0.0],
                          dtype=np.float32)
        bits = float_to_bits(values, BINARY32)
        assert is_subnormal(bits, BINARY32).tolist() == [True, False, False, False]

    def test_paper_fig2_infinity_pattern(self):
        assert bool(is_inf(np.array([0x7F800000], dtype=np.uint32), BINARY32)[0])
        assert bool(is_nan(np.array([0x7F800001], dtype=np.uint32), BINARY32)[0])

    def test_bfloat16_patterns(self):
        inf_pattern = np.array([0x7F80], dtype=np.uint16)
        assert bool(is_inf(inf_pattern, BFLOAT16)[0])
        assert not bool(is_nan(inf_pattern, BFLOAT16)[0])
