"""Tests for the Elliott-style analytic IEEE flip model."""

import numpy as np
from hypothesis import given, strategies as st

from repro.ieee.analytic import expected_error_profile, predict_flip, relative_error_bound
from repro.ieee.bits import flip_float_bit
from repro.ieee.formats import BINARY32, BINARY64


class TestPredictionExactness:
    def test_every_bit_on_random_normals(self, rng):
        values = rng.normal(0, 1000, 500).astype(np.float32)
        for bit in range(32):
            prediction = predict_flip(values, bit, BINARY32)
            actual = flip_float_bit(values, bit, BINARY32).astype(np.float64)
            valid = prediction.valid
            assert np.any(valid)
            assert np.array_equal(prediction.faulty[valid], actual[valid]), f"bit {bit}"

    @given(st.floats(min_value=1e-30, max_value=1e30),
           st.integers(min_value=0, max_value=31))
    def test_hypothesis_scalar(self, value, bit):
        value32 = np.float32(value)
        if not np.isfinite(value32) or value32 == 0:
            return
        prediction = predict_flip(np.array([value32]), bit, BINARY32)
        if not prediction.valid[0]:
            return
        actual = float(flip_float_bit(value32, bit, BINARY32))
        assert prediction.faulty[0] == actual

    def test_sign_bit(self):
        prediction = predict_flip(np.array([np.float32(5.0)]), 31, BINARY32)
        assert prediction.faulty[0] == -5.0
        assert prediction.relative_error[0] == 2.0

    def test_validity_excludes_special_crossings(self):
        # Flipping the exponent MSB of 1.5 (exp 127) overflows to inf.
        prediction = predict_flip(np.array([np.float32(1.5)]), 30, BINARY32)
        assert not prediction.valid[0]

    def test_negative_values_fraction_flip(self):
        value = np.float32(-186.25)
        prediction = predict_flip(np.array([value]), 10, BINARY32)
        actual = float(flip_float_bit(value, 10, BINARY32))
        assert prediction.valid[0]
        assert prediction.faulty[0] == actual

    def test_binary64(self, rng):
        values = rng.normal(0, 1, 100)
        for bit in (0, 30, 51, 52, 60, 63):
            prediction = predict_flip(values, bit, BINARY64)
            actual = flip_float_bit(values, bit, BINARY64)
            valid = prediction.valid
            assert np.array_equal(prediction.faulty[valid], actual[valid])


class TestBounds:
    def test_sign_bound(self):
        assert relative_error_bound(31, BINARY32) == 2.0

    def test_fraction_bounds_double(self):
        bounds = [relative_error_bound(b, BINARY32) for b in range(23)]
        ratios = np.diff(np.log2(bounds))
        assert np.allclose(ratios, 1.0)

    def test_exponent_bound_explodes(self):
        assert relative_error_bound(30, BINARY32) == 2.0**128 - 1

    def test_profile_shape(self):
        profile = expected_error_profile(BINARY32)
        assert profile.shape == (32,)
        assert np.argmax(profile) == 30  # exponent MSB dominates

    def test_measured_error_within_bound(self, rng):
        values = rng.normal(0, 100, 200).astype(np.float32)
        for bit in range(23):  # fraction bits
            prediction = predict_flip(values, bit, BINARY32)
            bound = relative_error_bound(bit, BINARY32)
            assert np.all(prediction.relative_error[prediction.valid] <= bound * (1 + 1e-12))
