#!/usr/bin/env python3
"""Design study: sizing selective protection for posit vs IEEE memories.

Uses the campaign engine plus the protection models to answer the
hardware question the paper's introduction poses: given a soft-error
budget, which bits of each number system must ECC/TMR cover, and what
does it cost?

Run:  python examples/protection_design.py [--size 32768] [--trials 80]
"""

import argparse


from repro.datasets import get as get_field
from repro.inject import CampaignConfig, TrialRecords, run_campaign
from repro.protect import (
    SelectiveParity,
    bits_needed_for_reduction,
    evaluate_scheme,
    ranked_bit_positions,
    tmr_frontier,
)
from repro.reporting import Table, render_table

FIELDS = ("nyx/temperature", "hacc/vx", "cesm/cloud", "hurricane/uf30")


def pooled_records(target: str, size: int, trials: int, seed: int) -> TrialRecords:
    shards = []
    for field in FIELDS:
        data = get_field(field).generate(seed=seed, size=size)
        config = CampaignConfig(trials_per_bit=trials, seed=seed)
        shards.append(run_campaign(data, target, config, label=field, jobs=None).records)
    return TrialRecords.concatenate(shards)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=1 << 15)
    parser.add_argument("--trials", type=int, default=80)
    parser.add_argument("--seed", type=int, default=2023)
    args = parser.parse_args()

    table = Table(
        title="Selective TMR sizing (95% serious-SDC reduction target)",
        columns=["target", "baseline serious", "bits needed", "which bits",
                 "TMR overhead", "parity alt. overhead"],
    )
    for target in ("ieee32", "posit32"):
        records = pooled_records(target, args.size, args.trials, args.seed)
        frontier = tmr_frontier(records, 32, max_protected=16)
        needed = bits_needed_for_reduction(records, 32, 0.95)
        ranked = ranked_bit_positions(records, 32)[:needed]
        tmr_report = frontier[min(needed, len(frontier) - 1)]
        parity_report = evaluate_scheme(
            records, SelectiveParity(tuple(ranked)), 32
        )
        table.add_row([
            target,
            frontier[0].baseline_serious_fraction,
            needed,
            ",".join(map(str, sorted(ranked, reverse=True))),
            f"{tmr_report.overhead_fraction:.0%}",
            f"{parity_report.overhead_fraction:.0%} (detect-only)",
        ])

        print(f"-- {target} frontier (protected bits -> residual serious fraction)")
        for k, report in enumerate(frontier[:12]):
            bar = "#" * int(50 * report.residual_serious_fraction
                            / max(frontier[0].residual_serious_fraction, 1e-12))
            print(f"   {k:2d}: {report.residual_serious_fraction:.4f} {bar}")
        print()

    print(render_table(table))


if __name__ == "__main__":
    main()
