#!/usr/bin/env python3
"""Bring your own data: run the paper's campaign on a real binary field.

SDRBench distributes fields as headerless little-endian float32 files.
Given such a file this example wraps it as a registry preset and runs
the full pipeline on the *real* values; without one it writes a
demonstration file first so the example always runs.

Run:  python examples/custom_dataset.py [path/to/field.f32]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import aggregate_by_field
from repro.datasets import preset_from_file, register, save_raw
from repro.formats import resolve
from repro.inject import CampaignConfig, run_campaign
from repro.reporting import Table, render_table


def demonstration_file() -> Path:
    """Write a synthetic stand-in field when no real file is supplied."""
    rng = np.random.default_rng(7)
    values = np.concatenate([
        rng.lognormal(3, 2, 40_000),
        -rng.lognormal(1, 1.5, 20_000),
        np.zeros(2_000),
    ]).astype(np.float32)
    path = Path(tempfile.mkdtemp()) / "demo-field.f32"
    save_raw(values, path)
    print(f"(no file supplied; wrote a demonstration field to {path})")
    return path


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else demonstration_file()

    preset = preset_from_file(path, dataset="User", field=path.stem)
    register(preset, overwrite=True)
    print(f"registered {preset.key}: {preset.full_size} elements, "
          f"mean {preset.published.mean:.4g}, std {preset.published.std:.4g}")

    data = preset.generate(seed=0, size=min(preset.full_size, 1 << 16))
    config = CampaignConfig(trials_per_bit=200, seed=0)

    table = Table(
        title=f"Per-field error breakdown for {preset.key}",
        columns=["target", "field", "trials", "mean rel err", "max rel err"],
    )
    for target_name in ("ieee32", "posit32"):
        result = run_campaign(data, target_name, config, label=preset.key)
        target = resolve(target_name)
        for row in aggregate_by_field(result.records, target.field_label):
            table.add_row([
                target_name, row.label, row.trial_count,
                row.mean_rel_err, row.max_rel_err,
            ])
        out_csv = path.with_suffix(f".{target_name}.trials.csv")
        result.records.write_csv(out_csv)
        print(f"wrote {out_csv}")
    print()
    print(render_table(table))


if __name__ == "__main__":
    main()
