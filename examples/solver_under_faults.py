#!/usr/bin/env python3
"""Application study: a Jacobi Poisson solve under bit flips.

The paper injects faults into stored data; its related work (Elliott et
al. on GMRES, Casas et al. on AMG) asks what those flips do to whole HPC
computations.  This example answers that for the library's Jacobi solver:

1. solve the Poisson problem with state stored as ieee32 vs posit32
   (accuracy comparison, no faults);
2. inject a single bit flip into the solver state mid-run, sweeping all
   bit positions, and compare the application-level outcomes: extra
   iterations, final-solution error, divergence.

Run:  python examples/solver_under_faults.py [--grid 24] [--trials 2]
"""

import argparse

import numpy as np

from repro.apps import (
    AppCampaignConfig,
    PoissonProblem,
    cg_fault_outcome,
    jacobi_solve,
    run_app_campaign,
)
from repro.analysis.appsweep import summarize_records
from repro.reporting import Table, render_table


def clean_accuracy(problem: PoissonProblem) -> None:
    exact = problem.exact_solution()
    print("== clean solves (no faults) ==")
    for target in (None, "ieee32", "posit32", "posit16", "ieee16"):
        result = jacobi_solve(problem, target, max_iterations=5000, tolerance=1e-7)
        label = target or "float64"
        print(
            f"  {label:>8}: {result.iterations:4d} iterations, "
            f"discretization+storage error {result.error_vs(exact):.3e}, "
            f"converged={result.converged}"
        )
    print()


def fault_sweep(problem: PoissonProblem, trials: int, seed: int) -> None:
    print("== single flip at iteration 10, sweep over all bit positions ==")
    table = Table(
        title="Application-level fault outcomes",
        columns=[
            "target", "trials", "converged", "delayed", "diverged", "sdc",
            "mean extra iters", "max sdc err",
        ],
    )
    for target in ("ieee32", "posit32"):
        config = AppCampaignConfig(
            app="jacobi", grid=problem.grid, iterations=(10,),
            trials_per_cell=trials, seed=seed,
            max_iterations=5000, tolerance=1e-7,
        )
        result = run_app_campaign(config, target)
        records = result.records
        summary = summarize_records(
            records, target=target, app="jacobi", fault=config.fault
        )
        table.add_row([
            target,
            summary.trial_count,
            summary.rates["converged"],
            summary.rates["delayed"],
            summary.rates["diverged"],
            summary.rates["sdc"],
            summary.mean_overhead,
            summary.max_sdc_error,
        ])

        # Which bits hurt the most, application-side?
        order = np.argsort(records.iteration_overhead)[::-1][:3]
        print(f"  {target}: worst bits by recovery cost: "
              + ", ".join(f"bit {int(records.bit[i])} "
                          f"(+{int(records.iteration_overhead[i])} iters)"
                          for i in order))
    print()
    print(render_table(table))
    print()
    print(
        "takeaway: Jacobi self-heals small perturbations, so the cost of a "
        "flip is measured in extra sweeps; IEEE exponent flips cost the "
        "most (or diverge), posit regime flips cost less on average — the "
        "storage-level resiliency gap carries through to the application."
    )


def cg_silent_corruption(problem: PoissonProblem) -> None:
    print("== conjugate gradient: the silent-corruption contrast ==")
    source = (problem.grid // 3) * problem.grid + (2 * problem.grid) // 3
    for target in ("ieee32", "posit32"):
        outcome = cg_fault_outcome(
            problem, target, iteration=3, flat_index=source, bit=30,
            max_iterations=4000, tolerance=1e-6,
        )
        print(
            f"  {target}: flip bit 30 of x at iter 3 -> still 'converged' "
            f"in {outcome['faulty_iterations']} iters (overhead "
            f"{outcome['iteration_overhead']}), but the answer is off by "
            f"{outcome['solution_error']:.3e} relative"
        )
    print(
        "  CG's residual recurrence never re-reads x, so the flip is "
        "SILENT — the opposite of Jacobi's self-healing; posit storage "
        "bounds the silent damage by orders of magnitude."
    )
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid", type=int, default=24)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2023)
    args = parser.parse_args()
    problem = PoissonProblem(grid=args.grid)
    clean_accuracy(problem)
    cg_silent_corruption(problem)
    fault_sweep(problem, args.trials, args.seed)


if __name__ == "__main__":
    main()
