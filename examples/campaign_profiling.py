#!/usr/bin/env python3
"""Profiling a campaign: telemetry spans, counters, and the run report.

Demonstrates the observability layer end to end:

1. run a profiled campaign (`telemetry=True`, the CLI's `--profile`)
   into a run directory;
2. read the merged snapshot — counters and spans from the codec hot
   path up — off the result and from `telemetry.json`;
3. show the per-phase wall-clock breakdown (exclusive self-time, so
   the shares sum to 100%);
4. verify the parallel-merge contract: per-counter totals identical
   for jobs=1 and jobs=N on the same seeded campaign;
5. render the markdown run report that joins the event log with the
   telemetry (`posit-resiliency telemetry report` equivalent).

Run:  python examples/campaign_profiling.py [--size N] [--trials N] [--jobs N]
"""

import argparse
import shutil
import tempfile
from pathlib import Path

from repro.datasets import get as get_field
from repro.formats import resolve
from repro.inject import CampaignConfig, run_campaign
from repro.telemetry import (
    Telemetry,
    format_duration,
    load_run_snapshot,
    render_run_report,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--field", default="hurricane/pf48")
    parser.add_argument("--size", type=int, default=1 << 14)
    parser.add_argument("--trials", type=int, default=24)
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    data = get_field(args.field).generate(seed=2023, size=args.size)
    config = CampaignConfig(trials_per_bit=args.trials, seed=2023)
    target = resolve("posit32")

    run_dir = Path(tempfile.mkdtemp(prefix="campaign-profiling-")) / "run"
    try:
        print(f"== profiled run ({args.field}, posit32, jobs={args.jobs}) ==")
        result = run_campaign(
            data, target, config,
            jobs=args.jobs, run_dir=run_dir, telemetry=True,
        )
        snapshot = result.extras["telemetry"]
        print(f"  {result.trial_count} trials; "
              f"telemetry written to {run_dir / 'telemetry.json'}\n")

        print("== where the time went (exclusive self-time) ==")
        phases = snapshot.phase_seconds()
        total = sum(phases.values())
        for phase, seconds in sorted(phases.items(), key=lambda kv: -kv[1]):
            print(f"  {phase:<10} {format_duration(seconds):>8}  "
                  f"{seconds / total:6.1%}")
        print()

        print("== counters ==")
        for name in sorted(snapshot.counters):
            print(f"  {name:<36} {snapshot.counters[name]:,}")
        print()

        print("== jobs=1 vs jobs=N: merged counters are scheduling-independent ==")
        # clear the format's round-trip memo so both runs do identical work
        target._round_trip_cache.clear()
        serial = Telemetry()
        run_campaign(data, target, config, jobs=1, telemetry=serial)
        target._round_trip_cache.clear()
        parallel = Telemetry()
        run_campaign(data, target, config, jobs=args.jobs, telemetry=parallel)
        identical = serial.snapshot().counters == parallel.snapshot().counters
        print(f"  per-counter totals identical: {identical}\n")
        assert identical

        # the same snapshot, re-read from disk
        assert load_run_snapshot(run_dir).counters == snapshot.counters

        print("== run report (telemetry report equivalent) ==")
        print(render_run_report(run_dir))
        return 0
    finally:
        shutil.rmtree(run_dir.parent, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
