#!/usr/bin/env python3
"""Chaos drill: inject infrastructure faults, survive them, prove it.

Demonstrates `repro.chaos` and the hardened runner end to end:

1. run a fault-free reference campaign;
2. rerun it under a fault plan — a transient worker exception plus
   on-disk corruption of a persisted shard CSV;
3. watch the run complete anyway, bit-identical to the reference;
4. audit the run directory (`campaign verify` equivalent) — the
   corruption is caught loudly by its SHA-256 checksum;
5. resume: the corrupt shard is quarantined and recomputed, the audit
   comes back clean, and the records are still bit-identical.

Run:  python examples/chaos_drill.py [--size N] [--trials N] [--jobs N]
"""

import argparse
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.chaos import FaultPlan, FaultSpec
from repro.datasets import get as get_field
from repro.inject import CampaignConfig, run_campaign
from repro.runner import quarantine_dir, read_event_log, resume_campaign, verify_run
from repro.runner.manifest import RunManifest


def records_identical(a, b) -> bool:
    return all(
        np.array_equal(
            getattr(a, col), getattr(b, col),
            equal_nan=getattr(a, col).dtype.kind == "f",
        )
        for col in a.column_names()
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--field", default="hurricane/pf48")
    parser.add_argument("--size", type=int, default=1 << 14)
    parser.add_argument("--trials", type=int, default=24)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    data = get_field(args.field).generate(seed=2023, size=args.size)
    config = CampaignConfig(trials_per_bit=args.trials, seed=2023)

    print(f"== reference: fault-free run ({args.field}, posit16) ==")
    reference = run_campaign(data, "posit16", config, jobs=args.jobs)
    print(f"  {reference.trial_count} trials\n")

    plan = FaultPlan(
        [
            FaultSpec("worker-raise", bits=(3,)),  # transient exception, retried
            FaultSpec("shard-byte", bits=(7,)),    # disk rot after the write
        ],
        seed=99,
    )
    run_dir = Path(tempfile.mkdtemp(prefix="chaos-drill-")) / "run"
    try:
        print("== chaos run: injected exception on bit 3, corruption on bit 7 ==")
        result = run_campaign(
            data, "posit16", config, jobs=args.jobs, run_dir=run_dir, chaos=plan
        )
        print(f"  completed; bit-identical to reference: "
              f"{records_identical(result.records, reference.records)}")
        kinds: dict = {}
        for event in read_event_log(RunManifest.event_log_path(run_dir)):
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        print("  event log:", ", ".join(f"{k}×{v}" for k, v in sorted(kinds.items())))
        print()

        print("== audit: the corruption cannot hide ==")
        report = verify_run(run_dir)
        print("\n".join("  " + line for line in report.render().splitlines()))
        assert report.exit_code == 1, "expected the audit to flag the corrupt shard"
        print()

        print("== resume: quarantine the bad bytes, recompute the shard ==")
        resumed = resume_campaign(run_dir, data, jobs=args.jobs)
        quarantined = sorted(p.name for p in quarantine_dir(run_dir).iterdir())
        print(f"  quarantined: {', '.join(quarantined)}")
        identical = records_identical(resumed.records, reference.records)
        clean = verify_run(run_dir)
        print(f"  audit after resume: exit {clean.exit_code}; "
              f"bit-identical to reference: {identical}")
        assert identical
        assert clean.exit_code in (0, 2)  # quarantine leftovers warn, never error
        return 0
    finally:
        shutil.rmtree(run_dir.parent, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
