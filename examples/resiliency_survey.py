#!/usr/bin/env python3
"""Hardware-design survey: which bits of each number system need protection?

The paper's stated goal is "to inform hardware design for future fault
prone systems".  This example turns campaign output into that design
input: for every dataset field it ranks the bit positions of posit32 and
ieee32 by induced error, then reports the smallest set of bit positions a
selective-protection scheme (e.g. parity over the top-k bits) must cover
to suppress a target fraction of the serious SDC events.

Run:  python examples/resiliency_survey.py [--size 65536] [--trials 100]
"""

import argparse

import numpy as np

from repro.analysis import sdc_threshold_fraction
from repro.datasets import keys as dataset_keys, get as get_field
from repro.inject import CampaignConfig, run_campaign
from repro.reporting import Table, render_table

SERIOUS_RELATIVE_ERROR = 1.0  # an SDC that changes the value by >100%


def bits_to_protect(records, nbits: int, coverage: float = 0.95) -> list[int]:
    """Smallest set of bit positions covering `coverage` of serious SDCs."""
    rel = records.rel_err
    serious = ~np.isfinite(rel) | (rel > SERIOUS_RELATIVE_ERROR)
    total = int(np.sum(serious))
    if total == 0:
        return []
    per_bit = np.array(
        [int(np.sum(serious & (records.bit == b))) for b in range(nbits)]
    )
    order = np.argsort(per_bit)[::-1]
    chosen: list[int] = []
    covered = 0
    for bit in order:
        if covered / total >= coverage:
            break
        if per_bit[bit] == 0:
            break
        chosen.append(int(bit))
        covered += int(per_bit[bit])
    return sorted(chosen, reverse=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=1 << 15)
    parser.add_argument("--trials", type=int, default=80)
    parser.add_argument("--seed", type=int, default=2023)
    args = parser.parse_args()

    table = Table(
        title="Selective-protection requirements per field (95% of serious SDCs)",
        columns=[
            "field", "target", "serious SDC rate",
            "bits to protect", "#bits",
        ],
    )
    posit_bit_counts = []
    ieee_bit_counts = []
    for field_key in dataset_keys():
        data = get_field(field_key).generate(seed=args.seed, size=args.size)
        for target in ("ieee32", "posit32"):
            config = CampaignConfig(trials_per_bit=args.trials, seed=args.seed)
            result = run_campaign(data, target, config, label=field_key, jobs=None)
            serious_rate = sdc_threshold_fraction(result.records, SERIOUS_RELATIVE_ERROR)
            protect = bits_to_protect(result.records, 32)
            table.add_row([
                field_key, target, serious_rate,
                ",".join(map(str, protect)) if protect else "-",
                len(protect),
            ])
            (posit_bit_counts if target == "posit32" else ieee_bit_counts).append(
                len(protect)
            )
    print(render_table(table))
    print()
    print(
        f"average bits needing protection: ieee32 "
        f"{np.mean(ieee_bit_counts):.1f}, posit32 {np.mean(posit_bit_counts):.1f}"
    )
    print(
        "takeaway: the posit regime concentrates serious SDCs into a "
        "narrower, value-dependent band than the fixed IEEE exponent — "
        "but the sign bit must always be covered."
    )


if __name__ == "__main__":
    main()
