#!/usr/bin/env python3
"""A tour of the posit substrate: formats, arithmetic, the quire.

Shows the pieces the fault-injection study is built on, and the accuracy
behaviour that motivates posits in the first place (the paper's Fig. 7):

* tapered accuracy — spacing of representable values across magnitudes;
* correctly rounded arithmetic and NaR semantics;
* the quire: exact dot products vs sequentially rounded ones.

Run:  python examples/posit_arithmetic_tour.py
"""

import numpy as np

from repro.analysis import posit_decimal_accuracy
from repro.apps import dot_error_comparison
from repro.posit import (
    POSIT8,
    POSIT16,
    POSIT32,
    add,
    decode,
    divide,
    encode,
    layout_string,
    multiply,
    negate,
    sqrt,
)


def tapered_accuracy() -> None:
    print("== tapered accuracy (decimal digits, the paper's Fig. 7) ==")
    print("  exponent:  " + "  ".join(f"{h:+4d}" for h in (-32, -16, -4, 0, 4, 16, 32)))
    for config in (POSIT8, POSIT16, POSIT32):
        digits = [posit_decimal_accuracy(h, config) for h in (-32, -16, -4, 0, 4, 16, 32)]
        print(f"  posit{config.nbits:<2}:   " + "  ".join(f"{d:4.1f}" for d in digits))
    print()


def arithmetic() -> None:
    print("== correctly rounded arithmetic on bit patterns ==")
    a = encode(np.array([1.5, 100.0, 0.3]), POSIT32)
    b = encode(np.array([2.25, 0.001, 3.0]), POSIT32)
    print("  a        =", decode(a, POSIT32))
    print("  b        =", decode(b, POSIT32))
    print("  a + b    =", decode(add(a, b, POSIT32), POSIT32))
    print("  a * b    =", decode(multiply(a, b, POSIT32), POSIT32))
    print("  a / b    =", decode(divide(a, b, POSIT32), POSIT32))
    print("  sqrt(a)  =", decode(sqrt(a, POSIT32), POSIT32))
    print("  -a       =", decode(negate(a, POSIT32), POSIT32))

    nar = divide(a[:1], encode(np.array([0.0]), POSIT32), POSIT32)
    print("  a / 0    =", decode(nar, POSIT32), "(NaR)")
    print()

    print("  negation is the two's complement, not a sign flip:")
    pattern = int(encode(np.float64(13.5), POSIT32))
    print(f"    13.5      {layout_string(pattern, POSIT32)}")
    print(f"   -13.5      {layout_string(int(negate(np.uint64(pattern), POSIT32)), POSIT32)}")
    flipped = pattern ^ (1 << 31)
    print(f"    sign flip {layout_string(flipped, POSIT32)} = "
          f"{float(decode(np.uint64(flipped), POSIT32))}  (!)")
    print()


def quire_demo() -> None:
    print("== quire: one rounding per dot product ==")
    rng = np.random.default_rng(1)
    # An ill-conditioned dot product: huge terms that cancel exactly,
    # leaving a small true answer of 1.0.
    big = rng.normal(0, 1e6, 20)
    x = np.concatenate([big, -big, [1.0]])
    y = np.concatenate([np.ones(20), np.ones(20), [1.0]])
    errors = dot_error_comparison(x, y)
    for strategy, relative_error in errors.items():
        print(f"  {strategy:22s} relative error {relative_error:.3e}")
    print()
    print("  the fused (quire) posit dot product rounds once; sequential")
    print("  accumulation in either format loses the cancellation.")


if __name__ == "__main__":
    tapered_accuracy()
    arithmetic()
    quire_demo()
