#!/usr/bin/env python3
"""Custom formats: name any layout with a spec string and campaign it.

The registry (`repro.formats`) turns spec strings into injection
targets, so formats beyond the paper's eight need no code:

1. parse a fixed-posit spec and look at its (static) field layout;
2. compare its quantization error against posit16 and ieee16;
3. run the same fault-injection campaign over all three and contrast
   the per-field damage profile.

Run:  python examples/custom_formats.py [--size N] [--trials T]
"""

import argparse

import numpy as np

from repro.analysis import aggregate_by_field
from repro.datasets import get as get_field
from repro.formats import resolve
from repro.inject import CampaignConfig, run_campaign

#: A 16-bit fixed-posit (Gohil et al.): 1 sign, 3 regime (fixed),
#: 2 exponent, 10 fraction bits.  Same dynamic-range knobs as posit16,
#: but the regime never grows, so field boundaries are static.
SPECS = ("ieee16", "posit16", "fixedposit(16,es=2,r=3)")


def show_layouts() -> None:
    print("== layouts of 186.25 ==")
    for spec in SPECS:
        fmt = resolve(spec)
        bits = int(np.atleast_1d(fmt.to_bits(np.array([186.25])))[0])
        decoded = float(np.atleast_1d(fmt.from_bits(np.array([bits], dtype=fmt.dtype)))[0])
        print(f"  {fmt.name:>24}: {fmt.layout_string(bits)}  -> {decoded}")
    print()


def compare(size: int, trials: int) -> None:
    data = get_field("cesm/cloud").generate(seed=0, size=size)
    config = CampaignConfig(trials_per_bit=trials, seed=2023)

    print("== conversion error and per-field injected damage ==")
    for spec in SPECS:
        target = resolve(spec)
        result = run_campaign(data, target, config)
        by_field = aggregate_by_field(result.records, target.field_label)
        worst = max(by_field, key=lambda row: row.mean_rel_err)
        print(
            f"  {target.name:>24}: conversion {result.conversion.mean_relative_error:.2e}, "
            f"worst field {worst.label} ({worst.mean_rel_err:.2e})"
        )
    print()
    print(
        "The fixed regime caps the damage a regime-bit flip can do "
        "(|k| <= 2^(r-1)), trading tapered precision for bounded blast "
        "radius — the resiliency argument for fixed-posits."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=1 << 14)
    parser.add_argument("--trials", type=int, default=40)
    args = parser.parse_args()
    show_layouts()
    compare(args.size, args.trials)
