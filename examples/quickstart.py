#!/usr/bin/env python3
"""Quickstart: inspect posits, run a fault-injection campaign, analyze it.

Walks the library's layers in ~60 lines:

1. convert values between float and posit32, look at the fields;
2. generate a synthetic scientific field (Table 1 preset);
3. run the paper's campaign against posit32 and ieee32;
4. aggregate per-bit error and print the Fig. 10-style comparison.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import aggregate_by_bit
from repro.datasets import get as get_field
from repro.inject import CampaignConfig, run_campaign
from repro.posit import POSIT32, decode, encode, layout_string
from repro.reporting import Figure, Series, render_series_table


def inspect_values() -> None:
    print("== posit32 representations ==")
    for value in (1.0, 1.141, 186.25, 186250.0, 0.1, -13.5):
        pattern = int(encode(np.float64(value), POSIT32))
        decoded = float(decode(np.uint64(pattern), POSIT32))
        print(f"  {value:>12}: {layout_string(pattern, POSIT32)}  -> {decoded}")
    print()


def run_comparison() -> None:
    # A cosmology temperature field fitted to the paper's Table 1 row.
    data = get_field("nyx/temperature").generate(seed=0, size=1 << 16)
    config = CampaignConfig(trials_per_bit=313, seed=2023)

    figure = Figure(
        title="Mean relative error per flipped bit (nyx/temperature)",
        x_label="bit",
        y_label="mean relative error",
    )
    for target in ("ieee32", "posit32"):
        result = run_campaign(data, target, config)
        aggregate = aggregate_by_bit(result.records, 32)
        figure.add(Series(target, aggregate.bits, aggregate.mean_rel_err))
        print(
            f"{target}: {result.trial_count} trials, conversion error "
            f"mean {result.conversion.mean_relative_error:.2e}"
        )
    print()
    print(render_series_table(figure))

    ieee = figure.get("ieee32").y
    posit = figure.get("posit32").y
    print()
    print(f"worst IEEE bit : {np.nanmax(ieee):.3e} (bit {int(np.nanargmax(ieee))})")
    print(f"worst posit bit: {np.nanmax(posit):.3e} (bit {int(np.nanargmax(posit))})")


if __name__ == "__main__":
    inspect_values()
    run_comparison()
