#!/usr/bin/env python3
"""Resumable campaigns: checkpoints, interruption, bit-identical resume.

Demonstrates the campaign runner end to end:

1. run a campaign with a run directory and live progress events;
2. simulate a crash partway through (a hook raises after k shards);
3. inspect the interrupted run directory (`campaign status` equivalent);
4. resume it — only the missing shards execute — and verify the records
   are bit-identical to an uninterrupted run;
5. replay the JSONL event log the runner recorded along the way.

Run:  python examples/resumable_campaign.py [--size N] [--trials N] [--jobs N]
"""

import argparse
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.datasets import get as get_field
from repro.inject import CampaignConfig, run_campaign
from repro.runner import (
    RunManifest,
    RunnerHooks,
    read_event_log,
    resume_campaign,
    run_status,
)


class CrashAfter(RunnerHooks):
    """A stand-in for a node failure: raise after k completed shards."""

    def __init__(self, shards: int):
        self.remaining = shards

    def on_shard_finish(self, event) -> None:
        if event.kind == "shard_finish":
            self.remaining -= 1
            if self.remaining <= 0:
                raise KeyboardInterrupt


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--field", default="hurricane/pf48")
    parser.add_argument("--size", type=int, default=1 << 14)
    parser.add_argument("--trials", type=int, default=40)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--crash-after", type=int, default=12,
                        help="shards to finish before the simulated crash")
    args = parser.parse_args()

    data = get_field(args.field).generate(seed=2023, size=args.size)
    config = CampaignConfig(trials_per_bit=args.trials, seed=2023)
    provenance = {"kind": "preset", "field": args.field,
                  "size": args.size, "seed": 2023}

    print(f"== reference: uninterrupted run ({args.field}, posit32) ==")
    reference = run_campaign(data, "posit32", config, jobs=args.jobs)
    print(f"  {reference.trial_count} trials\n")

    run_dir = Path(tempfile.mkdtemp(prefix="resumable-campaign-")) / "run"
    try:
        print(f"== checkpointed run, crashing after {args.crash_after} shards ==")
        try:
            run_campaign(
                data, "posit32", config,
                jobs=args.jobs, run_dir=run_dir, progress=True,
                dataset=provenance, hooks=CrashAfter(args.crash_after),
            )
        except KeyboardInterrupt:
            print("  (simulated crash)\n")

        print("== what the run directory knows ==")
        print(run_status(run_dir).summary())
        print()

        print("== resuming (no data argument: regenerated from the manifest) ==")
        resumed = resume_campaign(run_dir, jobs=args.jobs, progress=True)
        print(f"  restored {resumed.extras['resumed_shards']} shard(s), "
              f"re-ran the rest\n")

        identical = all(
            np.array_equal(
                getattr(reference.records, col), getattr(resumed.records, col),
                equal_nan=getattr(reference.records, col).dtype.kind == "f",
            )
            for col in reference.records.column_names()
        )
        print(f"bit-identical to the uninterrupted run: {identical}")
        assert identical

        events = read_event_log(RunManifest.event_log_path(run_dir))
        counts: dict = {}
        for event in events:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        print("event log:", ", ".join(f"{k}×{v}" for k, v in sorted(counts.items())))
        return 0
    finally:
        shutil.rmtree(run_dir.parent, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
