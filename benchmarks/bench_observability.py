"""Fleet observability overhead smoke benchmark.

The tracing/metrics side channels promise the same deal as telemetry:
**off by default and effectively free when off** — an untraced campaign
executes the identical code path plus one ``is None`` check per shard —
and cheap enough when on that tracing a production fleet is reasonable
(one span record per shard, one metrics point per second per worker).

This bench pins both ends: the per-record cost of the span and metrics
writers (micro), and the wall-clock delta of a real checkpointed
campaign with tracing off vs. on (macro, generous bound — the signal
is shard compute, not the side channel).

Run standalone:

    PYTHONPATH=src python -m pytest benchmarks/bench_observability.py -s -q
"""

import time

import numpy as np
import pytest

from repro.inject.campaign import CampaignConfig, run_campaign
from repro.telemetry import MetricsWriter, TraceContext, TraceWriter

#: Span/point records per timed micro batch.
RECORDS = 2000

#: A traced campaign must stay within this fraction of the untraced
#: wall clock (intentionally loose: one span per shard plus a 1 Hz
#: sampler thread should be far below it even on noisy CI machines).
MAX_TRACED_OVERHEAD = 0.50

IDENTITY = {
    "target_spec": "posit16",
    "trials_per_bit": 8,
    "bits": list(range(8)),
    "seed": 42,
    "data_fingerprint": "bench",
    "data_size": 4096,
}


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_span_emit_cost(tmp_path):
    ctx = TraceContext.for_run(IDENTITY, tmp_path, worker="bench")
    writer = TraceWriter(tmp_path, ctx)

    def emit_batch():
        for i in range(RECORDS):
            writer.shard_span(bit=i % 32, attempt=0, ts=float(i), duration=0.5)

    best = _best_of(emit_batch)
    writer.close()
    per_span = best / RECORDS
    print(f"\n[bench_observability] span emit: {per_span * 1e6:.2f}us/span")
    # One shard span per multi-millisecond shard: even 1ms would vanish,
    # but an O_APPEND write of one small line should sit far below that.
    assert per_span < 1e-3


def test_metrics_point_cost(tmp_path):
    writer = MetricsWriter(tmp_path, "bench")

    def append_batch():
        for i in range(RECORDS):
            writer.append({"ts": float(i), "trials_done": i, "rss_bytes": 1})

    best = _best_of(append_batch)
    writer.close()
    per_point = best / RECORDS
    print(f"[bench_observability] metrics point: {per_point * 1e6:.2f}us/point")
    assert per_point < 1e-3  # sampled once per second per worker


@pytest.mark.parametrize("jobs", [1])
def test_traced_campaign_overhead(tmp_path, jobs):
    rng = np.random.default_rng(2023)
    data = rng.normal(loc=50.0, scale=10.0, size=1 << 12)
    config = CampaignConfig(trials_per_bit=8, bits=range(8), seed=42)

    def campaign(label, trace):
        start = time.perf_counter()
        run_campaign(
            data, "posit16", config, jobs=jobs,
            run_dir=tmp_path / label, trace=trace,
        )
        return time.perf_counter() - start

    campaign("warm", False)  # warm LUT/codec caches out of the timing
    untraced = campaign("untraced", False)
    traced = campaign("traced", True)
    overhead = traced / untraced - 1.0
    print(
        f"[bench_observability] campaign jobs={jobs}: "
        f"untraced {untraced * 1e3:.1f}ms, traced {traced * 1e3:.1f}ms "
        f"({overhead:+.2%})"
    )
    assert traced - untraced < max(MAX_TRACED_OVERHEAD * untraced, 200e-3), (
        f"tracing overhead {overhead:.2%} exceeds {MAX_TRACED_OVERHEAD:.0%}"
    )
