"""Bench: regenerate Figure 7 (decimal accuracy vs exponent)."""

from benchmarks.conftest import run_and_verify


def test_fig07(benchmark, bench_params):
    output = benchmark(run_and_verify, "fig07", bench_params)
    print()
    print(output.render())
