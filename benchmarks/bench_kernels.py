"""Micro-benchmarks of the substrate kernels.

These time the machinery itself rather than a figure: posit
encode/decode throughput, field decomposition, IEEE flips, single-bit
trial batches, and a full uncached campaign.  They are the numbers a
user sizing a larger fault-injection study needs.
"""

import numpy as np
import pytest

from repro.datasets.registry import get as get_preset
from repro.inject.campaign import CampaignConfig, run_campaign
from repro.formats import resolve
from repro.inject.trial import run_bit_trials
from repro.metrics.summary import SummaryStats
from repro.posit.config import POSIT32
from repro.posit.decode import decode
from repro.posit.encode import encode
from repro.posit.fields import decompose

N = 1 << 16


@pytest.fixture(scope="module")
def values():
    return get_preset("nyx/temperature").generate(seed=0, size=N).astype(np.float64)


@pytest.fixture(scope="module")
def patterns(values):
    return np.asarray(encode(values, POSIT32))


def test_posit_encode_throughput(benchmark, values):
    result = benchmark(encode, values, POSIT32)
    assert len(np.asarray(result)) == N


def test_posit_decode_throughput(benchmark, patterns):
    result = benchmark(decode, patterns, POSIT32)
    assert len(np.asarray(result)) == N


def test_posit_decompose_throughput(benchmark, patterns):
    fields = benchmark(decompose, patterns, POSIT32)
    assert fields.sign.shape == (N,)


def test_ieee_flip_throughput(benchmark, values):
    from repro.ieee import BINARY32, flip_float_bit

    values32 = values.astype(np.float32)
    result = benchmark(flip_float_bit, values32, 20, BINARY32)
    assert len(result) == N


def test_bit_trial_batch(benchmark, values):
    target = resolve("posit32")
    stored = target.round_trip(values)
    baseline = SummaryStats.from_array(stored)
    indices = np.random.default_rng(0).integers(0, stored.size, 313)

    records = benchmark(
        run_bit_trials, stored, indices, 28, target, baseline
    )
    assert len(records) == 313


def test_full_campaign_posit32(benchmark, values):
    config = CampaignConfig(trials_per_bit=64, seed=0)

    result = benchmark(run_campaign, values, "posit32", config)
    assert result.trial_count == 64 * 32


def test_full_campaign_ieee32(benchmark, values):
    config = CampaignConfig(trials_per_bit=64, seed=0)

    result = benchmark(run_campaign, values, "ieee32", config)
    assert result.trial_count == 64 * 32


# -- codec backends: table-served vs vectorized arithmetic ------------------
#
# The lut backend answers from_bits/classify_bits out of exhaustive
# tables for <= 16-bit formats; these pairs quantify what that buys per
# narrow format (tables are built once outside the timed region).

CODEC_SPECS = ("posit16", "ieee16", "bfloat16")


@pytest.fixture(scope="module", params=CODEC_SPECS)
def codec_pair(request):
    from repro.formats import get_format

    direct = get_format(request.param, backend="direct")
    lut = get_format(request.param, backend="lut")
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 1 << direct.nbits, N).astype(direct.dtype)
    lut.from_bits(bits)  # force table construction before timing
    lut.classify_bits(bits, 0)
    return direct, lut, bits


def test_codec_decode_direct(benchmark, codec_pair):
    direct, _, bits = codec_pair
    assert len(benchmark(direct.from_bits, bits)) == N


def test_codec_decode_lut(benchmark, codec_pair):
    _, lut, bits = codec_pair
    assert len(benchmark(lut.from_bits, bits)) == N


def test_codec_classify_direct(benchmark, codec_pair):
    direct, _, bits = codec_pair
    assert len(benchmark(direct.classify_bits, bits, 7)) == N


def test_codec_classify_lut(benchmark, codec_pair):
    _, lut, bits = codec_pair
    assert len(benchmark(lut.classify_bits, bits, 7)) == N


def test_codec_encode_direct(benchmark, codec_pair):
    direct, _, bits = codec_pair
    values = direct.from_bits(bits)
    values = np.where(np.isfinite(values), values, 1.0)
    assert len(benchmark(direct.to_bits, values)) == N


def test_codec_encode_lut(benchmark, codec_pair):
    direct, lut, bits = codec_pair
    values = direct.from_bits(bits)
    values = np.where(np.isfinite(values), values, 1.0)
    assert len(benchmark(lut.to_bits, values)) == N
