"""Bench: SoftPosit numeric-conversion rounding check (Section 4.1.2)."""

from benchmarks.conftest import run_and_verify


def test_ext_methodology(benchmark, bench_params):
    output = benchmark(run_and_verify, "ext-methodology", bench_params)
    print()
    print(output.render())
