"""Bench: 8/16/64-bit posit campaigns (future-work extension)."""

from benchmarks.conftest import run_and_verify


def test_ext_sizes(benchmark, bench_params):
    output = benchmark(run_and_verify, "ext-sizes", bench_params)
    print()
    print(output.render())
