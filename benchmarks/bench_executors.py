"""Executor throughput benchmark: serial vs pool vs work-stealing.

Runs one smoke campaign (posit16, 16 bit positions) through each
registered executor against a persistent run directory — the same
checksum/manifest/event overhead a real run pays — and reports trials
per second.  Results land in ``BENCH_executors.json`` next to this
file, and the shard CSVs are asserted bit-identical across executors
(the executor layer's core contract).

Run standalone:

    PYTHONPATH=src python benchmarks/bench_executors.py

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_executors.py -s -q
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.inject.campaign import CampaignConfig, run_campaign
from repro.runner import RunManifest

OUT_PATH = Path(__file__).resolve().parent / "BENCH_executors.json"

#: Smoke-campaign scale: big enough that fork/lease overhead does not
#: drown the signal, small enough to finish in seconds per executor.
FIELD_SIZE = 1 << 14
TRIALS_PER_BIT = 64
BITS = tuple(range(16))
SEED = 2023

#: Worker counts per executor; work-stealing runs the ISSUE's two-worker
#: shape (one coordinator + one forked worker).
EXECUTORS = (
    ("serial", {"jobs": 1}),
    ("pool", {"jobs": 2}),
    ("work-stealing", {"jobs": 2}),
)


def _dataset() -> np.ndarray:
    rng = np.random.default_rng(SEED)
    return np.concatenate([
        rng.normal(50.0, 20.0, FIELD_SIZE // 2),
        rng.lognormal(-2, 2, FIELD_SIZE // 2),
    ]).astype(np.float32)


def run_bench() -> dict:
    data = _dataset()
    config = CampaignConfig(trials_per_bit=TRIALS_PER_BIT, bits=BITS, seed=SEED)
    trials_total = TRIALS_PER_BIT * len(BITS)
    results = {}
    with tempfile.TemporaryDirectory(prefix="bench-executors-") as scratch:
        for name, kwargs in EXECUTORS:
            run_dir = Path(scratch) / name
            start = time.perf_counter()
            result = run_campaign(
                data, "posit16", config, run_dir=run_dir,
                executor=name, **kwargs,
            )
            elapsed = time.perf_counter() - start
            assert result.trial_count == trials_total
            assert result.extras["executor"] == name
            results[name] = {
                "executor": name,
                "jobs": kwargs["jobs"],
                "seconds": round(elapsed, 4),
                "trials_per_sec": round(trials_total / elapsed, 1),
            }
        # The contract behind the numbers: identical shard bytes.
        for name, _ in EXECUTORS[1:]:
            for bit in BITS:
                serial = RunManifest.shard_path(Path(scratch) / "serial", bit)
                other = RunManifest.shard_path(Path(scratch) / name, bit)
                assert serial.read_bytes() == other.read_bytes(), (
                    f"{name} shard bit={bit} diverged from serial"
                )
    return {
        "campaign": {
            "target": "posit16",
            "field_size": FIELD_SIZE,
            "trials_per_bit": TRIALS_PER_BIT,
            "bits": len(BITS),
            "trials_total": trials_total,
            "seed": SEED,
        },
        "results": results,
    }


def test_executor_throughput():
    payload = run_bench()
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    for row in payload["results"].values():
        print(
            f"{row['executor']:<14s} jobs={row['jobs']}  "
            f"{row['seconds']:8.3f}s  {row['trials_per_sec']:10.1f} trials/s"
        )
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    test_executor_throughput()
