"""Bench: power-of-two pre-scaling mitigation study (extension)."""

from benchmarks.conftest import run_and_verify


def test_ext_scaling(benchmark, bench_params):
    output = benchmark(run_and_verify, "ext-scaling", bench_params)
    print()
    print(output.render())
