"""Bench: analytic flip-error prediction validation (future-work extension)."""

from benchmarks.conftest import run_and_verify


def test_ext_predict(benchmark, bench_params):
    output = benchmark(run_and_verify, "ext-predict", bench_params)
    print()
    print(output.render())
