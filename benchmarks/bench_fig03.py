"""Bench: regenerate Figure 3 (per-bit error of 186.25 in IEEE-754/32)."""

from benchmarks.conftest import run_and_verify


def test_fig03(benchmark, bench_params):
    output = benchmark(run_and_verify, "fig03", bench_params)
    print()
    print(output.render())
