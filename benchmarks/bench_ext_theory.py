"""Bench: exhaustive-injection expectations (extension)."""

from benchmarks.conftest import run_and_verify


def test_ext_theory(benchmark, bench_params):
    output = benchmark(run_and_verify, "ext-theory", bench_params)
    print()
    print(output.render())
