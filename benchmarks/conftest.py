"""Shared benchmark configuration.

Each bench regenerates one paper table/figure through its experiment
harness, times it with pytest-benchmark, asserts the experiment's
qualitative checks (the paper's claims), and prints the regenerated
rows/series so `pytest benchmarks/ --benchmark-only -s` reproduces the
paper's evaluation outputs.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentParams

#: Benchmark scale: large enough for stable statistics, small enough
#: that the full bench suite runs in minutes.
BENCH_PARAMS = ExperimentParams(data_size=1 << 14, trials_per_bit=64, seed=2023)


@pytest.fixture(scope="session")
def bench_params() -> ExperimentParams:
    return BENCH_PARAMS


def run_and_verify(exp_id: str, params: ExperimentParams):
    """Run one experiment and assert its paper-claim checks."""
    from repro.experiments import get_experiment

    output = get_experiment(exp_id).run(params)
    assert output.all_checks_pass, (
        f"{exp_id} failed checks: {output.failed_checks()}"
    )
    return output
