"""Fault-model throughput: batched mask pipeline per model vs single-bit.

Replays one campaign field through :func:`repro.inject.campaign.
run_field_trials` under every registered fault model (one canonical
example per grammar production) and through the per-shard scalar path,
asserting the two byte-identical through the CSV writer before timing
anything.  Two numbers matter:

* ``speedup`` — batched vs per-shard for that model (the encode-once
  pipeline must pay off for multi-bit models too);
* ``relative_to_single`` — the model's batched throughput as a fraction
  of the ``single`` baseline's.  Flip models ride the same whole-array
  mask arithmetic as ``single``, so this should stay near 1; stochastic
  mask construction (``random``, ``burst``) pays for its per-trial RNG
  draws, and the committed value is the regression floor for the
  fault-model CI job.

Results land in ``BENCH_faults.json`` (with a history list).

Run standalone:

    PYTHONPATH=src python benchmarks/bench_faults.py

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py -s -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.formats import resolve
from repro.inject.campaign import (
    CampaignConfig,
    bit_seeds,
    run_campaign_shard,
    run_field_trials,
)
from repro.inject.results import TrialRecords
from repro.metrics.summary import SummaryStats

OUT_PATH = Path(__file__).resolve().parent / "BENCH_faults.json"

TRIALS_PER_BIT = int(os.environ.get("REPRO_BENCH_FAULT_TRIALS", "128"))
FIELD_SIZE = 1 << int(os.environ.get("REPRO_BENCH_FIELD_POW2", "13"))
TARGET = os.environ.get("REPRO_BENCH_FAULT_TARGET", "posit32")
SEED = 2023

#: One canonical spec per grammar production, widest-impact parameters
#: kept fixed so the trajectory stays comparable across commits.
FAULT_SPECS = ("single", "adjacent(2)", "random(2)", "burst(4,0.5)", "stuckat(31,1)")


def _field() -> np.ndarray:
    rng = np.random.default_rng(SEED)
    return np.concatenate([
        rng.normal(50.0, 20.0, FIELD_SIZE // 2),
        rng.lognormal(-2, 2, FIELD_SIZE // 2),
    ]).astype(np.float32)


def _per_shard(stored, target, baseline, config) -> TrialRecords:
    seeds = bit_seeds(config, target)
    return TrialRecords.concatenate([
        run_campaign_shard(
            stored, target, bit, config.trials_per_bit, seeds[bit], baseline,
            fault_spec=config.fault,
        )
        for bit in config.resolved_bits(target)
    ])


def run_bench() -> dict:
    target = resolve(TARGET)
    stored = target.round_trip(_field())
    baseline = SummaryStats.from_array(stored)
    trials_total = TRIALS_PER_BIT * target.nbits

    # Warm decode tables / JIT state outside every timed region.
    run_field_trials(stored, target, baseline,
                     CampaignConfig(trials_per_bit=2, seed=SEED))

    results = {}
    for spec in FAULT_SPECS:
        config = CampaignConfig(trials_per_bit=TRIALS_PER_BIT, seed=SEED, fault=spec)

        start = time.perf_counter()
        batched = run_field_trials(stored, target, baseline, config)
        batched_s = time.perf_counter() - start

        start = time.perf_counter()
        scalar = _per_shard(stored, target, baseline, config)
        scalar_s = time.perf_counter() - start

        assert batched.to_csv_string() == scalar.to_csv_string(), (
            f"{spec}: batched records diverged from the per-shard path"
        )
        results[spec] = {
            "fault": spec,
            "trials_total": trials_total,
            "per_shard_seconds": round(scalar_s, 4),
            "batched_seconds": round(batched_s, 4),
            "per_shard_trials_per_sec": round(trials_total / scalar_s, 1),
            "batched_trials_per_sec": round(trials_total / batched_s, 1),
            "speedup": round(scalar_s / batched_s, 2),
        }
    single = results["single"]["batched_trials_per_sec"]
    for row in results.values():
        row["relative_to_single"] = round(row["batched_trials_per_sec"] / single, 3)
    return {
        "campaign": {
            "target": TARGET,
            "field_size": FIELD_SIZE,
            "trials_per_bit": TRIALS_PER_BIT,
            "faults": list(FAULT_SPECS),
            "seed": SEED,
        },
        "results": results,
    }


def test_fault_model_throughput():
    payload = run_bench()
    history = []
    if OUT_PATH.exists():
        previous = json.loads(OUT_PATH.read_text(encoding="utf-8"))
        history = previous.get("history", [])
        history.append({
            spec: row["relative_to_single"]
            for spec, row in previous["results"].items()
        })
    payload["history"] = history[-20:]
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    for row in payload["results"].values():
        print(
            f"{row['fault']:<14s} batched {row['batched_trials_per_sec']:>10.1f} trials/s   "
            f"speedup {row['speedup']:6.2f}x   "
            f"vs single {row['relative_to_single']:5.3f}"
        )
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    test_fault_model_throughput()
