"""Bench: regime-population analysis (Section 5.4.3)."""

from benchmarks.conftest import run_and_verify


def test_ext_population(benchmark, bench_params):
    output = benchmark(run_and_verify, "ext-population", bench_params)
    print()
    print(output.render())
