"""Bench: regenerate Figure 16 (fraction-bit error trend)."""

from benchmarks.conftest import run_and_verify


def test_fig16(benchmark, bench_params):
    output = benchmark(run_and_verify, "fig16", bench_params)
    print()
    print(output.render())
