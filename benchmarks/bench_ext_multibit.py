"""Bench: multi-bit flip campaigns (future-work extension)."""

from benchmarks.conftest import run_and_verify


def test_ext_multibit(benchmark, bench_params):
    output = benchmark(run_and_verify, "ext-multibit", bench_params)
    print()
    print(output.render())
