"""Bench: regenerate Figure 10 (posit vs IEEE mean relative error/bit)."""

from benchmarks.conftest import run_and_verify


def test_fig10(benchmark, bench_params):
    output = benchmark(run_and_verify, "fig10", bench_params)
    print()
    print(output.render())
