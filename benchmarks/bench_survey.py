"""Bench: regenerate the Section 5.3 all-field resiliency survey."""

from benchmarks.conftest import run_and_verify


def test_survey(benchmark, bench_params):
    output = benchmark(run_and_verify, "survey", bench_params)
    print()
    print(output.render())
