"""Ablation benches for the design choices DESIGN.md calls out.

* trials-per-bit: campaign cost scales linearly; the paper's 313 is the
  accuracy/cost point ext-theory quantifies;
* parallel workers: scatter/gather speedup of the per-bit sharding;
* vectorized vs scalar trial execution: the NumPy-hot-path design;
* fast vs exact posit arithmetic: why the float64 path is the default.
"""

import numpy as np
import pytest

from repro.datasets.registry import get as get_preset
from repro.inject.campaign import CampaignConfig, run_campaign
from repro.formats import resolve
from repro.inject.trial import run_bit_trials, run_single_trial
from repro.metrics.summary import SummaryStats
from repro.posit.arithmetic import multiply
from repro.posit.config import POSIT16

DATA = get_preset("hurricane/pf48").generate(seed=0, size=1 << 14)


@pytest.mark.parametrize("trials", [39, 156, 313])
def test_ablation_trials_per_bit(benchmark, trials):
    config = CampaignConfig(trials_per_bit=trials, seed=0)
    result = benchmark.pedantic(
        run_campaign, args=(DATA, "posit32", config), rounds=3, iterations=1
    )
    assert result.trial_count == trials * 32


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_ablation_parallel_workers(benchmark, workers):
    config = CampaignConfig(trials_per_bit=128, seed=0)
    result = benchmark.pedantic(
        run_campaign,
        args=(DATA, "posit32", config),
        kwargs={"jobs": workers},
        rounds=3,
        iterations=1,
    )
    assert result.trial_count == 128 * 32


def test_ablation_vectorized_trials(benchmark):
    target = resolve("posit32")
    stored = target.round_trip(DATA)
    baseline = SummaryStats.from_array(stored)
    indices = np.random.default_rng(0).integers(0, stored.size, 313)

    records = benchmark(run_bit_trials, stored, indices, 28, target, baseline)
    assert len(records) == 313


def test_ablation_scalar_trials(benchmark):
    target = resolve("posit32")
    stored = target.round_trip(DATA)
    indices = np.random.default_rng(0).integers(0, stored.size, 313)

    def scalar_loop():
        return [run_single_trial(stored, int(i), 28, target) for i in indices]

    results = benchmark.pedantic(scalar_loop, rounds=3, iterations=1)
    assert len(results) == 313


def test_ablation_fast_arithmetic(benchmark, rng=np.random.default_rng(1)):
    a = rng.integers(0, 1 << 16, 512, dtype=np.uint64).astype(np.uint16)
    b = rng.integers(0, 1 << 16, 512, dtype=np.uint64).astype(np.uint16)
    result = benchmark(multiply, a, b, POSIT16)
    assert len(np.asarray(result)) == 512


def test_ablation_exact_arithmetic(benchmark, rng=np.random.default_rng(1)):
    a = rng.integers(0, 1 << 16, 512, dtype=np.uint64).astype(np.uint16)
    b = rng.integers(0, 1 << 16, 512, dtype=np.uint64).astype(np.uint16)

    result = benchmark.pedantic(
        multiply, args=(a, b, POSIT16), kwargs={"mode": "exact"},
        rounds=2, iterations=1,
    )
    assert len(np.asarray(result)) == 512
