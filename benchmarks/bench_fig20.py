"""Bench: regenerate Figures 19-21 (sign-bit error vs regime size)."""

from benchmarks.conftest import run_and_verify


def test_fig20(benchmark, bench_params):
    output = benchmark(run_and_verify, "fig20", bench_params)
    print()
    print(output.render())
