"""Bench: regenerate Figures 17-18 (exponent continues the fraction trend)."""

from benchmarks.conftest import run_and_verify


def test_fig18(benchmark, bench_params):
    output = benchmark(run_and_verify, "fig18", bench_params)
    print()
    print(output.render())
