"""Bench: application-level workloads (Jacobi solve, quire dot)."""

import numpy as np

from repro.apps import PoissonProblem, fused_posit_dot, jacobi_solve


def test_jacobi_posit32(benchmark):
    problem = PoissonProblem(grid=16)
    result = benchmark(jacobi_solve, problem, "posit32", 400, 1e-6)
    assert result.iterations > 0


def test_jacobi_ieee32(benchmark):
    problem = PoissonProblem(grid=16)
    result = benchmark(jacobi_solve, problem, "ieee32", 400, 1e-6)
    assert result.iterations > 0


def test_quire_dot(benchmark):
    rng = np.random.default_rng(0)
    a = rng.normal(0, 100, 256)
    b = rng.normal(0, 100, 256)
    result = benchmark(fused_posit_dot, a, b, "posit32")
    assert np.isfinite(result.value)
