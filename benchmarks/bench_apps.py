"""Bench: application-level workloads (solver campaigns, Jacobi, quire dot).

``run_bench`` times the app-campaign hot path — faulty CG/Jacobi solve
replays through :func:`repro.apps.campaign.run_app_shard` — per app and
number format, and writes ``BENCH_apps.json`` (with a history list).
The machine-independent signal is ``relative_to_ieee32``: how much the
software posit codec costs versus the IEEE path for the same solve; the
committed value is the regression floor for the app-campaign CI job.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_apps.py

or under pytest (the ``benchmark``-fixture microbenches need
pytest-benchmark):

    PYTHONPATH=src python -m pytest benchmarks/bench_apps.py -s -q -k throughput
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.apps import PoissonProblem, fused_posit_dot, jacobi_solve
from repro.apps.campaign import (
    AppCampaignConfig,
    AppTrialRecords,
    _clean_solve,
    cell_seeds,
    run_app_shard,
)
from repro.formats import resolve

OUT_PATH = Path(__file__).resolve().parent / "BENCH_apps.json"

GRID = int(os.environ.get("REPRO_BENCH_APP_GRID", "10"))
TRIALS_PER_CELL = int(os.environ.get("REPRO_BENCH_APP_TRIALS", "2"))
SEED = 2023
INJECT_AT = (3,)
#: Every 8th bit: fraction, exponent, regime, and sign territory without
#: paying for a full 32-bit sweep on every commit.
BITS = (0, 8, 16, 24)
APPS = ("cg", "jacobi")
FORMATS = ("posit32", "ieee32")


def run_bench() -> dict:
    results = {}
    for app in APPS:
        results[app] = {}
        for fmt in FORMATS:
            config = AppCampaignConfig(
                app=app, grid=GRID, iterations=INJECT_AT,
                trials_per_cell=TRIALS_PER_CELL, bits=BITS, seed=SEED,
            )
            target = resolve(fmt)
            # Warm codec tables and the memoized clean solve so the
            # timed region is purely faulty solve replays.
            _clean_solve(config, target)
            seeds = cell_seeds(config, target)
            cells = config.cells(target)

            start = time.perf_counter()
            records = AppTrialRecords.concatenate([
                run_app_shard(config, target, cell, TRIALS_PER_CELL, seeds[cell])
                for cell in cells
            ])
            elapsed = time.perf_counter() - start

            solves = len(records)
            results[app][fmt] = {
                "app": app,
                "target": fmt,
                "solves": solves,
                "seconds": round(elapsed, 4),
                "solves_per_sec": round(solves / elapsed, 2),
            }
        ieee = results[app]["ieee32"]["solves_per_sec"]
        for row in results[app].values():
            row["relative_to_ieee32"] = round(row["solves_per_sec"] / ieee, 3)
    return {
        "campaign": {
            "grid": GRID,
            "iterations": list(INJECT_AT),
            "trials_per_cell": TRIALS_PER_CELL,
            "bits": list(BITS),
            "apps": list(APPS),
            "formats": list(FORMATS),
            "seed": SEED,
        },
        "results": results,
    }


def test_app_solve_throughput():
    payload = run_bench()
    history = []
    if OUT_PATH.exists():
        previous = json.loads(OUT_PATH.read_text(encoding="utf-8"))
        history = previous.get("history", [])
        history.append({
            app: {fmt: row["relative_to_ieee32"] for fmt, row in rows.items()}
            for app, rows in previous["results"].items()
        })
    payload["history"] = history[-20:]
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    for app, rows in payload["results"].items():
        for row in rows.values():
            print(
                f"{app:<7s} {row['target']:<8s} "
                f"{row['solves_per_sec']:>8.2f} solves/s   "
                f"vs ieee32 {row['relative_to_ieee32']:6.3f}"
            )
    print(f"wrote {OUT_PATH}")


def test_jacobi_posit32(benchmark):
    problem = PoissonProblem(grid=16)
    result = benchmark(jacobi_solve, problem, "posit32", 400, 1e-6)
    assert result.iterations > 0


def test_jacobi_ieee32(benchmark):
    problem = PoissonProblem(grid=16)
    result = benchmark(jacobi_solve, problem, "ieee32", 400, 1e-6)
    assert result.iterations > 0


def test_quire_dot(benchmark):
    rng = np.random.default_rng(0)
    a = rng.normal(0, 100, 256)
    b = rng.normal(0, 100, 256)
    result = benchmark(fused_posit_dot, a, b, "posit32")
    assert np.isfinite(result.value)


if __name__ == "__main__":
    test_app_solve_throughput()
