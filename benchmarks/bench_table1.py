"""Bench: regenerate Table 1 (dataset summary)."""

from benchmarks.conftest import run_and_verify


def test_table1(benchmark, bench_params):
    output = benchmark(run_and_verify, "table1", bench_params)
    print()
    print(output.render())
