"""Bench: regenerate Figure 11 (|p| > 1 regime-size stratification)."""

from benchmarks.conftest import run_and_verify


def test_fig11(benchmark, bench_params):
    output = benchmark(run_and_verify, "fig11", bench_params)
    print()
    print(output.render())
