"""Bench: protection-scheme design study (extension)."""

from benchmarks.conftest import run_and_verify


def test_ext_protect(benchmark, bench_params):
    output = benchmark(run_and_verify, "ext-protect", bench_params)
    print()
    print(output.render())
