"""Bench: regenerate the worked numeric examples (Figs. 6/9/12/13/15/19/21)."""

from benchmarks.conftest import run_and_verify


def test_worked_examples(benchmark, bench_params):
    output = benchmark(run_and_verify, "worked", bench_params)
    print()
    print(output.render())
