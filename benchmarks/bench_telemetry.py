"""Telemetry overhead smoke benchmark.

The contract of :mod:`repro.telemetry` is that instrumentation which is
*disabled* (the default) costs almost nothing: each instrumented hot
path pays one ``get_telemetry()`` lookup and one ``enabled`` attribute
read per vectorized batch, then takes the uninstrumented code path.
This bench measures that directly by timing the public (guarded) trial
loop against the private uninstrumented implementation, and prints the
enabled-profiling cost alongside for context.

Run standalone:

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry.py -s -q
"""

import time

import numpy as np
import pytest

from repro.formats import resolve
from repro.inject.faults import SingleBitFlip
from repro.inject.trial import _run_bit_trials, run_bit_trials
from repro.metrics.summary import SummaryStats
from repro.telemetry import DISABLED, Telemetry, telemetry_scope

#: Trials per timed batch — large enough that the per-batch guard cost
#: is amortized the way real campaigns amortize it.
TRIALS = 4096

#: Disabled telemetry must cost less than this fraction of the
#: uninstrumented loop (the PR's acceptance criterion is 5%).
MAX_DISABLED_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def trial_args():
    rng = np.random.default_rng(2023)
    data = rng.normal(loc=50.0, scale=10.0, size=1 << 14)
    target = resolve("posit32")
    stored = target.round_trip(data)
    baseline = SummaryStats.from_array(stored)
    indices = np.random.default_rng(7).integers(0, stored.size, size=TRIALS)
    return stored, indices, target, baseline


def _best_of(fn, repeats=7):
    """Minimum wall time over several runs (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_overhead_under_threshold(trial_args):
    stored, indices, target, baseline = trial_args

    fault = SingleBitFlip(20)

    def uninstrumented():
        _run_bit_trials(
            stored, indices, 20, target, baseline, np.random.default_rng(0), fault
        )

    def guarded_disabled():
        with telemetry_scope(DISABLED):
            run_bit_trials(stored, indices, 20, target, baseline)

    def enabled():
        with telemetry_scope(Telemetry()):
            run_bit_trials(stored, indices, 20, target, baseline)

    # warm all caches (LUTs, round-trip memo) before timing anything
    uninstrumented()

    base = _best_of(uninstrumented)
    disabled = _best_of(guarded_disabled)
    profiled = _best_of(enabled)

    overhead = disabled / base - 1.0
    print(
        f"\n[bench_telemetry] {TRIALS} trials/batch: "
        f"uninstrumented {base * 1e3:.2f}ms, "
        f"disabled {disabled * 1e3:.2f}ms ({overhead:+.2%}), "
        f"profiled {profiled * 1e3:.2f}ms ({profiled / base - 1.0:+.2%})"
    )
    # allow a small absolute floor so sub-ms timer jitter cannot fail
    # the relative check on very fast machines
    assert disabled - base < max(MAX_DISABLED_OVERHEAD * base, 200e-6), (
        f"disabled telemetry overhead {overhead:.2%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%}"
    )


def test_trial_loop_disabled(benchmark, trial_args):
    stored, indices, target, baseline = trial_args
    run_bit_trials(stored, indices, 20, target, baseline)  # warm caches

    def loop():
        with telemetry_scope(DISABLED):
            return run_bit_trials(stored, indices, 20, target, baseline)

    records = benchmark(loop)
    assert len(records) == TRIALS


def test_trial_loop_profiled(benchmark, trial_args):
    stored, indices, target, baseline = trial_args
    collector = Telemetry()

    def loop():
        with telemetry_scope(collector):
            return run_bit_trials(stored, indices, 20, target, baseline)

    records = benchmark(loop)
    assert len(records) == TRIALS
    assert collector.snapshot().counters["inject.trials"] >= TRIALS


def test_span_enter_exit_cost(benchmark):
    collector = Telemetry()

    def spin():
        with collector.span("bench.span"):
            pass

    benchmark(spin)
