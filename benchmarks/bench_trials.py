"""Trial-engine throughput: per-bit scalar codec loop vs batched pipeline.

Replays the paper's campaign shape — 16 dataset fields, 313 trials per
bit position, every bit of a 32-bit format — through two
implementations of the inner loop:

* ``legacy``: the pre-batching algorithm, inlined here verbatim — each
  bit re-encodes its selected elements with the scalar-auto (direct)
  codec, decodes original and faulty separately, and classifies per
  shard;
* ``batched``: :func:`repro.inject.campaign.run_field_trials` — the
  field is encoded once, and all bits' trials are gathered, flipped,
  decoded (composed tables), classified, and scored in whole-array
  passes.

Both paths' records are asserted byte-identical through the CSV writer
before any timing is reported.  Results land in ``BENCH_trials.json``
(with a history list so CI can track the trajectory); the committed
speedup is the regression baseline for the benchmark-smoke CI job.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_trials.py

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_trials.py -s -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.formats import resolve
from repro.inject.campaign import CampaignConfig, bit_seeds, run_field_trials
from repro.inject.results import TrialRecords
from repro.metrics.fast import vectorized_single_fault
from repro.metrics.summary import SummaryStats

OUT_PATH = Path(__file__).resolve().parent / "BENCH_trials.json"

#: The paper's campaign shape: 16 CESM fields x 313 trials per bit.
#: CI caps the shape through the env knobs to bound job time; capped
#: runs keep the fields/targets so the speedup ratio stays comparable.
N_FIELDS = int(os.environ.get("REPRO_BENCH_FIELDS", "16"))
TRIALS_PER_BIT = int(os.environ.get("REPRO_BENCH_TRIALS", "313"))
FIELD_SIZE = 1 << int(os.environ.get("REPRO_BENCH_FIELD_POW2", "13"))
TARGETS = ("posit32", "ieee32")
SEED = 2023


def _fields() -> list[np.ndarray]:
    rng = np.random.default_rng(SEED)
    return [
        np.concatenate([
            rng.normal(50.0, 20.0, FIELD_SIZE // 2),
            rng.lognormal(-2, 2, FIELD_SIZE // 2),
        ]).astype(np.float32)
        for _ in range(N_FIELDS)
    ]


def _legacy_field_trials(stored, target, baseline, config) -> TrialRecords:
    """The pre-batching inner loop, reproduced exactly.

    Per bit: draw indices, gather, encode the selection, decode original
    and flipped patterns, classify, score, fold summary stats — all with
    the scalar-auto codec (direct for 32-bit formats).
    """
    seeds = bit_seeds(config, target)
    parts = []
    for bit in config.resolved_bits(target):
        rng = np.random.default_rng(seeds[bit])
        indices = rng.integers(0, stored.size, size=config.trials_per_bit)
        selected = np.asarray(stored).reshape(-1)[indices]
        bits = target.to_bits(selected)
        originals = target.from_bits(bits)
        mask = np.ones((), dtype=bits.dtype) << np.asarray(bit, dtype=bits.dtype)
        faulty = target.from_bits(bits ^ mask)
        fields = target.classify_bits(bits, bit)
        regimes = target.regime_sizes(bits)
        metrics = vectorized_single_fault(baseline, originals, faulty)
        count = baseline.count
        with np.errstate(over="ignore", invalid="ignore"):
            new_total = baseline.total - originals + faulty
            faulty_mean = new_total / count
            old_dev = originals - baseline.center
            new_dev = faulty - baseline.center
            new_centered_sq = baseline.centered_sq - old_dev * old_dev + new_dev * new_dev
            mean_shift = faulty_mean - baseline.center
            variance = np.maximum(new_centered_sq / count - mean_shift * mean_shift, 0.0)
            faulty_std = np.sqrt(variance)
        surviving_max = np.where(originals == baseline.maximum, baseline.maximum2, baseline.maximum)
        surviving_min = np.where(originals == baseline.minimum, baseline.minimum2, baseline.minimum)
        faulty_max = np.fmax(surviving_max, faulty)
        faulty_min = np.fmin(surviving_min, faulty)
        n = len(indices)
        parts.append(TrialRecords(
            trial=np.arange(n, dtype=np.int64),
            bit=np.full(n, bit, dtype=np.int64),
            index=indices.astype(np.int64),
            original=originals.astype(np.float64),
            faulty=faulty.astype(np.float64),
            field=np.asarray(fields, dtype=np.int64),
            regime_k=np.asarray(regimes, dtype=np.int64),
            abs_err=metrics.max_abs_err,
            rel_err=metrics.max_rel_err,
            range_rel_err=metrics.range_rel_err,
            mse=metrics.mse,
            faulty_mean=faulty_mean.astype(np.float64),
            faulty_std=faulty_std.astype(np.float64),
            faulty_max=faulty_max.astype(np.float64),
            faulty_min=faulty_min.astype(np.float64),
            non_finite=metrics.non_finite,
        ))
    return TrialRecords.concatenate(parts)


def run_bench() -> dict:
    fields = _fields()
    config = CampaignConfig(trials_per_bit=TRIALS_PER_BIT, seed=SEED)
    results = {}
    for name in TARGETS:
        target = resolve(name)
        legacy_codec = resolve(name, backend="direct")
        prepared = []
        for data in fields:
            stored = target.round_trip(data)
            prepared.append((stored, SummaryStats.from_array(stored)))
        trials_total = N_FIELDS * TRIALS_PER_BIT * target.nbits

        # Warm one-time process state (composed decode tables, JIT
        # compilation when available) outside the timed region; a real
        # campaign amortizes it over every field and every run.
        run_field_trials(prepared[0][0], target, prepared[0][1], config)

        start = time.perf_counter()
        batched = [
            run_field_trials(stored, target, baseline, config)
            for stored, baseline in prepared
        ]
        batched_s = time.perf_counter() - start

        start = time.perf_counter()
        legacy = [
            _legacy_field_trials(stored, legacy_codec, baseline, config)
            for stored, baseline in prepared
        ]
        legacy_s = time.perf_counter() - start

        for i, (new, old) in enumerate(zip(batched, legacy)):
            assert new.to_csv_string() == old.to_csv_string(), (
                f"{name} field {i}: batched records diverged from legacy"
            )
        results[name] = {
            "target": name,
            "trials_total": trials_total,
            "legacy_seconds": round(legacy_s, 4),
            "batched_seconds": round(batched_s, 4),
            "legacy_trials_per_sec": round(trials_total / legacy_s, 1),
            "batched_trials_per_sec": round(trials_total / batched_s, 1),
            "speedup": round(legacy_s / batched_s, 2),
        }
    legacy_total = sum(row["legacy_seconds"] for row in results.values())
    batched_total = sum(row["batched_seconds"] for row in results.values())
    trials_all = sum(row["trials_total"] for row in results.values())
    return {
        "campaign": {
            "fields": N_FIELDS,
            "field_size": FIELD_SIZE,
            "trials_per_bit": TRIALS_PER_BIT,
            "targets": list(TARGETS),
            "seed": SEED,
        },
        "results": results,
        "combined": {
            "trials_total": trials_all,
            "legacy_seconds": round(legacy_total, 4),
            "batched_seconds": round(batched_total, 4),
            "legacy_trials_per_sec": round(trials_all / legacy_total, 1),
            "batched_trials_per_sec": round(trials_all / batched_total, 1),
            "speedup": round(legacy_total / batched_total, 2),
        },
    }


def test_trial_throughput():
    payload = run_bench()
    history = []
    if OUT_PATH.exists():
        previous = json.loads(OUT_PATH.read_text(encoding="utf-8"))
        history = previous.get("history", [])
        history.append({
            name: row["speedup"] for name, row in previous["results"].items()
        })
    payload["history"] = history[-20:]
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    for row in payload["results"].values():
        print(
            f"{row['target']:<8s} legacy {row['legacy_trials_per_sec']:>10.1f} trials/s   "
            f"batched {row['batched_trials_per_sec']:>10.1f} trials/s   "
            f"speedup {row['speedup']:5.2f}x"
        )
    combined = payload["combined"]
    print(
        f"{'combined':<8s} legacy {combined['legacy_trials_per_sec']:>10.1f} trials/s   "
        f"batched {combined['batched_trials_per_sec']:>10.1f} trials/s   "
        f"speedup {combined['speedup']:5.2f}x"
    )
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    test_trial_throughput()
