"""Bench: regenerate Figure 14 + Section 5.4.2 edge case (|p| < 1)."""

from benchmarks.conftest import run_and_verify


def test_fig14(benchmark, bench_params):
    output = benchmark(run_and_verify, "fig14", bench_params)
    print()
    print(output.render())
