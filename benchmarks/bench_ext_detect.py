"""Bench: impact-driven SDC detection study (extension)."""

from benchmarks.conftest import run_and_verify


def test_ext_detect(benchmark, bench_params):
    output = benchmark.pedantic(
        run_and_verify, args=("ext-detect", bench_params), rounds=1, iterations=1
    )
    print()
    print(output.render())
