"""O(1) metrics for single-element faults.

Every campaign trial changes exactly one element, so each reduction in
:mod:`repro.metrics.pointwise` collapses to a function of (old value, new
value, dataset baseline).  The campaign runs hundreds of thousands of
trials; recomputing full-array reductions per trial would dominate the
runtime for the paper's dataset sizes (Nyx is 512^3 elements), and the
paper itself notes only one element is ever faulty.  Tests assert this
fast path matches :func:`repro.metrics.pointwise.compare_arrays` exactly.

The batched form returns a typed :class:`FaultMetrics` — one float64
array per metric, field names checked at construction instead of by
string key — shared by the trial engine and
:class:`~repro.inject.results.TrialRecords`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields

import numpy as np

from repro.metrics.pointwise import ErrorMetrics, scalar_relative_error
from repro.metrics.summary import SummaryStats
from repro.telemetry import get_telemetry


@dataclass(frozen=True)
class FaultMetrics:
    """Per-trial error metrics, one float64 array per metric.

    The typed counterpart of :class:`ErrorMetrics` for batched trials:
    every attribute is an array over the trial axis (any shape, all
    equal), except :attr:`non_finite` which is boolean.  Construction
    validates that every field is filled and equally shaped, so a
    missing or misnamed metric fails at the producer instead of as a
    ``KeyError`` deep inside CSV assembly.
    """

    max_abs_err: np.ndarray
    mean_abs_err: np.ndarray
    #: Pointwise |old-new|/|old|; NaN against a zero original, 0.0 when
    #: both are zero (see :func:`repro.metrics.pointwise.scalar_relative_error`).
    max_rel_err: np.ndarray
    #: QCAT's value-range relative error: |old-new| / baseline range.
    range_rel_err: np.ndarray
    mse: np.ndarray
    rmse: np.ndarray
    nrmse: np.ndarray
    psnr_db: np.ndarray
    l2_err: np.ndarray
    linf_err: np.ndarray
    #: Whether the faulty value is NaN/Inf (boolean array).
    non_finite: np.ndarray

    def __post_init__(self):
        shape = np.shape(self.max_abs_err)
        for field in dataclass_fields(self):
            value = getattr(self, field.name)
            if not isinstance(value, np.ndarray):
                raise TypeError(f"FaultMetrics.{field.name} must be an ndarray")
            if value.shape != shape:
                raise ValueError(
                    f"FaultMetrics.{field.name} has shape {value.shape}, "
                    f"expected {shape}"
                )

    @property
    def shape(self) -> tuple:
        return self.max_abs_err.shape

    def reshape(self, shape) -> FaultMetrics:
        """Same metrics viewed under a different trial-axis shape."""
        return FaultMetrics(
            **{
                field.name: getattr(self, field.name).reshape(shape)
                for field in dataclass_fields(self)
            }
        )

    def as_dict(self) -> dict[str, np.ndarray]:
        """Name -> array view (CSV column assembly, legacy consumers)."""
        return {field.name: getattr(self, field.name) for field in dataclass_fields(self)}


def single_fault_metrics(
    baseline: SummaryStats,
    old_value: float,
    new_value: float,
) -> ErrorMetrics:
    """Metrics of (original, original-with-one-replacement).

    Parameters
    ----------
    baseline:
        Summary of the original array.
    old_value / new_value:
        The element before and after the fault.
    """
    count = baseline.count
    diff = float(old_value) - float(new_value)
    abs_diff = abs(diff)
    has_non_finite = not np.isfinite(new_value)

    max_abs = abs_diff
    mean_abs = abs_diff / count

    max_pointwise = scalar_relative_error(old_value, new_value)

    value_range = baseline.value_range
    if value_range > 0:
        range_rel = max_abs / value_range
    else:
        range_rel = 0.0 if max_abs == 0 else float("inf")

    mse = (diff * diff) / count
    rmse = float(np.sqrt(mse))
    if value_range > 0:
        nrmse = rmse / value_range
    else:
        nrmse = 0.0 if rmse == 0 else float("inf")
    if mse > 0 and value_range > 0:
        psnr = float(20.0 * np.log10(value_range) - 10.0 * np.log10(mse))
    else:
        psnr = float("inf")

    l2 = abs_diff
    return ErrorMetrics(
        max_absolute_error=max_abs,
        mean_absolute_error=mean_abs,
        max_pointwise_relative=max_pointwise,
        value_range_relative=range_rel,
        mean_squared_error=mse,
        root_mean_squared_error=rmse,
        normalized_rmse=nrmse,
        psnr_db=psnr,
        l2_norm_error=l2,
        linf_norm_error=max_abs,
        has_non_finite=has_non_finite,
    )


def vectorized_single_fault(
    baseline: SummaryStats,
    old_values,
    new_values,
) -> FaultMetrics:
    """Batched form of :func:`single_fault_metrics` over trial arrays.

    Returns a :class:`FaultMetrics` of float64 arrays, one entry per
    trial (any array shape — the batched pipeline passes whole
    ``(bits, trials)`` blocks).  This is the hot path of the campaign:
    all trials are evaluated in a handful of NumPy expressions.
    """
    old = np.asarray(old_values, dtype=np.float64)
    new = np.asarray(new_values, dtype=np.float64)
    if old.shape != new.shape:
        raise ValueError(f"shape mismatch: {old.shape} vs {new.shape}")

    telemetry = get_telemetry()
    if not telemetry.enabled:
        return _vectorized_single_fault(baseline, old, new)
    with telemetry.span("metrics.fast"):
        metrics = _vectorized_single_fault(baseline, old, new)
    telemetry.count("metrics.trials_evaluated", old.size)
    return metrics


def _vectorized_single_fault(
    baseline: SummaryStats,
    old: np.ndarray,
    new: np.ndarray,
) -> FaultMetrics:
    count = baseline.count
    # Faulty values can be astronomically large (an IEEE exponent-MSB
    # flip scales by up to 2**1024), so products and quotients here may
    # legitimately overflow to inf; that is the intended semantics.
    with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
        diff = old - new
        abs_diff = np.abs(diff)

        # Convention: relative error against a zero original is undefined
        # (NaN), whereas +Inf is reserved for true overflow of a huge but
        # well-defined ratio.  Aggregations rely on this distinction.
        pointwise = abs_diff / np.abs(old)
        pointwise = np.where((old == 0) & (new == 0), 0.0, pointwise)
        pointwise = np.where((old == 0) & (new != 0), np.nan, pointwise)

        value_range = baseline.value_range
        if value_range > 0:
            range_rel = abs_diff / value_range
        else:
            range_rel = np.where(abs_diff == 0, 0.0, np.inf)

        mse = (diff * diff) / count
        rmse = np.sqrt(mse)
    with np.errstate(divide="ignore", invalid="ignore"):
        psnr = np.where(
            (mse > 0) & (value_range > 0),
            20.0 * np.log10(max(value_range, np.finfo(np.float64).tiny))
            - 10.0 * np.log10(np.where(mse > 0, mse, 1.0)),
            np.inf,
        )
    return FaultMetrics(
        max_abs_err=abs_diff,
        mean_abs_err=abs_diff / count,
        max_rel_err=pointwise,
        range_rel_err=range_rel,
        mse=mse,
        rmse=rmse,
        nrmse=rmse / value_range if value_range > 0 else np.where(rmse == 0, 0.0, np.inf),
        psnr_db=psnr,
        l2_err=abs_diff,
        linf_err=abs_diff,
        non_finite=~np.isfinite(new),
    )
