"""Mean Relative Error Distance (MRED).

The prior posit-resiliency study the paper cites (Alouani et al., 2021)
reports MRED over a fault-injection campaign; providing it here lets the
survey experiment reproduce that comparison too.  MRED is the mean of the
relative error distance |orig - faulty| / |orig| over all trials, with a
configurable policy for trials whose original value is zero and for
non-finite faulty values.
"""

from __future__ import annotations

import numpy as np


def relative_error_distance(original, faulty) -> np.ndarray:
    """Per-trial |orig - faulty| / |orig| (NaN where undefined)."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(faulty, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        red = np.abs(a - b) / np.abs(a)
    red = np.where((a == 0) & (b == 0), 0.0, red)
    red = np.where((a == 0) & (b != 0), np.nan, red)
    return red


def mred(original, faulty, skip_non_finite: bool = True) -> float:
    """Mean relative error distance over a set of trials.

    Parameters
    ----------
    skip_non_finite:
        When True (default, matching the campaign's aggregation), trials
        whose distance is NaN/Inf — zero originals hit by a fault, NaR or
        Inf faulty values — are excluded from the mean.  When False, any
        such trial makes the result non-finite.
    """
    distances = relative_error_distance(original, faulty)
    if skip_non_finite:
        finite = distances[np.isfinite(distances)]
        return float(np.mean(finite)) if finite.size else float("nan")
    return float(np.mean(distances))
