"""Streaming (single-pass, mergeable) statistics.

Suite-scale studies produce millions of trials across many shards; these
accumulators compute mean/variance/extremes in one pass with Welford's
algorithm and merge across shards (Chan et al.'s parallel variance
formula) — the reduction pattern the mpi4py guide's Allreduce idiom
maps onto.  NaN values are counted separately and excluded from the
moments, matching the campaign's finite-only aggregation policy; +/-Inf
values are tracked in the extremes but also excluded from the moments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class StreamingStats:
    """Mergeable one-pass statistics accumulator."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0  # sum of squared deviations
    minimum: float = float("inf")
    maximum: float = float("-inf")
    non_finite_count: int = 0

    def add(self, values) -> "StreamingStats":
        """Accumulate a batch of values (vectorized Welford update)."""
        array = np.asarray(values, dtype=np.float64).reshape(-1)
        finite = array[np.isfinite(array)]
        self.non_finite_count += int(array.size - finite.size)
        infinities = array[np.isinf(array)]
        if infinities.size:
            self.minimum = min(self.minimum, float(np.min(infinities)))
            self.maximum = max(self.maximum, float(np.max(infinities)))
        if finite.size == 0:
            return self
        batch_count = int(finite.size)
        batch_mean = float(np.mean(finite))
        deviations = finite - batch_mean
        batch_m2 = float(np.sum(deviations * deviations))

        merged = self.count + batch_count
        delta = batch_mean - self.mean
        self.m2 += batch_m2 + delta * delta * self.count * batch_count / merged
        self.mean += delta * batch_count / merged
        self.count = merged
        self.minimum = min(self.minimum, float(np.min(finite)))
        self.maximum = max(self.maximum, float(np.max(finite)))
        return self

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Combine with another accumulator (shard reduction)."""
        if other.count:
            merged = self.count + other.count
            delta = other.mean - self.mean
            self.m2 += other.m2 + delta * delta * self.count * other.count / merged
            self.mean += delta * other.count / merged
            self.count = merged
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.non_finite_count += other.non_finite_count
        return self

    @property
    def variance(self) -> float:
        """Population variance of the finite values seen."""
        return self.m2 / self.count if self.count else float("nan")

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance)) if self.count else float("nan")

    def as_row(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean if self.count else float("nan"),
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "non_finite": self.non_finite_count,
        }


@dataclass
class PerBitStreaming:
    """One StreamingStats per bit position — the suite-scale Fig. 10."""

    nbits: int
    stats: list[StreamingStats] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.stats:
            self.stats = [StreamingStats() for _ in range(self.nbits)]
        if len(self.stats) != self.nbits:
            raise ValueError("stats length must equal nbits")

    def add_records(self, records) -> "PerBitStreaming":
        """Fold a TrialRecords shard into the per-bit accumulators."""
        for b in range(self.nbits):
            mask = records.bit == b
            if np.any(mask):
                self.stats[b].add(records.rel_err[mask])
        return self

    def merge(self, other: "PerBitStreaming") -> "PerBitStreaming":
        if other.nbits != self.nbits:
            raise ValueError("cannot merge accumulators of different widths")
        for mine, theirs in zip(self.stats, other.stats):
            mine.merge(theirs)
        return self

    def mean_curve(self) -> np.ndarray:
        """Finite-mean relative error per bit (the Fig. 10 series)."""
        return np.array(
            [s.mean if s.count else np.nan for s in self.stats]
        )
