"""QCAT-equivalent error metrics and summary statistics."""

from repro.metrics.fast import FaultMetrics, single_fault_metrics, vectorized_single_fault
from repro.metrics.mred import mred, relative_error_distance
from repro.metrics.pointwise import (
    ErrorMetrics,
    absolute_error,
    compare_arrays,
    pointwise_relative_error,
    scalar_relative_error,
)
from repro.metrics.streaming import PerBitStreaming, StreamingStats
from repro.metrics.summary import SummaryStats

__all__ = [
    "ErrorMetrics",
    "FaultMetrics",
    "PerBitStreaming",
    "StreamingStats",
    "SummaryStats",
    "absolute_error",
    "compare_arrays",
    "mred",
    "pointwise_relative_error",
    "relative_error_distance",
    "scalar_relative_error",
    "single_fault_metrics",
    "vectorized_single_fault",
]
