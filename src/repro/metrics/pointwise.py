"""QCAT-equivalent error metrics between an original and a faulty array.

The paper applies the Quick Compression Analysis Toolkit to the
(original, faulty) pair after each trial and logs absolute error,
relative error, mean squared error, and norm error.  This module is the
pure-NumPy port of those reductions; :mod:`repro.metrics.fast` provides
the O(1) single-fault shortcut and the tests assert both agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ErrorMetrics:
    """Error reductions between two equally-shaped arrays.

    ``NaN``/``Inf`` in the faulty data (an IEEE flip landing in the
    special-value space, or a posit flip landing on NaR) make most of
    these infinite/NaN; campaigns record that as a catastrophic outcome
    via :attr:`has_non_finite` and analyze those trials separately.
    """

    max_absolute_error: float
    mean_absolute_error: float
    #: Pointwise relative error |a-b|/|a| maximized over elements with a != 0.
    max_pointwise_relative: float
    #: QCAT's value-range relative error: max|a-b| / (max(a) - min(a)).
    value_range_relative: float
    mean_squared_error: float
    root_mean_squared_error: float
    normalized_rmse: float
    psnr_db: float
    l2_norm_error: float
    linf_norm_error: float
    has_non_finite: bool

    def as_row(self) -> dict[str, float]:
        """Flat dict for CSV logging."""
        return {
            "max_abs_err": self.max_absolute_error,
            "mean_abs_err": self.mean_absolute_error,
            "max_rel_err": self.max_pointwise_relative,
            "range_rel_err": self.value_range_relative,
            "mse": self.mean_squared_error,
            "rmse": self.root_mean_squared_error,
            "nrmse": self.normalized_rmse,
            "psnr_db": self.psnr_db,
            "l2_err": self.l2_norm_error,
            "linf_err": self.linf_norm_error,
            "non_finite": float(self.has_non_finite),
        }


def compare_arrays(original, faulty) -> ErrorMetrics:
    """Full-array metric computation (the reference implementation)."""
    a = np.asarray(original, dtype=np.float64).reshape(-1)
    b = np.asarray(faulty, dtype=np.float64).reshape(-1)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("cannot compare empty arrays")

    diff = a - b
    abs_diff = np.abs(diff)
    has_non_finite = bool(np.any(~np.isfinite(b)))

    # np.max propagates NaN and Inf, which is the desired semantics for
    # catastrophic faults.
    max_abs = float(np.max(abs_diff))
    mean_abs = float(np.mean(abs_diff))

    pointwise = pointwise_relative_error(a, b)
    max_pointwise = float(np.max(pointwise))

    value_range = float(np.max(a) - np.min(a))
    if value_range > 0:
        range_rel = max_abs / value_range
    else:
        range_rel = 0.0 if max_abs == 0 else float("inf")

    mse = float(np.mean(diff * diff))
    rmse = float(np.sqrt(mse))
    nrmse = rmse / value_range if value_range > 0 else (0.0 if rmse == 0 else float("inf"))
    with np.errstate(divide="ignore"):
        psnr = float(20.0 * np.log10(value_range) - 10.0 * np.log10(mse)) if mse > 0 and value_range > 0 else float("inf")

    # Scale by the largest difference so squaring cannot underflow
    # (diffs below ~1e-154 would square to zero).
    if max_abs > 0 and np.isfinite(max_abs):
        scaled = diff / max_abs
        l2 = float(max_abs * np.sqrt(np.sum(scaled * scaled)))
    else:
        l2 = max_abs
    linf = max_abs
    return ErrorMetrics(
        max_absolute_error=max_abs,
        mean_absolute_error=mean_abs,
        max_pointwise_relative=max_pointwise,
        value_range_relative=range_rel,
        mean_squared_error=mse,
        root_mean_squared_error=rmse,
        normalized_rmse=nrmse,
        psnr_db=psnr,
        l2_norm_error=l2,
        linf_norm_error=linf,
        has_non_finite=has_non_finite,
    )


def pointwise_relative_error(original, faulty) -> np.ndarray:
    """Elementwise |orig - faulty| / |orig|.

    This is the per-trial "relative error" of the paper's Section 5
    analysis (see the worked example in Section 5.4.2).  Convention:
    NaN where the original is zero but the faulty value is not (the
    ratio is undefined); +Inf is reserved for genuine float64 overflow
    of a huge, well-defined ratio.
    """
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(faulty, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        rel = np.abs(a - b) / np.abs(a)
    rel = np.where((a == 0) & (b == 0), 0.0, rel)
    return np.where((a == 0) & (b != 0), np.nan, rel)


def scalar_relative_error(original: float, faulty: float) -> float:
    """Scalar form of :func:`pointwise_relative_error`.

    The single place the zero-original convention lives for scalar
    callers: ``run_single_trial`` (the literal-flowchart reference) and
    ``single_fault_metrics`` both route through here, so the scalar and
    vectorized paths cannot diverge on the ``original == 0`` corners
    pinned in ``tests/metrics/test_edgecases.py``.
    """
    original = float(original)
    faulty = float(faulty)
    if original != 0:
        return abs(original - faulty) / abs(original)
    if faulty == 0:
        return 0.0
    return float("nan")  # undefined against a zero original


def absolute_error(original, faulty) -> np.ndarray:
    """Elementwise |orig - faulty|."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(faulty, dtype=np.float64)
    return np.abs(a - b)
