"""Summary statistics (the campaign's per-dataset baseline).

The paper computes mean, median, max, min, and standard deviation of each
field before injecting faults (Table 1) and again after each trial to
detect drastic shifts.  ``SummaryStats`` bundles those numbers with an
update rule for the single-element faults the campaign injects, so the
faulty summary can be produced in O(1) instead of re-reducing the array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """Mean / median / extremes / spread of one array."""

    count: int
    mean: float
    median: float
    maximum: float
    minimum: float
    std: float
    #: Plain sum, retained for O(1) mean updates.
    total: float
    #: Sum of squared deviations from :attr:`center` (the original mean).
    #: Centering avoids the catastrophic cancellation the naive
    #: E[x^2] - mean^2 update suffers when |mean| >> std.
    centered_sq: float
    center: float
    #: Second-largest / second-smallest elements (with multiplicity), so
    #: removing the extremum still yields the exact new extremum.  For a
    #: single-element array these are -inf / +inf.
    maximum2: float = float("-inf")
    minimum2: float = float("inf")

    @classmethod
    def from_array(cls, values) -> "SummaryStats":
        array = np.asarray(values, dtype=np.float64).reshape(-1)
        if array.size == 0:
            raise ValueError("cannot summarize an empty array")
        total = float(np.sum(array))
        center = total / array.size
        deviations = array - center
        with np.errstate(over="ignore"):
            centered_sq = float(np.sum(deviations * deviations))
        if array.size >= 2:
            maximum2 = float(np.partition(array, -2)[-2])
            minimum2 = float(np.partition(array, 1)[1])
        else:
            maximum2 = float("-inf")
            minimum2 = float("inf")
        return cls(
            count=int(array.size),
            mean=float(np.mean(array)),
            median=float(np.median(array)),
            maximum=float(np.max(array)),
            minimum=float(np.min(array)),
            std=float(np.std(array)),
            total=total,
            centered_sq=centered_sq,
            center=center,
            maximum2=maximum2,
            minimum2=minimum2,
        )

    @property
    def value_range(self) -> float:
        """max - min; the denominator of QCAT's value-range relative error."""
        return self.maximum - self.minimum

    def with_replacement(self, old_value: float, new_value: float) -> "SummaryStats":
        """Summary after replacing one occurrence of ``old_value``.

        Median is not maintained exactly (a single replacement moves it by
        at most one order statistic); the campaign only monitors
        mean/max/min/std shifts, matching the paper's usage.

        Accuracy: mean and extremes are exact (extremes via the tracked
        second-order statistics).  The variance update is single-pass and
        carries rounding of order eps * max(dev_old, dev_new)**2 / count,
        where dev is the distance from the original mean — negligible for
        campaign faults (whose damage dominates the variance) but visible
        when a replacement lands far from the center yet leaves a tiny
        variance.
        """
        new_total = self.total - old_value + new_value
        mean = new_total / self.count
        old_dev = old_value - self.center
        new_dev = new_value - self.center
        new_centered_sq = self.centered_sq - old_dev * old_dev + new_dev * new_dev
        mean_shift = mean - self.center
        variance = max(new_centered_sq / self.count - mean_shift * mean_shift, 0.0)
        # Exact extremes: if the replaced element was (an instance of)
        # the extremum, the survivor extremum is the second order
        # statistic, which equals the first when it was duplicated.
        surviving_max = self.maximum2 if old_value == self.maximum else self.maximum
        surviving_min = self.minimum2 if old_value == self.minimum else self.minimum
        maximum = max(surviving_max, new_value)
        minimum = min(surviving_min, new_value)
        return SummaryStats(
            count=self.count,
            mean=mean,
            median=self.median,
            maximum=maximum,
            minimum=minimum,
            std=float(np.sqrt(variance)),
            total=new_total,
            centered_sq=new_centered_sq,
            center=self.center,
            maximum2=self.maximum2,
            minimum2=self.minimum2,
        )

    def as_row(self) -> dict[str, float]:
        """Flat dict for CSV/report output (Table 1 columns)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "max": self.maximum,
            "min": self.minimum,
            "std": self.std,
        }
