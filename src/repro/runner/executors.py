"""Pluggable campaign executors: the *mechanism* half of the runner.

:class:`repro.runner.CampaignRunner` is policy — planning, manifests,
checksums, resume, verification.  How pending shards actually get
computed is mechanism, and this module owns it behind one interface:

:class:`SerialExecutor`
    In-process, bit order, retry with exponential backoff.
:class:`PoolExecutor`
    The hardened fork pool: heartbeat claims, dead/hung-worker SIGKILL
    and requeue, retry with backoff, in-process fallback when the pool
    itself breaks.
:class:`WorkStealingExecutor`
    Independent worker processes claim shards from the shared run
    directory via atomic lease files (:mod:`repro.runner.leases`);
    additional ``campaign worker`` processes on any machine sharing the
    filesystem can join mid-run, and a killed worker's lease expires
    and is stolen.

Executors see the run only through an :class:`ExecutionContext` — a
narrow facade over the runner that exposes what mechanism needs (shard
compute, completion accounting, event emission, budgets) and nothing
else.  All three produce bit-identical results for a fixed seed because
the per-bit ``SeedSequence.spawn`` streams make shard results
independent of scheduling.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

from repro.runner.errors import RunnerError
from repro.runner.leases import (
    DEFAULT_LEASE_TIMEOUT,
    LeaseHeartbeat,
    cancel_requested,
    default_worker_id,
    read_done_records,
    try_claim,
    write_done_record,
)


def _pid_alive(pid: int) -> bool:
    """Whether a process still exists (signal 0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class ExecutionContext:
    """What an executor may see and do during one run.

    Bound to a live :class:`CampaignRunner`; attribute reads delegate so
    test seams (e.g. monkeypatching ``CampaignRunner._compute_shard``)
    keep working, and completion accounting flows through the runner's
    persistence path (atomic shard writes, checksums, manifest updates,
    events) no matter which executor drives it.
    """

    def __init__(self, runner, hooks, shards_total: int, trials_total: int):
        self._runner = runner
        self._hooks = hooks
        self.shards_total = shards_total
        self.trials_total = trials_total

    # -- static facts about the run ----------------------------------------

    @property
    def run_dir(self):
        return self._runner.run_dir

    @property
    def jobs(self) -> int:
        return self._runner._effective_jobs

    @property
    def stored(self):
        return self._runner.stored

    @property
    def target(self):
        return self._runner.target

    @property
    def baseline(self):
        return self._runner.baseline

    @property
    def fault_spec(self) -> str:
        """Canonical fault-model spec of this run (``single`` by default)."""
        return self._runner.config.fault

    @property
    def app(self):
        """App-campaign config when shards are solver cells, else ``None``."""
        return getattr(self._runner, "app_config", None)

    @property
    def max_retries(self) -> int:
        return self._runner.max_retries

    @property
    def retry_backoff(self) -> float:
        return self._runner.retry_backoff

    @property
    def shard_timeout(self) -> float | None:
        return self._runner.shard_timeout

    @property
    def heartbeat_timeout(self) -> float | None:
        return self._runner.heartbeat_timeout

    @property
    def chaos(self):
        return self._runner.chaos

    @property
    def telemetry(self):
        return self._runner.telemetry

    @property
    def trace_enabled(self) -> bool:
        """Whether this run is writing distributed-trace spans."""
        return self._runner._tracer is not None

    # -- actions ------------------------------------------------------------

    def compute(self, spec):
        """Compute one shard in-process: ``(records, duration)``."""
        return self._runner._compute_shard(spec)

    def finish(self, spec, records, duration: float, attempts: int) -> None:
        """Account a locally computed shard: persist, checksum, emit."""
        self._runner._finish_shard(
            spec, records, duration, attempts, self._hooks,
            self.shards_total, self.trials_total,
        )

    def adopt(self, spec, record: dict) -> None:
        """Account a shard completed by a cooperating worker process."""
        self._runner._adopt_shard(
            spec, record, self._hooks, self.shards_total, self.trials_total
        )

    def shard_checksum_of(self, bit: int) -> str | None:
        manifest = self._runner._manifest
        if manifest is None or bit not in manifest.shards:
            return None
        return manifest.shards[bit].checksum

    def emit(self, kind: str, **kwargs) -> None:
        self._runner._emit(
            self._hooks, kind,
            shards_total=self.shards_total, trials_total=self.trials_total,
            **kwargs,
        )

    def note_retry(self) -> None:
        self._runner._retry_count += 1

    def note_hung(self) -> None:
        self._runner._hung_count += 1

    def fire_compute_chaos(self, bit: int, attempt: int) -> None:
        """In-process chaos compute faults (serial/coordinator path)."""
        if self.chaos is None:
            return
        from repro.chaos import fire_compute_faults

        fire_compute_faults(self.chaos, bit, attempt)


class Executor:
    """Base class: one strategy for executing a run's pending shards."""

    #: Registry key and the name recorded in the manifest.
    name = "abstract"

    def execute(self, pending, ctx: ExecutionContext) -> None:
        """Complete every pending shard (``ctx.finish``/``ctx.adopt``).

        Raising fails the run (the runner checkpoints it interrupted);
        returning with shards unaccounted is a bug, not a contract.
        """
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-process execution in bit order with retry + backoff."""

    name = "serial"

    def execute(self, pending, ctx: ExecutionContext) -> None:
        for spec in pending:
            ctx.emit("shard_start", bit=spec.bit)
            attempts = 0
            while True:
                attempts += 1
                try:
                    ctx.fire_compute_chaos(spec.bit, attempts - 1)
                    records, duration = ctx.compute(spec)
                    break
                except Exception as error:
                    ctx.emit("shard_error", bit=spec.bit, attempt=attempts - 1,
                             error=repr(error))
                    if attempts > ctx.max_retries:
                        raise RunnerError(
                            f"shard for bit {spec.bit} failed after {attempts} attempt(s)"
                        ) from error
                    ctx.note_retry()
                    time.sleep(ctx.retry_backoff * (2 ** (attempts - 1)))
                    ctx.emit("shard_retry", bit=spec.bit, attempt=attempts,
                             error=repr(error))
            ctx.finish(spec, records, duration, attempts)


class _ShardRun:
    """Pool-side bookkeeping for one in-flight shard."""

    __slots__ = ("future", "failures", "claimed", "pid", "done")

    def __init__(self):
        self.future = None
        self.failures = 0
        self.claimed: float | None = None
        self.pid: int | None = None
        self.done = False


class PoolExecutor(Executor):
    """Fork-pool execution that survives sick workers.

    Instead of blocking on each future in bit order, a polling loop
    collects results as they complete while a heartbeat queue tracks
    which worker claimed which shard and when.  That lets the parent
    distinguish three states a blocking design conflates: queued (no
    claim — never times out), computing (claimed, worker alive, within
    budget), and lost (worker dead, or claimed longer than
    ``heartbeat_timeout`` / ``shard_timeout``).  Lost shards get their
    worker SIGKILLed and re-enter the normal retry path, so a crashed
    or hung worker costs one retry, not the run.
    """

    name = "pool"

    @staticmethod
    def _kill_worker(pid: int | None) -> bool:
        """SIGKILL a stalled pool worker; the pool respawns a replacement."""
        if pid is None:
            return False
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            return False
        return True

    def execute(self, pending, ctx: ExecutionContext) -> None:
        from repro.inject.parallel import _init_worker, _run_shard_timed

        context = multiprocessing.get_context("fork")
        # Created unconditionally: workers ping "claim"/"done" through it
        # (inherited across the fork via the pool initializer args).  A
        # SimpleQueue, not a Queue: its put() writes the pipe
        # synchronously, so a worker that crashes (os._exit) right after
        # claiming has still delivered the claim — a buffered Queue's
        # feeder thread would die with the worker and lose it, leaving
        # the shard looking queued forever.
        heartbeats = context.SimpleQueue()
        specs = {spec.bit: spec for spec in pending}
        runs: dict[int, _ShardRun] = {}
        pool_broken = False

        def submit(bit: int) -> None:
            run = runs[bit]
            spec = specs[bit]
            run.claimed = None
            run.pid = None
            run.done = False
            # The attempt id rides along so pings from a killed earlier
            # attempt cannot be mistaken for the live one.
            run.future = pool.apply_async(
                _run_shard_timed,
                ((spec.bit, spec.trials, spec.seed, run.failures),),
            )

        def fallback(bit: int) -> None:
            # Degrade gracefully: the pool failed this shard (or died);
            # recompute in-process rather than lose the run.
            run = runs.pop(bit)
            ctx.emit("shard_fallback", bit=bit, attempt=run.failures,
                     error="pool execution failed; running in-process")
            records, duration = ctx.compute(specs[bit])
            ctx.finish(specs[bit], records, duration, run.failures + 1)

        def fail(bit: int, error: BaseException) -> None:
            nonlocal pool_broken
            run = runs[bit]
            run.failures += 1
            run.future = None
            ctx.emit("shard_error", bit=bit, attempt=run.failures - 1,
                     error=repr(error))
            if run.failures > ctx.max_retries:
                fallback(bit)
                return
            ctx.note_retry()
            time.sleep(ctx.retry_backoff * (2 ** (run.failures - 1)))
            try:
                submit(bit)
            except Exception:
                pool_broken = True
                return
            ctx.emit("shard_retry", bit=bit, attempt=run.failures,
                     error=repr(error))

        def drain_heartbeats() -> None:
            while True:
                try:
                    if heartbeats.empty():
                        return
                    kind, pid, bit, attempt = heartbeats.get()
                except (OSError, EOFError):
                    return
                run = runs.get(bit)
                if run is None or attempt != run.failures:
                    continue  # ping from a superseded or finished attempt
                if kind == "claim":
                    run.claimed = time.monotonic()
                    run.pid = pid
                elif kind == "done":
                    run.done = True

        def reap_stalled() -> None:
            now = time.monotonic()
            for bit in sorted(runs):
                run = runs.get(bit)
                if (run is None or run.future is None or run.done
                        or run.future.ready() or run.claimed is None):
                    continue
                age = now - run.claimed
                reason = None
                if run.pid is not None and not _pid_alive(run.pid):
                    reason = f"worker pid {run.pid} died mid-shard"
                elif (ctx.heartbeat_timeout is not None
                        and age > ctx.heartbeat_timeout):
                    reason = (f"claimed {age:.1f}s ago with no completion "
                              f"(heartbeat_timeout={ctx.heartbeat_timeout:g}s)")
                elif ctx.shard_timeout is not None and age > ctx.shard_timeout:
                    reason = (f"running {age:.1f}s "
                              f"(shard_timeout={ctx.shard_timeout:g}s)")
                if reason is None:
                    continue
                ctx.note_hung()
                ctx.telemetry.count("runner.shards_hung")
                if self._kill_worker(run.pid):
                    ctx.telemetry.count("runner.workers_killed")
                ctx.emit("shard_hung", bit=bit, attempt=run.failures,
                         error=reason,
                         detail={"pid": run.pid, "claimed_age": round(age, 3)})
                fail(bit, RunnerError(f"shard bit={bit} hung: {reason}"))
                if pool_broken:
                    return

        try:
            with context.Pool(
                processes=ctx.jobs,
                initializer=_init_worker,
                initargs=(ctx.stored, ctx.target.name, ctx.baseline,
                          ctx.telemetry.enabled, ctx.chaos, heartbeats,
                          ctx.fault_spec, ctx.app),
            ) as pool:
                for spec in pending:
                    runs[spec.bit] = _ShardRun()
                    submit(spec.bit)
                    ctx.emit("shard_start", bit=spec.bit)
                while runs and not pool_broken:
                    drain_heartbeats()
                    progressed = False
                    for bit in sorted(runs):
                        run = runs.get(bit)
                        if run is None or run.future is None or not run.future.ready():
                            continue
                        progressed = True
                        try:
                            records, duration, worker_snapshot = run.future.get()
                        except Exception as error:
                            fail(bit, error)
                            if pool_broken:
                                break
                            continue
                        if worker_snapshot is not None:
                            ctx.telemetry.merge_snapshot(worker_snapshot)
                        runs.pop(bit)
                        ctx.finish(specs[bit], records, duration, run.failures + 1)
                    if pool_broken:
                        break
                    reap_stalled()
                    if runs and not pool_broken and not progressed:
                        time.sleep(0.01)
                for bit in sorted(runs):
                    fallback(bit)
        finally:
            heartbeats.close()


def _work_stealing_child(run_dir, stored, target_spec, baseline, lease_timeout,
                         poll_interval, chaos, telemetry_enabled=False,
                         trace_enabled=False) -> None:
    """Entry point of a forked in-run work-stealing worker.

    The dataset arrives by fork copy-on-write (never pickled); the
    target crosses as its spec string, same as pool workers.  SIGTERM
    and the inherited telemetry collector are reset exactly like
    :func:`repro.inject.parallel._init_worker` — the fork copied the
    parent's checkpointing SIGTERM handler and active collector, and
    neither belongs in a child.  When the parent profiles/traces, the
    child gets its *own* collector (its snapshot lands beside its done
    records for the merge-at-read path, never double-counted into the
    parent's) and its own trace/metrics files.
    """
    from repro.runner.worker import ShardWorker
    from repro.telemetry import DISABLED
    from repro.telemetry.core import _reset_process_stack

    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    _reset_process_stack(DISABLED)
    try:
        ShardWorker(
            run_dir,
            stored=stored,
            target=target_spec,
            baseline=baseline,
            lease_timeout=lease_timeout,
            poll_interval=poll_interval,
            chaos=chaos,
            finalize=False,
            telemetry=bool(telemetry_enabled),
            trace=bool(trace_enabled),
        ).run()
    except Exception:
        # The child is expendable: the coordinator steals its leases and
        # recomputes anything it failed to deliver.  Exiting nonzero is
        # the only signal it leaves.
        os._exit(1)


class WorkStealingExecutor(Executor):
    """Cooperating processes claim shards via run-directory lease files.

    The calling (coordinator) process is itself one worker: it claims
    and computes shards through the runner's normal persistence path and
    is the *only* process that writes the manifest.  ``workers - 1``
    forked children run :class:`repro.runner.worker.ShardWorker` loops:
    each claims a lease, computes, writes the shard CSV + a completion
    record under ``leases/``, and appends its own events.  The
    coordinator folds children's completions into the manifest by
    *adopting* their done records (checksum-verified), so concurrent
    manifest writes never happen.

    Because claims go through the shared filesystem, external
    ``campaign worker <run-dir>`` processes — on this machine or any
    other sharing the filesystem — can join the same run at any time.
    A worker that dies mid-shard stops refreshing its lease's mtime;
    after ``lease_timeout`` the lease is stolen and the shard recomputed
    (bit-identically, thanks to per-bit seed streams).
    """

    name = "work-stealing"

    def __init__(self, workers: int | None = None,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 poll_interval: float = 0.05):
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be positive, got {lease_timeout}")
        self.workers = workers
        self.lease_timeout = float(lease_timeout)
        self.poll_interval = float(poll_interval)

    def execute(self, pending, ctx: ExecutionContext) -> None:
        if ctx.run_dir is None:
            raise RunnerError(
                "the work-stealing executor coordinates through lease files "
                "in the run directory; pass run_dir= (or use the serial/pool "
                "executor for in-memory runs)"
            )
        run_dir = ctx.run_dir
        worker_id = default_worker_id() + "-coord"
        workers = self.workers if self.workers is not None else ctx.jobs
        context = multiprocessing.get_context("fork")
        children = [
            context.Process(
                target=_work_stealing_child,
                args=(run_dir, ctx.stored, ctx.target.name, ctx.baseline,
                      self.lease_timeout, self.poll_interval, ctx.chaos,
                      ctx.telemetry.enabled, ctx.trace_enabled),
                daemon=True,
            )
            for _ in range(max(workers - 1, 0))
        ]
        for child in children:
            child.start()

        remaining = {spec.bit: spec for spec in pending}
        try:
            while remaining:
                if cancel_requested(run_dir):
                    raise RunnerError(
                        f"run cancelled (CANCELLED sentinel in {run_dir})"
                    )
                done = read_done_records(run_dir)
                progressed = False
                for bit in sorted(remaining):
                    spec = remaining[bit]
                    record = done.get(bit)
                    if record is not None:
                        if record.get("worker") != worker_id:
                            ctx.adopt(spec, record)
                            ctx.telemetry.count("runner.shards_adopted")
                        remaining.pop(bit)
                        progressed = True
                        continue
                    lease = try_claim(run_dir, bit, worker_id,
                                      lease_timeout=self.lease_timeout)
                    if lease is None:
                        continue  # another worker holds it; revisit next sweep
                    # Re-check done records *after* claiming, exactly like
                    # ShardWorker: the sweep-start read goes stale while
                    # earlier bits in this sweep compute, and a cooperating
                    # worker may have finished (and released) this bit in
                    # the meantime.  Done records are written before lease
                    # release, so a post-claim re-check is race-free —
                    # without it the coordinator silently recomputes
                    # already-finished shards (bit-identical, but wasted
                    # work that breaks N-worker telemetry counter identity).
                    record = read_done_records(run_dir).get(bit)
                    if record is not None:
                        lease.release()
                        if record.get("worker") != worker_id:
                            ctx.adopt(spec, record)
                            ctx.telemetry.count("runner.shards_adopted")
                        remaining.pop(bit)
                        progressed = True
                        continue
                    progressed = True
                    ctx.telemetry.count("runner.leases_claimed")
                    detail = {"worker": worker_id}
                    if lease.stolen_from:
                        ctx.telemetry.count("runner.leases_stolen")
                        ctx.emit("lease_stolen", bit=bit,
                                 detail={"worker": worker_id,
                                         "stolen_from": lease.stolen_from},
                                 error=f"lease of {lease.stolen_from} expired")
                    ctx.emit("shard_claimed", bit=bit, detail=detail)
                    try:
                        records, duration, attempts = self._compute_with_retries(
                            spec, ctx, lease
                        )
                    except BaseException:
                        lease.release()
                        raise
                    ctx.finish(spec, records, duration, attempts)
                    write_done_record(
                        run_dir, bit,
                        trials=spec.trials, duration=duration,
                        attempts=attempts,
                        checksum=ctx.shard_checksum_of(bit) or "",
                        worker=worker_id,
                    )
                    lease.release()
                    remaining.pop(bit)
                if remaining and not progressed:
                    time.sleep(self.poll_interval)
        finally:
            deadline = time.monotonic() + max(self.lease_timeout, 5.0)
            for child in children:
                child.join(timeout=max(deadline - time.monotonic(), 0.1))
                if child.is_alive():
                    child.terminate()
                    child.join(timeout=1.0)

    def _compute_with_retries(self, spec, ctx: ExecutionContext, lease):
        attempts = 0
        with LeaseHeartbeat(lease, self.lease_timeout / 3.0):
            while True:
                attempts += 1
                try:
                    ctx.fire_compute_chaos(spec.bit, attempts - 1)
                    records, duration = ctx.compute(spec)
                    return records, duration, attempts
                except Exception as error:
                    ctx.emit("shard_error", bit=spec.bit, attempt=attempts - 1,
                             error=repr(error))
                    if attempts > ctx.max_retries:
                        raise RunnerError(
                            f"shard for bit {spec.bit} failed after "
                            f"{attempts} attempt(s)"
                        ) from error
                    ctx.note_retry()
                    time.sleep(ctx.retry_backoff * (2 ** (attempts - 1)))
                    ctx.emit("shard_retry", bit=spec.bit, attempt=attempts,
                             error=repr(error))


#: Executor registry: the ``--executor`` CLI choices and the
#: ``run_campaign(executor=...)`` string spellings.
EXECUTOR_REGISTRY: dict[str, type[Executor]] = {
    SerialExecutor.name: SerialExecutor,
    PoolExecutor.name: PoolExecutor,
    WorkStealingExecutor.name: WorkStealingExecutor,
}


def resolve_executor(spec, *, jobs: int = 1, pending: int = 0) -> Executor:
    """Turn an executor request into a concrete :class:`Executor`.

    ``None`` keeps the historical auto policy: in-process when a single
    worker (or at most one pending shard) makes a pool pointless,
    otherwise the hardened fork pool.  Strings go through
    :data:`EXECUTOR_REGISTRY`; instances pass through untouched.
    """
    if spec is None:
        if jobs <= 1 or pending <= 1:
            return SerialExecutor()
        return PoolExecutor()
    if isinstance(spec, Executor):
        return spec
    if isinstance(spec, str):
        try:
            cls = EXECUTOR_REGISTRY[spec]
        except KeyError:
            known = ", ".join(sorted(EXECUTOR_REGISTRY))
            raise ValueError(
                f"unknown executor {spec!r}; known executors: {known}"
            ) from None
        return cls()
    raise TypeError(
        f"executor must be None, a registry name, or an Executor instance; "
        f"got {type(spec).__name__}"
    )
