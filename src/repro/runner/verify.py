"""End-to-end audit of a campaign run directory (``campaign verify``).

A run directory is only as trustworthy as its weakest artifact: results
are assembled from shard CSVs vouched for by the manifest, diagnosed
through ``events.jsonl``, and profiled into ``telemetry.json``.  This
module re-derives every one of those trust relationships from the bytes
on disk:

* the manifest parses and describes a coherent campaign;
* every completed shard's file exists, matches its SHA-256 checksum,
  parses, holds the expected trial count, and records the manifest's
  fault model;
* the event log parses and reconciles with the manifest's progress;
* the telemetry snapshot (when present) parses;
* quarantined files and orphan shard files are surfaced.

Findings carry a severity: ``error`` means the run's results cannot be
trusted as-is (corrupt shard, unparseable manifest), ``warning`` means
something is off but recoverable (truncated event-log tail, leftover
quarantine evidence).  The CLI maps the report to exit codes — 0 clean,
1 any error, 2 warnings only — so scripts and CI can gate on it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.runner.errors import ManifestError
from repro.runner.events import EVENT_KINDS
from repro.runner.manifest import (
    EVENT_LOG_NAME,
    MANIFEST_NAME,
    RUN_COMPLETED,
    RUN_INTERRUPTED,
    RUN_RUNNING,
    RUN_SUBMITTED,
    SHARD_COMPLETED,
    SHARD_DIR_NAME,
    RunManifest,
    quarantine_dir,
    shard_checksum,
    shard_file_name,
)

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One verification finding: what check failed, where, and how badly."""

    severity: str
    check: str
    message: str
    path: str | None = None

    def render(self) -> str:
        location = f" [{self.path}]" if self.path else ""
        return f"{self.severity.upper()} ({self.check}){location}: {self.message}"


@dataclass
class VerifyReport:
    """Everything ``verify_run`` concluded about one run directory."""

    run_dir: str
    findings: list[Finding] = field(default_factory=list)
    shards_checked: int = 0
    events_checked: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        """0 clean, 1 any error, 2 warnings only."""
        if self.errors:
            return 1
        if self.warnings:
            return 2
        return 0

    def render(self) -> str:
        lines = [f"verify: {self.run_dir}"]
        for finding in self.findings:
            lines.append("  " + finding.render())
        if self.ok:
            lines.append(
                f"result: clean ({self.shards_checked} shard file(s), "
                f"{self.events_checked} event(s) checked)"
            )
        else:
            lines.append(
                f"result: {len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s)"
            )
        return "\n".join(lines)


def _check_manifest(report: VerifyReport, run_dir: Path) -> RunManifest | None:
    try:
        manifest = RunManifest.load(run_dir)
    except FileNotFoundError as error:
        report.findings.append(
            Finding(SEVERITY_ERROR, "manifest-missing", str(error), MANIFEST_NAME)
        )
        return None
    except ManifestError as error:
        report.findings.append(
            Finding(SEVERITY_ERROR, "manifest-parse", str(error), MANIFEST_NAME)
        )
        return None
    if manifest.status not in (
        RUN_SUBMITTED, RUN_RUNNING, RUN_INTERRUPTED, RUN_COMPLETED,
    ):
        report.findings.append(
            Finding(
                SEVERITY_ERROR,
                "manifest-status",
                f"unknown run status {manifest.status!r}",
                MANIFEST_NAME,
            )
        )
    for bit, state in manifest.shards.items():
        if bit != state.bit:
            report.findings.append(
                Finding(
                    SEVERITY_ERROR,
                    "manifest-shards",
                    f"shard table key {bit} does not match its entry's bit {state.bit}",
                    MANIFEST_NAME,
                )
            )
    if manifest.status == RUN_COMPLETED and manifest.pending_bits():
        pending = ", ".join(map(str, manifest.pending_bits()))
        report.findings.append(
            Finding(
                SEVERITY_ERROR,
                "manifest-status",
                f"run marked completed but bits {pending} are still pending",
                MANIFEST_NAME,
            )
        )
    try:
        from repro.formats import resolve

        resolve(manifest.target_spec)
    except Exception as error:
        report.findings.append(
            Finding(
                SEVERITY_ERROR,
                "manifest-target",
                f"target spec {manifest.target_spec!r} does not resolve ({error})",
                MANIFEST_NAME,
            )
        )
    return manifest


def _check_shards(report: VerifyReport, run_dir: Path, manifest: RunManifest) -> None:
    # App-campaign shards carry the solver-outcome schema, not the
    # value-corruption one; the manifest's app payload decides which
    # parser the shard files must satisfy.
    if manifest.app is not None:
        from repro.apps.campaign import AppTrialRecords as records_class
    else:
        from repro.inject.results import TrialRecords as records_class

    shard_dir = run_dir / SHARD_DIR_NAME
    expected = set()
    for bit in sorted(manifest.shards):
        state = manifest.shards[bit]
        rel = f"{SHARD_DIR_NAME}/{shard_file_name(bit)}"
        path = RunManifest.shard_path(run_dir, bit)
        if state.status != SHARD_COMPLETED:
            if path.is_file():
                report.findings.append(
                    Finding(
                        SEVERITY_WARNING,
                        "shard-unexpected",
                        f"bit {bit} is pending in the manifest but a shard file "
                        "exists; it will be ignored and recomputed",
                        rel,
                    )
                )
            continue
        expected.add(path.name)
        report.shards_checked += 1
        if not path.is_file():
            report.findings.append(
                Finding(
                    SEVERITY_ERROR,
                    "shard-missing",
                    f"bit {bit} is marked completed but its shard file is missing",
                    rel,
                )
            )
            continue
        if state.checksum is None:
            report.findings.append(
                Finding(
                    SEVERITY_WARNING,
                    "shard-unchecksummed",
                    f"bit {bit} has no recorded checksum (pre-checksum run?); "
                    "content cannot be cryptographically verified",
                    rel,
                )
            )
        else:
            actual = shard_checksum(path)
            if actual != state.checksum:
                report.findings.append(
                    Finding(
                        SEVERITY_ERROR,
                        "shard-checksum",
                        f"bit {bit} checksum mismatch: manifest records "
                        f"{state.checksum}, file hashes to {actual}",
                        rel,
                    )
                )
                continue
        try:
            records = records_class.read_csv(path)
        except (OSError, ValueError) as error:
            report.findings.append(
                Finding(
                    SEVERITY_ERROR,
                    "shard-content",
                    f"bit {bit} shard file does not parse ({error})",
                    rel,
                )
            )
            continue
        if len(records) != state.trials:
            report.findings.append(
                Finding(
                    SEVERITY_ERROR,
                    "shard-content",
                    f"bit {bit} holds {len(records)} trial(s), manifest "
                    f"records {state.trials}",
                    rel,
                )
            )
            continue
        _check_shard_fault(report, manifest, records, bit, rel)
    if shard_dir.is_dir():
        for path in sorted(shard_dir.iterdir()):
            if path.is_dir() or path.name in expected:
                continue
            bit_name = {shard_file_name(bit) for bit in manifest.shards}
            if path.name in bit_name:
                continue  # pending shard file, already warned above
            report.findings.append(
                Finding(
                    SEVERITY_WARNING,
                    "shard-orphan",
                    "file does not belong to any shard in the manifest",
                    f"{SHARD_DIR_NAME}/{path.name}",
                )
            )


def _check_shard_fault(
    report: VerifyReport, manifest: RunManifest, records, bit: int, rel: str
) -> None:
    """A shard's ``fault_spec`` column must agree with the manifest.

    The fault model is part of the run identity, so a shard computed
    under a different model (or a default-model shard folded into a
    non-default run) would silently poison every per-model aggregation.
    """
    from repro.inject.faultspec import DEFAULT_FAULT_SPEC

    if manifest.fault == DEFAULT_FAULT_SPEC:
        specs = set() if records.fault_spec is None else set(records.fault_spec)
        if specs and specs != {DEFAULT_FAULT_SPEC}:
            report.findings.append(
                Finding(
                    SEVERITY_ERROR,
                    "shard-fault",
                    f"bit {bit} records fault model(s) {sorted(specs)} but the "
                    f"manifest describes a default ({DEFAULT_FAULT_SPEC!r}) run",
                    rel,
                )
            )
        return
    if records.fault_spec is None:
        report.findings.append(
            Finding(
                SEVERITY_ERROR,
                "shard-fault",
                f"bit {bit} has no fault_spec column but the manifest records "
                f"fault model {manifest.fault!r}",
                rel,
            )
        )
        return
    specs = set(records.fault_spec)
    if specs != {manifest.fault}:
        report.findings.append(
            Finding(
                SEVERITY_ERROR,
                "shard-fault",
                f"bit {bit} records fault model(s) {sorted(specs)}, manifest "
                f"records {manifest.fault!r}",
                rel,
            )
        )


def _check_events(report: VerifyReport, run_dir: Path, manifest: RunManifest) -> None:
    path = RunManifest.event_log_path(run_dir)
    rel = EVENT_LOG_NAME
    if not path.is_file():
        report.findings.append(
            Finding(
                SEVERITY_WARNING,
                "events-missing",
                "no events.jsonl; the run has no flight recorder",
                rel,
            )
        )
        return
    events: list[dict] = []
    truncated = False
    with open(path, encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                truncated = True
                break
    report.events_checked = len(events)
    if truncated:
        report.findings.append(
            Finding(
                SEVERITY_WARNING,
                "events-truncated",
                f"unparseable line after {len(events)} event(s) — a hard kill "
                "can tear the final line; later events are unreadable",
                rel,
            )
        )
    unknown = sorted({e.get("kind") for e in events} - set(EVENT_KINDS) - {None})
    if unknown:
        report.findings.append(
            Finding(
                SEVERITY_WARNING,
                "events-unknown-kind",
                f"unknown event kind(s): {', '.join(map(str, unknown))}",
                rel,
            )
        )
    finished = {
        e.get("bit")
        for e in events
        if e.get("kind") in ("shard_finish", "shard_skipped")
    }
    unaccounted = [b for b in manifest.completed_bits() if b not in finished]
    if unaccounted:
        report.findings.append(
            Finding(
                SEVERITY_WARNING,
                "events-reconcile",
                "manifest marks bits "
                f"{', '.join(map(str, unaccounted))} completed but the event "
                "log records no shard_finish/shard_skipped for them (an "
                "in-flight event can be lost to a hard kill)",
                rel,
            )
        )
    if manifest.status == RUN_COMPLETED and not any(
        e.get("kind") == "run_finish" for e in events
    ):
        report.findings.append(
            Finding(
                SEVERITY_WARNING,
                "events-reconcile",
                "manifest says the run completed but no run_finish event "
                "was logged",
                rel,
            )
        )


def _check_telemetry(report: VerifyReport, run_dir: Path) -> None:
    from repro.telemetry import telemetry_path
    from repro.telemetry.core import TelemetrySnapshot

    path = telemetry_path(run_dir)
    if not path.is_file():
        return
    rel = path.name
    try:
        payload = json.loads(path.read_text(encoding="utf-8", errors="strict"))
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
        report.findings.append(
            Finding(
                SEVERITY_ERROR,
                "telemetry-parse",
                f"telemetry snapshot does not parse ({error})",
                rel,
            )
        )
        return
    try:
        TelemetrySnapshot.from_json(payload)
    except Exception as error:
        report.findings.append(
            Finding(
                SEVERITY_ERROR,
                "telemetry-content",
                f"telemetry snapshot is structurally invalid ({error!r})",
                rel,
            )
        )


def _check_quarantine(report: VerifyReport, run_dir: Path) -> None:
    directory = quarantine_dir(run_dir)
    if not directory.is_dir():
        return
    files = sorted(p.name for p in directory.iterdir())
    if files:
        report.findings.append(
            Finding(
                SEVERITY_WARNING,
                "quarantine",
                f"{len(files)} quarantined file(s) preserved for post-mortem: "
                + ", ".join(files),
                f"{SHARD_DIR_NAME}/{directory.name}",
            )
        )


def verify_run(run_dir: str | os.PathLike, data=None) -> VerifyReport:
    """Audit one run directory; every finding lands in the report.

    ``data`` optionally re-checks the dataset fingerprint against the
    manifest (the same check a resume performs).
    """
    run_dir = Path(run_dir)
    report = VerifyReport(run_dir=str(run_dir))
    if not run_dir.is_dir():
        report.findings.append(
            Finding(
                SEVERITY_ERROR,
                "run-dir",
                f"{run_dir} is not a directory",
            )
        )
        return report
    manifest = _check_manifest(report, run_dir)
    if manifest is None:
        return report
    if data is not None:
        from repro.runner.manifest import dataset_fingerprint

        actual = dataset_fingerprint(data)
        if actual != manifest.data_fingerprint:
            report.findings.append(
                Finding(
                    SEVERITY_ERROR,
                    "data-fingerprint",
                    f"dataset fingerprint {actual} does not match the "
                    f"manifest's {manifest.data_fingerprint}",
                    MANIFEST_NAME,
                )
            )
    _check_shards(report, run_dir, manifest)
    _check_events(report, run_dir, manifest)
    _check_telemetry(report, run_dir)
    _check_quarantine(report, run_dir)
    return report
