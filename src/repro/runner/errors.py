"""Runner exception types.

Kept in their own module so low-level pieces (the manifest, the chaos
fault injector) can raise runner errors without importing the runner
itself.
"""

from __future__ import annotations


class RunnerError(RuntimeError):
    """A campaign run that cannot proceed (bad state, exhausted retries)."""


class ManifestError(RunnerError):
    """A run manifest that cannot be trusted (unparseable or malformed).

    Raised instead of a raw ``json.JSONDecodeError`` so a resume against
    a corrupted ``manifest.json`` fails with the file name, the parse
    failure, and the recovery options in one message.
    """


class SignalInterrupt(KeyboardInterrupt):
    """A termination signal converted into an exception.

    Subclasses :class:`KeyboardInterrupt` so every code path that
    already treats Ctrl-C as "checkpoint and stop" (the runner's
    interrupt handling, callers' ``except KeyboardInterrupt``) handles
    job-scheduler preemption (SIGTERM) identically.
    """

    def __init__(self, signum: int):
        super().__init__(f"terminated by signal {signum}")
        self.signum = signum
