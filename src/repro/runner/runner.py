"""The campaign runner: one execution engine for every campaign path.

A :class:`CampaignRunner` turns a campaign into a plan of per-bit
:class:`ShardSpec` units (the same unit of work the paper scatters over
cluster nodes), executes them serially or on a fork pool, and — when
given a run directory — persists every completed shard plus a JSON
manifest so an interrupted run can :meth:`resume` to a result
bit-identical to an uninterrupted one.  Bit-identity is guaranteed by
the campaign's seeding discipline: each bit's trial stream comes from an
independent ``SeedSequence.spawn`` child, so shards can run in any
order, any number of times, on any worker, and produce the same records.

Failure handling: a shard that raises in a worker is retried with
exponential backoff; if the pool itself breaks (or retries are
exhausted), the shard degrades to in-process execution instead of
losing the run.  Hardened paths (see ``docs/robustness.md``): shard
files carry SHA-256 checksums verified on resume (corrupt files are
quarantined, never trusted), pool workers heartbeat so a hung or dead
worker is detected, killed, and its shard requeued, writes are atomic,
and SIGTERM checkpoints like Ctrl-C.  A :class:`repro.chaos.FaultPlan`
passed as ``chaos=`` injects infrastructure faults into all of this to
prove the run either completes bit-identical or fails loudly.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.formats import resolve
from repro.inject.campaign import (
    CampaignConfig,
    CampaignResult,
    bit_seeds,
    conversion_report,
    run_campaign_shard,
)
from repro.inject.results import TrialRecords
from repro.inject.trial import field_pipeline
from repro.metrics.summary import SummaryStats
from repro.runner.errors import ManifestError, RunnerError, SignalInterrupt
from repro.runner.events import (
    EventLogWriter,
    ProgressRenderer,
    RunnerEvent,
    close_hooks,
    dispatch_event,
)
from repro.runner.executors import ExecutionContext, resolve_executor
from repro.runner.leases import (
    active_leases,
    cancel_requested,
    default_worker_id,
    read_done_records,
)
from repro.runner.manifest import (
    RUN_COMPLETED,
    RUN_INTERRUPTED,
    RUN_RUNNING,
    RUN_SUBMITTED,
    SHARD_COMPLETED,
    SHARD_PENDING,
    RunManifest,
    ShardState,
    dataset_fingerprint,
    quarantine_dir,
    quarantine_file,
    shard_checksum,
)
from repro.telemetry import (
    MetricsSampler,
    MetricsWriter,
    TelemetrySnapshot,
    TraceContext,
    TraceWriter,
    format_duration,
    load_run_snapshot,
    resolve_collector,
    resolve_trace,
    telemetry_path,
    telemetry_scope,
    write_snapshot,
)


# Backwards-compatible re-exports: these lived here before runner/errors.py.
__all__ = [
    "CampaignRunner",
    "ManifestError",
    "RunStatus",
    "RunnerError",
    "ShardSpec",
    "SignalInterrupt",
    "resume_campaign",
    "run_status",
]


@dataclass(frozen=True)
class ShardSpec:
    """One unit of campaign work: all trials of a single bit position."""

    bit: int
    trials: int
    seed: np.random.SeedSequence = field(compare=False, hash=False)


@dataclass(frozen=True)
class RunStatus:
    """Snapshot of a run directory (the ``campaign status`` command).

    Counts include shards whose completion record (``leases/``) exists
    but has not yet been folded into the manifest — a work-stealing run
    in flight reports live progress, not the manifest's last fold.
    """

    run_dir: str
    target_spec: str
    label: str
    status: str
    shards_total: int
    shards_done: int
    trials_total: int
    trials_done: int
    pending_bits: tuple[int, ...]
    missing_shard_files: tuple[int, ...]
    phase_seconds: dict | None = None
    quarantined_files: tuple[str, ...] = ()
    executor: str | None = None
    cancelled: bool = False
    workers: tuple[dict, ...] = ()
    fault: str = "single"
    #: App name (``cg``/``jacobi``) for app campaigns, ``None`` otherwise.
    app: str | None = None

    @property
    def complete(self) -> bool:
        return self.status == RUN_COMPLETED and not self.pending_bits

    def summary(self) -> str:
        lines = [
            f"run:     {self.run_dir}",
            f"target:  {self.target_spec}"
            + (f"  (label: {self.label})" if self.label else "")
            + (f"  [app: {self.app}]" if self.app else "")
            + (f"  [fault: {self.fault}]" if self.fault != "single" else ""),
            f"status:  {self.status}"
            + (f"  (executor: {self.executor})" if self.executor else "")
            + ("  [cancel requested]" if self.cancelled else ""),
            f"shards:  {self.shards_done}/{self.shards_total} completed",
            f"trials:  {self.trials_done}/{self.trials_total}",
        ]
        if self.workers:
            claims = ", ".join(
                f"bit {w['bit']} by {w['worker']} ({w['age_seconds']:.0f}s ago)"
                for w in self.workers
            )
            lines.append(f"workers: {claims}")
        if self.pending_bits:
            lines.append(f"pending: bits {', '.join(map(str, self.pending_bits))}")
        if self.missing_shard_files:
            lines.append(
                "warning: manifest marks bits "
                f"{', '.join(map(str, self.missing_shard_files))} completed "
                "but their shard files are missing (they will re-run on resume)"
            )
        if self.quarantined_files:
            lines.append(
                f"quarantine: {len(self.quarantined_files)} corrupt shard file(s) "
                "preserved under shards/quarantine/"
            )
        if self.phase_seconds:
            breakdown = ", ".join(
                f"{phase} {format_duration(seconds)}"
                for phase, seconds in sorted(
                    self.phase_seconds.items(), key=lambda kv: -kv[1]
                )
            )
            lines.append(f"phases:  {breakdown}")
        return "\n".join(lines)


class CampaignRunner:
    """Executes one campaign as a resumable, observable plan of shards.

    Parameters
    ----------
    data:
        The dataset field (any array-like; flattened).
    target:
        A :class:`repro.formats.NumberFormat` or any registry spec string.
    config:
        Campaign parameters (defaults to :class:`CampaignConfig`).
    label:
        Free-text label stored in results and the manifest.
    jobs:
        Worker processes; ``1`` runs in-process, ``None`` auto-sizes to
        the CPU count capped at the shard count.  Zero or negative values
        are rejected; values above the shard count are capped with a
        warning.
    executor:
        Which execution mechanism drives the pending shards: ``None``
        picks serial or pool from ``jobs`` (the historical behaviour), a
        registry name (``"serial"``, ``"pool"``, ``"work-stealing"``)
        instantiates that executor, and an
        :class:`repro.runner.executors.Executor` instance is used as-is.
        The runner stays the *policy* layer (planning, persistence,
        verification, events); executors are pure *mechanism*.
    run_dir:
        Directory for shard records, the manifest, and the event log.
        ``None`` runs fully in memory (no persistence, no resume).
    hooks:
        A hooks object or iterable of them (see
        :class:`repro.runner.events.RunnerHooks`).
    progress:
        Attach a terminal :class:`ProgressRenderer` to stderr.
    dataset:
        Optional provenance mapping stored in the manifest (e.g.
        ``{"kind": "preset", "field": ..., "size": ..., "seed": ...}``)
        letting ``campaign resume`` regenerate the data.
    max_retries:
        Extra attempts per failed shard before degrading/failing.
    retry_backoff:
        Base of the exponential backoff sleep between attempts.
    shard_timeout:
        Optional per-shard pool budget in seconds, measured from the
        moment a worker claims the shard (queued shards never time out);
        a shard exceeding it has its worker killed and is requeued
        through the normal retry path.
    heartbeat_timeout:
        Optional staleness limit in seconds for claimed shards.  Pool
        workers heartbeat when they claim and finish a shard; a shard
        claimed but unfinished for longer than this is treated as hung —
        its worker is SIGKILLed and the shard requeued.  Dead workers
        (crashes) are detected immediately regardless of this value.
    chaos:
        Optional :class:`repro.chaos.FaultPlan` injecting infrastructure
        faults (worker crashes/hangs/raises, shard and manifest
        corruption, hard kills) into this run — for testing the
        harness, never for production campaigns.
    telemetry:
        Profiling control (:func:`repro.telemetry.resolve_collector`):
        ``None`` follows ``REPRO_TELEMETRY``, ``True``/``False`` force a
        fresh collector / the no-op one, and an explicit
        :class:`repro.telemetry.Telemetry` instance aggregates across
        runs.  When enabled, the merged snapshot is written to
        ``<run_dir>/telemetry.json`` and attached to
        ``result.extras["telemetry"]``.
    trace:
        Distributed tracing + time-series metrics control
        (:func:`repro.telemetry.resolve_trace`): ``None`` follows
        ``REPRO_TRACE`` (then the manifest's recorded flag on resume),
        booleans force it.  When enabled — and the run has a directory —
        this process appends causally-parented span records to
        ``<run_dir>/trace/<worker>.jsonl`` and a sampler thread appends
        throughput/RSS/lease points to ``<run_dir>/metrics/<worker>.jsonl``.
        Tracing never touches shard computation: CSVs stay byte-identical
        with it on or off.
    metrics_interval:
        Seconds between time-series sample points (default 1.0).
    """

    #: Which records class shards produce and shard CSVs parse as.
    #: Subclasses (app campaigns) override to swap the trial schema
    #: without touching persistence, resume, or adoption logic.
    records_class = TrialRecords
    #: App-campaign configuration; ``None`` for value campaigns.
    app_config = None

    def __init__(
        self,
        data,
        target,
        config: CampaignConfig | None = None,
        *,
        label: str = "",
        jobs: int | None = 1,
        executor=None,
        run_dir: str | os.PathLike | None = None,
        hooks=None,
        progress: bool = False,
        dataset: dict | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        shard_timeout: float | None = None,
        heartbeat_timeout: float | None = None,
        chaos=None,
        telemetry=None,
        trace=None,
        metrics_interval: float = 1.0,
    ):
        from repro.inject.parallel import validate_jobs

        self.target = resolve(target)
        self.config = config if config is not None else CampaignConfig()
        self.label = label
        self.jobs = validate_jobs(jobs)
        self.executor = executor
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.dataset = dataset
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError(f"shard_timeout must be positive, got {shard_timeout}")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        self.shard_timeout = shard_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.chaos = chaos
        self.telemetry = resolve_collector(telemetry)
        self.telemetry_snapshot: TelemetrySnapshot | None = None
        # Remember whether tracing was an explicit choice: a None
        # argument lets a resumed run follow its manifest's flag.
        self._trace_arg = trace
        self.trace_enabled = resolve_trace(trace)
        self.metrics_interval = float(metrics_interval)

        self._flat = np.asarray(data).reshape(-1)
        if self._flat.size == 0:
            raise ValueError("cannot run a campaign on an empty dataset")
        with telemetry_scope(self.telemetry):
            self.stored = self.target.round_trip(self._flat)
            self.baseline = SummaryStats.from_array(self.stored)
            # Warm the encode-once pipeline in the parent so every shard
            # (and every fork-pool worker) shares one encode and one
            # decode of the field instead of rebuilding per worker.
            field_pipeline(self.target, self.stored)

        if hooks is None:
            hooks = []
        elif not isinstance(hooks, (list, tuple)):
            hooks = [hooks]
        self.hooks: list = list(hooks)
        if progress:
            self.hooks.append(ProgressRenderer())

        # Mutable per-run state (reset by run()).
        self._completed: dict[int, TrialRecords] = {}
        self._manifest: RunManifest | None = None
        self._started = 0.0
        self._busy_time = 0.0
        self._trials_done = 0
        self._shards_done = 0
        self._effective_jobs = 1
        self._retry_count = 0
        self._hung_count = 0
        self._quarantined: list[dict] = []
        self._trace_ctx: TraceContext | None = None
        self._tracer: TraceWriter | None = None

    # -- planning -----------------------------------------------------------

    def plan(self) -> list[ShardSpec]:
        """The per-bit shard plan, in ascending bit order."""
        return [
            ShardSpec(bit=bit, trials=self.config.trials_per_bit, seed=seed)
            for bit, seed in bit_seeds(self.config, self.target).items()
        ]

    def _fresh_manifest(self, shards: list[ShardSpec]) -> RunManifest:
        return RunManifest(
            target_spec=self.target.name,
            label=self.label,
            trials_per_bit=self.config.trials_per_bit,
            bits=self.config.bits,
            seed=self.config.seed,
            fault=self.config.fault,
            data_fingerprint=dataset_fingerprint(self._flat),
            data_size=int(self._flat.size),
            dataset=self.dataset,
            shards={s.bit: ShardState(bit=s.bit, trials=s.trials) for s in shards},
        )

    # -- public API ---------------------------------------------------------

    def run(self, *, resume: bool = False) -> CampaignResult:
        """Execute (or finish) the campaign and return its result.

        SIGTERM is handled like Ctrl-C for the duration of the run (when
        called from the main thread): the manifest checkpoints as
        interrupted, telemetry flushes, a ``run_interrupted`` event is
        emitted, and :class:`SignalInterrupt` (a ``KeyboardInterrupt``)
        propagates — so a batch scheduler's kill leaves a resumable run.
        """
        shards = self.plan()
        self._completed = {}
        self._started = time.monotonic()
        self._busy_time = 0.0
        self._retry_count = 0
        self._hung_count = 0
        self._quarantined = []

        owned_hooks = []
        if self.run_dir is not None:
            self._prepare_persistence(shards, resume)
            owned_hooks.append(EventLogWriter(RunManifest.event_log_path(self.run_dir)))
        else:
            if resume:
                raise RunnerError("resume requires a run_dir")
            self._manifest = None
        hooks = self.hooks + owned_hooks

        trials_total = sum(s.trials for s in shards)
        self._trials_done = sum(self._completed[b].trial.size for b in self._completed)
        self._shards_done = len(self._completed)
        pending = [s for s in shards if s.bit not in self._completed]
        self._effective_jobs = self._resolve_jobs(len(pending))
        executor = resolve_executor(
            self.executor, jobs=self._effective_jobs, pending=len(pending)
        )
        if self._manifest is not None and self._manifest.executor != executor.name:
            self._manifest.executor = executor.name
            self._manifest.write(self.run_dir)

        # Fleet observability: when tracing is on (explicitly, via
        # REPRO_TRACE, or recorded in a resumed manifest) this process
        # becomes one trace/metrics writer among the run's workers.
        # Strictly side-channel — shard computation never sees it.
        trace_on = self.trace_enabled
        if not trace_on and self._trace_arg is None and self._manifest is not None:
            trace_on = self._manifest.trace
        sampler = None
        wall_start = time.time()
        self._trace_ctx = None
        self._tracer = None
        if trace_on and self.run_dir is not None and self._manifest is not None:
            if not self._manifest.trace:
                self._manifest.trace = True
                self._manifest.write(self.run_dir)
            # Match the lease identity the work-stealing coordinator
            # claims under, so `campaign top` sees one worker, not two.
            worker = default_worker_id()
            if executor.name == "work-stealing":
                worker += "-coord"
            self._trace_ctx = TraceContext.for_run(
                self._manifest.identity(), self.run_dir, worker=worker
            )
            self._tracer = TraceWriter(self.run_dir, self._trace_ctx)
            sampler = MetricsSampler(
                MetricsWriter(self.run_dir, self._trace_ctx.worker),
                self._sample_metrics,
                interval=self.metrics_interval,
            ).start()

        # Treat a scheduler's SIGTERM like Ctrl-C: checkpoint, flush,
        # announce, re-raise.  Signal handlers only install from the main
        # thread; elsewhere the default disposition stays in place.
        sigterm_installed = False
        previous_sigterm = None
        if threading.current_thread() is threading.main_thread():
            def _on_sigterm(signum, frame):
                raise SignalInterrupt(signum)

            previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
            sigterm_installed = True

        try:
            with telemetry_scope(self.telemetry):
                try:
                    with self.telemetry.span("runner.run"):
                        self._emit(
                            hooks,
                            "run_start",
                            shards_total=len(shards),
                            trials_total=trials_total,
                            detail={
                                "target": self.target.name,
                                "label": self.label,
                                "resumed_shards": self._shards_done,
                                "run_dir": str(self.run_dir) if self.run_dir else None,
                            },
                        )
                        for entry in self._quarantined:
                            self.telemetry.count("runner.shards_quarantined")
                            self._emit(hooks, "shard_quarantined",
                                       bit=entry["bit"], error=entry["reason"],
                                       shards_total=len(shards),
                                       trials_total=trials_total,
                                       detail={"quarantined_to": entry["quarantined_to"]})
                        for bit in sorted(self._completed):
                            self._emit(hooks, "shard_skipped", bit=bit,
                                       shards_total=len(shards), trials_total=trials_total)

                        executor.execute(
                            pending,
                            ExecutionContext(self, hooks, len(shards), trials_total),
                        )
                except BaseException as error:
                    if self._manifest is not None:
                        self._manifest.status = RUN_INTERRUPTED
                        self._manifest.write(self.run_dir)
                    # Persist the partial profile too: an interrupted run's
                    # telemetry is exactly what a post-mortem wants.
                    self._snapshot_telemetry()
                    self._emit(hooks, "run_interrupted", error=repr(error),
                               shards_total=len(shards), trials_total=trials_total)
                    raise

                records = self.records_class.concatenate(
                    [self._completed[s.bit] for s in shards]
                )
                result = CampaignResult(
                    target_name=self.target.name,
                    config=self.config,
                    baseline=self.baseline,
                    records=records,
                    conversion=conversion_report(self._flat, self.target),
                    data_size=int(self._flat.size),
                    label=self.label,
                    extras={
                        "run_dir": str(self.run_dir) if self.run_dir else None,
                        "resumed_shards": len(shards) - len(pending),
                        "shard_retries": self._retry_count,
                        "shards_hung": self._hung_count,
                        "shards_quarantined": len(self._quarantined),
                        "jobs": self._effective_jobs,
                        "executor": executor.name,
                    },
                )
                snapshot = self._snapshot_telemetry()
                if snapshot is not None:
                    result.extras["telemetry"] = snapshot
                if self._manifest is not None:
                    self._manifest.status = RUN_COMPLETED
                    self._manifest.write(self.run_dir)
                self._emit(hooks, "run_finish",
                           shards_total=len(shards), trials_total=trials_total)
                return result
        finally:
            if sigterm_installed:
                signal.signal(signal.SIGTERM, previous_sigterm or signal.SIG_DFL)
            if sampler is not None:
                sampler.stop()
            if self._tracer is not None:
                ctx = self._trace_ctx
                wall_end = time.time()
                self._tracer.emit(
                    f"worker {ctx.worker}",
                    ts=wall_start,
                    duration=wall_end - wall_start,
                    span_id=ctx.worker_span_id,
                    parent_id=ctx.run_span_id,
                    category="worker",
                    args={"role": "coordinator", "jobs": self._effective_jobs},
                )
                self._tracer.emit(
                    "run",
                    ts=wall_start,
                    duration=wall_end - wall_start,
                    span_id=ctx.run_span_id,
                    category="run",
                    args={
                        "target": self.target.name,
                        "executor": executor.name,
                        "shards_done": self._shards_done,
                    },
                )
                self._tracer.close()
                self._tracer = None
            close_hooks(owned_hooks)

    def resume(self) -> CampaignResult:
        """Finish a partial run; identical to ``run(resume=True)``."""
        return self.run(resume=True)

    @classmethod
    def from_run_dir(
        cls,
        run_dir: str | os.PathLike,
        data=None,
        **kwargs,
    ) -> "CampaignRunner":
        """Rehydrate a runner from a run directory's manifest.

        ``data`` may be omitted when the manifest records a regenerable
        dataset source (``{"kind": "preset", ...}``); otherwise the
        original array must be passed and is fingerprint-checked.

        App-campaign run directories (``manifest.app`` set) rehydrate as
        :class:`repro.apps.campaign.AppCampaignRunner` automatically.
        """
        manifest = RunManifest.load(run_dir)
        if manifest.app is not None and cls is CampaignRunner:
            from repro.apps.campaign import AppCampaignRunner

            return AppCampaignRunner.from_run_dir(run_dir, data, **kwargs)
        if data is None:
            data = _regenerate_dataset(manifest)
        config = CampaignConfig(
            trials_per_bit=manifest.trials_per_bit,
            bits=manifest.bits,
            seed=manifest.seed,
            fault=manifest.fault,
        )
        kwargs.setdefault("label", manifest.label)
        kwargs.setdefault("dataset", manifest.dataset)
        return cls(data, manifest.target_spec, config, run_dir=run_dir, **kwargs)

    # -- persistence --------------------------------------------------------

    def _prepare_persistence(self, shards: list[ShardSpec], resume: bool) -> None:
        from repro.runner.manifest import MANIFEST_NAME

        manifest_path = Path(self.run_dir) / MANIFEST_NAME
        fresh = self._fresh_manifest(shards)
        if manifest_path.is_file():
            # Fold completion records left by work-stealing workers into
            # the manifest first, so a resume restores (and verifies)
            # their shards instead of recomputing them.
            if read_done_records(self.run_dir):
                from repro.runner.worker import fold_run

                fold_run(self.run_dir)
            existing = RunManifest.load(self.run_dir)
            mismatches = fresh.mismatches(existing)
            if mismatches:
                raise RunnerError(
                    f"run directory {self.run_dir} holds a different campaign: "
                    + "; ".join(mismatches)
                )
            if not resume:
                raise RunnerError(
                    f"run directory {self.run_dir} already contains this campaign "
                    f"(status: {existing.status}); resume it or pick a new directory"
                )
            self._manifest = existing
            self._restore_completed_shards()
        else:
            if resume and not manifest_path.parent.is_dir():
                raise FileNotFoundError(f"no campaign run at {self.run_dir}")
            self._manifest = fresh
        self._manifest.status = RUN_RUNNING
        self._manifest.write(self.run_dir)

    def _restore_completed_shards(self) -> None:
        """Load persisted shard records, refusing any that fail verification.

        Every restored shard must pass its manifest SHA-256 checksum
        (when recorded), parse, and hold the expected trial count.  A
        shard failing any check is demoted to pending *and* its file
        moved to ``shards/quarantine/`` — evidence is preserved, and the
        corrupt bytes can never silently feed a result.  A missing file
        simply demotes (there is nothing to quarantine).
        """
        for bit in self._manifest.completed_bits():
            state = self._manifest.shards[bit]
            path = RunManifest.shard_path(self.run_dir, bit)
            if not path.is_file():
                state.status = SHARD_PENDING
                state.checksum = None
                continue
            reason = None
            records = None
            if state.checksum is not None:
                actual = shard_checksum(path)
                if actual != state.checksum:
                    reason = (
                        f"checksum mismatch (manifest {state.checksum[:12]}, "
                        f"file {actual[:12]})"
                    )
            if reason is None:
                try:
                    records = self.records_class.read_csv(path)
                except (OSError, ValueError) as error:
                    reason = f"unreadable shard file ({error})"
                else:
                    if len(records) != state.trials:
                        reason = (
                            f"trial count mismatch (manifest {state.trials}, "
                            f"file {len(records)})"
                        )
            if reason is not None:
                dest = quarantine_file(self.run_dir, path)
                state.status = SHARD_PENDING
                state.checksum = None
                self._quarantined.append(
                    {"bit": bit, "reason": reason, "quarantined_to": str(dest)}
                )
                continue
            self._completed[bit] = records

    def _sample_metrics(self) -> dict:
        """One time-series point for this process (the sampler callable)."""
        elapsed = max(time.monotonic() - self._started, 1e-9)
        point = {
            "trials_done": self._trials_done,
            "shards_done": self._shards_done,
            "jobs": self._effective_jobs,
            "utilization": round(
                min(self._busy_time / (elapsed * self._effective_jobs), 1.0), 4
            ),
        }
        if self.run_dir is not None:
            try:
                point["leases_active"] = len(active_leases(self.run_dir))
            except OSError:
                pass
        if self.telemetry.enabled:
            phases = self.telemetry.snapshot().phase_seconds()
            if phases:
                point["phase_seconds"] = {
                    name: round(seconds, 6) for name, seconds in phases.items()
                }
        return point

    def _snapshot_telemetry(self) -> TelemetrySnapshot | None:
        """Freeze the collector; persist it when the run has a directory."""
        if not self.telemetry.enabled:
            return None
        snapshot = self.telemetry.snapshot()
        self.telemetry_snapshot = snapshot
        if self.run_dir is not None and not snapshot.empty:
            write_snapshot(snapshot, telemetry_path(self.run_dir))
        return snapshot

    def _persist_shard(self, spec: ShardSpec, records: TrialRecords,
                       duration: float, attempts: int) -> None:
        if self._manifest is None:
            return
        path = RunManifest.shard_path(self.run_dir, spec.bit)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic write: serialize once, checksum the exact bytes that hit
        # disk, write to a temp file, then rename into place.  A kill at
        # any instant leaves either no shard file or a complete one whose
        # checksum the manifest vouches for — never a torn write.
        payload = records.to_csv_string().encode("utf-8")
        digest = hashlib.sha256(payload).hexdigest()
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        state = self._manifest.shards[spec.bit]
        state.status = SHARD_COMPLETED
        state.attempts = attempts
        state.duration = duration
        state.checksum = digest
        self._manifest.write(self.run_dir)

    # -- execution ----------------------------------------------------------

    def _resolve_jobs(self, pending_count: int) -> int:
        from repro.inject.parallel import resolve_worker_count

        if pending_count == 0:
            return 1
        return resolve_worker_count(self.jobs, pending_count)

    def _compute_shard(self, spec: ShardSpec) -> tuple[TrialRecords, float]:
        start = time.perf_counter()
        records = run_campaign_shard(
            self.stored, self.target, spec.bit, spec.trials, spec.seed, self.baseline,
            fault_spec=self.config.fault,
        )
        return records, time.perf_counter() - start

    def _finish_shard(self, spec: ShardSpec, records: TrialRecords, duration: float,
                      attempts: int, hooks, shards_total: int, trials_total: int) -> None:
        # Persist before announcing: a hook that raises (or a kill racing
        # the event) never loses a completed shard.
        self._persist_shard(spec, records, duration, attempts)
        self._completed[spec.bit] = records
        self._busy_time += duration
        self._trials_done += spec.trials
        self._shards_done += 1
        if self._tracer is not None:
            # Serial shards (and pool shards, whose anonymous workers
            # can't write their own files) land in the coordinator's
            # trace lane; start time is reconstructed from the duration.
            self._tracer.shard_span(
                bit=spec.bit,
                attempt=attempts - 1,
                ts=time.time() - duration,
                duration=duration,
                args={"trials": spec.trials},
            )
        self._emit(hooks, "shard_finish", bit=spec.bit, attempt=attempts - 1,
                   shards_total=shards_total, trials_total=trials_total,
                   detail={"duration": round(duration, 6)})
        self._fire_artifact_chaos(spec.bit, hooks, shards_total, trials_total)

    def _fire_artifact_chaos(self, bit, hooks, shards_total, trials_total) -> None:
        """Chaos hook: damage run-dir artifacts after a shard persists."""
        if self.chaos is None or self.run_dir is None:
            return
        from repro.chaos import fire_artifact_faults

        def on_fault(spec, info):
            self.telemetry.count(f"chaos.fault.{spec.kind}")
            self._emit(hooks, "chaos_fault", bit=bit, error=f"chaos: {spec.kind}",
                       shards_total=shards_total, trials_total=trials_total,
                       detail=info)

        fire_artifact_faults(self.chaos, self.run_dir, bit,
                             shards_done=self._shards_done, on_fault=on_fault)

    def _adopt_shard(self, spec: ShardSpec, record: dict, hooks,
                     shards_total: int, trials_total: int) -> None:
        """Fold a shard completed by another worker process into this run.

        The work-stealing coordinator trusts nothing it did not compute
        itself: the shard file is re-read from disk, its exact bytes are
        checksummed against the completing worker's done record, and the
        trial count is checked before the manifest adopts the shard.
        """
        path = RunManifest.shard_path(self.run_dir, spec.bit)
        expected = record.get("checksum") or None
        actual = shard_checksum(path)
        if expected and actual != expected:
            raise RunnerError(
                f"adopted shard bit={spec.bit} fails its done-record checksum "
                f"(record {expected[:12]}, file {actual[:12]})"
            )
        records = self.records_class.read_csv(path)
        if len(records) != spec.trials:
            raise RunnerError(
                f"adopted shard bit={spec.bit} holds {len(records)} trial(s), "
                f"expected {spec.trials}"
            )
        duration = float(record.get("duration") or 0.0)
        attempts = int(record.get("attempts") or 1)
        if self._manifest is not None:
            state = self._manifest.shards[spec.bit]
            state.status = SHARD_COMPLETED
            state.attempts = attempts
            state.duration = duration
            state.checksum = actual
            state.worker = record.get("worker")
            self._manifest.write(self.run_dir)
        self._completed[spec.bit] = records
        self._busy_time += duration
        self._trials_done += spec.trials
        self._shards_done += 1
        self._emit(hooks, "shard_adopted", bit=spec.bit, attempt=attempts - 1,
                   shards_total=shards_total, trials_total=trials_total,
                   detail={"worker": record.get("worker"),
                           "duration": round(duration, 6)})

    # -- submission ---------------------------------------------------------

    def submit(self) -> RunManifest:
        """Create the run directory in *submitted* state without executing.

        Writes a fresh manifest (status ``submitted``, executor
        ``work-stealing``) and a ``run_submitted`` event, then returns.
        Any number of ``campaign worker`` processes pointed at the
        directory afterwards claim the pending shards through lease
        files and cooperate to finish the run.  Requires ``run_dir`` and
        refuses a directory that already holds a campaign.
        """
        if self.run_dir is None:
            raise RunnerError("submit requires a run_dir")
        from repro.runner.manifest import MANIFEST_NAME

        if (Path(self.run_dir) / MANIFEST_NAME).is_file():
            raise RunnerError(
                f"run directory {self.run_dir} already holds a campaign; "
                "submit into a fresh directory"
            )
        shards = self.plan()
        manifest = self._fresh_manifest(shards)
        manifest.status = RUN_SUBMITTED
        manifest.executor = "work-stealing"
        # Stamp the submitter's tracing choice so every standalone
        # worker that later claims shards follows it automatically.
        manifest.trace = self.trace_enabled
        manifest.write(self.run_dir)
        self._manifest = manifest
        self._started = time.monotonic()
        if self.trace_enabled:
            self._trace_ctx = TraceContext.for_run(
                manifest.identity(), self.run_dir, worker=default_worker_id()
            )
        with EventLogWriter(RunManifest.event_log_path(self.run_dir)) as log:
            self._emit([log, *self.hooks], "run_submitted",
                       shards_total=len(shards),
                       trials_total=sum(s.trials for s in shards),
                       detail={"target": self.target.name, "label": self.label,
                               "run_dir": str(self.run_dir)})
        return manifest

    # -- events -------------------------------------------------------------

    def _emit(self, hooks, kind: str, *, bit: int | None = None, attempt: int = 0,
              error: str | None = None, shards_total: int = 0, trials_total: int = 0,
              detail: dict | None = None) -> None:
        elapsed = max(time.monotonic() - self._started, 1e-9)
        rate = self._trials_done / elapsed if self._trials_done else None
        remaining = trials_total - self._trials_done
        eta = remaining / rate if rate and remaining > 0 else None
        utilization = (
            min(self._busy_time / (elapsed * self._effective_jobs), 1.0)
            if self._shards_done
            else None
        )
        event = RunnerEvent(
            kind=kind,
            elapsed=round(elapsed, 6),
            bit=bit,
            attempt=attempt,
            shards_done=self._shards_done,
            shards_total=shards_total,
            trials_done=self._trials_done,
            trials_total=trials_total,
            jobs=self._effective_jobs,
            trials_per_sec=round(rate, 3) if rate else None,
            eta_seconds=round(eta, 3) if eta is not None else None,
            utilization=round(utilization, 4) if utilization is not None else None,
            error=error,
            trace_id=self._trace_ctx.trace_id if self._trace_ctx else None,
            detail=detail or {},
        )
        for hook in hooks:
            dispatch_event(hook, event)


def _regenerate_dataset(manifest: RunManifest) -> np.ndarray:
    """Rebuild the dataset from the manifest's recorded source."""
    source = manifest.dataset or {}
    if source.get("kind") == "preset":
        from repro.datasets.registry import get as get_preset

        return get_preset(source["field"]).generate(
            seed=int(source["seed"]), size=int(source["size"])
        )
    if source.get("kind") == "app" and manifest.app is not None:
        from repro.apps.campaign import AppCampaignConfig

        return AppCampaignConfig.from_manifest(manifest).dataset_array()
    raise RunnerError(
        "this run's manifest does not record a regenerable dataset source; "
        "pass the original data array to resume it"
    )


def resume_campaign(run_dir: str | os.PathLike, data=None, **kwargs) -> CampaignResult:
    """Finish a partial campaign run directory.

    Loads the manifest, regenerates (or fingerprint-checks) the dataset,
    re-runs only the missing shards, and returns a
    :class:`CampaignResult` bit-identical to an uninterrupted run.
    """
    return CampaignRunner.from_run_dir(run_dir, data, **kwargs).resume()


def run_status(run_dir: str | os.PathLike) -> RunStatus:
    """Inspect a run directory without executing anything.

    When the run was profiled (``telemetry.json`` present), the status
    carries the per-phase time breakdown, surfaced by ``summary()``.
    """
    manifest = RunManifest.load(run_dir)
    # A work-stealing run's live progress is the manifest's fold plus
    # the done records workers have dropped since; merging them here
    # lets ``campaign status``/``watch`` report mid-run progress without
    # mutating anything.
    trials_by_bit = {bit: state.trials for bit, state in manifest.shards.items()}
    done_bits = set(manifest.completed_bits())
    done_bits.update(bit for bit in read_done_records(run_dir) if bit in trials_by_bit)
    missing = tuple(
        bit
        for bit in sorted(done_bits)
        if not RunManifest.shard_path(run_dir, bit).is_file()
    )
    quarantine = quarantine_dir(run_dir)
    quarantined = tuple(
        sorted(str(p.relative_to(run_dir)) for p in quarantine.iterdir())
        if quarantine.is_dir()
        else ()
    )
    snapshot = load_run_snapshot(run_dir)
    return RunStatus(
        run_dir=str(run_dir),
        target_spec=manifest.target_spec,
        label=manifest.label,
        status=manifest.status,
        shards_total=len(manifest.shards),
        shards_done=len(done_bits),
        trials_total=manifest.trials_total,
        trials_done=sum(trials_by_bit[bit] for bit in done_bits),
        pending_bits=tuple(sorted(set(trials_by_bit) - done_bits)),
        missing_shard_files=missing,
        phase_seconds=snapshot.phase_seconds() if snapshot is not None else None,
        quarantined_files=quarantined,
        executor=manifest.executor,
        cancelled=cancel_requested(run_dir),
        workers=tuple(active_leases(run_dir)),
        fault=manifest.fault,
        app=(manifest.app or {}).get("name"),
    )


