"""The work-stealing shard worker: ``campaign worker <run-dir>``.

A :class:`ShardWorker` is one independent process cooperating on a
submitted campaign through the shared run directory alone.  Its loop:

1. read the manifest (identity, shard plan) and the completion records
   under ``leases/``;
2. claim a still-pending shard via an atomic lease file
   (:func:`repro.runner.leases.try_claim`), stealing expired leases
   from dead workers;
3. compute the shard (bit-identical regardless of which worker runs it,
   thanks to per-bit ``SeedSequence.spawn`` streams), write the shard
   CSV atomically with a SHA-256 checksum, write the completion record,
   append its events to ``events.jsonl``, release the lease;
4. when every shard has a completion record, fold them into the
   manifest (:func:`fold_run`) and — if it wins the one-shot
   ``finalized`` marker — emit the closing ``run_finish`` event.

Workers never write the manifest during execution (concurrent
read-modify-write would lose shards); :func:`fold_run` derives the
manifest's shard states purely from the completion records, so folding
is idempotent and any worker (or a later ``campaign resume``) can do it.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.formats import resolve
from repro.inject.campaign import CampaignConfig, bit_seeds, run_campaign_shard
from repro.inject.results import TrialRecords
from repro.metrics.summary import SummaryStats
from repro.runner.errors import RunnerError
from repro.runner.events import EventLogWriter, RunnerEvent, dispatch_event
from repro.runner.leases import (
    DEFAULT_LEASE_TIMEOUT,
    LeaseHeartbeat,
    active_leases,
    cancel_requested,
    default_worker_id,
    read_done_records,
    try_acquire_finalize,
    try_claim,
    write_done_record,
)
from repro.runner.manifest import (
    RUN_COMPLETED,
    RUN_RUNNING,
    SHARD_COMPLETED,
    RunManifest,
)
from repro.telemetry import (
    MetricsSampler,
    MetricsWriter,
    TraceContext,
    TraceWriter,
    resolve_collector,
    resolve_trace,
    telemetry_scope,
    write_worker_snapshot,
)


@dataclass(frozen=True)
class WorkerResult:
    """What one worker's run() accomplished."""

    worker: str
    claims: int
    stolen: int
    status: str  # "completed" | "cancelled" | "idle"
    finalized: bool = False


def persist_shard_file(run_dir, bit: int, records: TrialRecords) -> str:
    """Atomically write one shard CSV; returns its SHA-256 checksum.

    Same discipline as the runner's persistence path: serialize once,
    checksum the exact bytes that hit disk, write to a temp file, rename
    into place.  The pid-suffixed temp name keeps concurrent workers
    that (pathologically) compute the same shard from clobbering each
    other's temp files — and since shards are bit-identical, whichever
    rename lands last leaves the same bytes.

    After landing, any *other* temp file for this shard is swept: a
    worker SIGKILLed mid-write leaves its ``.tmp-<pid>`` behind, and the
    stealer that recomputes the shard is the natural janitor (``verify``
    flags unexplained files, so orphans must not linger).  Should the
    swept temp belong to a live concurrent writer instead, that writer's
    own rename finds the temp gone but the shard file present with the
    identical deterministic bytes — which it treats as success.
    """
    path = RunManifest.shard_path(run_dir, bit)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = records.to_csv_string().encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest()
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    tmp.write_bytes(payload)
    try:
        os.replace(tmp, path)
    except FileNotFoundError:
        if not path.is_file():
            raise  # temp vanished and nobody landed the shard: real loss
    for stale in path.parent.glob(path.name + ".tmp-*"):
        try:
            stale.unlink()
        except OSError:
            pass
    return digest


def fold_run(run_dir) -> RunManifest:
    """Fold completion records into the manifest; idempotent.

    Derives every folded shard state purely from the ``leases/`` done
    records (checksum, duration, attempts, worker), so concurrent folds
    by racing workers write identical manifests (the write is an atomic
    replace).  When no shard remains pending the run status advances to
    completed.  Records whose shard file is missing are skipped — the
    shard simply stays pending and will be recomputed.
    """
    manifest = RunManifest.load(run_dir)
    records = read_done_records(run_dir)
    changed = False
    for bit, record in records.items():
        state = manifest.shards.get(bit)
        if state is None or state.status == SHARD_COMPLETED:
            continue
        if not RunManifest.shard_path(run_dir, bit).is_file():
            continue
        state.status = SHARD_COMPLETED
        state.checksum = record.get("checksum") or None
        state.duration = record.get("duration")
        state.attempts = int(record.get("attempts", 1))
        state.worker = record.get("worker")
        changed = True
    if not manifest.pending_bits() and manifest.status != RUN_COMPLETED:
        manifest.status = RUN_COMPLETED
        changed = True
    if changed:
        manifest.write(run_dir)
    return manifest


class ShardWorker:
    """One cooperating worker process for a submitted campaign.

    Parameters
    ----------
    run_dir:
        The shared run directory (manifest + leases + shards + events).
    worker_id:
        Identity recorded in leases, done records, and events; defaults
        to ``<hostname>-<pid>``.
    stored / target / baseline:
        The round-tripped dataset, target (format or spec string), and
        baseline stats — passed by the in-run executor whose fork
        already holds them.  When omitted (the standalone ``campaign
        worker`` path) the dataset is regenerated from the manifest's
        recorded provenance and round-tripped here.
    lease_timeout:
        Seconds of heartbeat silence before another worker's lease is
        presumed orphaned and stolen.
    poll_interval:
        Sleep between sweeps when nothing was claimable.
    max_claims:
        Stop after claiming this many shards (None = unlimited).
    max_idle_seconds:
        Give up after this long without any observable progress across
        the whole run (None = wait forever).  Returns ``status="idle"``.
    max_retries / retry_backoff:
        Per-shard in-worker retry budget, as in the runner.
    chaos:
        Optional fault plan fired before each compute attempt (in-run
        children inherit the runner's plan across the fork).
    finalize:
        Fold + finalize when the run completes.  The in-run executor's
        children pass False — their coordinator owns the manifest.
    hooks:
        Optional extra event consumers (beyond the events.jsonl append).
    telemetry:
        Profiling control (:func:`repro.telemetry.resolve_collector`).
        When enabled, this worker's snapshot is written to
        ``telemetry-workers/<worker>.json`` beside its done records on
        exit, where ``load_run_snapshot`` / ``telemetry report`` merge
        it with every other worker's — restoring the jobs=1 ≡ N-worker
        counter identity for distributed runs.
    trace:
        Distributed tracing + metrics control: ``None`` follows
        ``REPRO_TRACE`` and then the manifest's recorded flag (so a
        ``campaign submit --trace`` run is traced by every worker that
        joins it), booleans force it.
    metrics_interval:
        Seconds between time-series sample points (default 1.0).
    """

    def __init__(
        self,
        run_dir,
        *,
        worker_id: str | None = None,
        stored: np.ndarray | None = None,
        target=None,
        baseline: SummaryStats | None = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        poll_interval: float = 0.2,
        max_claims: int | None = None,
        max_idle_seconds: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        chaos=None,
        finalize: bool = True,
        hooks=None,
        telemetry=None,
        trace=None,
        metrics_interval: float = 1.0,
    ):
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be positive, got {lease_timeout}")
        self.run_dir = Path(run_dir)
        self.worker_id = worker_id or default_worker_id()
        self.lease_timeout = float(lease_timeout)
        self.poll_interval = float(poll_interval)
        self.max_claims = max_claims
        self.max_idle_seconds = max_idle_seconds
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.chaos = chaos
        self.finalize = finalize
        if hooks is None:
            hooks = []
        elif not isinstance(hooks, (list, tuple)):
            hooks = [hooks]
        self.hooks = list(hooks)
        self._stored = stored
        self._target = resolve(target) if target is not None else None
        self._baseline = baseline
        self._failed: set[int] = set()
        self._fault_spec = "single"  # replaced from the manifest in _load
        self._app_config = None  # set in _load for app-campaign runs
        self._started = 0.0
        self.telemetry = resolve_collector(telemetry)
        self._trace_arg = trace
        self.metrics_interval = float(metrics_interval)
        self._trace_ctx: TraceContext | None = None
        self._tracer: TraceWriter | None = None
        self._my_claims = 0
        self._my_trials = 0

    # -- setup --------------------------------------------------------------

    def _load(self) -> tuple[RunManifest, dict]:
        manifest = RunManifest.load(self.run_dir)
        if manifest.status == RUN_RUNNING and manifest.executor not in (
            None, "work-stealing",
        ):
            raise RunnerError(
                f"run {self.run_dir} is executing under the "
                f"{manifest.executor!r} executor, which does not coordinate "
                "through leases; a work-stealing worker cannot join it"
            )
        if self._target is None:
            self._target = resolve(manifest.target_spec)
        if self._stored is None:
            from repro.runner.runner import _regenerate_dataset

            flat = np.asarray(_regenerate_dataset(manifest)).reshape(-1)
            self._stored = self._target.round_trip(flat)
        if self._baseline is None:
            self._baseline = SummaryStats.from_array(self._stored)
        self._fault_spec = manifest.fault
        if manifest.app is not None:
            # App campaign: shards are (iteration, bit) cells whose seeds
            # are a pure function of (seed, iteration, bit), so this
            # worker replays any cell byte-identically to any other.
            from repro.apps.campaign import AppCampaignConfig, cell_seeds

            self._app_config = AppCampaignConfig.from_manifest(manifest)
            return manifest, cell_seeds(self._app_config, self._target)
        config = CampaignConfig(
            trials_per_bit=manifest.trials_per_bit,
            bits=manifest.bits,
            seed=manifest.seed,
            fault=manifest.fault,
        )
        self._fault_spec = config.fault
        seeds = bit_seeds(config, self._target)
        return manifest, seeds

    # -- events -------------------------------------------------------------

    def _emit(self, log, kind: str, *, bit: int | None = None,
              shards_done: int = 0, shards_total: int = 0,
              trials_done: int = 0, trials_total: int = 0,
              error: str | None = None, detail: dict | None = None) -> None:
        detail = dict(detail or {})
        detail.setdefault("worker", self.worker_id)
        event = RunnerEvent(
            kind=kind,
            elapsed=round(max(time.monotonic() - self._started, 0.0), 6),
            bit=bit,
            shards_done=shards_done,
            shards_total=shards_total,
            trials_done=trials_done,
            trials_total=trials_total,
            error=error,
            trace_id=self._trace_ctx.trace_id if self._trace_ctx else None,
            detail=detail,
        )
        for hook in [log, *self.hooks]:
            dispatch_event(hook, event)

    # -- the loop -----------------------------------------------------------

    def run(self) -> WorkerResult:
        """Claim, compute, and record shards until the run is done.

        Observability wraps — never alters — the claim loop: the
        worker's own telemetry collector is scoped around it, its
        snapshot lands beside the done records on exit, and when the run
        is traced this worker appends spans and time-series points to
        its own files under ``trace/`` and ``metrics/``.
        """
        self._started = time.monotonic()
        wall_start = time.time()
        sampler = None
        result: WorkerResult | None = None
        try:
            with telemetry_scope(self.telemetry):
                manifest, seeds = self._load()
                trace_on = resolve_trace(self._trace_arg) or (
                    self._trace_arg is None and manifest.trace
                )
                if trace_on:
                    self._trace_ctx = TraceContext.for_run(
                        manifest.identity(), self.run_dir, worker=self.worker_id
                    )
                    self._tracer = TraceWriter(self.run_dir, self._trace_ctx)
                    sampler = MetricsSampler(
                        MetricsWriter(self.run_dir, self.worker_id),
                        self._sample_metrics,
                        interval=self.metrics_interval,
                    ).start()
                result = self._run_loop(manifest, seeds)
                return result
        finally:
            if sampler is not None:
                sampler.stop()
            if self.telemetry.enabled:
                snapshot = self.telemetry.snapshot()
                if not snapshot.empty:
                    write_worker_snapshot(snapshot, self.run_dir, self.worker_id)
            if self._tracer is not None:
                ctx = self._trace_ctx
                self._tracer.emit(
                    f"worker {ctx.worker}",
                    ts=wall_start,
                    duration=time.time() - wall_start,
                    span_id=ctx.worker_span_id,
                    parent_id=ctx.run_span_id,
                    category="worker",
                    args={
                        "role": "standalone" if self.finalize else "forked",
                        "claims": result.claims if result else self._my_claims,
                        "status": result.status if result else "error",
                    },
                )
                self._tracer.close()
                self._tracer = None

    def _sample_metrics(self) -> dict:
        """One time-series point for this worker (the sampler callable)."""
        point = {
            "trials_done": self._my_trials,
            "shards_done": self._my_claims,
        }
        try:
            point["leases_active"] = len(active_leases(self.run_dir))
        except OSError:
            pass
        if self.telemetry.enabled:
            phases = self.telemetry.snapshot().phase_seconds()
            if phases:
                point["phase_seconds"] = {
                    name: round(seconds, 6) for name, seconds in phases.items()
                }
        return point

    def _run_loop(self, manifest: RunManifest, seeds: dict) -> WorkerResult:
        shards_total = len(manifest.shards)
        trials_total = manifest.trials_total
        already = set(manifest.completed_bits())
        claims = 0
        stolen = 0
        status = "completed"
        finalized = False
        last_progress = time.monotonic()
        last_seen_done = -1

        with EventLogWriter(RunManifest.event_log_path(self.run_dir)) as log:
            self._emit(log, "worker_start", shards_total=shards_total,
                       trials_total=trials_total,
                       detail={"pid": os.getpid(),
                               "lease_timeout": self.lease_timeout})
            while True:
                if cancel_requested(self.run_dir):
                    status = "cancelled"
                    break
                done = read_done_records(self.run_dir)
                done_bits = already | set(done)
                remaining = [b for b in sorted(manifest.shards)
                             if b not in done_bits]
                if not remaining:
                    break
                if len(done_bits) != last_seen_done:
                    last_seen_done = len(done_bits)
                    last_progress = time.monotonic()
                claimable = [b for b in remaining if b not in self._failed]
                if not claimable and not active_leases(self.run_dir):
                    raise RunnerError(
                        f"worker {self.worker_id} exhausted retries on bit(s) "
                        f"{sorted(self._failed)} and no other worker holds "
                        "a lease on them"
                    )
                progressed = False
                for bit in claimable:
                    if self.max_claims is not None and claims >= self.max_claims:
                        break
                    lease = try_claim(self.run_dir, bit, self.worker_id,
                                      lease_timeout=self.lease_timeout)
                    if lease is None:
                        continue
                    if read_done_records(self.run_dir).get(bit) is not None:
                        lease.release()  # finished between our scan and claim
                        continue
                    progressed = True
                    last_progress = time.monotonic()
                    counts = {"shards_done": len(done_bits),
                              "shards_total": shards_total,
                              "trials_done": sum(
                                  manifest.shards[b].trials for b in done_bits),
                              "trials_total": trials_total}
                    if lease.stolen_from:
                        stolen += 1
                        self._emit(log, "lease_stolen", bit=bit,
                                   error=f"lease of {lease.stolen_from} expired",
                                   detail={"stolen_from": lease.stolen_from},
                                   **counts)
                    self._emit(log, "shard_claimed", bit=bit, **counts)
                    outcome = self._run_shard(log, lease, bit,
                                              manifest.shards[bit].trials,
                                              seeds[bit], counts)
                    lease.release()
                    if outcome:
                        claims += 1
                if self.max_claims is not None and claims >= self.max_claims:
                    status = "idle"
                    break
                if not progressed:
                    if (self.max_idle_seconds is not None
                            and time.monotonic() - last_progress
                            > self.max_idle_seconds):
                        status = "idle"
                        break
                    time.sleep(self.poll_interval)

            if status == "completed" and self.finalize:
                folded = fold_run(self.run_dir)
                if (folded.status == RUN_COMPLETED
                        and try_acquire_finalize(self.run_dir, self.worker_id)):
                    finalized = True
                    self._emit(log, "run_finish",
                               shards_done=len(folded.completed_bits()),
                               shards_total=shards_total,
                               trials_done=folded.trials_done,
                               trials_total=trials_total,
                               detail={"finalized_by": self.worker_id})
            self._emit(log, "worker_exit", shards_total=shards_total,
                       trials_total=trials_total,
                       detail={"claims": claims, "stolen": stolen,
                               "status": status, "finalized": finalized})
        return WorkerResult(worker=self.worker_id, claims=claims,
                            stolen=stolen, status=status, finalized=finalized)

    def _run_shard(self, log, lease, bit: int, trials: int, seed, counts) -> bool:
        """Compute + persist one claimed shard; False if retries exhausted."""
        attempts = 0
        with LeaseHeartbeat(lease, self.lease_timeout / 3.0):
            while True:
                attempts += 1
                try:
                    if self.chaos is not None:
                        from repro.chaos import fire_compute_faults

                        fire_compute_faults(self.chaos, bit, attempts - 1)
                    start = time.perf_counter()
                    if self._app_config is not None:
                        from repro.apps.campaign import run_app_shard

                        records = run_app_shard(
                            self._app_config, self._target, bit, trials, seed,
                        )
                    else:
                        records = run_campaign_shard(
                            self._stored, self._target, bit, trials, seed,
                            self._baseline, fault_spec=self._fault_spec,
                        )
                    duration = time.perf_counter() - start
                    break
                except Exception as error:
                    self._emit(log, "shard_error", bit=bit,
                               error=repr(error), **counts)
                    if attempts > self.max_retries:
                        # Leave the shard for a healthier worker; only if
                        # nobody else can take it does the loop raise.
                        self._failed.add(bit)
                        return False
                    time.sleep(self.retry_backoff * (2 ** (attempts - 1)))
                    self._emit(log, "shard_retry", bit=bit,
                               error=repr(error), **counts)
            checksum = persist_shard_file(self.run_dir, bit, records)
            write_done_record(
                self.run_dir, bit,
                trials=len(records), duration=duration, attempts=attempts,
                checksum=checksum, worker=self.worker_id,
            )
            self._my_claims += 1
            self._my_trials += len(records)
            if self._tracer is not None:
                self._tracer.shard_span(
                    bit=bit,
                    attempt=attempts - 1,
                    ts=time.time() - duration,
                    duration=duration,
                    args={"trials": len(records)},
                )
            self._emit(log, "shard_finish", bit=bit,
                       detail={"duration": round(duration, 6)},
                       **{**counts, "shards_done": counts["shards_done"] + 1,
                          "trials_done": counts["trials_done"] + len(records)})
        return True


def run_worker(run_dir, **kwargs) -> WorkerResult:
    """Convenience wrapper: construct and run one :class:`ShardWorker`."""
    return ShardWorker(run_dir, **kwargs).run()
