"""The run manifest: everything needed to resume a campaign faithfully.

A run directory looks like::

    run-dir/
      manifest.json       <- this module
      events.jsonl        <- repro.runner.events
      shards/bit-007.csv  <- one TrialRecords CSV per completed shard

The manifest pins the campaign *identity* — config, root seed, canonical
format spec, dataset fingerprint, code version — so a resume can refuse
to mix shards from a different campaign, and records per-shard status
plus a SHA-256 content checksum per completed shard, so a resume trusts
nothing it cannot verify.  Writes go through an atomic replace; a kill
mid-write never corrupts the previous manifest.  Shard files that fail
verification are moved to ``shards/quarantine/`` (never silently
deleted) and their shards demoted to pending.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

import repro
from repro.runner.errors import ManifestError

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
EVENT_LOG_NAME = "events.jsonl"
SHARD_DIR_NAME = "shards"
QUARANTINE_DIR_NAME = "quarantine"

#: Shard lifecycle states recorded in the manifest.
SHARD_PENDING = "pending"
SHARD_COMPLETED = "completed"

#: Run lifecycle states.  A *submitted* run has a manifest and a shard
#: plan but no executing process yet — work-stealing ``campaign worker``
#: processes pick it up through lease files.
RUN_SUBMITTED = "submitted"
RUN_RUNNING = "running"
RUN_INTERRUPTED = "interrupted"
RUN_COMPLETED = "completed"


def dataset_fingerprint(data: np.ndarray) -> str:
    """A stable content hash of the campaign's input array.

    Covers dtype, element count, and raw bytes of the flattened array —
    a resume against different data (same shape, different values)
    fails loudly instead of silently mixing shards.
    """
    flat = np.ascontiguousarray(np.asarray(data).reshape(-1))
    digest = hashlib.sha256()
    digest.update(str(flat.dtype).encode())
    digest.update(str(flat.size).encode())
    digest.update(flat.tobytes())
    return digest.hexdigest()[:16]


def shard_file_name(bit: int) -> str:
    return f"bit-{bit:03d}.csv"


def shard_checksum(path: str | os.PathLike) -> str:
    """SHA-256 hex digest of a shard file's exact bytes.

    Recorded in the manifest when a shard persists and re-verified on
    resume and by ``campaign verify`` — a single flipped bit anywhere in
    the file changes the digest.
    """
    digest = hashlib.sha256()
    with open(Path(path), "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def quarantine_dir(run_dir: str | os.PathLike) -> Path:
    """Where corrupt shard files are preserved for post-mortems."""
    return Path(run_dir) / SHARD_DIR_NAME / QUARANTINE_DIR_NAME


def quarantine_file(run_dir: str | os.PathLike, path: Path) -> Path:
    """Move a corrupt artifact into the quarantine directory.

    The evidence is preserved, never deleted: repeated quarantines of
    the same shard get numeric suffixes instead of overwriting.
    """
    directory = quarantine_dir(run_dir)
    directory.mkdir(parents=True, exist_ok=True)
    dest = directory / path.name
    counter = 1
    while dest.exists():
        dest = directory / f"{path.name}.{counter}"
        counter += 1
    os.replace(path, dest)
    return dest


@dataclass
class ShardState:
    """Per-shard bookkeeping persisted in the manifest."""

    bit: int
    trials: int
    status: str = SHARD_PENDING
    attempts: int = 0
    duration: float | None = None
    checksum: str | None = None
    worker: str | None = None

    def to_json(self) -> dict:
        payload = {"bit": self.bit, "trials": self.trials, "status": self.status}
        if self.attempts:
            payload["attempts"] = self.attempts
        if self.duration is not None:
            payload["duration"] = round(self.duration, 6)
        if self.checksum is not None:
            payload["checksum"] = self.checksum
        if self.worker is not None:
            payload["worker"] = self.worker
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "ShardState":
        return cls(
            bit=int(payload["bit"]),
            trials=int(payload["trials"]),
            status=payload.get("status", SHARD_PENDING),
            attempts=int(payload.get("attempts", 0)),
            duration=payload.get("duration"),
            checksum=payload.get("checksum"),
            worker=payload.get("worker"),
        )


@dataclass
class RunManifest:
    """Identity + progress of one campaign run directory."""

    target_spec: str
    label: str
    trials_per_bit: int
    bits: tuple[int, ...] | None
    seed: int
    data_fingerprint: str
    data_size: int
    #: Canonical fault-model spec (see :mod:`repro.inject.faultspec`).
    #: Part of the identity when non-default; serialized only when it
    #: differs from ``single`` so pre-fault-dimension manifests are
    #: byte-identical and still load.
    fault: str = "single"
    #: App-campaign payload (solver name, grid, injection schedule,
    #: thresholds) when the run's shards are (iteration, bit) cells in
    #: live solver state instead of value-corruption bits.  ``None`` for
    #: classic value campaigns and omitted from serialization so
    #: existing manifests stay byte-identical.
    app: dict | None = None
    shards: dict[int, ShardState] = field(default_factory=dict)
    dataset: dict | None = None
    status: str = RUN_RUNNING
    #: Which executor last drove (or is meant to drive) this run.  Not
    #: part of the identity: a run may be submitted for work-stealing
    #: workers and later finished by a serial resume, or vice versa.
    executor: str | None = None
    #: Whether the run was submitted with distributed tracing on.  Like
    #: ``executor``, excluded from the identity — it changes only what
    #: side-channel files workers write, never the shard CSV bytes —
    #: but recorded so late-joining standalone workers follow the run's
    #: choice without needing ``REPRO_TRACE`` set on every machine.
    trace: bool = False
    code_version: str = repro.__version__
    created_at: float = 0.0
    version: int = MANIFEST_VERSION

    # -- identity -----------------------------------------------------------

    def identity(self) -> dict:
        """The fields a resume must match exactly.

        ``fault`` joins the identity only when non-default, so identity
        payloads of plain single-flip runs are unchanged from manifests
        written before the fault dimension existed.
        """
        payload = {
            "target_spec": self.target_spec,
            "trials_per_bit": self.trials_per_bit,
            "bits": list(self.bits) if self.bits is not None else None,
            "seed": self.seed,
            "data_fingerprint": self.data_fingerprint,
            "data_size": self.data_size,
        }
        if self.fault != "single":
            payload["fault"] = self.fault
        if self.app is not None:
            payload["app"] = self.app
        return payload

    def mismatches(self, other: "RunManifest") -> list[str]:
        """Human-readable identity differences against another manifest."""
        ours, theirs = self.identity(), other.identity()
        ours.setdefault("fault", "single")
        theirs.setdefault("fault", "single")
        ours.setdefault("app", None)
        theirs.setdefault("app", None)
        return [
            f"{key}: run has {theirs[key]!r}, caller has {ours[key]!r}"
            for key in ours
            if ours[key] != theirs[key]
        ]

    # -- progress -----------------------------------------------------------

    def completed_bits(self) -> list[int]:
        return sorted(b for b, s in self.shards.items() if s.status == SHARD_COMPLETED)

    def pending_bits(self) -> list[int]:
        return sorted(b for b, s in self.shards.items() if s.status != SHARD_COMPLETED)

    @property
    def trials_total(self) -> int:
        return sum(state.trials for state in self.shards.values())

    @property
    def trials_done(self) -> int:
        return sum(
            state.trials for state in self.shards.values() if state.status == SHARD_COMPLETED
        )

    # -- serialization ------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "manifest_version": self.version,
            "status": self.status,
            "executor": self.executor,
            "trace": self.trace,
            "created_at": self.created_at,
            "code_version": self.code_version,
            "target_spec": self.target_spec,
            "label": self.label,
            "config": {
                "trials_per_bit": self.trials_per_bit,
                "bits": list(self.bits) if self.bits is not None else None,
                "seed": self.seed,
                # Omit-when-default keeps pre-fault-dimension manifests
                # byte-identical.
                **({"fault": self.fault} if self.fault != "single" else {}),
                **({"app": self.app} if self.app is not None else {}),
            },
            "data": {
                "fingerprint": self.data_fingerprint,
                "size": self.data_size,
                "source": self.dataset,
            },
            "shards": [self.shards[bit].to_json() for bit in sorted(self.shards)],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RunManifest":
        config = payload["config"]
        data = payload["data"]
        bits = config.get("bits")
        manifest = cls(
            target_spec=payload["target_spec"],
            label=payload.get("label", ""),
            trials_per_bit=int(config["trials_per_bit"]),
            bits=tuple(bits) if bits is not None else None,
            seed=int(config["seed"]),
            data_fingerprint=data["fingerprint"],
            data_size=int(data["size"]),
            fault=config.get("fault", "single"),
            app=config.get("app"),
            dataset=data.get("source"),
            status=payload.get("status", RUN_RUNNING),
            executor=payload.get("executor"),
            trace=bool(payload.get("trace", False)),
            code_version=payload.get("code_version", "unknown"),
            created_at=float(payload.get("created_at", 0.0)),
            version=int(payload.get("manifest_version", MANIFEST_VERSION)),
        )
        for entry in payload.get("shards", []):
            state = ShardState.from_json(entry)
            manifest.shards[state.bit] = state
        return manifest

    # -- filesystem ---------------------------------------------------------

    def write(self, run_dir: str | os.PathLike) -> None:
        """Atomically (re)write ``manifest.json`` in ``run_dir``."""
        directory = Path(run_dir)
        directory.mkdir(parents=True, exist_ok=True)
        if not self.created_at:
            self.created_at = time.time()
        tmp = directory / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(self.to_json(), indent=2))
        os.replace(tmp, directory / MANIFEST_NAME)

    @classmethod
    def load(cls, run_dir: str | os.PathLike) -> "RunManifest":
        path = Path(run_dir) / MANIFEST_NAME
        if not path.is_file():
            raise FileNotFoundError(f"no campaign run manifest at {path}")
        recovery = (
            "recovery options: restore the manifest from a backup copy, or "
            "delete the run directory and re-run the campaign fresh "
            "(without the manifest's checksums the shard files cannot be "
            "trusted)"
        )
        try:
            payload = json.loads(path.read_bytes().decode("utf-8", errors="strict"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ManifestError(
                f"campaign manifest {path} is corrupt and cannot be parsed "
                f"({error}); {recovery}"
            ) from error
        try:
            return cls.from_json(payload)
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise ManifestError(
                f"campaign manifest {path} is malformed "
                f"(missing or invalid field: {error!r}); {recovery}"
            ) from error

    @staticmethod
    def quarantine_dir(run_dir: str | os.PathLike) -> Path:
        return quarantine_dir(run_dir)

    @staticmethod
    def shard_path(run_dir: str | os.PathLike, bit: int) -> Path:
        return Path(run_dir) / SHARD_DIR_NAME / shard_file_name(bit)

    @staticmethod
    def event_log_path(run_dir: str | os.PathLike) -> Path:
        return Path(run_dir) / EVENT_LOG_NAME
