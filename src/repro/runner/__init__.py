"""Resumable campaign execution: plans, shards, manifests, events.

The runner is the single execution engine behind every campaign entry
point (``repro.inject.run_campaign``, suites, experiments, the CLI).  It
turns a campaign into a plan of per-bit *shards*, executes them serially
or on a process pool, persists each completed shard plus a JSON manifest
under a run directory, emits observable events (hooks, a terminal
progress renderer, a JSONL event log), retries failed shards with
backoff, and can resume a partial run to a result bit-identical to an
uninterrupted one.
"""

from repro.runner.events import (
    EventLogWriter,
    ProgressRenderer,
    RunnerEvent,
    RunnerHooks,
    close_hooks,
    read_event_log,
)
from repro.runner.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    RunManifest,
    ShardState,
    dataset_fingerprint,
)
from repro.runner.runner import (
    CampaignRunner,
    RunnerError,
    RunStatus,
    ShardSpec,
    resume_campaign,
    run_status,
)

__all__ = [
    "CampaignRunner",
    "EventLogWriter",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "ProgressRenderer",
    "RunManifest",
    "RunStatus",
    "RunnerError",
    "RunnerEvent",
    "RunnerHooks",
    "ShardSpec",
    "ShardState",
    "close_hooks",
    "dataset_fingerprint",
    "read_event_log",
    "resume_campaign",
    "run_status",
]
