"""Resumable campaign execution: plans, shards, manifests, events.

The runner is the single execution engine behind every campaign entry
point (``repro.inject.run_campaign``, suites, experiments, the CLI).  It
turns a campaign into a plan of per-bit *shards*, hands them to a
pluggable :class:`Executor` (serial, process pool, or lease-based
work-stealing across independent processes — see
:mod:`repro.runner.executors`), persists each completed shard plus a
JSON manifest under a run directory, emits observable events (hooks, a
terminal progress renderer, a JSONL event log), retries failed shards
with backoff, and can resume a partial run to a result bit-identical to
an uninterrupted one.  The runner is *policy* (planning, persistence,
verification, events); executors are *mechanism* (how pending shards
get computed), and :mod:`repro.runner.worker` lets standalone
``campaign worker`` processes cooperate on a submitted run through
atomic lease files.

Hardening (see ``docs/robustness.md``): shard files are written
atomically and carry SHA-256 checksums verified on resume (corrupt
files are quarantined under ``shards/quarantine/``, never trusted),
pool workers heartbeat so hung or dead workers are killed and their
shards requeued, SIGTERM checkpoints like Ctrl-C, and
:func:`verify_run` audits a run directory end to end.
"""

from repro.runner.errors import ManifestError, RunnerError, SignalInterrupt
from repro.runner.events import (
    EventLogWriter,
    ProgressRenderer,
    RunnerEvent,
    RunnerHooks,
    close_hooks,
    read_event_log,
)
from repro.runner.executors import (
    EXECUTOR_REGISTRY,
    ExecutionContext,
    Executor,
    PoolExecutor,
    SerialExecutor,
    WorkStealingExecutor,
    resolve_executor,
)
from repro.runner.leases import (
    active_leases,
    cancel_requested,
    default_worker_id,
    read_done_records,
    request_cancel,
)
from repro.runner.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    RunManifest,
    ShardState,
    dataset_fingerprint,
    quarantine_dir,
    shard_checksum,
)
from repro.runner.runner import (
    CampaignRunner,
    RunStatus,
    ShardSpec,
    resume_campaign,
    run_status,
)
from repro.runner.verify import Finding, VerifyReport, verify_run
from repro.runner.worker import ShardWorker, WorkerResult, fold_run, run_worker

__all__ = [
    "CampaignRunner",
    "EXECUTOR_REGISTRY",
    "EventLogWriter",
    "ExecutionContext",
    "Executor",
    "Finding",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "ManifestError",
    "PoolExecutor",
    "ProgressRenderer",
    "RunManifest",
    "RunStatus",
    "RunnerError",
    "RunnerEvent",
    "RunnerHooks",
    "SerialExecutor",
    "ShardSpec",
    "ShardState",
    "ShardWorker",
    "SignalInterrupt",
    "VerifyReport",
    "WorkStealingExecutor",
    "WorkerResult",
    "active_leases",
    "cancel_requested",
    "close_hooks",
    "dataset_fingerprint",
    "default_worker_id",
    "fold_run",
    "quarantine_dir",
    "read_event_log",
    "request_cancel",
    "resolve_executor",
    "resume_campaign",
    "run_status",
    "run_worker",
    "shard_checksum",
    "verify_run",
]
