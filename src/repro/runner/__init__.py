"""Resumable campaign execution: plans, shards, manifests, events.

The runner is the single execution engine behind every campaign entry
point (``repro.inject.run_campaign``, suites, experiments, the CLI).  It
turns a campaign into a plan of per-bit *shards*, executes them serially
or on a process pool, persists each completed shard plus a JSON manifest
under a run directory, emits observable events (hooks, a terminal
progress renderer, a JSONL event log), retries failed shards with
backoff, and can resume a partial run to a result bit-identical to an
uninterrupted one.

Hardening (see ``docs/robustness.md``): shard files are written
atomically and carry SHA-256 checksums verified on resume (corrupt
files are quarantined under ``shards/quarantine/``, never trusted),
pool workers heartbeat so hung or dead workers are killed and their
shards requeued, SIGTERM checkpoints like Ctrl-C, and
:func:`verify_run` audits a run directory end to end.
"""

from repro.runner.errors import ManifestError, RunnerError, SignalInterrupt
from repro.runner.events import (
    EventLogWriter,
    ProgressRenderer,
    RunnerEvent,
    RunnerHooks,
    close_hooks,
    read_event_log,
)
from repro.runner.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    RunManifest,
    ShardState,
    dataset_fingerprint,
    quarantine_dir,
    shard_checksum,
)
from repro.runner.runner import (
    CampaignRunner,
    RunStatus,
    ShardSpec,
    resume_campaign,
    run_status,
)
from repro.runner.verify import Finding, VerifyReport, verify_run

__all__ = [
    "CampaignRunner",
    "EventLogWriter",
    "Finding",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "ManifestError",
    "ProgressRenderer",
    "RunManifest",
    "RunStatus",
    "RunnerError",
    "RunnerEvent",
    "RunnerHooks",
    "ShardSpec",
    "ShardState",
    "SignalInterrupt",
    "VerifyReport",
    "close_hooks",
    "dataset_fingerprint",
    "quarantine_dir",
    "read_event_log",
    "resume_campaign",
    "run_status",
    "shard_checksum",
    "verify_run",
]
