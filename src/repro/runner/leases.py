"""Filesystem lease protocol for multi-worker shard execution.

Work-stealing workers coordinate through the run directory alone — no
broker, no sockets — so any process that can see the filesystem can join
a campaign.  The protocol has three artifacts, all under
``<run-dir>/leases/``:

``bit-NNN.lease``
    An exclusive claim on one shard, created with ``O_CREAT | O_EXCL``
    (atomic on POSIX filesystems, including NFS v3+ for local-style
    mounts).  The file's *mtime* is the worker's heartbeat: a
    :class:`LeaseHeartbeat` thread refreshes it while the shard
    computes.  A lease whose mtime is older than the run's
    ``lease_timeout`` is presumed orphaned (worker crashed, was
    SIGKILLed, or lost the filesystem) and may be *stolen*.
``bit-NNN.done.json``
    The shard's completion record: trial count, duration, attempts,
    the shard CSV's SHA-256 checksum, and the worker identity.  Workers
    never write the shared manifest (concurrent read-modify-write would
    lose updates); completion records are folded into the manifest by
    exactly one finalizer (:func:`repro.runner.worker.fold_run`).
``finalized``
    An ``O_EXCL`` marker electing the single worker that emits the
    ``run_finish`` event, so cooperating workers close the run once.

Stealing is itself race-free: the stealer *renames* the stale lease to
a unique name first — only one of several concurrent stealers wins the
rename (the losers get ``FileNotFoundError``) — then re-claims through
the normal ``O_EXCL`` path.

A ``CANCELLED`` sentinel at the run-directory root asks every worker to
stop claiming and exit (``campaign cancel``).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path

LEASE_DIR_NAME = "leases"
LEASE_SUFFIX = ".lease"
DONE_SUFFIX = ".done.json"
FINALIZED_NAME = "finalized"
CANCEL_NAME = "CANCELLED"

#: Default seconds of heartbeat silence before a lease may be stolen.
DEFAULT_LEASE_TIMEOUT = 30.0

_steal_counter = 0
_steal_lock = threading.Lock()


def default_worker_id() -> str:
    """A worker identity unique across cooperating machines: host-pid."""
    return f"{socket.gethostname()}-{os.getpid()}"


def lease_dir(run_dir: str | os.PathLike) -> Path:
    return Path(run_dir) / LEASE_DIR_NAME


def lease_path(run_dir: str | os.PathLike, bit: int) -> Path:
    return lease_dir(run_dir) / f"bit-{bit:03d}{LEASE_SUFFIX}"


def done_path(run_dir: str | os.PathLike, bit: int) -> Path:
    return lease_dir(run_dir) / f"bit-{bit:03d}{DONE_SUFFIX}"


def cancel_path(run_dir: str | os.PathLike) -> Path:
    return Path(run_dir) / CANCEL_NAME


@dataclass(frozen=True)
class Lease:
    """One successful shard claim, held until released or stolen."""

    bit: int
    worker: str
    path: Path
    stolen_from: str | None = None

    def refresh(self) -> None:
        """Heartbeat: bump the lease file's mtime.

        Missing-file errors are swallowed — if the lease was stolen
        (this worker was presumed dead), the rightful owner's work
        stands and this worker's redundant result is bit-identical
        anyway, so there is nothing useful to do with the failure.
        """
        try:
            os.utime(self.path)
        except OSError:
            pass

    def release(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


def read_lease(path: Path) -> dict | None:
    """The lease's claim payload, or None if missing/torn."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None


def lease_age(path: Path) -> float | None:
    """Seconds since the lease last heartbeat, or None if missing."""
    try:
        return max(time.time() - path.stat().st_mtime, 0.0)
    except OSError:
        return None


def _write_exclusive(path: Path, payload: dict) -> bool:
    """Atomically create ``path`` with ``payload``; False if it exists."""
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return True


def try_claim(
    run_dir: str | os.PathLike,
    bit: int,
    worker: str,
    *,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
) -> Lease | None:
    """Attempt to claim one shard; steal an expired lease if needed.

    Returns the held :class:`Lease` on success (``stolen_from`` set when
    an orphaned claim was taken over) or ``None`` when another worker
    holds a live lease — the caller should move on to the next shard.
    """
    path = lease_path(run_dir, bit)
    payload = {
        "bit": bit,
        "worker": worker,
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "claimed_at": time.time(),
    }
    if _write_exclusive(path, payload):
        return Lease(bit=bit, worker=worker, path=path)

    age = lease_age(path)
    if age is None or age <= lease_timeout:
        return None  # live claim (or claim vanished mid-look; next poll retries)

    # Expired: steal via atomic rename — exactly one stealer wins.
    previous = read_lease(path) or {}
    global _steal_counter
    with _steal_lock:
        _steal_counter += 1
        token = _steal_counter
    stale = path.with_name(f"{path.name}.stale-{os.getpid()}-{token}")
    try:
        os.rename(path, stale)
    except (FileNotFoundError, OSError):
        return None  # lost the steal race (or the owner finished/released)
    try:
        stale.unlink()
    except OSError:
        pass
    if not _write_exclusive(path, payload):
        return None  # a third worker re-claimed between rename and create
    return Lease(
        bit=bit, worker=worker, path=path,
        stolen_from=previous.get("worker", "unknown"),
    )


class LeaseHeartbeat:
    """Background mtime refresh for a held lease, as a context manager.

    ``run_campaign_shard`` is one blocking vectorized call, so the
    heartbeat runs on a daemon thread: while the shard computes, the
    lease's mtime advances and other workers leave it alone.  A worker
    killed mid-compute stops refreshing, the lease ages past the
    timeout, and the shard is stolen — that is the recovery path.
    """

    def __init__(self, lease: Lease, interval: float):
        self.lease = lease
        self.interval = max(interval, 0.01)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "LeaseHeartbeat":
        self._thread = threading.Thread(target=self._beat, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 1.0)

    def _beat(self) -> None:
        while not self._stop.wait(self.interval):
            self.lease.refresh()


def write_done_record(
    run_dir: str | os.PathLike,
    bit: int,
    *,
    trials: int,
    duration: float,
    attempts: int,
    checksum: str,
    worker: str,
) -> Path:
    """Persist a shard's completion record (atomic temp + replace)."""
    path = done_path(run_dir, bit)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "bit": bit,
        "trials": trials,
        "duration": round(duration, 6),
        "attempts": attempts,
        "checksum": checksum,
        "worker": worker,
        "completed_at": time.time(),
    }
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    tmp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_done_records(run_dir: str | os.PathLike) -> dict[int, dict]:
    """All parseable completion records, keyed by bit."""
    directory = lease_dir(run_dir)
    if not directory.is_dir():
        return {}
    records: dict[int, dict] = {}
    for path in sorted(directory.glob(f"bit-*{DONE_SUFFIX}")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            records[int(payload["bit"])] = payload
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            continue  # torn record: the shard will simply be recomputed
    return records


def active_leases(run_dir: str | os.PathLike) -> list[dict]:
    """Live claims: bit, worker, and heartbeat age, for status displays."""
    directory = lease_dir(run_dir)
    if not directory.is_dir():
        return []
    leases = []
    for path in sorted(directory.glob(f"bit-*{LEASE_SUFFIX}")):
        payload = read_lease(path)
        age = lease_age(path)
        if payload is None or age is None:
            continue
        leases.append({
            "bit": int(payload.get("bit", -1)),
            "worker": str(payload.get("worker", "unknown")),
            "age_seconds": round(age, 3),
        })
    return leases


def try_acquire_finalize(run_dir: str | os.PathLike, worker: str) -> bool:
    """Elect the single worker that emits the run's closing event."""
    return _write_exclusive(
        lease_dir(run_dir) / FINALIZED_NAME,
        {"worker": worker, "finalized_at": time.time()},
    )


def request_cancel(run_dir: str | os.PathLike, reason: str = "") -> Path:
    """Drop the cancellation sentinel every worker polls between claims."""
    path = cancel_path(run_dir)
    path.write_text(
        json.dumps({"cancelled_at": time.time(), "reason": reason}),
        encoding="utf-8",
    )
    return path


def cancel_requested(run_dir: str | os.PathLike) -> bool:
    return cancel_path(run_dir).is_file()
