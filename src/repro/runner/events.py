"""Runner observability: events, hooks, JSONL log, progress rendering.

Every state change of a :class:`repro.runner.CampaignRunner` is one
:class:`RunnerEvent`.  Consumers implement :class:`RunnerHooks` (all
methods optional) or subscribe to the catch-all ``on_event``; two
ready-made consumers ship here — :class:`EventLogWriter` appends each
event as one JSON line (the campaign's black-box flight recorder) and
:class:`ProgressRenderer` draws a terminal progress line with trial
throughput, ETA, and worker utilization.
"""

from __future__ import annotations

import json
import os
import sys
import time
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.telemetry import format_duration

#: Event kinds emitted by the runner, in rough lifecycle order.  The
#: ``run_submitted``/``worker_*``/``shard_claimed``/``lease_stolen``/
#: ``shard_adopted`` kinds belong to the work-stealing execution path
#: (:mod:`repro.runner.worker`), where several processes append to the
#: same ``events.jsonl`` — each event is written as one atomic
#: ``O_APPEND`` line so identities interleave but never tear.
EVENT_KINDS = (
    "run_submitted",
    "run_start",
    "worker_start",
    "shard_start",
    "shard_claimed",
    "lease_stolen",
    "shard_finish",
    "shard_adopted",
    "shard_error",
    "shard_retry",
    "shard_fallback",
    "shard_skipped",
    "shard_hung",
    "shard_quarantined",
    "chaos_fault",
    "worker_exit",
    "run_interrupted",
    "run_finish",
)


@dataclass(frozen=True)
class RunnerEvent:
    """One observable runner state change.

    Attributes
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    elapsed:
        Seconds since the run (or resume) started.
    bit:
        The shard's bit position for shard-scoped events, else None.
    attempt:
        0-based execution attempt for shard events (>0 means a retry).
    shards_done / shards_total, trials_done / trials_total:
        Progress counters, including shards restored by a resume.
    trials_per_sec:
        Completed trials per wall-clock second of this run so far.
    eta_seconds:
        Projected seconds until completion at the current rate.
    utilization:
        Busy fraction of the worker pool: summed shard compute time over
        ``elapsed * jobs`` (1.0 == perfectly busy workers).
    error:
        Stringified exception for ``shard_error`` / ``shard_retry``.
    trace_id:
        The run's distributed-trace id when tracing is enabled (joins
        events to the span records under ``<run_dir>/trace/``); None —
        and absent from the JSON line — on untraced runs.
    """

    kind: str
    elapsed: float = 0.0
    bit: int | None = None
    attempt: int = 0
    shards_done: int = 0
    shards_total: int = 0
    trials_done: int = 0
    trials_total: int = 0
    jobs: int = 1
    trials_per_sec: float | None = None
    eta_seconds: float | None = None
    utilization: float | None = None
    error: str | None = None
    trace_id: str | None = None
    detail: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """A JSON-serializable mapping (wall-clock stamped at call time)."""
        payload = {"ts": time.time(), **asdict(self)}
        if not payload["detail"]:
            del payload["detail"]
        return {key: value for key, value in payload.items() if value is not None}


class RunnerHooks:
    """Base class for event consumers; override any subset of methods.

    ``shard_error``, ``shard_retry`` and ``shard_fallback`` all route to
    :meth:`on_shard_error` (they are stages of the same failure);
    ``on_event`` sees *every* event after its specific handler.
    """

    def on_run_start(self, event: RunnerEvent) -> None:  # pragma: no cover - default no-op
        pass

    def on_shard_start(self, event: RunnerEvent) -> None:  # pragma: no cover - default no-op
        pass

    def on_shard_finish(self, event: RunnerEvent) -> None:  # pragma: no cover - default no-op
        pass

    def on_shard_error(self, event: RunnerEvent) -> None:  # pragma: no cover - default no-op
        pass

    def on_run_finish(self, event: RunnerEvent) -> None:  # pragma: no cover - default no-op
        pass

    def on_event(self, event: RunnerEvent) -> None:  # pragma: no cover - default no-op
        pass

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    # Hooks are context managers, so resources (log handles, sockets)
    # release deterministically even when the run raises:
    #     with EventLogWriter(path) as log:
    #         run_campaign(..., hooks=log)
    def __enter__(self) -> "RunnerHooks":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


_SPECIFIC_HANDLER = {
    "run_submitted": "on_run_start",
    "run_start": "on_run_start",
    "shard_start": "on_shard_start",
    "shard_claimed": "on_shard_start",
    "shard_finish": "on_shard_finish",
    "shard_adopted": "on_shard_finish",
    "shard_skipped": "on_shard_finish",
    "shard_error": "on_shard_error",
    "shard_retry": "on_shard_error",
    "shard_fallback": "on_shard_error",
    "shard_hung": "on_shard_error",
    "shard_quarantined": "on_shard_error",
    "lease_stolen": "on_shard_error",
    "run_interrupted": "on_run_finish",
    "run_finish": "on_run_finish",
}


def dispatch_event(hooks, event: RunnerEvent) -> None:
    """Deliver one event to a hook object (duck-typed, methods optional)."""
    handler = getattr(hooks, _SPECIFIC_HANDLER.get(event.kind, ""), None)
    if handler is not None:
        handler(event)
    catch_all = getattr(hooks, "on_event", None)
    if catch_all is not None:
        catch_all(event)


def close_hooks(hooks) -> None:
    """Close every hook, shielding each from the others' failures.

    Runner teardown must release every owned resource even when one
    hook's ``close()`` raises (and must not mask an in-flight
    exception), so failures downgrade to ``RuntimeWarning``.  Hooks
    without a ``close`` method are fine — the protocol is duck-typed.
    """
    for hook in hooks:
        close = getattr(hook, "close", None)
        if close is None:
            continue
        try:
            close()
        except Exception as error:
            warnings.warn(
                f"ignoring failure closing hook {hook!r}: {error!r}",
                RuntimeWarning,
                stacklevel=2,
            )


class EventLogWriter(RunnerHooks):
    """Append every event as one JSON line to ``events.jsonl``.

    Lines are flushed per event so the log survives a hard kill with at
    most the in-flight event lost — that is what makes it useful for
    diagnosing interrupted runs (:func:`read_event_log` skips a
    truncated tail for the same reason).  Usable as a context manager
    (``with EventLogWriter(path) as log: ...``) so the handle closes on
    any exit path.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def on_event(self, event: RunnerEvent) -> None:
        # One write() call per event, not a json.dump stream: the handle
        # is append-mode (O_APPEND), so a single write keeps concurrent
        # appenders — cooperating work-stealing workers share this file —
        # from interleaving fragments of each other's lines.
        self._handle.write(
            json.dumps(event.to_json(), separators=(",", ":")) + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def read_event_log(path: str | os.PathLike, *, strict: bool = False) -> list[dict]:
    """Parse an ``events.jsonl`` file back into event dicts.

    A hard kill can truncate the final line mid-write; since the log's
    whole purpose is diagnosing exactly such runs, the parseable prefix
    is returned and the partial tail skipped.  Reading stops at the
    first unparseable line (any line after it belongs to a corrupt
    region, not the prefix the contract promises).  ``strict=True``
    restores the raising behaviour for integrity checks.
    """
    events = []
    with open(Path(path), encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                if strict:
                    raise
                break
    return events


class ProgressRenderer(RunnerHooks):
    """Terminal progress line: shards, trials, rate, ETA, utilization.

    On a TTY the line redraws in place (carriage return); on a plain
    stream (CI logs, pipes) it prints at most one line per
    ``min_interval`` seconds plus start/finish lines, so logs stay
    readable.
    """

    def __init__(self, stream=None, min_interval: float = 2.0):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        # None, not 0.0: time.monotonic() starts near zero on a freshly
        # booted machine, so an epoch sentinel would throttle the very
        # first progress line.
        self._last_emit: float | None = None
        self._is_tty = bool(getattr(self.stream, "isatty", lambda: False)())

    def _line(self, event: RunnerEvent) -> str:
        parts = [
            f"shard {event.shards_done}/{event.shards_total}",
            f"trials {event.trials_done}/{event.trials_total}",
        ]
        if event.trials_per_sec:
            parts.append(f"{event.trials_per_sec:,.0f} trials/s")
        if event.eta_seconds is not None:
            parts.append(f"ETA {format_duration(event.eta_seconds)}")
        if event.utilization is not None and event.jobs > 1:
            parts.append(f"util {event.utilization:.0%} of {event.jobs} workers")
        return " · ".join(parts)

    def on_run_start(self, event: RunnerEvent) -> None:
        label = event.detail.get("label") or event.detail.get("target", "campaign")
        resumed = event.detail.get("resumed_shards", 0)
        note = f" (resuming past {resumed} shard(s))" if resumed else ""
        print(
            f"[campaign] {label}: {event.shards_total} shard(s), "
            f"{event.trials_total} trial(s), jobs={event.jobs}{note}",
            file=self.stream,
        )

    def on_shard_finish(self, event: RunnerEvent) -> None:
        now = time.monotonic()
        done = event.shards_done >= event.shards_total
        if (not done and not self._is_tty and self._last_emit is not None
                and now - self._last_emit < self.min_interval):
            return
        self._last_emit = now
        text = "[campaign] " + self._line(event)
        if self._is_tty and not done:
            print("\r" + text, end="", file=self.stream, flush=True)
        else:
            if self._is_tty:
                print("\r", end="", file=self.stream)
            print(text, file=self.stream)

    def on_shard_error(self, event: RunnerEvent) -> None:
        if self._is_tty:
            print("\r", end="", file=self.stream)
        verb = {
            "shard_retry": "retrying",
            "shard_fallback": "falling back in-process",
            "shard_hung": "stalled; killing worker and requeuing",
            "shard_quarantined": "corrupt on disk; quarantined for recompute",
        }.get(event.kind, "failed")
        print(
            f"[campaign] shard bit={event.bit} attempt {event.attempt}: "
            f"{verb} ({event.error})",
            file=self.stream,
        )

    def on_run_finish(self, event: RunnerEvent) -> None:
        if self._is_tty:
            print("\r", end="", file=self.stream)
        if event.kind == "run_interrupted":
            print(
                f"[campaign] interrupted at {event.shards_done}/{event.shards_total} "
                "shard(s); completed shards are persisted and the run is resumable",
                file=self.stream,
            )
        else:
            print(
                f"[campaign] done: {event.trials_done} trials "
                f"in {format_duration(event.elapsed)}",
                file=self.stream,
            )
