"""The conformance oracle driver: which checks run, against what, how hard.

``run_conformance`` is the single entry point behind ``repro conformance
run``: it resolves the format roster, walks the check registry at the
requested level, and folds every outcome into a severity-ranked
:class:`~repro.conformance.report.ConformanceReport`.  Each check runs
under a telemetry span and bumps the ``conformance.*`` counters, so a
profiled conformance run breaks down exactly like a campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.conformance import differential, golden, invariants, multibit
from repro.conformance.golden import default_golden_dir
from repro.conformance.references import ORACLE_SEED
from repro.conformance.report import (
    BUDGETS,
    LEVELS,
    CheckResult,
    ConformanceReport,
    FindingCollector,
    SampleBudget,
)
from repro.telemetry import get_telemetry

#: The roster gated by default: the paper's formats plus the wide posits.
DEFAULT_CHECK_FORMATS = (
    "posit8",
    "posit16",
    "posit32",
    "posit64",
    "ieee16",
    "ieee32",
    "ieee64",
    "bfloat16",
)

#: Per-format checks, in severity-of-consequence order.
FORMAT_CHECKS = (
    differential.check_reference_decode,
    differential.check_reference_encode,
    differential.check_backend_agreement,
    differential.check_composed_agreement,
    differential.check_numba_agreement,
    invariants.check_idempotence,
    invariants.check_rne_ties,
    invariants.check_posit_monotonic,
    invariants.check_negation_symmetry,
    invariants.check_lowery_exponent,
    multibit.check_multibit_lowery,
    multibit.check_multibit_batched_identity,
)

#: Roster-independent checks (metrics layer).
GLOBAL_CHECKS = (
    differential.check_metrics_fast_vs_full,
    invariants.check_metrics_metamorphic,
)


@dataclass(frozen=True)
class OracleContext:
    """Everything a check function may consult."""

    level: str
    budget: SampleBudget
    seed: int
    golden_dir: Path
    #: None means "the default roster" (golden checks then cover every
    #: fixture); an explicit tuple restricts golden fixtures too.
    formats: tuple[str, ...] | None = None


@dataclass
class _Runner:
    ctx: OracleContext
    report: ConformanceReport = field(init=False)

    def __post_init__(self) -> None:
        self.report = ConformanceReport(level=self.ctx.level)

    def run(self, name: str, subject: str, func, *args) -> None:
        telemetry = get_telemetry()
        try:
            # The oracle deliberately feeds overflow-range and non-finite
            # inputs; numpy's RuntimeWarnings about them are expected.
            with telemetry.span(f"conformance.{name}"), np.errstate(
                over="ignore", invalid="ignore", divide="ignore"
            ):
                outcome = func(*args)
        except Exception as error:  # a crashing check is itself a finding
            collector = FindingCollector(name, subject)
            collector.error(f"check crashed: {error!r}")
            outcome = collector.finish(0)
        results = outcome if isinstance(outcome, list) else [outcome]
        for result in results:
            self.report.results.append(result)
            if result.skipped:
                continue
            telemetry.count("conformance.checks_run")
            telemetry.count("conformance.units_checked", result.checked)
            if not result.ok:
                telemetry.count("conformance.checks_failed")
                telemetry.count("conformance.findings", len(result.findings))


def run_conformance(
    level: str = "smoke",
    formats=None,
    *,
    golden_dir=None,
    seed: int = ORACLE_SEED,
) -> ConformanceReport:
    """Run the oracle and return the severity-ranked report.

    Parameters
    ----------
    level:
        ``smoke`` (seeded samples, exhaustive only for 8-bit widths) or
        ``full`` (exhaustive up to 16-bit, larger stratified samples).
    formats:
        Iterable of spec strings to gate; default is
        :data:`DEFAULT_CHECK_FORMATS`.  Golden fixtures are filtered to
        the requested formats when given explicitly.
    golden_dir:
        Fixture directory (default ``tests/golden`` of the checkout, or
        ``$REPRO_GOLDEN_DIR``).
    seed:
        Root seed for all stratified sampling.
    """
    if level not in LEVELS:
        raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
    from repro.formats import resolve

    explicit = formats is not None
    roster = tuple(formats) if explicit else DEFAULT_CHECK_FORMATS
    resolved = [resolve(spec) for spec in roster]
    ctx = OracleContext(
        level=level,
        budget=BUDGETS[level],
        seed=seed,
        golden_dir=Path(golden_dir) if golden_dir is not None else default_golden_dir(),
        formats=tuple(fmt.name for fmt in resolved) if explicit else None,
    )
    runner = _Runner(ctx)
    telemetry = get_telemetry()
    with telemetry.span("conformance.run"):
        for fmt in resolved:
            for check in FORMAT_CHECKS:
                name = check.__name__.removeprefix("check_").replace("_", "-")
                runner.run(name, fmt.name, check, ctx, fmt)
        for check in GLOBAL_CHECKS:
            name = check.__name__.removeprefix("check_").replace("_", "-")
            runner.run(name, "metrics", check, ctx)
        runner.run("golden-codec", "golden", golden.check_golden_codecs, ctx)
        runner.run("golden-campaign", "golden", golden.check_golden_campaigns, ctx)
    return runner.report


def checked_result_count(report: ConformanceReport) -> int:
    """Convenience for callers that only want the activity number."""
    return sum(1 for result in report.results if not result.skipped)


__all__ = [
    "DEFAULT_CHECK_FORMATS",
    "FORMAT_CHECKS",
    "GLOBAL_CHECKS",
    "OracleContext",
    "run_conformance",
    "checked_result_count",
    "CheckResult",
]
