"""Golden fixtures: regression locks for codecs and campaign statistics.

Two fixture kinds live under ``tests/golden/``:

* **codec lattices** (``codec-<format>.json``) — a stratified table of
  ``(input value, encoded pattern, decoded value)`` triples, floats
  stored as ``float.hex()`` strings and patterns as hex ints.  Any
  single-bit drift in the codec (or in the fixture file itself) fails
  the ``golden-codec`` check with a finding naming the format and the
  offending entry;
* **campaign statistics** (``campaign-<field>-<format>.json``) — summary
  statistics of a small seeded campaign per dataset preset: trial MSE
  mean, relative-error quantiles, per-field stratification counts, and
  the conversion report.  Counts compare exactly, floats within a
  relative tolerance, so any codec/metric/runner drift fails loudly
  with a diff naming the statistic.

``repro conformance bless`` regenerates the files from the current tree
(the refresh workflow after an *intentional* behavior change).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import numpy as np

from repro.conformance.references import ORACLE_SEED, same_float, value_sample
from repro.conformance.report import CheckResult, FindingCollector

#: Environment override for the fixture directory (tests, installs).
GOLDEN_DIR_ENV_VAR = "REPRO_GOLDEN_DIR"

#: Formats locked by codec-lattice fixtures.
CODEC_FIXTURE_FORMATS = ("posit8", "posit16", "posit32", "posit64", "ieee32", "bfloat16")

#: Entries per codec fixture.
CODEC_FIXTURE_ENTRIES = 128

#: Small seeded campaigns locked by campaign-statistics fixtures.
CAMPAIGN_FIXTURES = (
    {"field": "cesm/cloud", "format": "posit32", "size": 2048, "trials_per_bit": 4, "seed": 2023},
    {"field": "nyx/temperature", "format": "posit16", "size": 2048, "trials_per_bit": 4, "seed": 2023},
    {"field": "cesm/cloud", "format": "ieee32", "size": 2048, "trials_per_bit": 4, "seed": 2023},
)

#: Relative tolerance for float statistics (runs are deterministic; the
#: slack only absorbs cross-platform libm variation).
STAT_RTOL = 1e-9


def default_golden_dir() -> Path:
    """``tests/golden`` of the repo checkout, or ``$REPRO_GOLDEN_DIR``."""
    override = os.environ.get(GOLDEN_DIR_ENV_VAR)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def _slug(text: str) -> str:
    return text.replace("/", "-").replace("(", "_").replace(")", "").replace(",", "_")


def codec_fixture_path(golden_dir: Path, spec: str) -> Path:
    return Path(golden_dir) / f"codec-{_slug(spec)}.json"


def campaign_fixture_path(golden_dir: Path, field: str, spec: str) -> Path:
    return Path(golden_dir) / f"campaign-{_slug(field)}-{_slug(spec)}.json"


# -- codec lattice fixtures ----------------------------------------------


def build_codec_fixture(spec: str, *, entries: int = CODEC_FIXTURE_ENTRIES,
                        seed: int = ORACLE_SEED) -> dict:
    """Compute the codec-lattice fixture payload for one format."""
    from repro.formats import resolve

    fmt = resolve(spec)
    values = value_sample(fmt, entries, seed=seed)
    # NaN encodes to a canonical pattern but ``float.hex`` of the input
    # still round-trips, so specials stay in the lattice.  The sample
    # sweeps past the format's range on purpose; numpy warns on the cast.
    with np.errstate(over="ignore", invalid="ignore"):
        patterns = np.asarray(fmt.to_bits(values))
        decoded = fmt.from_bits(patterns)
    rows = [
        {
            "value": float(value).hex(),
            "pattern": f"0x{int(pattern):x}",
            "decoded": float(out).hex(),
        }
        for value, pattern, out in zip(values.tolist(), patterns.tolist(), decoded.tolist())
    ]
    return {
        "kind": "codec-lattice",
        "format": fmt.name,
        "nbits": fmt.nbits,
        "seed": seed,
        "entries": rows,
    }


def check_codec_fixture(fmt, payload: dict, path: str) -> CheckResult:
    """Re-derive every lattice entry through the live codec."""
    collector = FindingCollector("golden-codec", fmt.name, path=path)
    entries = payload.get("entries", [])
    values = np.array([float.fromhex(row["value"]) for row in entries])
    with np.errstate(over="ignore", invalid="ignore"):
        got_patterns = np.asarray(fmt.to_bits(values))
        want_patterns = [int(row["pattern"], 16) for row in entries]
        got_decoded = fmt.from_bits(np.asarray(want_patterns, dtype=np.uint64).astype(fmt.dtype))
    for i, row in enumerate(entries):
        if int(got_patterns[i]) != want_patterns[i]:
            collector.error(
                f"{fmt.name} encode drifted from golden lattice: "
                f"to_bits({values[i]!r}) = 0x{int(got_patterns[i]):x}, fixture "
                f"records 0x{want_patterns[i]:x} (entry {i})"
            )
        want_decoded = float.fromhex(row["decoded"])
        if not same_float(float(got_decoded[i]), want_decoded):
            collector.error(
                f"{fmt.name} decode drifted from golden lattice: "
                f"from_bits(0x{want_patterns[i]:x}) = {float(got_decoded[i])!r}, "
                f"fixture records {want_decoded!r} (entry {i})"
            )
    return collector.finish(len(entries))


# -- campaign statistics fixtures ----------------------------------------


def compute_campaign_stats(field: str, spec: str, *, size: int, trials_per_bit: int,
                           seed: int) -> dict:
    """Run the small seeded campaign and reduce it to locked statistics."""
    from repro.datasets.registry import get as get_preset
    from repro.formats import resolve
    from repro.inject.campaign import CampaignConfig, run_campaign

    fmt = resolve(spec)
    data = get_preset(field).generate(seed=seed, size=size)
    result = run_campaign(data, fmt, CampaignConfig(trials_per_bit=trials_per_bit, seed=seed))
    records = result.records
    rel = records.rel_err
    finite_rel = rel[np.isfinite(rel)]
    mse = records.mse
    finite_mse = mse[np.isfinite(mse)]
    field_ids, field_counts = np.unique(records.field, return_counts=True)
    return {
        "trials": int(len(records)),
        "non_finite": int(np.sum(records.non_finite)),
        "undefined_rel": int(np.sum(np.isnan(rel))),
        "mse_mean": float(np.mean(finite_mse)) if finite_mse.size else 0.0,
        "abs_err_mean": float(np.mean(records.abs_err[np.isfinite(records.abs_err)])),
        "rel_err_q10": float(np.quantile(finite_rel, 0.10)) if finite_rel.size else 0.0,
        "rel_err_q50": float(np.quantile(finite_rel, 0.50)) if finite_rel.size else 0.0,
        "rel_err_q90": float(np.quantile(finite_rel, 0.90)) if finite_rel.size else 0.0,
        "field_counts": {
            fmt.field_label(int(fid)): int(count)
            for fid, count in zip(field_ids.tolist(), field_counts.tolist())
        },
        "conversion_mean_rel": result.conversion.mean_relative_error,
        "conversion_max_rel": result.conversion.max_relative_error,
        "conversion_exact_fraction": result.conversion.exact_fraction,
        "baseline_mean": result.baseline.mean,
        "baseline_std": result.baseline.std,
    }


def build_campaign_fixture(config: dict) -> dict:
    stats = compute_campaign_stats(
        config["field"], config["format"], size=config["size"],
        trials_per_bit=config["trials_per_bit"], seed=config["seed"],
    )
    return {"kind": "campaign-stats", **config, "rtol": STAT_RTOL, "stats": stats}


def check_campaign_fixture(payload: dict, path: str) -> CheckResult:
    """Re-run the fixture's campaign and diff every locked statistic."""
    subject = f"{payload['field']}@{payload['format']}"
    collector = FindingCollector("golden-campaign", subject, path=path)
    want = payload["stats"]
    rtol = float(payload.get("rtol", STAT_RTOL))
    got = compute_campaign_stats(
        payload["field"], payload["format"], size=payload["size"],
        trials_per_bit=payload["trials_per_bit"], seed=payload["seed"],
    )
    for key, expected in want.items():
        actual = got.get(key)
        if key == "field_counts":
            if actual != expected:
                collector.error(
                    f"{subject} per-field stratification counts drifted: "
                    f"fixture {expected}, current {actual}"
                )
            continue
        if isinstance(expected, int):
            if actual != expected:
                collector.error(
                    f"{subject} statistic {key!r} drifted: fixture {expected}, "
                    f"current {actual}"
                )
            continue
        if math.isnan(expected) and math.isnan(actual):
            continue
        if actual != expected and not (
            math.isfinite(expected)
            and math.isfinite(actual)
            and abs(actual - expected) <= rtol * max(abs(expected), abs(actual))
        ):
            collector.error(
                f"{subject} statistic {key!r} drifted beyond rtol={rtol}: "
                f"fixture {expected!r}, current {actual!r}"
            )
    return collector.finish(len(want))


# -- fixture IO and bless -------------------------------------------------


def load_fixture(path: Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def write_fixture(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def bless(golden_dir: Path | None = None, *, formats=None) -> list[Path]:
    """(Re)generate every golden fixture from the current tree.

    ``formats`` optionally restricts which fixtures are refreshed.
    Returns the written paths.
    """
    golden_dir = Path(golden_dir) if golden_dir is not None else default_golden_dir()
    wanted = {str(spec) for spec in formats} if formats else None
    written: list[Path] = []
    for spec in CODEC_FIXTURE_FORMATS:
        if wanted is not None and spec not in wanted:
            continue
        path = codec_fixture_path(golden_dir, spec)
        write_fixture(path, build_codec_fixture(spec))
        written.append(path)
    for config in CAMPAIGN_FIXTURES:
        if wanted is not None and config["format"] not in wanted:
            continue
        path = campaign_fixture_path(golden_dir, config["field"], config["format"])
        write_fixture(path, build_campaign_fixture(config))
        written.append(path)
    return written


def check_golden_codecs(ctx) -> list[CheckResult]:
    """Run the golden-codec check for every applicable fixture file."""
    from repro.formats import resolve

    results = []
    for spec in CODEC_FIXTURE_FORMATS:
        if ctx.formats is not None and spec not in ctx.formats:
            continue
        path = codec_fixture_path(ctx.golden_dir, spec)
        if not path.is_file():
            collector = FindingCollector("golden-codec", spec, path=str(path))
            collector.warning(
                f"no golden codec fixture for {spec} (run `repro conformance "
                "bless` to create it)"
            )
            results.append(collector.finish(0))
            continue
        results.append(check_codec_fixture(resolve(spec), load_fixture(path), str(path)))
    return results


def check_golden_campaigns(ctx) -> list[CheckResult]:
    """Run the golden-campaign check for every applicable fixture file."""
    results = []
    for config in CAMPAIGN_FIXTURES:
        if ctx.formats is not None and config["format"] not in ctx.formats:
            continue
        path = campaign_fixture_path(ctx.golden_dir, config["field"], config["format"])
        subject = f"{config['field']}@{config['format']}"
        if not path.is_file():
            collector = FindingCollector("golden-campaign", subject, path=str(path))
            collector.warning(
                f"no golden campaign fixture for {subject} (run `repro "
                "conformance bless` to create it)"
            )
            results.append(collector.finish(0))
            continue
        results.append(check_campaign_fixture(load_fixture(path), str(path)))
    return results
