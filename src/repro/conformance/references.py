"""Independent reference codecs and seeded samplers for the oracle.

Every differential check needs a second opinion that shares *no code*
with the production codec:

* native IEEE widths are re-encoded/re-decoded through :mod:`struct`
  (the C library's conversions), not NumPy casts;
* bfloat16 is re-derived from the struct-converted float32 pattern with
  plain integer arithmetic;
* posits go through :mod:`repro.posit._reference`, the exact
  ``Fraction``-based scalar implementation (the vectorized codec never
  touches it outside tests).

Sampling is seeded and stratified: the pattern space is split into equal
strata by the leading byte so every regime/exponent population is hit,
and the value space sweeps magnitudes log-uniformly across the format's
dynamic range plus the canonical special values.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from repro.formats import IEEETarget, NumberFormat, PositTarget

#: Root seed for all oracle sampling (independent of any campaign seed).
ORACLE_SEED = 20230923

_STRUCT_CODES = {16: ("<e", "<H"), 32: ("<f", "<I"), 64: ("<d", "<Q")}


class ReferenceCodec:
    """Scalar encode/decode pair used as a format's second opinion."""

    def __init__(self, name: str, encode, decode) -> None:
        self.name = name
        self.encode = encode  # float -> int pattern
        self.decode = decode  # int pattern -> float


def _struct_reference(nbits: int) -> ReferenceCodec:
    float_code, int_code = _STRUCT_CODES[nbits]
    inf_pattern = struct.unpack(int_code, struct.pack(float_code, math.inf))[0]
    sign_bit = 1 << (nbits - 1)

    def encode(value: float) -> int:
        try:
            return struct.unpack(int_code, struct.pack(float_code, value))[0]
        except OverflowError:
            # struct refuses magnitudes that round to infinity; IEEE
            # overflow semantics say that *is* the answer.
            return inf_pattern | (sign_bit if math.copysign(1.0, value) < 0 else 0)

    def decode(pattern: int) -> float:
        return float(struct.unpack(float_code, struct.pack(int_code, pattern))[0])

    return ReferenceCodec(f"struct:{float_code}", encode, decode)


def _bfloat16_reference() -> ReferenceCodec:
    def encode(value: float) -> int:
        try:
            bits32 = struct.unpack("<I", struct.pack("<f", value))[0]
        except OverflowError:
            # Rounds past float32: the bfloat16 answer is infinity too.
            bits32 = 0x7F800000 | (0x80000000 if math.copysign(1.0, value) < 0 else 0)
        if math.isnan(value):
            return (bits32 >> 16) | 0x40
        # Round-to-nearest-even truncation of the low 16 bits.
        return (bits32 + 0x7FFF + ((bits32 >> 16) & 1)) >> 16

    def decode(pattern: int) -> float:
        return float(struct.unpack("<f", struct.pack("<I", (pattern & 0xFFFF) << 16))[0])

    return ReferenceCodec("struct:bfloat16", encode, decode)


def _posit_reference(config) -> ReferenceCodec:
    from repro.posit._reference import decode_exact, encode_exact

    def encode(value: float) -> int:
        return encode_exact(value, config)

    def decode(pattern: int) -> float:
        exact = decode_exact(pattern, config)
        return math.nan if exact is None else float(exact)

    return ReferenceCodec("fraction:posit", encode, decode)


def reference_for(fmt: NumberFormat) -> ReferenceCodec | None:
    """The independent scalar codec for ``fmt``, or None when there is
    none (custom ``binary(E,F)`` layouts, fixed-posits)."""
    if isinstance(fmt, PositTarget):
        return _posit_reference(fmt.config)
    if isinstance(fmt, IEEETarget):
        if fmt.name == "bfloat16":
            return _bfloat16_reference()
        if fmt.format.float_dtype is not None and fmt.nbits in _STRUCT_CODES:
            return _struct_reference(fmt.nbits)
    return None


def pattern_sample(fmt: NumberFormat, count: int, *, exhaustive_max_bits: int,
                   seed: int = ORACLE_SEED) -> np.ndarray:
    """Seeded stratified sample of the format's pattern space (uint64).

    Exhaustive for widths up to ``exhaustive_max_bits``; otherwise the
    space is split into 256 leading-byte strata with an equal draw from
    each, and the canonical corner patterns are always included.
    """
    nbits = fmt.nbits
    if nbits <= exhaustive_max_bits:
        return np.arange(1 << nbits, dtype=np.uint64)
    rng = np.random.default_rng([seed, nbits, count])
    strata = 256
    per_stratum = max(count // strata, 1)
    width = 1 << max(nbits - 8, 0)
    offsets = rng.integers(0, width, size=(strata, per_stratum), dtype=np.uint64)
    bases = (np.arange(strata, dtype=np.uint64) * np.uint64(width))[:, None]
    sample = (bases + offsets).reshape(-1)
    mask = np.uint64((1 << nbits) - 1) if nbits < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
    corners = np.array(
        [
            0,  # zero
            1,  # minpos / smallest subnormal
            (1 << (nbits - 1)) - 1,  # maxpos / largest pattern of the positive half
            1 << (nbits - 1),  # NaR / negative zero
            (1 << (nbits - 1)) + 1,
            (1 << nbits) - 1 if nbits < 64 else 0xFFFFFFFFFFFFFFFF,
        ],
        dtype=np.uint64,
    )
    return np.unique(np.concatenate([sample, corners & mask]))


def value_sample(fmt: NumberFormat, count: int, *, seed: int = ORACLE_SEED) -> np.ndarray:
    """Seeded float64 sample sweeping the format's dynamic range.

    Log-uniform magnitudes across (and slightly beyond) the format's
    representable scales, both signs, plus exact powers of two, values
    needing rounding, zeros, and non-finite specials.
    """
    rng = np.random.default_rng([seed + 1, fmt.nbits, count])
    # Scale range: posits reach 2**(useed_log2 * (n-1)); IEEE reaches its
    # exponent range.  A generous symmetric sweep covers both (float64
    # overflow values are themselves interesting encode inputs).
    max_scale = min(4 * fmt.nbits, 300)
    exponents = rng.uniform(-max_scale, max_scale, size=count)
    mantissas = rng.uniform(1.0, 2.0, size=count)
    signs = rng.choice([-1.0, 1.0], size=count)
    sample = signs * mantissas * np.exp2(exponents)
    specials = np.array(
        [
            0.0, -0.0, 1.0, -1.0, 0.5, 2.0, 4.0, 1.5, -1.5,
            186.25, -186.25, 1e-30, 1e30, math.pi, -math.pi,
            math.inf, -math.inf, math.nan,
            float(np.finfo(np.float64).max), float(np.finfo(np.float64).tiny),
        ]
    )
    return np.concatenate([sample, specials])


def float_bits(values) -> np.ndarray:
    """float64 -> uint64 bit view, for bit-exact comparisons."""
    return np.asarray(values, dtype=np.float64).view(np.uint64)


def same_float(a: float, b: float) -> bool:
    """Bit-insensitive scalar float equality: equal, or both NaN.

    Distinguishes ``0.0`` from ``-0.0`` (the codecs must preserve the
    sign of zero) but treats all NaN payloads as one value — references
    and codecs are free to produce different NaN encodings.
    """
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return struct.pack("<d", a) == struct.pack("<d", b)
