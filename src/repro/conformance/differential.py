"""Differential checks: every codec against an independent implementation.

Three cross-checks, each a pure function from an
:class:`~repro.conformance.oracle.OracleContext` and a format to a
:class:`~repro.conformance.report.CheckResult`:

* ``codec-ref-decode`` / ``codec-ref-encode`` — the vectorized codec
  against the scalar reference (:mod:`repro.conformance.references`):
  struct-based IEEE, exact-``Fraction`` posits;
* ``backend-agreement`` — the LUT backend against the direct backend,
  exhaustively over the pattern space for every format narrow enough to
  tabulate;
* ``composed-agreement`` — the composed-table backend (two 16-bit
  gathers per 32-bit pattern) against the direct backend: exhaustive
  for widths the oracle can exhaust, stratified-sampled plus
  NaR/NaN/Inf/signed-zero corner patterns at 32 bits;
* ``numba-agreement`` — the JIT-compiled scalar decode against the
  direct backend (skipped when numba is not installed);
* ``metrics-fast-vs-full`` — the campaign's O(1) single-fault metric
  shortcut against the full-array reference reduction, over seeded
  faults including NaN/Inf/zero corners.
"""

from __future__ import annotations

import numpy as np

from repro.conformance.references import (
    float_bits,
    pattern_sample,
    reference_for,
    same_float,
    value_sample,
)
from repro.conformance.report import CheckResult, FindingCollector
from repro.formats import (
    COMPOSED_MAX_BITS,
    LUT_MAX_BITS,
    NumberFormat,
    numba_available,
    parse_spec,
)


def check_reference_decode(ctx, fmt: NumberFormat) -> CheckResult:
    """Vectorized decode vs the independent scalar reference."""
    reference = reference_for(fmt)
    collector = FindingCollector("codec-ref-decode", fmt.name)
    if reference is None:
        result = collector.finish(0)
        result.skipped = True
        return result
    patterns = pattern_sample(
        fmt, ctx.budget.patterns, exhaustive_max_bits=ctx.budget.exhaustive_max_bits,
        seed=ctx.seed,
    )
    decoded = fmt.from_bits(patterns.astype(fmt.dtype))
    for pattern, got in zip(patterns.tolist(), decoded.tolist()):
        expected = reference.decode(pattern)
        if not same_float(got, expected):
            collector.error(
                f"{fmt.name} decode of pattern 0x{pattern:x} gives {got!r}, "
                f"reference {reference.name} gives {expected!r}"
            )
    return collector.finish(len(patterns))


def check_reference_encode(ctx, fmt: NumberFormat) -> CheckResult:
    """Vectorized encode vs the independent scalar reference."""
    reference = reference_for(fmt)
    collector = FindingCollector("codec-ref-encode", fmt.name)
    if reference is None:
        result = collector.finish(0)
        result.skipped = True
        return result
    values = value_sample(fmt, ctx.budget.values, seed=ctx.seed)
    # Overflow-range inputs are deliberate; numpy warns on the cast.
    with np.errstate(over="ignore", invalid="ignore"):
        encoded = fmt.to_bits(values)
    for value, got in zip(values.tolist(), np.asarray(encoded).tolist()):
        expected = reference.encode(value)
        if int(got) != int(expected):
            collector.error(
                f"{fmt.name} encode of {value!r} gives 0x{int(got):x}, "
                f"reference {reference.name} gives 0x{int(expected):x}"
            )
    return collector.finish(len(values))


def check_backend_agreement(ctx, fmt: NumberFormat) -> CheckResult:
    """LUT and direct backends must be bit-identical on every operation."""
    collector = FindingCollector("backend-agreement", fmt.name)
    if fmt.nbits > LUT_MAX_BITS:
        result = collector.finish(0)
        result.skipped = True
        return result
    # Fresh instances so neither shares the registry-cached backend state.
    direct = parse_spec(fmt.name, "direct")
    lut = parse_spec(fmt.name, "lut")
    patterns = np.arange(1 << fmt.nbits, dtype=np.uint64).astype(fmt.dtype)
    checked = 0

    direct_values = direct.from_bits(patterns)
    lut_values = lut.from_bits(patterns)
    mismatch = np.nonzero(float_bits(direct_values) != float_bits(lut_values))[0]
    checked += patterns.size
    for idx in mismatch[:8].tolist():
        collector.error(
            f"{fmt.name} from_bits(0x{int(patterns[idx]):x}) differs: "
            f"direct={direct_values[idx]!r} lut={lut_values[idx]!r}"
        )

    values = value_sample(fmt, ctx.budget.values, seed=ctx.seed)
    with np.errstate(over="ignore", invalid="ignore"):
        direct_bits = np.asarray(direct.to_bits(values))
        lut_bits = np.asarray(lut.to_bits(values))
    mismatch = np.nonzero(direct_bits != lut_bits)[0]
    checked += values.size
    for idx in mismatch[:8].tolist():
        collector.error(
            f"{fmt.name} to_bits({values[idx]!r}) differs: "
            f"direct=0x{int(direct_bits[idx]):x} lut=0x{int(lut_bits[idx]):x}"
        )

    bits_to_check = (
        range(fmt.nbits)
        if ctx.level == "full"
        else sorted({0, 1, fmt.nbits // 2, fmt.nbits - 2, fmt.nbits - 1})
    )
    for bit in bits_to_check:
        direct_fields = direct.classify_bits(patterns, bit)
        lut_fields = lut.classify_bits(patterns, bit)
        mismatch = np.nonzero(np.asarray(direct_fields) != np.asarray(lut_fields))[0]
        checked += patterns.size
        for idx in mismatch[:4].tolist():
            collector.error(
                f"{fmt.name} classify_bits(0x{int(patterns[idx]):x}, bit={bit}) "
                f"differs: direct={int(direct_fields[idx])} lut={int(lut_fields[idx])}"
            )
    mismatch = np.nonzero(
        np.asarray(direct.regime_sizes(patterns)) != np.asarray(lut.regime_sizes(patterns))
    )[0]
    checked += patterns.size
    for idx in mismatch[:4].tolist():
        collector.error(
            f"{fmt.name} regime_sizes(0x{int(patterns[idx]):x}) differs between backends"
        )
    return collector.finish(checked)


def _check_alternate_backend(ctx, fmt: NumberFormat, backend: str, check: str) -> CheckResult:
    """An alternate backend vs direct, bit-exact on every codec operation.

    Pattern coverage is exhaustive when the oracle budget can exhaust
    the width, otherwise a seeded stratified sample augmented with the
    special-value corner patterns (NaR / NaN / +-Inf / signed zeros /
    +-1) that the tables must not mishandle.
    """
    collector = FindingCollector(check, fmt.name)
    direct = parse_spec(fmt.name, "direct")
    other = parse_spec(fmt.name, backend)
    sampled = pattern_sample(
        fmt, ctx.budget.patterns, exhaustive_max_bits=ctx.budget.exhaustive_max_bits,
        seed=ctx.seed,
    )
    with np.errstate(over="ignore", invalid="ignore"):
        corner_bits = np.asarray(
            direct.to_bits(np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 1.0, -1.0]))
        ).astype(np.uint64)
    patterns = np.unique(np.concatenate([sampled, corner_bits])).astype(fmt.dtype)
    checked = 0

    direct_values = direct.from_bits(patterns)
    other_values = other.from_bits(patterns)
    mismatch = np.nonzero(float_bits(direct_values) != float_bits(other_values))[0]
    checked += patterns.size
    for idx in mismatch[:8].tolist():
        collector.error(
            f"{fmt.name} from_bits(0x{int(patterns[idx]):x}) differs: "
            f"direct={direct_values[idx]!r} {backend}={other_values[idx]!r}"
        )

    values = value_sample(fmt, ctx.budget.values, seed=ctx.seed)
    with np.errstate(over="ignore", invalid="ignore"):
        direct_bits = np.asarray(direct.to_bits(values))
        other_bits = np.asarray(other.to_bits(values))
    mismatch = np.nonzero(direct_bits != other_bits)[0]
    checked += values.size
    for idx in mismatch[:8].tolist():
        collector.error(
            f"{fmt.name} to_bits({values[idx]!r}) differs: "
            f"direct=0x{int(direct_bits[idx]):x} {backend}=0x{int(other_bits[idx]):x}"
        )

    bits_to_check = (
        range(fmt.nbits)
        if ctx.level == "full"
        else sorted({0, 1, fmt.nbits // 2, fmt.nbits - 2, fmt.nbits - 1})
    )
    for bit in bits_to_check:
        direct_fields = direct.classify_bits(patterns, bit)
        other_fields = other.classify_bits(patterns, bit)
        mismatch = np.nonzero(np.asarray(direct_fields) != np.asarray(other_fields))[0]
        checked += patterns.size
        for idx in mismatch[:4].tolist():
            collector.error(
                f"{fmt.name} classify_bits(0x{int(patterns[idx]):x}, bit={bit}) "
                f"differs: direct={int(direct_fields[idx])} {backend}={int(other_fields[idx])}"
            )
    mismatch = np.nonzero(
        np.asarray(direct.regime_sizes(patterns)) != np.asarray(other.regime_sizes(patterns))
    )[0]
    checked += patterns.size
    for idx in mismatch[:4].tolist():
        collector.error(
            f"{fmt.name} regime_sizes(0x{int(patterns[idx]):x}) differs between backends"
        )

    # The batched surface: row-wise flip+decode must agree with the
    # direct per-bit reference on the same rows.
    bit_list = np.asarray(sorted(bits_to_check), dtype=np.int64)
    rows = np.broadcast_to(patterns, (bit_list.size, patterns.size))
    direct_flips = direct.decode_flips(rows, bit_list)
    other_flips = other.decode_flips(rows, bit_list)
    bad_rows, bad_cols = np.nonzero(float_bits(direct_flips) != float_bits(other_flips))
    checked += rows.size
    for row, col in list(zip(bad_rows.tolist(), bad_cols.tolist()))[:4]:
        collector.error(
            f"{fmt.name} decode_flips(0x{int(patterns[col]):x}, bit={int(bit_list[row])}) "
            f"differs: direct={direct_flips[row, col]!r} {backend}={other_flips[row, col]!r}"
        )
    return collector.finish(checked)


def check_composed_agreement(ctx, fmt: NumberFormat) -> CheckResult:
    """Composed-table and direct backends must be bit-identical."""
    collector = FindingCollector("composed-agreement", fmt.name)
    if fmt.nbits > COMPOSED_MAX_BITS:
        result = collector.finish(0)
        result.skipped = True
        return result
    return _check_alternate_backend(ctx, fmt, "composed", "composed-agreement")


def check_numba_agreement(ctx, fmt: NumberFormat) -> CheckResult:
    """JIT-compiled and direct backends must be bit-identical."""
    collector = FindingCollector("numba-agreement", fmt.name)
    if not numba_available():
        result = collector.finish(0)
        result.skipped = True
        return result
    return _check_alternate_backend(ctx, fmt, "numba", "numba-agreement")


#: Metric row keys compared between the fast path and the reference.
_METRIC_ROW_RTOL = 1e-9


def check_metrics_fast_vs_full(ctx) -> CheckResult:
    """O(1) single-fault metrics vs the full-array reference reduction.

    Looked up through the module (``fast.single_fault_metrics``) at call
    time, so a perturbed fast path is caught even when monkeypatched.
    """
    from repro.metrics import fast, pointwise
    from repro.metrics.summary import SummaryStats

    collector = FindingCollector("metrics-fast-vs-full", "metrics")
    rng = np.random.default_rng([ctx.seed, 97])
    cases = 64 if ctx.level == "smoke" else 256
    base = np.concatenate([
        rng.normal(50.0, 20.0, 40),
        rng.lognormal(-2, 4, 16),
        np.zeros(4),
        np.array([1.0, -1.0, 1e-300, 1e300]),
    ])
    baseline = SummaryStats.from_array(base)
    specials = [np.nan, np.inf, -np.inf, 0.0]
    checked = 0
    for case in range(cases):
        index = int(rng.integers(0, base.size))
        if case % 8 == 0:
            new_value = float(specials[(case // 8) % len(specials)])
        else:
            new_value = float(base[index] + rng.normal(0, 100))
        faulty = base.copy()
        faulty[index] = new_value
        fast_row = fast.single_fault_metrics(baseline, float(base[index]), new_value).as_row()
        full_row = pointwise.compare_arrays(base, faulty).as_row()
        checked += 1
        for key, fast_value in fast_row.items():
            full_value = full_row[key]
            if np.isnan(fast_value) and np.isnan(full_value):
                continue
            if fast_value == full_value:
                continue
            if (
                np.isfinite(fast_value)
                and np.isfinite(full_value)
                and abs(fast_value - full_value)
                <= _METRIC_ROW_RTOL * max(abs(fast_value), abs(full_value))
            ):
                continue
            collector.error(
                f"single-fault metric {key!r} diverges from compare_arrays: "
                f"fast={fast_value!r} full={full_value!r} "
                f"(index {index}, old={base[index]!r}, new={new_value!r})"
            )
    return collector.finish(checked)
