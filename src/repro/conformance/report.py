"""Conformance report types: checks, their outcomes, and the rendering.

The oracle reuses the severity-ranked :class:`~repro.runner.verify.Finding`
machinery so a conformance report reads exactly like a ``campaign verify``
report: every failed expectation is one finding naming the check, the
format (or fixture file) it hit, and what diverged.  Exit-code semantics
match ``verify_run`` — 0 clean, 1 any error, 2 warnings only — so CI can
gate on ``repro conformance run`` the same way it gates on run audits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runner.verify import SEVERITY_ERROR, SEVERITY_WARNING, Finding

#: Oracle depth levels: ``smoke`` samples, ``full`` goes exhaustive
#: wherever the width permits.
LEVELS = ("smoke", "full")

#: Findings detailed per (check, format) before collapsing into a count,
#: so a systematically-broken codec cannot flood the report.
MAX_DETAILED_FINDINGS = 5


@dataclass(frozen=True)
class SampleBudget:
    """How hard one level drives each check.

    Attributes
    ----------
    patterns:
        Bit patterns sampled per format for decode-side checks (widths
        of at most ``exhaustive_max_bits`` are enumerated instead).
    values:
        Float values sampled per format for encode-side checks.
    pairs:
        Neighbor pairs sampled for rounding/tie checks.
    exhaustive_max_bits:
        Widths up to this enumerate their full pattern space.
    """

    patterns: int
    values: int
    pairs: int
    exhaustive_max_bits: int


BUDGETS = {
    "smoke": SampleBudget(patterns=512, values=256, pairs=96, exhaustive_max_bits=8),
    "full": SampleBudget(patterns=4096, values=2048, pairs=512, exhaustive_max_bits=16),
}


@dataclass
class CheckResult:
    """One check's outcome against one format (or globally)."""

    check: str
    subject: str  # format spec, fixture name, or "metrics"
    findings: list[Finding] = field(default_factory=list)
    #: Units examined: patterns, values, trials, fixture entries...
    checked: int = 0
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings


class FindingCollector:
    """Caps per-check detail: first few findings verbatim, then a tally."""

    def __init__(self, check: str, subject: str, path: str | None = None) -> None:
        self.result = CheckResult(check=check, subject=subject)
        self._path = path if path is not None else subject
        self._overflow = 0

    def error(self, message: str) -> None:
        self._add(SEVERITY_ERROR, message)

    def warning(self, message: str) -> None:
        self._add(SEVERITY_WARNING, message)

    def _add(self, severity: str, message: str) -> None:
        if len(self.result.findings) < MAX_DETAILED_FINDINGS:
            self.result.findings.append(
                Finding(severity, self.result.check, message, self._path)
            )
        else:
            self._overflow += 1

    def finish(self, checked: int) -> CheckResult:
        self.result.checked = checked
        if self._overflow:
            self.result.findings.append(
                Finding(
                    SEVERITY_ERROR,
                    self.result.check,
                    f"... and {self._overflow} further mismatch(es) suppressed",
                    self._path,
                )
            )
        return self.result


@dataclass
class ConformanceReport:
    """Everything one ``run_conformance`` invocation concluded."""

    level: str
    results: list[CheckResult] = field(default_factory=list)

    @property
    def findings(self) -> list[Finding]:
        """All findings, severity-ranked (errors before warnings)."""
        ordered = [f for r in self.results for f in r.findings]
        return sorted(ordered, key=lambda f: 0 if f.severity == SEVERITY_ERROR else 1)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        """0 clean, 1 any error, 2 warnings only (mirrors ``verify_run``)."""
        if self.errors:
            return 1
        if self.warnings:
            return 2
        return 0

    @property
    def checks_run(self) -> int:
        return sum(1 for r in self.results if not r.skipped)

    @property
    def units_checked(self) -> int:
        return sum(r.checked for r in self.results)

    def render(self) -> str:
        lines = [f"conformance: level={self.level}"]
        for finding in self.findings:
            lines.append("  " + finding.render())
        failed = sorted({(r.check, r.subject) for r in self.results if not r.ok})
        if self.ok:
            lines.append(
                f"result: clean ({self.checks_run} check(s), "
                f"{self.units_checked} unit(s) examined)"
            )
        else:
            lines.append(
                f"result: {len(self.errors)} error(s), {len(self.warnings)} "
                f"warning(s) across {len(failed)} failing check(s): "
                + ", ".join(f"{check}[{subject}]" for check, subject in failed)
            )
        return "\n".join(lines)
