"""Multi-bit oracle: Lowery bounds for k flips and fault-model identity.

Two format checks extend the single-flip invariants of
:mod:`repro.conformance.invariants` to the fault-model dimension:

* ``check_multibit_lowery`` — Lowery's closed forms compose across
  independent flips: k exponent-bit flips of an IEEE normal that leave
  it normal multiply the value by ``2**d`` with ``d`` the signed sum of
  the per-bit exponent deltas, so ``rel == |1 - 2**d|`` exactly; k
  fraction-bit flips perturb the significand by at most the sum of the
  per-bit bounds.  Checked as metamorphic invariants over sampled
  values and bit-index pairs.
* ``check_multibit_batched_identity`` — for one concrete model per
  grammar production, the batched masked decode
  (:meth:`~repro.formats.base.NumberFormat.decode_masked`, the campaign
  hot path) must be bit-identical to applying the same masks one
  element at a time through the scalar path.
"""

from __future__ import annotations

import numpy as np

from repro.conformance.invariants import _CLOSED_FORM_RTOL
from repro.conformance.references import pattern_sample, value_sample
from repro.conformance.report import CheckResult, FindingCollector
from repro.formats import IEEETarget, NumberFormat


def _exponent_pairs(exponent_bits: int) -> list[tuple[int, int]]:
    """Bit-index pairs to sweep: all of them when cheap, else a spine.

    ieee64's 11 exponent bits would mean 55 pairs x the whole sample;
    adjacent pairs plus the extreme pair cover the same carry/borrow
    structure at linear cost.
    """
    if exponent_bits <= 6:
        return [
            (j1, j2)
            for j1 in range(exponent_bits)
            for j2 in range(j1 + 1, exponent_bits)
        ]
    pairs = [(j, j + 1) for j in range(exponent_bits - 1)]
    pairs.append((0, exponent_bits - 1))
    return pairs


def check_multibit_lowery(ctx, fmt: NumberFormat) -> CheckResult:
    """Closed-form relative error of double bit flips (IEEE).

    Exponent bits j1 != j2 flipped together on a normal value that
    stays normal: ``rel == |1 - 2**(d1 + d2)|`` with
    ``di = -2**ji`` when bit ji was set, ``+2**ji`` otherwise.
    Fraction bits i1 != i2: ``rel <= 2**(i1 - F) + 2**(i2 - F)``.
    Posit double flips may hop fields (regime shifts change every
    later bit's meaning), so no closed form exists there — skipped.
    """
    collector = FindingCollector("multibit-lowery", fmt.name)
    if not isinstance(fmt, IEEETarget):
        result = collector.finish(0)
        result.skipped = True
        return result
    spec = fmt.format
    values = value_sample(fmt, ctx.budget.values, seed=ctx.seed)
    with np.errstate(over="ignore", invalid="ignore"):
        stored = fmt.round_trip(values)
        bits = np.asarray(fmt.to_bits(stored))
    exp_mask = np.uint64((1 << spec.exponent_bits) - 1)
    exp_of = (bits.astype(np.uint64) >> np.uint64(spec.fraction_bits)) & exp_mask
    finite = np.isfinite(stored) & (stored != 0)
    normal = finite & (exp_of >= 1) & (exp_of < spec.exponent_all_ones)
    checked = 0

    for j1, j2 in _exponent_pairs(spec.exponent_bits):
        mask = bits.dtype.type(
            (1 << (spec.fraction_bits + j1)) | (1 << (spec.fraction_bits + j2))
        )
        flipped = bits ^ mask
        exp_faulty = (flipped.astype(np.uint64) >> np.uint64(spec.fraction_bits)) & exp_mask
        both_normal = normal & (exp_faulty >= 1) & (exp_faulty < spec.exponent_all_ones)
        if not np.any(both_normal):
            continue
        faulty = fmt.from_bits(flipped)
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            rel = np.abs(stored - faulty) / np.abs(stored)
        delta = np.zeros(len(bits), dtype=np.float64)
        for j in (j1, j2):
            was_set = (exp_of >> np.uint64(j)) & np.uint64(1)
            delta += np.where(was_set == 1, -(2.0**j), 2.0**j)
        with np.errstate(over="ignore"):
            expected = np.abs(1.0 - np.exp2(delta))
        usable = both_normal & np.isfinite(rel) & np.isfinite(expected)
        with np.errstate(invalid="ignore"):
            deviation = np.abs(rel - expected) > _CLOSED_FORM_RTOL * np.maximum(expected, 1.0)
        checked += int(np.sum(usable))
        for idx in np.nonzero(usable & deviation)[0][:4].tolist():
            collector.error(
                f"{fmt.name} exponent bits ({j1},{j2}) double flip of "
                f"{stored[idx]!r}: rel err {rel[idx]!r} off the composed "
                f"Lowery form {expected[idx]!r}"
            )

    fraction_pairs = [
        (0, spec.fraction_bits - 1),
        (spec.fraction_bits // 2, spec.fraction_bits - 1),
        (0, spec.fraction_bits // 2),
    ]
    for i1, i2 in {(min(p), max(p)) for p in fraction_pairs if p[0] != p[1]}:
        flipped = bits ^ bits.dtype.type((1 << i1) | (1 << i2))
        faulty = fmt.from_bits(flipped)
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            rel = np.abs(stored - faulty) / np.abs(stored)
        bound = 2.0 ** (i1 - spec.fraction_bits) + 2.0 ** (i2 - spec.fraction_bits)
        usable = normal & np.isfinite(rel)
        checked += int(np.sum(usable))
        over = usable & (rel > bound * (1 + _CLOSED_FORM_RTOL))
        for idx in np.nonzero(over)[0][:4].tolist():
            collector.error(
                f"{fmt.name} fraction bits ({i1},{i2}) double flip of "
                f"{stored[idx]!r}: rel err {rel[idx]!r} exceeds the summed "
                f"Lowery bound {bound!r}"
            )
    return collector.finish(checked)


def _format_fault_specs(nbits: int) -> list[str]:
    """One valid concrete spec per grammar production for this width."""
    return [
        "single",
        "adjacent(2)",
        f"random({min(2, nbits)})",
        "burst(3,0.5)",
        f"stuckat({nbits - 1},1)",
    ]


def check_multibit_batched_identity(ctx, fmt: NumberFormat) -> CheckResult:
    """Batched masked decode == scalar mask application, every model.

    The campaign's encode-once pipeline decodes a whole trial block
    through :meth:`NumberFormat.decode_masked`; this check regenerates
    the same per-trial masks and replays them one element at a time
    through :func:`repro.inject.faults.apply_masks` + ``from_bits``,
    demanding bit-identical outputs (NaNs compared by pattern).
    """
    from repro.inject.faults import FaultMasks, apply_masks
    from repro.inject.faultspec import resolve_fault

    collector = FindingCollector("multibit-batched-identity", fmt.name)
    patterns = pattern_sample(
        fmt,
        min(ctx.budget.patterns, 256),
        exhaustive_max_bits=0,
        seed=ctx.seed,
    )
    bits = np.asarray(patterns, dtype=fmt.dtype)
    anchors = sorted({0, fmt.nbits // 2, fmt.nbits - 1})
    checked = 0
    for spec in _format_fault_specs(fmt.nbits):
        resolved = resolve_fault(spec)
        for anchor in anchors:
            model = resolved.for_bit(anchor, fmt.nbits)
            rng = np.random.default_rng(ctx.seed + anchor)
            masks = model.masks(bits.shape, fmt.nbits, rng)
            batched = np.asarray(fmt.decode_masked(bits, masks))
            xor = np.broadcast_to(np.asarray(masks.xor, dtype=np.uint64), bits.shape)
            set_mask = np.broadcast_to(np.asarray(masks.set, dtype=np.uint64), bits.shape)
            clear = np.broadcast_to(np.asarray(masks.clear, dtype=np.uint64), bits.shape)
            scalar = np.empty_like(batched)
            for i in range(len(bits)):
                one = apply_masks(
                    bits[i : i + 1],
                    FaultMasks(xor[i], set_mask[i], clear[i]),
                    fmt.nbits,
                )
                scalar[i] = np.asarray(fmt.from_bits(one))[0]
            same = (batched == scalar) | (np.isnan(batched) & np.isnan(scalar))
            checked += len(bits)
            for idx in np.nonzero(~same)[0][:2].tolist():
                collector.error(
                    f"{fmt.name} {resolved.spec} @ bit {anchor}: batched decode "
                    f"of pattern {int(bits[idx]):#x} gave {batched[idx]!r}, "
                    f"scalar path gave {scalar[idx]!r}"
                )
            if not resolved.is_default:
                continue
            # The default model must also match the legacy XOR-only
            # decode path byte-for-byte (the seed-compatibility anchor).
            legacy = np.asarray(fmt.decode_flips(bits, np.asarray([anchor])))[0]
            same = (batched == legacy) | (np.isnan(batched) & np.isnan(legacy))
            checked += len(bits)
            for idx in np.nonzero(~same)[0][:2].tolist():
                collector.error(
                    f"{fmt.name} single @ bit {anchor}: decode_masked gave "
                    f"{batched[idx]!r} but decode_flips gave {legacy[idx]!r}"
                )
    return collector.finish(checked)
