"""Metamorphic and algebraic invariants over codecs and metrics.

Each check asserts a property that must hold for *every* conforming
codec, without reference to a second implementation:

* ``idempotence`` — re-encoding a decoded pattern reproduces the pattern
  (NaN payloads excepted: formats canonicalize them by design);
* ``rne-ties`` — the exact midpoint of two adjacent representable values
  rounds to the pattern with an even (zero) last bit;
* ``posit-monotonic`` — posit decode is strictly increasing over the
  two's-complement order of the pattern ring (NaR excluded), the
  property that makes posit comparison integer comparison;
* ``negation-symmetry`` — negating the pattern (two's complement for
  posits, sign-bit XOR for IEEE) negates the value;
* ``lowery-exponent`` — Lowery's closed form (arXiv:1304.4292): a flip
  of exponent bit j of a normal IEEE value that lands on another normal
  value has relative error exactly ``|1 - 2**(±2**j)|``, and a fraction
  bit i flip is bounded by ``2**(i - F)``; posit exponent-bit flips hit
  the analogous ``|1 - 2**(±2**i)|`` lattice (i < es);
* ``metrics-metamorphic`` — the reference metric reduction is invariant
  under joint permutation and sign flip, and equivariant under exact
  power-of-two scaling.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from repro.conformance.references import pattern_sample, value_sample
from repro.conformance.report import CheckResult, FindingCollector
from repro.formats import IEEETarget, NumberFormat, PositTarget

#: Tolerance for closed-form relative-error identities: the measured
#: ratio is one float64 division away from exact.
_CLOSED_FORM_RTOL = 1e-12


def _sample(ctx, fmt: NumberFormat) -> np.ndarray:
    return pattern_sample(
        fmt, ctx.budget.patterns, exhaustive_max_bits=ctx.budget.exhaustive_max_bits,
        seed=ctx.seed,
    )


def check_idempotence(ctx, fmt: NumberFormat) -> CheckResult:
    """to_bits(from_bits(p)) == p for every canonical pattern.

    Exact for every format whose decode is lossless in float64 (all IEEE
    layouts, posits up to 32 bits).  Wider posits pack more fraction
    bits than float64 holds, so several patterns share one decoded
    float; there the invariant weakens to *nearest-pattern optimality*:
    the re-encoded pattern's exact value must be at least as close to
    the decoded float as the original pattern's.
    """
    collector = FindingCollector("idempotence", fmt.name)
    patterns = _sample(ctx, fmt)
    typed = patterns.astype(fmt.dtype)
    values = fmt.from_bits(typed)
    reencoded = np.asarray(fmt.to_bits(values)).astype(np.uint64)
    mismatch = reencoded != patterns
    if isinstance(fmt, IEEETarget):
        # IEEE NaN payloads canonicalize on encode; every other pattern
        # (including -0.0, subnormals, infinities) must round-trip.
        mismatch &= ~np.isnan(values)
    lossy_decode = isinstance(fmt, PositTarget) and fmt.nbits > 32
    for idx in np.nonzero(mismatch)[0].tolist()[: 64 if lossy_decode else 8]:
        if lossy_decode and _nearest_pattern_ok(
            fmt, int(patterns[idx]), int(reencoded[idx]), float(values[idx])
        ):
            continue
        collector.error(
            f"{fmt.name} pattern 0x{int(patterns[idx]):x} decodes to "
            f"{values[idx]!r} but re-encodes to 0x{int(reencoded[idx]):x}"
        )
    return collector.finish(patterns.size)


def _nearest_pattern_ok(fmt: PositTarget, original: int, reencoded: int, decoded: float) -> bool:
    """Whether ``reencoded`` is an exact-arithmetic-justified answer for
    ``decoded``: no farther from it than ``original`` is."""
    from repro.posit._reference import decode_exact

    if not math.isfinite(decoded):
        return False
    target = Fraction(decoded)
    exact_original = decode_exact(original, fmt.config)
    exact_reencoded = decode_exact(reencoded, fmt.config)
    if exact_original is None or exact_reencoded is None:
        return False
    return abs(exact_reencoded - target) <= abs(exact_original - target)


def _positive_finite_neighbors(fmt: NumberFormat, count: int, seed: int) -> np.ndarray:
    """Adjacent positive pattern pairs (p, p+1), both finite nonzero."""
    if isinstance(fmt, IEEETarget):
        # Positive finite patterns: 1 .. (inf pattern - 2), so p+1 stays finite.
        top = (fmt.format.exponent_all_ones << fmt.format.fraction_bits) - 2
    else:
        # Positive posit patterns: 1 .. maxpos-1, so p+1 stays below NaR.
        top = (1 << (fmt.nbits - 1)) - 2
    if top < 1:
        return np.empty(0, dtype=np.uint64)
    rng = np.random.default_rng([seed, fmt.nbits, 1717])
    if top <= count:
        return np.arange(1, top + 1, dtype=np.uint64)
    return np.unique(rng.integers(1, top + 1, size=count, dtype=np.uint64))


def check_rne_ties(ctx, fmt: NumberFormat) -> CheckResult:
    """Exact midpoints of adjacent values round to the even pattern.

    Only formats whose neighbor midpoints are exact float64 values can
    be driven through the float64 protocol; wider formats skip.
    """
    collector = FindingCollector("rne-ties", fmt.name)
    if not isinstance(fmt, (IEEETarget, PositTarget)) or fmt.nbits > 32:
        result = collector.finish(0)
        result.skipped = True
        return result
    patterns = _positive_finite_neighbors(fmt, ctx.budget.pairs, ctx.seed)
    typed = patterns.astype(fmt.dtype)
    low = fmt.from_bits(typed)
    high = fmt.from_bits((patterns + 1).astype(fmt.dtype))
    checked = 0
    is_posit = isinstance(fmt, PositTarget)
    if is_posit:
        from repro.posit._reference import _split_fields
    for pattern, a, b in zip(patterns.tolist(), low.tolist(), high.tolist()):
        if not (math.isfinite(a) and math.isfinite(b)) or a == 0 or b == 0 or a >= b:
            continue
        if is_posit:
            _, _, _, m, f_int = _split_fields(pattern, fmt.config)
            if m < 1 or f_int == (1 << m) - 1:
                # p and p+1 straddle a regime/exponent boundary; the
                # pattern<->value map is exponential across it, so the
                # value midpoint is not the rounding tie (the correct
                # breakpoint is the even-pattern lattice in *ideal
                # pattern* space, which encode_exact honors).  Only
                # same-fraction-block neighbors tie at the midpoint.
                continue
        midpoint = (Fraction(a) + Fraction(b)) / 2
        mid_float = float(midpoint)
        if Fraction(mid_float) != midpoint:
            continue  # the tie itself is not a float64; cannot be driven exactly
        expected = pattern if pattern % 2 == 0 else pattern + 1
        got = int(np.asarray(fmt.to_bits(np.float64(mid_float))).reshape(-1)[0])
        checked += 1
        if got != expected:
            collector.error(
                f"{fmt.name} tie {mid_float!r} between 0x{pattern:x} and "
                f"0x{pattern + 1:x} rounds to 0x{got:x}, RNE demands the even "
                f"pattern 0x{expected:x}"
            )
    return collector.finish(checked)


def check_posit_monotonic(ctx, fmt: NumberFormat) -> CheckResult:
    """Posit decode is strictly increasing in two's-complement order."""
    collector = FindingCollector("posit-monotonic", fmt.name)
    if not isinstance(fmt, PositTarget):
        result = collector.finish(0)
        result.skipped = True
        return result
    patterns = _sample(ctx, fmt)
    nar = np.uint64(1 << (fmt.nbits - 1))
    patterns = patterns[patterns != nar]
    signed = patterns.astype(np.int64)
    if fmt.nbits < 64:
        width = np.int64(1 << fmt.nbits)
        signed = np.where(signed >= np.int64(1 << (fmt.nbits - 1)), signed - width, signed)
    order = np.argsort(signed, kind="stable")
    values = fmt.from_bits(patterns[order].astype(fmt.dtype))
    deltas = np.diff(values)
    bad = np.nonzero(~(deltas > 0))[0]
    for idx in bad[:8].tolist():
        collector.error(
            f"{fmt.name} decode not strictly increasing: pattern "
            f"0x{int(patterns[order][idx]):x} -> {values[idx]!r} but "
            f"0x{int(patterns[order][idx + 1]):x} -> {values[idx + 1]!r}"
        )
    return collector.finish(patterns.size)


def check_negation_symmetry(ctx, fmt: NumberFormat) -> CheckResult:
    """decode(-p) == -decode(p): two's complement (posit) / sign XOR (IEEE)."""
    collector = FindingCollector("negation-symmetry", fmt.name)
    if not isinstance(fmt, (IEEETarget, PositTarget)):
        result = collector.finish(0)
        result.skipped = True
        return result
    patterns = _sample(ctx, fmt)
    mask = np.uint64((1 << fmt.nbits) - 1) if fmt.nbits < 64 else np.uint64(2**64 - 1)
    if isinstance(fmt, PositTarget):
        negated = (np.uint64(0) - patterns) & mask
    else:
        negated = patterns ^ np.uint64(1 << (fmt.nbits - 1))
    values = fmt.from_bits(patterns.astype(fmt.dtype))
    neg_values = fmt.from_bits(negated.astype(fmt.dtype))
    with np.errstate(invalid="ignore"):
        mismatch = ~((neg_values == -values) | (np.isnan(values) & np.isnan(neg_values)))
    for idx in np.nonzero(mismatch)[0][:8].tolist():
        collector.error(
            f"{fmt.name} negation broken: decode(0x{int(patterns[idx]):x}) = "
            f"{values[idx]!r} but decode(0x{int(negated[idx]):x}) = "
            f"{neg_values[idx]!r}, expected {-values[idx]!r}"
        )
    return collector.finish(patterns.size)


def _closed_form_lattice(es: int) -> np.ndarray:
    """|1 - 2**(±2**i)| for i < es: every posit exponent-flip rel error."""
    deltas = [2**i for i in range(es)] + [-(2**i) for i in range(es)]
    return np.array(sorted({abs(1.0 - 2.0**d) for d in deltas}))


def check_lowery_exponent(ctx, fmt: NumberFormat) -> CheckResult:
    """Closed-form relative error of exponent/fraction bit flips.

    IEEE (Lowery, arXiv:1304.4292): normal-to-normal exponent-bit-j
    flips satisfy rel == |1 - 2**(±2**j)| exactly; fraction-bit-i flips
    of a normal value satisfy rel <= 2**(i - F).  Posits: a flip landing
    in the exponent field leaves the regime intact, so rel must sit on
    the |1 - 2**(±2**i)| lattice (i < es).
    """
    collector = FindingCollector("lowery-exponent", fmt.name)
    if not isinstance(fmt, (IEEETarget, PositTarget)):
        result = collector.finish(0)
        result.skipped = True
        return result
    values = value_sample(fmt, ctx.budget.values, seed=ctx.seed)
    # The sample sweeps past the format's range on purpose; numpy warns
    # about the saturating casts.
    with np.errstate(over="ignore", invalid="ignore"):
        stored = fmt.round_trip(values)
        bits = fmt.to_bits(stored)
    finite = np.isfinite(stored) & (stored != 0)
    checked = 0
    if isinstance(fmt, IEEETarget):
        spec = fmt.format
        exp_of = (np.asarray(bits).astype(np.uint64) >> np.uint64(spec.fraction_bits)) & np.uint64(
            (1 << spec.exponent_bits) - 1
        )
        normal = finite & (exp_of >= 1) & (exp_of < spec.exponent_all_ones)
        for j in range(spec.exponent_bits):
            flipped = np.asarray(bits) ^ np.asarray(bits).dtype.type(
                1 << (spec.fraction_bits + j)
            )
            faulty = fmt.from_bits(flipped)
            exp_faulty = (flipped.astype(np.uint64) >> np.uint64(spec.fraction_bits)) & np.uint64(
                (1 << spec.exponent_bits) - 1
            )
            both_normal = normal & (exp_faulty >= 1) & (exp_faulty < spec.exponent_all_ones)
            if not np.any(both_normal):
                continue
            with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
                rel = np.abs(stored - faulty) / np.abs(stored)
            bit_was_set = (exp_of >> np.uint64(j)) & np.uint64(1)
            # 2**(2**j) overflows float64 for j >= 10 (ieee64's top
            # exponent bits); np.exp2 saturates to inf, which the
            # isfinite(expected) guard below then filters out.
            with np.errstate(over="ignore"):
                flip_up = float(np.abs(1.0 - np.exp2(np.float64(2**j))))
            expected = np.where(bit_was_set == 1, abs(1.0 - 2.0 ** -(2.0**j)), flip_up)
            usable = both_normal & np.isfinite(rel) & np.isfinite(expected)
            with np.errstate(invalid="ignore"):
                deviation = np.abs(rel - expected) > _CLOSED_FORM_RTOL * np.maximum(expected, 1.0)
            checked += int(np.sum(usable))
            for idx in np.nonzero(usable & deviation)[0][:4].tolist():
                collector.error(
                    f"{fmt.name} exponent bit {j} flip of {stored[idx]!r}: rel err "
                    f"{rel[idx]!r} off Lowery's closed form {expected[idx]!r}"
                )
        # Fraction-bit bound: rel <= 2**(i - F) for normal originals.
        for i in (0, spec.fraction_bits // 2, spec.fraction_bits - 1):
            flipped = np.asarray(bits) ^ np.asarray(bits).dtype.type(1 << i)
            faulty = fmt.from_bits(flipped)
            with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
                rel = np.abs(stored - faulty) / np.abs(stored)
            bound = 2.0 ** (i - spec.fraction_bits)
            usable = normal & np.isfinite(rel)
            checked += int(np.sum(usable))
            over = usable & (rel > bound * (1 + _CLOSED_FORM_RTOL))
            for idx in np.nonzero(over)[0][:4].tolist():
                collector.error(
                    f"{fmt.name} fraction bit {i} flip of {stored[idx]!r}: rel err "
                    f"{rel[idx]!r} exceeds Lowery's bound {bound!r}"
                )
    else:
        es = fmt.config.es
        if es == 0:
            result = collector.finish(0)
            result.skipped = True
            return result
        lattice = _closed_form_lattice(es)
        from repro.posit.fields import PositField

        typed = np.asarray(bits)
        for bit in range(fmt.nbits - 1):
            fields = np.asarray(fmt.classify_bits(typed, bit))
            in_exponent = (fields == int(PositField.EXPONENT)) & finite
            if not np.any(in_exponent):
                continue
            faulty = fmt.from_bits(typed ^ typed.dtype.type(1 << bit))
            with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
                rel = np.abs(stored - faulty) / np.abs(stored)
            usable = in_exponent & np.isfinite(rel)
            checked += int(np.sum(usable))
            distance = np.min(
                np.abs(rel[usable, None] - lattice[None, :]), axis=1, initial=np.inf
            ) if np.any(usable) else np.empty(0)
            offenders = np.nonzero(usable)[0][distance > _CLOSED_FORM_RTOL * 4]
            for idx in offenders[:4].tolist():
                collector.error(
                    f"{fmt.name} exponent-field flip of bit {bit} in "
                    f"{stored[idx]!r}: rel err {rel[idx]!r} off the "
                    f"|1 - 2**(±2**i)| lattice"
                )
    return collector.finish(checked)


def check_metrics_metamorphic(ctx) -> CheckResult:
    """Permutation/sign invariance and scaling equivariance of metrics."""
    from repro.metrics import pointwise

    collector = FindingCollector("metrics-metamorphic", "metrics")
    rng = np.random.default_rng([ctx.seed, 31])
    cases = 16 if ctx.level == "smoke" else 64
    checked = 0
    for case in range(cases):
        size = int(rng.integers(8, 128))
        a = rng.normal(0, 10, size) * np.exp2(rng.integers(-8, 8, size))
        b = a.copy()
        for _ in range(int(rng.integers(1, 4))):
            b[rng.integers(0, size)] += rng.normal(0, 50)
        base = pointwise.compare_arrays(a, b).as_row()

        perm = rng.permutation(size)
        permuted = pointwise.compare_arrays(a[perm], b[perm]).as_row()
        _compare_rows(collector, "permutation", base, permuted, rtol=1e-12)

        negated = pointwise.compare_arrays(-a, -b).as_row()
        _compare_rows(collector, "sign-flip", base, negated, rtol=1e-12)

        scale = 2.0 ** int(rng.integers(-20, 20))
        scaled = pointwise.compare_arrays(scale * a, scale * b).as_row()
        expected = dict(base)
        for key in ("max_abs_err", "mean_abs_err", "rmse", "l2_err", "linf_err"):
            expected[key] *= scale
        expected["mse"] *= scale * scale
        _compare_rows(collector, f"scale-by-{scale!r}", expected, scaled, rtol=1e-9)
        checked += 3
    return collector.finish(checked)


def _compare_rows(collector, relation: str, expected: dict, got: dict, *, rtol: float) -> None:
    for key, want in expected.items():
        have = got[key]
        if np.isnan(want) and np.isnan(have):
            continue
        if want == have:
            continue
        if (
            np.isfinite(want)
            and np.isfinite(have)
            and abs(want - have) <= rtol * max(abs(want), abs(have))
        ):
            continue
        collector.error(
            f"compare_arrays not {relation}-invariant on {key!r}: "
            f"expected {want!r}, got {have!r}"
        )
