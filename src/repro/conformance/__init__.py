"""Differential & metamorphic conformance oracle for the number stack.

The paper's claims rest on bit-exact float↔posit conversion and
QCAT-style error metrics; this package is the continuous gate that keeps
them honest.  Three layers of checking (see :mod:`repro.conformance.oracle`):

* **differential** — every registered codec against an independent
  reference (struct-based IEEE, exact-``Fraction`` posits, LUT vs
  direct backends);
* **metamorphic** — algebraic invariants no conforming codec may break
  (idempotence, RNE ties, monotonicity, negation symmetry, Lowery's
  closed-form flip errors) plus metric invariances;
* **golden** — regression locks: codec lattices and small seeded
  campaign statistics under ``tests/golden/``, refreshed via
  ``repro conformance bless``.

CLI: ``repro conformance run [--format SPEC] [--level smoke|full]`` and
``repro conformance bless``.  Exit codes mirror ``campaign verify``.
"""

from repro.conformance.golden import (
    CAMPAIGN_FIXTURES,
    CODEC_FIXTURE_FORMATS,
    GOLDEN_DIR_ENV_VAR,
    bless,
    build_codec_fixture,
    build_campaign_fixture,
    campaign_fixture_path,
    codec_fixture_path,
    compute_campaign_stats,
    default_golden_dir,
    load_fixture,
    write_fixture,
)
from repro.conformance.oracle import (
    DEFAULT_CHECK_FORMATS,
    OracleContext,
    run_conformance,
)
from repro.conformance.references import ORACLE_SEED, reference_for
from repro.conformance.report import (
    BUDGETS,
    LEVELS,
    CheckResult,
    ConformanceReport,
    SampleBudget,
)

__all__ = [
    "BUDGETS",
    "CAMPAIGN_FIXTURES",
    "CODEC_FIXTURE_FORMATS",
    "CheckResult",
    "ConformanceReport",
    "DEFAULT_CHECK_FORMATS",
    "GOLDEN_DIR_ENV_VAR",
    "LEVELS",
    "ORACLE_SEED",
    "OracleContext",
    "SampleBudget",
    "bless",
    "build_campaign_fixture",
    "build_codec_fixture",
    "campaign_fixture_path",
    "codec_fixture_path",
    "compute_campaign_stats",
    "default_golden_dir",
    "load_fixture",
    "reference_for",
    "run_conformance",
    "write_fixture",
]
