"""IEEE-754 bit-level substrate: formats, views, fields, analytic model."""

from repro.ieee.analytic import (
    AnalyticPrediction,
    expected_error_profile,
    predict_flip,
    relative_error_bound,
)
from repro.ieee.bits import (
    assemble,
    bits_to_float,
    extract_exponent,
    extract_fraction,
    extract_sign,
    flip_bit,
    flip_float_bit,
    float_to_bits,
)
from repro.ieee.fields import IEEEField, classify_bit, field_map, field_of_bit, layout_string
from repro.ieee.formats import (
    BFLOAT16,
    BINARY16,
    BINARY32,
    BINARY64,
    FORMATS,
    IEEEFormat,
    format_by_name,
)
from repro.ieee.special import is_finite, is_inf, is_nan, is_subnormal, is_zero

__all__ = [
    "AnalyticPrediction",
    "BFLOAT16",
    "BINARY16",
    "BINARY32",
    "BINARY64",
    "FORMATS",
    "IEEEField",
    "IEEEFormat",
    "assemble",
    "bits_to_float",
    "classify_bit",
    "expected_error_profile",
    "extract_exponent",
    "extract_fraction",
    "extract_sign",
    "field_map",
    "field_of_bit",
    "flip_bit",
    "flip_float_bit",
    "float_to_bits",
    "format_by_name",
    "is_finite",
    "is_inf",
    "is_nan",
    "is_subnormal",
    "is_zero",
    "layout_string",
    "predict_flip",
    "relative_error_bound",
]
