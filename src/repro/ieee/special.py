"""IEEE-754 special-value predicates on bit patterns.

These operate on raw patterns (not floats) so they work for bfloat16 and
so injected faults can be classified without converting — a flipped bit
that lands a value in the NaN/Inf space is exactly the paper's
"catastrophic" outcome for IEEE floats.
"""

from __future__ import annotations

import numpy as np

from repro.ieee.bits import extract_exponent, extract_fraction
from repro.ieee.formats import IEEEFormat


def is_nan(bits, fmt: IEEEFormat) -> np.ndarray:
    """True where the pattern encodes a NaN (max exponent, fraction != 0)."""
    e = extract_exponent(bits, fmt)
    f = extract_fraction(bits, fmt)
    return (e == fmt.exponent_all_ones) & (f != 0)


def is_inf(bits, fmt: IEEEFormat) -> np.ndarray:
    """True where the pattern encodes +/-infinity."""
    e = extract_exponent(bits, fmt)
    f = extract_fraction(bits, fmt)
    return (e == fmt.exponent_all_ones) & (f == 0)


def is_finite(bits, fmt: IEEEFormat) -> np.ndarray:
    """True where the pattern encodes a finite number."""
    return extract_exponent(bits, fmt) != fmt.exponent_all_ones


def is_subnormal(bits, fmt: IEEEFormat) -> np.ndarray:
    """True for subnormals (zero exponent, nonzero fraction)."""
    e = extract_exponent(bits, fmt)
    f = extract_fraction(bits, fmt)
    return (e == 0) & (f != 0)


def is_zero(bits, fmt: IEEEFormat) -> np.ndarray:
    """True for +/-0."""
    e = extract_exponent(bits, fmt)
    f = extract_fraction(bits, fmt)
    return (e == 0) & (f == 0)
