"""Software arithmetic on IEEE bit patterns (bfloat16 included).

NumPy has native arithmetic for binary16/32/64 but no bfloat16 dtype, so
mixed-precision studies need a software path: compute in float32 and
round the result back to the storage format.  For bfloat16 this is the
exact correctly-rounded semantics (float32 carries more than twice
bfloat16's precision, so the double rounding is innocuous); for the
native formats the same helpers simply route through NumPy.

All functions take and return *bit patterns* of the given format — the
same convention as :mod:`repro.posit.arithmetic` — so campaign code can
treat every number system uniformly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ieee.bits import bits_to_float, float_to_bits
from repro.ieee.formats import IEEEFormat


def _binary(op: Callable, a, b, fmt: IEEEFormat) -> np.ndarray:
    lhs = bits_to_float(a, fmt).astype(np.float32 if fmt.nbits <= 32 else np.float64)
    rhs = bits_to_float(b, fmt).astype(lhs.dtype)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        result = op(lhs, rhs)
    return float_to_bits(result, fmt)


def add(a, b, fmt: IEEEFormat) -> np.ndarray:
    """Correctly rounded addition on bit patterns."""
    return _binary(np.add, a, b, fmt)


def subtract(a, b, fmt: IEEEFormat) -> np.ndarray:
    """Correctly rounded subtraction on bit patterns."""
    return _binary(np.subtract, a, b, fmt)


def multiply(a, b, fmt: IEEEFormat) -> np.ndarray:
    """Correctly rounded multiplication on bit patterns."""
    return _binary(np.multiply, a, b, fmt)


def divide(a, b, fmt: IEEEFormat) -> np.ndarray:
    """Correctly rounded division (x/0 -> inf/nan per IEEE)."""
    return _binary(np.divide, a, b, fmt)


def negate(a, fmt: IEEEFormat) -> np.ndarray:
    """Exact negation: toggle the sign bit."""
    work = np.asarray(a).astype(fmt.dtype, copy=False)
    return work ^ fmt.dtype.type(fmt.sign_mask)


def absolute(a, fmt: IEEEFormat) -> np.ndarray:
    """Exact |x|: clear the sign bit."""
    work = np.asarray(a).astype(fmt.dtype, copy=False)
    return work & fmt.dtype.type(fmt.mask ^ fmt.sign_mask)


def sqrt(a, fmt: IEEEFormat) -> np.ndarray:
    """Correctly rounded square root (negative -> NaN)."""
    values = bits_to_float(a, fmt).astype(np.float32 if fmt.nbits <= 32 else np.float64)
    with np.errstate(invalid="ignore"):
        result = np.sqrt(values)
    return float_to_bits(result, fmt)
