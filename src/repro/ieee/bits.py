"""Bit-level access to IEEE-754 values.

The paper's IEEE injection path is exactly this: reinterpret the float's
bits as an unsigned integer, XOR a single-bit mask, reinterpret back
(Fig. 9).  ``float_to_bits``/``bits_to_float`` are zero-copy views for the
native formats and software conversions for bfloat16.
"""

from __future__ import annotations

import numpy as np

from repro.ieee.formats import BFLOAT16, BINARY32, IEEEFormat


def float_to_bits(values, fmt: IEEEFormat) -> np.ndarray:
    """Bit patterns of float values, as the format's unsigned dtype.

    For native formats this is a reinterpreting view-cast (no rounding);
    inputs of a different float width are first converted to the format's
    dtype, which rounds like storing to memory would.  bfloat16 patterns
    are derived from float32 by round-to-nearest-even truncation of the
    low 16 bits.
    """
    array = np.asarray(values)
    if fmt.float_dtype is not None:
        array = array.astype(fmt.float_dtype, copy=False)
        return array.view(fmt.dtype)
    if fmt is not BFLOAT16:  # pragma: no cover - only bfloat16 lacks a dtype
        raise TypeError(f"format {fmt.name} has no native dtype")
    bits32 = np.asarray(values, dtype=np.float32).view(np.uint32)
    # Round-to-nearest-even on the dropped 16 bits, NaN preserved.
    nan_mask = np.isnan(np.asarray(values, dtype=np.float32))
    rounding = np.uint32(0x7FFF) + ((bits32 >> np.uint32(16)) & np.uint32(1))
    rounded = (bits32 + rounding) >> np.uint32(16)
    rounded = np.where(nan_mask, (bits32 >> np.uint32(16)) | np.uint32(0x40), rounded)
    return rounded.astype(np.uint16)


def bits_to_float(bits, fmt: IEEEFormat) -> np.ndarray:
    """Float values of bit patterns (inverse of :func:`float_to_bits`)."""
    array = np.asarray(bits).astype(fmt.dtype, copy=False)
    if fmt.float_dtype is not None:
        return array.view(fmt.float_dtype)
    bits32 = array.astype(np.uint32) << np.uint32(16)
    return bits32.view(np.float32)


def flip_bit(bits, bit_index: int, fmt: IEEEFormat) -> np.ndarray:
    """XOR bit ``bit_index`` (LSB == 0) of each pattern (paper Fig. 9)."""
    if not 0 <= bit_index < fmt.nbits:
        raise ValueError(f"bit_index must be in [0, {fmt.nbits}), got {bit_index}")
    work = np.asarray(bits).astype(fmt.dtype, copy=False)
    return work ^ fmt.dtype.type(1 << bit_index)


def flip_float_bit(values, bit_index: int, fmt: IEEEFormat = BINARY32) -> np.ndarray:
    """Flip one bit of each float and return the faulty floats."""
    return bits_to_float(flip_bit(float_to_bits(values, fmt), bit_index, fmt), fmt)


def extract_sign(bits, fmt: IEEEFormat) -> np.ndarray:
    """0/1 sign field."""
    work = np.asarray(bits).astype(np.uint64, copy=False)
    return ((work >> np.uint64(fmt.nbits - 1)) & np.uint64(1)).astype(np.int64)


def extract_exponent(bits, fmt: IEEEFormat) -> np.ndarray:
    """Raw (biased) exponent field as int64."""
    work = np.asarray(bits).astype(np.uint64, copy=False)
    mask = np.uint64((1 << fmt.exponent_bits) - 1)
    return ((work >> np.uint64(fmt.fraction_bits)) & mask).astype(np.int64)


def extract_fraction(bits, fmt: IEEEFormat) -> np.ndarray:
    """Fraction (mantissa) field as uint64."""
    work = np.asarray(bits).astype(np.uint64, copy=False)
    return work & np.uint64(fmt.fraction_mask)


def assemble(sign, exponent, fraction, fmt: IEEEFormat) -> np.ndarray:
    """Build bit patterns from the three fields."""
    s = np.asarray(sign).astype(np.uint64)
    e = np.asarray(exponent).astype(np.uint64)
    f = np.asarray(fraction).astype(np.uint64)
    if np.any(e > np.uint64(fmt.exponent_all_ones)):
        raise ValueError("exponent field overflows its width")
    if np.any(f > np.uint64(fmt.fraction_mask)):
        raise ValueError("fraction field overflows its width")
    pattern = (s << np.uint64(fmt.nbits - 1)) | (e << np.uint64(fmt.fraction_bits)) | f
    return pattern.astype(fmt.dtype)
