"""Bit-level access to IEEE-754 values.

The paper's IEEE injection path is exactly this: reinterpret the float's
bits as an unsigned integer, XOR a single-bit mask, reinterpret back
(Fig. 9).  ``float_to_bits``/``bits_to_float`` are zero-copy views for the
native formats and software conversions for bfloat16.
"""

from __future__ import annotations

import numpy as np

from repro.ieee.formats import BFLOAT16, BINARY32, IEEEFormat


def float_to_bits(values, fmt: IEEEFormat) -> np.ndarray:
    """Bit patterns of float values, as the format's unsigned dtype.

    For native formats this is a reinterpreting view-cast (no rounding);
    inputs of a different float width are first converted to the format's
    dtype, which rounds like storing to memory would.  bfloat16 patterns
    are derived from float32 by round-to-nearest-even truncation of the
    low 16 bits.
    """
    array = np.asarray(values)
    if fmt.float_dtype is not None:
        array = array.astype(fmt.float_dtype, copy=False)
        return array.view(fmt.dtype)
    if fmt is not BFLOAT16:
        return software_float_to_bits(values, fmt)
    bits32 = np.asarray(values, dtype=np.float32).view(np.uint32)
    # Round-to-nearest-even on the dropped 16 bits, NaN preserved.
    nan_mask = np.isnan(np.asarray(values, dtype=np.float32))
    rounding = np.uint32(0x7FFF) + ((bits32 >> np.uint32(16)) & np.uint32(1))
    rounded = (bits32 + rounding) >> np.uint32(16)
    rounded = np.where(nan_mask, (bits32 >> np.uint32(16)) | np.uint32(0x40), rounded)
    return rounded.astype(np.uint16)


def bits_to_float(bits, fmt: IEEEFormat) -> np.ndarray:
    """Float values of bit patterns (inverse of :func:`float_to_bits`)."""
    array = np.asarray(bits).astype(fmt.dtype, copy=False)
    if fmt.float_dtype is not None:
        return array.view(fmt.float_dtype)
    if fmt is not BFLOAT16:
        return software_bits_to_float(array, fmt)
    bits32 = array.astype(np.uint32) << np.uint32(16)
    return bits32.view(np.float32)


def _check_software_format(fmt: IEEEFormat) -> None:
    """Software conversion works for any layout float64 can host exactly."""
    if not 2 <= fmt.exponent_bits <= 11:
        raise ValueError(
            f"software IEEE codec needs 2..11 exponent bits, got {fmt.exponent_bits}"
        )
    if not 1 <= fmt.fraction_bits <= 52:
        raise ValueError(
            f"software IEEE codec needs 1..52 fraction bits, got {fmt.fraction_bits}"
        )


def software_float_to_bits(values, fmt: IEEEFormat) -> np.ndarray:
    """Round float64 values into an arbitrary ``binary(e,f)`` layout.

    Pure-NumPy round-to-nearest-even for any format whose exponent fits
    in 11 bits and fraction in 52 — i.e. any layout float64 covers
    exactly.  Scaling by powers of two is exact and ``np.rint`` rounds
    half-to-even, so the result is a single correct rounding of the
    input (matching what a native dtype cast would do).
    """
    _check_software_format(fmt)
    x = np.asarray(values, dtype=np.float64)
    f = fmt.fraction_bits
    bias = fmt.bias
    sign = np.signbit(x).astype(np.uint64)
    a = np.abs(x)

    is_nan = np.isnan(x)
    is_inf = np.isinf(x)
    finite = ~(is_nan | is_inf) & (a != 0)

    mantissa, exp2 = np.frexp(np.where(finite, a, 1.0))
    unbiased = exp2.astype(np.int64) - 1
    biased = unbiased + bias
    normal = finite & (biased >= 1)
    subnormal = finite & (biased < 1)

    # Normal path: integer significand q = rint(a * 2**(f - unbiased))
    # lands in [2**f, 2**(f+1)]; the top value carries into the exponent.
    q_normal = np.rint(np.ldexp(np.where(normal, a, 1.0), f - unbiased))
    carry = q_normal >= 2.0 ** (f + 1)
    biased = biased + carry.astype(np.int64)
    q_normal = np.where(carry, 2.0**f, q_normal)
    overflow = normal & (biased >= fmt.exponent_all_ones)

    # Subnormal path: count quanta of 2**(1 - bias - f); a full count of
    # 2**f promotes to the smallest normal.
    q_sub = np.rint(np.ldexp(np.where(subnormal, a, 0.0), f + bias - 1))
    promote = subnormal & (q_sub >= 2.0**f)

    exp_field = np.zeros(np.shape(x), dtype=np.uint64)
    frac_field = np.zeros(np.shape(x), dtype=np.uint64)
    exp_field = np.where(normal, biased.astype(np.uint64), exp_field)
    frac_field = np.where(normal, (q_normal - 2.0**f).astype(np.uint64), frac_field)
    exp_field = np.where(promote, np.uint64(1), exp_field)
    frac_field = np.where(subnormal & ~promote, q_sub.astype(np.uint64), frac_field)

    all_ones = np.uint64(fmt.exponent_all_ones)
    exp_field = np.where(is_inf | overflow, all_ones, exp_field)
    frac_field = np.where(is_inf | overflow, np.uint64(0), frac_field)
    exp_field = np.where(is_nan, all_ones, exp_field)
    frac_field = np.where(is_nan, np.uint64(1) << np.uint64(f - 1), frac_field)

    pattern = (
        (sign << np.uint64(fmt.nbits - 1))
        | (exp_field << np.uint64(f))
        | frac_field
    )
    return pattern.astype(fmt.dtype)


def software_bits_to_float(bits, fmt: IEEEFormat) -> np.ndarray:
    """Decode an arbitrary ``binary(e,f)`` layout to float64, exactly."""
    _check_software_format(fmt)
    work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(fmt.mask)
    f = fmt.fraction_bits
    sign_bit = (work >> np.uint64(fmt.nbits - 1)) & np.uint64(1)
    e_raw = ((work >> np.uint64(f)) & np.uint64(fmt.exponent_all_ones)).astype(np.int64)
    frac = (work & np.uint64(fmt.fraction_mask)).astype(np.float64)

    normal_value = np.ldexp(1.0 + frac * 2.0**-f, e_raw - fmt.bias)
    subnormal_value = np.ldexp(frac, 1 - fmt.bias - f)
    value = np.where(e_raw == 0, subnormal_value, normal_value)
    special = np.where(frac == 0.0, np.inf, np.nan)
    value = np.where(e_raw == fmt.exponent_all_ones, special, value)
    return np.where(sign_bit == 1, -value, value)


def flip_bit(bits, bit_index: int, fmt: IEEEFormat) -> np.ndarray:
    """XOR bit ``bit_index`` (LSB == 0) of each pattern (paper Fig. 9)."""
    if not 0 <= bit_index < fmt.nbits:
        raise ValueError(f"bit_index must be in [0, {fmt.nbits}), got {bit_index}")
    work = np.asarray(bits).astype(fmt.dtype, copy=False)
    return work ^ fmt.dtype.type(1 << bit_index)


def flip_float_bit(values, bit_index: int, fmt: IEEEFormat = BINARY32) -> np.ndarray:
    """Flip one bit of each float and return the faulty floats."""
    return bits_to_float(flip_bit(float_to_bits(values, fmt), bit_index, fmt), fmt)


def extract_sign(bits, fmt: IEEEFormat) -> np.ndarray:
    """0/1 sign field."""
    work = np.asarray(bits).astype(np.uint64, copy=False)
    return ((work >> np.uint64(fmt.nbits - 1)) & np.uint64(1)).astype(np.int64)


def extract_exponent(bits, fmt: IEEEFormat) -> np.ndarray:
    """Raw (biased) exponent field as int64."""
    work = np.asarray(bits).astype(np.uint64, copy=False)
    mask = np.uint64((1 << fmt.exponent_bits) - 1)
    return ((work >> np.uint64(fmt.fraction_bits)) & mask).astype(np.int64)


def extract_fraction(bits, fmt: IEEEFormat) -> np.ndarray:
    """Fraction (mantissa) field as uint64."""
    work = np.asarray(bits).astype(np.uint64, copy=False)
    return work & np.uint64(fmt.fraction_mask)


def assemble(sign, exponent, fraction, fmt: IEEEFormat) -> np.ndarray:
    """Build bit patterns from the three fields."""
    s = np.asarray(sign).astype(np.uint64)
    e = np.asarray(exponent).astype(np.uint64)
    f = np.asarray(fraction).astype(np.uint64)
    if np.any(e > np.uint64(fmt.exponent_all_ones)):
        raise ValueError("exponent field overflows its width")
    if np.any(f > np.uint64(fmt.fraction_mask)):
        raise ValueError("fraction field overflows its width")
    pattern = (s << np.uint64(fmt.nbits - 1)) | (e << np.uint64(fmt.fraction_bits)) | f
    return pattern.astype(fmt.dtype)
