"""Analytic (closed-form) error model for IEEE-754 bit flips.

Implements the formulas of Elliott et al. (2013), which the paper's
Section 2 builds on: the deviation a single bit flip causes in a float can
be written down from the bit position alone.

* sign bit: faulty = -orig, absolute error 2|orig|, relative error 2.
* exponent bit j (0-based within the exponent field): the biased exponent
  changes by +/- 2**j, so faulty = orig * 2**(+/-2**j) — multiplied when
  the bit was 0, divided when it was 1.
* fraction bit j: faulty = orig +/- 2**(e_unbiased - F + j) (sign of the
  perturbation follows the value's sign and the bit's prior state), so
  the relative error is at most 2**(j - F).

The closed forms hold while both original and faulty values stay normal;
flips that cross into the subnormal / infinity / NaN encodings are
flagged in the returned validity mask (and the exact flip result can
always be obtained from :func:`repro.ieee.bits.flip_float_bit`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ieee.bits import extract_exponent, extract_fraction, extract_sign, float_to_bits
from repro.ieee.fields import IEEEField, field_of_bit
from repro.ieee.formats import IEEEFormat


@dataclass(frozen=True)
class AnalyticPrediction:
    """Closed-form prediction for one bit position over an array.

    Attributes
    ----------
    faulty:
        Predicted faulty values (float64).
    absolute_error:
        |orig - faulty| predicted analytically.
    relative_error:
        absolute_error / |orig| (inf where orig == 0).
    valid:
        True where the closed form applies (original and faulty values
        both normal and finite).
    """

    faulty: np.ndarray
    absolute_error: np.ndarray
    relative_error: np.ndarray
    valid: np.ndarray


def predict_flip(values, bit_index: int, fmt: IEEEFormat) -> AnalyticPrediction:
    """Predict the effect of flipping ``bit_index`` in each float."""
    original = np.asarray(values, dtype=np.float64)
    bits = float_to_bits(np.asarray(values), fmt)
    sign = extract_sign(bits, fmt)
    exponent = extract_exponent(bits, fmt)
    fraction = extract_fraction(bits, fmt)
    field = field_of_bit(bit_index, fmt)

    normal = (exponent != 0) & (exponent != fmt.exponent_all_ones)

    if field is IEEEField.SIGN:
        faulty = -original
        valid = np.ones(original.shape, dtype=bool)
    elif field is IEEEField.EXPONENT:
        j = bit_index - fmt.fraction_bits
        step = 1 << j
        bit_was_set = ((exponent >> j) & 1) == 1
        delta = np.where(bit_was_set, -step, step)
        faulty = original * np.exp2(delta.astype(np.float64))
        new_exponent = exponent + delta
        valid = normal & (new_exponent > 0) & (new_exponent < fmt.exponent_all_ones)
    else:
        bit_was_set = ((fraction >> bit_index) & 1) == 1
        # Perturbation magnitude: one unit of this fraction bit at the
        # value's scale.
        scale = exponent - fmt.bias - fmt.fraction_bits + bit_index
        magnitude = np.exp2(scale.astype(np.float64))
        direction = np.where(bit_was_set, -1.0, 1.0) * np.where(sign == 1, -1.0, 1.0)
        faulty = original + direction * magnitude
        valid = normal  # fraction flips keep the exponent, hence normal

    absolute = np.abs(original - faulty)
    with np.errstate(divide="ignore", invalid="ignore"):
        relative = absolute / np.abs(original)
    return AnalyticPrediction(
        faulty=faulty,
        absolute_error=absolute,
        relative_error=relative,
        valid=np.asarray(valid, dtype=bool),
    )


def relative_error_bound(bit_index: int, fmt: IEEEFormat) -> float:
    """Value-independent bound on the relative error of one bit flip.

    Fraction bit j: at most 2**(j - F) (the implied-1 mantissa is >= 1).
    Exponent bit j: up to 2**(2**j) - 1 (multiplication case dominates).
    Sign bit: exactly 2.
    """
    field = field_of_bit(bit_index, fmt)
    if field is IEEEField.SIGN:
        return 2.0
    if field is IEEEField.EXPONENT:
        j = bit_index - fmt.fraction_bits
        exponent_step = float(1 << j)
        return float(2.0**exponent_step - 1.0)
    return float(2.0 ** (bit_index - fmt.fraction_bits))


def expected_error_profile(fmt: IEEEFormat) -> np.ndarray:
    """Bound per bit position, LSB first — the shape of the paper's Fig. 3."""
    return np.array([relative_error_bound(j, fmt) for j in range(fmt.nbits)])
