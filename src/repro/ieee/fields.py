"""IEEE-754 bit classification (static, unlike posits).

Provided with the same interface shape as :mod:`repro.posit.fields` so the
campaign analysis can treat both number systems uniformly.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.ieee.formats import IEEEFormat


class IEEEField(enum.IntEnum):
    """Field of a bit position within an IEEE float."""

    SIGN = 0
    EXPONENT = 1
    FRACTION = 2

    def short_name(self) -> str:
        return {"SIGN": "S", "EXPONENT": "E", "FRACTION": "F"}[self.name]


def field_of_bit(bit_index: int, fmt: IEEEFormat) -> IEEEField:
    """Field of ``bit_index`` (LSB == 0); identical for every value."""
    if not 0 <= bit_index < fmt.nbits:
        raise ValueError(f"bit_index must be in [0, {fmt.nbits}), got {bit_index}")
    if bit_index == fmt.nbits - 1:
        return IEEEField.SIGN
    if bit_index >= fmt.fraction_bits:
        return IEEEField.EXPONENT
    return IEEEField.FRACTION


def classify_bit(bits, bit_index: int, fmt: IEEEFormat) -> np.ndarray:
    """Array-shaped classification, mirroring the posit interface."""
    field = field_of_bit(bit_index, fmt)
    return np.full(np.shape(np.asarray(bits)), int(field), dtype=np.int64)


def field_map(fmt: IEEEFormat) -> list[IEEEField]:
    """Field of every bit position, LSB first."""
    return [field_of_bit(j, fmt) for j in range(fmt.nbits)]


def layout_string(pattern: int, fmt: IEEEFormat) -> str:
    """Render a pattern with sign|exponent|fraction separators."""
    bit_string = format(int(pattern) & fmt.mask, f"0{fmt.nbits}b")
    return "|".join(
        (
            bit_string[0],
            bit_string[1 : 1 + fmt.exponent_bits],
            bit_string[1 + fmt.exponent_bits :],
        )
    )
