"""IEEE-754 (and bfloat16) format descriptions.

Each format records its field widths and provides the masks and bias the
bit-level code needs.  binary32 is the paper's subject; binary16/64 and
bfloat16 round out the library for mixed-precision studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitops import uint_dtype_for


@dataclass(frozen=True)
class IEEEFormat:
    """Immutable description of an IEEE-754-style binary format."""

    name: str
    exponent_bits: int
    fraction_bits: int
    #: NumPy float dtype when hardware supports the format natively,
    #: else None (bfloat16 has no NumPy dtype; it is handled bitwise).
    float_dtype: np.dtype | None

    @property
    def nbits(self) -> int:
        """Total width: sign + exponent + fraction."""
        return 1 + self.exponent_bits + self.fraction_bits

    @property
    def bias(self) -> int:
        """Exponent bias 2**(E-1) - 1."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def dtype(self) -> np.dtype:
        """Unsigned integer dtype used for bit patterns."""
        return uint_dtype_for(self.nbits)

    @property
    def mask(self) -> int:
        return (1 << self.nbits) - 1

    @property
    def sign_mask(self) -> int:
        return 1 << (self.nbits - 1)

    @property
    def exponent_mask(self) -> int:
        """Mask of the exponent field, in place."""
        return ((1 << self.exponent_bits) - 1) << self.fraction_bits

    @property
    def fraction_mask(self) -> int:
        return (1 << self.fraction_bits) - 1

    @property
    def exponent_all_ones(self) -> int:
        """Exponent field value that flags infinity / NaN."""
        return (1 << self.exponent_bits) - 1

    @property
    def max_finite(self) -> float:
        """Largest finite value of the format."""
        max_exp = self.exponent_all_ones - 1 - self.bias
        mantissa = 2.0 - 2.0 ** (-self.fraction_bits)
        return mantissa * 2.0**max_exp

    @property
    def min_normal(self) -> float:
        """Smallest positive normal value."""
        return 2.0 ** (1 - self.bias)

    @property
    def min_subnormal(self) -> float:
        """Smallest positive subnormal value."""
        return 2.0 ** (1 - self.bias - self.fraction_bits)

    def describe(self) -> str:
        """Single-line summary (e.g. for logs and reports)."""
        return (
            f"{self.name}: 1 sign + {self.exponent_bits} exponent "
            f"+ {self.fraction_bits} fraction bits (bias {self.bias})"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


BINARY16 = IEEEFormat("binary16", exponent_bits=5, fraction_bits=10, float_dtype=np.dtype(np.float16))
BINARY32 = IEEEFormat("binary32", exponent_bits=8, fraction_bits=23, float_dtype=np.dtype(np.float32))
BINARY64 = IEEEFormat("binary64", exponent_bits=11, fraction_bits=52, float_dtype=np.dtype(np.float64))
BFLOAT16 = IEEEFormat("bfloat16", exponent_bits=8, fraction_bits=7, float_dtype=None)

FORMATS = {
    "binary16": BINARY16,
    "binary32": BINARY32,
    "binary64": BINARY64,
    "bfloat16": BFLOAT16,
}


def format_by_name(name: str) -> IEEEFormat:
    """Look up a format by name, with a helpful error."""
    try:
        return FORMATS[name]
    except KeyError:
        known = ", ".join(sorted(FORMATS))
        raise KeyError(f"unknown IEEE format {name!r}; known: {known}") from None
