"""Impact-driven SDC detection for iterative application state.

The paper's related work includes adaptive impact-driven detection (Di &
Cappello): in an iterative solver, each element's next value is highly
predictable from its recent history, so a value that jumps far outside
its predicted range betrays a soft error — no replication needed.

This module implements that idea in its standard form:

* predict each element by linear extrapolation from its last two states,
  ``pred = 2 x[t-1] - x[t-2]``;
* maintain an adaptive per-sweep scale — the maximum observed update
  magnitude, smoothed — and flag elements whose prediction residual
  exceeds ``theta`` times it.

The detector is deliberately application-agnostic: it sees only the
sequence of state arrays, exactly like a memory-side checker would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class LinearExtrapolationDetector:
    """Per-element linear-history SDC detector.

    Parameters
    ----------
    theta:
        Sensitivity: residuals above ``theta * scale`` are flagged.
        Larger is more tolerant (fewer false positives, later detection).
    smoothing:
        Exponential smoothing factor for the adaptive scale in (0, 1];
        1 means "use the current sweep's max update only".
    warmup:
        Observations before any flagging (history must fill first, and
        early iterates move fast).
    """

    theta: float = 8.0
    smoothing: float = 0.5
    warmup: int = 3

    _previous: np.ndarray | None = field(default=None, repr=False)
    _before_previous: np.ndarray | None = field(default=None, repr=False)
    _scale: float = field(default=0.0, repr=False)
    _seen: int = field(default=0, repr=False)

    def reset(self) -> None:
        """Forget all history."""
        self._previous = None
        self._before_previous = None
        self._scale = 0.0
        self._seen = 0

    def observe(self, state) -> np.ndarray:
        """Feed one state snapshot; returns the per-element flag mask."""
        current = np.asarray(state, dtype=np.float64).reshape(-1).copy()
        flags = np.zeros(current.shape, dtype=bool)

        if self._previous is not None and self._before_previous is not None:
            predicted = 2.0 * self._previous - self._before_previous
            residual = np.abs(current - predicted)
            # Non-finite values are always suspicious.
            non_finite = ~np.isfinite(current)
            if self._seen >= self.warmup and self._scale > 0:
                flags = (residual > self.theta * self._scale) | non_finite
            else:
                flags = non_finite
            update = np.abs(current - self._previous)
            finite_updates = update[np.isfinite(update)]
            sweep_scale = float(np.max(finite_updates)) if finite_updates.size else 0.0
            self._scale = (
                sweep_scale
                if self._scale == 0.0
                else (1 - self.smoothing) * self._scale + self.smoothing * sweep_scale
            )
        self._before_previous = self._previous
        self._previous = current
        self._seen += 1
        return flags


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of evaluating a detector against one injected fault."""

    injected_iteration: int
    injected_index: int
    bit: int
    detected: bool
    detection_iteration: int | None
    detection_index_correct: bool
    false_positives_before: int

    @property
    def latency(self) -> int | None:
        """Sweeps between injection and detection (None if missed)."""
        if self.detection_iteration is None:
            return None
        return self.detection_iteration - self.injected_iteration


def evaluate_on_jacobi(
    problem,
    target,
    spec,
    detector: LinearExtrapolationDetector | None = None,
    max_iterations: int = 600,
    tolerance: float = 1e-7,
) -> DetectionOutcome:
    """Run a faulty Jacobi solve with the detector watching the state.

    Parameters mirror :func:`repro.apps.faulty.run_faulty_solve`; the
    detector observes every post-sweep state (after the fault hook, like
    a memory scrubber would see it).
    """
    from repro.apps.faulty import _state_flipper
    from repro.apps.stencil import jacobi_solve
    from repro.formats import resolve

    if isinstance(target, str):
        target = resolve(target)
    if detector is None:
        detector = LinearExtrapolationDetector()
    detector.reset()

    flipper = _state_flipper(spec, target)
    detection: dict = {"iteration": None, "index_correct": False, "false_before": 0}

    def hook(iteration: int, state: np.ndarray) -> np.ndarray:
        corrupted = flipper(iteration, state)
        flags = detector.observe(corrupted)
        if np.any(flags):
            if iteration < spec.iteration:
                detection["false_before"] += int(np.sum(flags))
            elif detection["iteration"] is None:
                detection["iteration"] = iteration
                detection["index_correct"] = bool(flags[spec.flat_index])
        return corrupted

    jacobi_solve(problem, target, max_iterations, tolerance, fault_hook=hook)
    return DetectionOutcome(
        injected_iteration=spec.iteration,
        injected_index=spec.flat_index,
        bit=spec.bit,
        detected=detection["iteration"] is not None,
        detection_iteration=detection["iteration"],
        detection_index_correct=detection["index_correct"],
        false_positives_before=detection["false_before"],
    )


def detection_sweep(
    problem,
    target,
    iteration: int,
    bits,
    flat_index: int | None = None,
    theta: float = 8.0,
    max_iterations: int = 600,
    tolerance: float = 1e-7,
) -> list[DetectionOutcome]:
    """Evaluate detection across a set of bit positions (one fault each)."""
    from repro.apps.faulty import AppFaultSpec

    if flat_index is None:
        flat_index = (problem.grid // 2) * problem.grid + problem.grid // 2
    outcomes = []
    for bit in bits:
        spec = AppFaultSpec(iteration=iteration, flat_index=flat_index, bit=int(bit))
        outcomes.append(
            evaluate_on_jacobi(
                problem, target, spec,
                LinearExtrapolationDetector(theta=theta),
                max_iterations, tolerance,
            )
        )
    return outcomes
