"""Software SDC detection (impact-driven, per the paper's related work)."""

from repro.detect.temporal import (
    DetectionOutcome,
    LinearExtrapolationDetector,
    detection_sweep,
    evaluate_on_jacobi,
)

__all__ = [
    "DetectionOutcome",
    "LinearExtrapolationDetector",
    "detection_sweep",
    "evaluate_on_jacobi",
]
