"""Stratification of trials by magnitude and regime size.

Section 5.4 of the paper splits posit trials two ways before aggregating:

* by the magnitude of the original value — |p| > 1 versus |p| < 1 — which
  determines whether the regime run is ones (positive r) or zeros
  (negative r) and hence how a flip of the terminating bit R_k behaves;
* by regime size k (the run length), "to isolate error trends in
  different regime bits", because mixing regime sizes smears the R_k
  spike across bit positions.

The regime-size equation (the paper's Eq. 1) is also provided in value
space, and the tests check it agrees with the bit-level run length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.aggregate import BitAggregate, aggregate_by_bit
from repro.inject.results import TrialRecords
from repro.posit.config import PositConfig


def regime_size_from_value(value: float, config: PositConfig) -> int:
    """The paper's Eq. 1: regime size k from the magnitude of a posit.

    For |p| >= 1: k = floor(log_useed |p|) + 1 (the run is ones);
    for 0 < |p| < 1: k = ceil(-log_useed |p|) (the run is zeros),
    clamped to the available n-1 body bits.  Zero/NaR have no regime in
    value space; they return the full body length by convention (their
    body is a run of n-1 identical bits).
    """
    n_body = config.nbits - 1
    magnitude = abs(value)
    if magnitude == 0 or math.isnan(magnitude) or math.isinf(magnitude):
        return n_body
    useed_log2 = config.useed_log2
    h = math.floor(math.log2(magnitude))
    # Guard against log2 rounding at exact powers of two.
    if 2.0 ** (h + 1) <= magnitude:
        h += 1
    elif 2.0**h > magnitude:
        h -= 1
    r = h // useed_log2
    k = r + 1 if r >= 0 else -r
    return int(min(k, n_body))


def magnitude_split(records: TrialRecords) -> tuple[TrialRecords, TrialRecords]:
    """(|orig| > 1 trials, 0 < |orig| < 1 trials).

    Values exactly +-1 and 0 belong to neither stratum, matching the
    paper's "greater than one" / "less than one" sections.
    """
    magnitude = np.abs(records.original)
    greater = records.select(magnitude > 1.0)
    less = records.select((magnitude < 1.0) & (magnitude > 0.0))
    return greater, less


@dataclass(frozen=True)
class RegimeGroup:
    """All trials whose original posit had one regime size."""

    k: int
    records: TrialRecords
    aggregate: BitAggregate

    @property
    def trial_count(self) -> int:
        return len(self.records)


def group_by_regime_size(
    records: TrialRecords,
    nbits: int,
    max_k: int | None = None,
    min_trials: int = 1,
) -> list[RegimeGroup]:
    """Split trials by the original posit's regime size and aggregate.

    Parameters
    ----------
    max_k:
        Ignore groups beyond this k (the paper plots k = 1..6).
    min_trials:
        Drop groups with fewer trials (tiny groups are pure noise).
    """
    groups = []
    for k in sorted(set(records.regime_k.tolist())):
        if max_k is not None and k > max_k:
            continue
        subset = records.for_regime_size(int(k))
        if len(subset) < min_trials:
            continue
        groups.append(
            RegimeGroup(k=int(k), records=subset, aggregate=aggregate_by_bit(subset, nbits))
        )
    return groups


def terminating_bit_position(k: int, nbits: int) -> int:
    """Bit index (LSB == 0) of R_k for a regime of size k.

    The regime starts at bit nbits-2; after k identical bits, the
    terminating bit sits at nbits - 2 - k.
    """
    if k < 1 or k > nbits - 2:
        raise ValueError(f"regime size k={k} out of range for {nbits}-bit posit")
    return nbits - 2 - k


def rk_spike_ratio(group: RegimeGroup, nbits: int) -> float:
    """Error at R_k relative to the mean error of the other regime bits.

    Quantifies the paper's Fig. 11 observation: for |p| > 1 there is "a
    spike in error associated with the terminating bit of the regime".
    Returns NaN when the group lacks data.
    """
    rk_bit = terminating_bit_position(group.k, nbits)
    rel = group.aggregate.mean_rel_err
    spike = rel[rk_bit]
    body_bits = [nbits - 2 - j for j in range(group.k)]
    body = np.array([rel[b] for b in body_bits if 0 <= b < nbits])
    body = body[np.isfinite(body)]
    if not np.isfinite(spike) or body.size == 0 or np.all(body == 0):
        return float("nan")
    return float(spike / np.mean(body))
