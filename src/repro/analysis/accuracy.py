"""Representation-accuracy profiles (the paper's Figure 7).

Posits trade exponent range for fraction bits dynamically: values near 1
carry the most fraction bits, and each regime step outward sheds
precision.  Figure 7 plots fractional (decimal) accuracy against the
binary exponent of the value; this module computes that profile for any
posit format and the matching flat profile for IEEE formats.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ieee.formats import IEEEFormat
from repro.posit.config import PositConfig
from repro.reporting.series import Figure, Series

_LOG10_2 = math.log10(2.0)


def posit_fraction_bits_at_scale(h: int, config: PositConfig) -> int:
    """Fraction bits a posit of scale 2**h carries (0 when saturated)."""
    r = h // config.useed_log2
    regime_len = r + 2 if r >= 0 else -r + 1
    regime_len = min(regime_len, config.nbits - 1)
    return max(config.nbits - 1 - regime_len - config.es, 0)


def posit_decimal_accuracy(h: int, config: PositConfig) -> float:
    """Decimal digits of accuracy at scale h: log10(2**(m+1)).

    One extra bit accounts for the implicit leading significand bit; the
    profile's *shape* (a tent peaking at h = 0) is what Fig. 7 shows.
    """
    if abs(h) > config.max_scale:
        return 0.0
    return (posit_fraction_bits_at_scale(h, config) + 1) * _LOG10_2


def ieee_decimal_accuracy(h: int, fmt: IEEEFormat) -> float:
    """Decimal digits of accuracy of an IEEE format at scale h.

    Flat at fraction_bits + 1 across the normal range, decaying one bit
    per scale step through the subnormal range, zero outside.
    """
    emin = 1 - fmt.bias
    emax = fmt.exponent_all_ones - 1 - fmt.bias
    if h > emax:
        return 0.0
    if h >= emin:
        return (fmt.fraction_bits + 1) * _LOG10_2
    lost = emin - h
    remaining = fmt.fraction_bits + 1 - lost
    return max(remaining, 0) * _LOG10_2


def accuracy_profile(
    config: PositConfig,
    fmt: IEEEFormat,
    h_range: tuple[int, int] | None = None,
) -> Figure:
    """Fig. 7: decimal accuracy vs binary exponent, posit vs IEEE."""
    if h_range is None:
        span = config.max_scale
        h_range = (-span, span)
    hs = np.arange(h_range[0], h_range[1] + 1)
    posit_curve = np.array([posit_decimal_accuracy(int(h), config) for h in hs])
    ieee_curve = np.array([ieee_decimal_accuracy(int(h), fmt) for h in hs])
    figure = Figure(
        title="Fractional (decimal) accuracy vs binary exponent (paper Fig. 7)",
        x_label="binary exponent",
        y_label="decimal digits",
    )
    figure.add(Series(f"posit{config.nbits}", hs, posit_curve))
    figure.add(Series(fmt.name, hs, ieee_curve))
    figure.notes.append(
        "posit accuracy peaks at exponent 0 and decays by regime growth; "
        "IEEE accuracy is flat over the normal range"
    )
    return figure
