"""Aggregation of trial records into per-bit / per-field summaries.

These are the reductions behind the paper's figures: mean relative error
per bit position (Fig. 10), average error per bit within regime-size
groups (Figs. 11/14), per-field breakdowns (Sections 5.4-5.7).

Aggregation policy for pathological trials: relative errors can be Inf
(original exactly zero hit by a fault) or NaN (faulty value was NaN/NaR).
Means are taken over finite values only — the same treatment a log-scale
plot of means implies — and the dropped counts are reported alongside so
catastrophic outcomes stay visible rather than silently vanishing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inject.results import TrialRecords


@dataclass(frozen=True)
class BitAggregate:
    """Per-bit-position aggregate over a set of trials."""

    bits: np.ndarray
    mean_rel_err: np.ndarray
    mean_abs_err: np.ndarray
    median_rel_err: np.ndarray
    max_rel_err: np.ndarray
    #: Mean excluding only NaN (undefined) trials: +Inf relative errors —
    #: overflowing but mathematically huge errors, e.g. an ieee64
    #: exponent-MSB flip — propagate to an infinite mean instead of being
    #: dropped like in :attr:`mean_rel_err`.
    mean_rel_err_incl_inf: np.ndarray
    trial_counts: np.ndarray
    non_finite_counts: np.ndarray

    def series(self, metric: str = "mean_rel_err"):
        """(bits, values) pair for plotting/tabling."""
        return self.bits, getattr(self, metric)


def _finite_mean(values: np.ndarray) -> float:
    finite = values[np.isfinite(values)]
    if not finite.size:
        return float("nan")
    # Sums over huge-but-finite errors (e.g. ~1e308 from wide-format
    # exponent flips) may overflow to inf, which is the right answer.
    with np.errstate(over="ignore"):
        return float(np.mean(finite))


def _finite_median(values: np.ndarray) -> float:
    finite = values[np.isfinite(values)]
    return float(np.median(finite)) if finite.size else float("nan")


def _finite_max(values: np.ndarray) -> float:
    finite = values[np.isfinite(values)]
    return float(np.max(finite)) if finite.size else float("nan")


def aggregate_by_bit(records: TrialRecords, nbits: int) -> BitAggregate:
    """Reduce trials to one row per bit position 0..nbits-1."""
    bits = np.arange(nbits, dtype=np.int64)
    mean_rel = np.empty(nbits)
    mean_abs = np.empty(nbits)
    median_rel = np.empty(nbits)
    max_rel = np.empty(nbits)
    mean_incl_inf = np.empty(nbits)
    counts = np.zeros(nbits, dtype=np.int64)
    bad = np.zeros(nbits, dtype=np.int64)
    for b in bits:
        sel = records.bit == b
        rel = records.rel_err[sel]
        abs_err = records.abs_err[sel]
        counts[b] = int(np.sum(sel))
        bad[b] = int(np.sum(~np.isfinite(rel)))
        mean_rel[b] = _finite_mean(rel)
        mean_abs[b] = _finite_mean(abs_err)
        median_rel[b] = _finite_median(rel)
        max_rel[b] = _finite_max(rel)
        defined = rel[~np.isnan(rel)]
        with np.errstate(over="ignore"):
            mean_incl_inf[b] = float(np.mean(defined)) if defined.size else float("nan")
    return BitAggregate(
        bits=bits,
        mean_rel_err=mean_rel,
        mean_abs_err=mean_abs,
        median_rel_err=median_rel,
        max_rel_err=max_rel,
        mean_rel_err_incl_inf=mean_incl_inf,
        trial_counts=counts,
        non_finite_counts=bad,
    )


@dataclass(frozen=True)
class FieldAggregate:
    """Aggregate over all trials whose flipped bit landed in one field."""

    field_id: int
    label: str
    trial_count: int
    mean_rel_err: float
    median_rel_err: float
    max_rel_err: float
    mean_abs_err: float
    non_finite_count: int


def aggregate_by_field(records: TrialRecords, field_labels) -> list[FieldAggregate]:
    """One row per field id present in the records.

    ``field_labels`` maps field id -> name (e.g. ``target.field_label``).
    """
    out = []
    for field_id in sorted(set(records.field.tolist())):
        sel = records.field == field_id
        rel = records.rel_err[sel]
        out.append(
            FieldAggregate(
                field_id=int(field_id),
                label=field_labels(int(field_id)),
                trial_count=int(np.sum(sel)),
                mean_rel_err=_finite_mean(rel),
                median_rel_err=_finite_median(rel),
                max_rel_err=_finite_max(rel),
                mean_abs_err=_finite_mean(records.abs_err[sel]),
                non_finite_count=int(np.sum(~np.isfinite(rel))),
            )
        )
    return out


def catastrophic_fraction(records: TrialRecords) -> float:
    """Share of trials whose faulty value left the finite range."""
    if len(records) == 0:
        return 0.0
    return float(np.mean(records.non_finite))


def sdc_threshold_fraction(records: TrialRecords, threshold: float) -> float:
    """Share of trials whose relative error exceeds ``threshold``.

    A standard SDC-significance measure: how often does a single flip
    change the value by more than the tolerance?  Non-finite relative
    errors count as exceeding any threshold.
    """
    if len(records) == 0:
        return 0.0
    rel = records.rel_err
    exceed = ~np.isfinite(rel) | (rel > threshold)
    return float(np.mean(exceed))
