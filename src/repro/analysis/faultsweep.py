"""Fault-model-aware aggregation and detector/protector co-design replay.

A swept campaign (``campaign sweep --formats ... --faults ...``) leaves
one run per (format x fault model) cell, each shard CSV stamped with its
canonical fault spec.  This module turns those records into the two
deliverables the sweep exists for:

* **per-model aggregation** — the same per-bit / whole-campaign
  reductions as :mod:`repro.analysis.aggregate`, computed per fault
  model, so "how does posit32 degrade from single flips to bursts?" is
  one table;
* **protection replay under multi-bit models** — the
  :mod:`repro.protect` schemes re-evaluated with the fault model's full
  *support* (every position it may touch per trial, via
  :meth:`~repro.inject.faultspec.ResolvedFault.support`) rather than the
  single anchor bit, plus an impact-driven temporal detection reference
  point (:mod:`repro.detect.temporal` semantics), yielding the
  coverage/overhead frontier per format x fault model.

Replay semantics are *guaranteed-coverage* conservative: a correcting
scheme (TMR) neutralizes a trial only when every support position is
covered (each covered position votes independently, so covering every
possibly-flipped bit is both necessary and sufficient for a guarantee);
a detect-only scheme additionally needs the flip count to be visible —
parity misses even flip counts (see
:meth:`~repro.protect.schemes.ProtectionScheme.detects_even_flips`),
duplication catches any mismatch.  Stochastic models (``burst``,
``random``) are scored by their worst case, so reported residuals are
upper bounds — a designer reading the frontier never over-trusts it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.aggregate import BitAggregate, aggregate_by_bit
from repro.inject.faultspec import DEFAULT_FAULT_SPEC, ResolvedFault, resolve_fault
from repro.inject.results import TrialRecords
from repro.protect.evaluate import ProtectionReport, ranked_bit_positions
from repro.protect.schemes import (
    FullDuplication,
    NoProtection,
    ProtectionScheme,
    SelectiveParity,
    SelectiveTMR,
)


def split_by_fault(records: TrialRecords) -> dict[str, TrialRecords]:
    """Partition records by their ``fault_spec`` column.

    Records without the column (every pre-fault-dimension CSV) are all
    ``single``; mixed concatenations — e.g. the folded output of several
    sweep cells — split into one :class:`TrialRecords` per model.
    """
    if records.fault_spec is None:
        return {DEFAULT_FAULT_SPEC: records}
    out = {}
    for spec in sorted(set(records.fault_spec.tolist())):
        out[str(spec)] = records.select(records.fault_spec == spec)
    return out


@dataclass(frozen=True)
class FaultModelSummary:
    """Whole-campaign statistics for one fault model's trials."""

    fault: str
    trial_count: int
    mean_rel_err: float
    median_rel_err: float
    serious_fraction: float
    catastrophic_fraction: float

    def as_row(self) -> list:
        return [
            self.fault,
            self.trial_count,
            self.mean_rel_err,
            self.median_rel_err,
            self.serious_fraction,
            self.catastrophic_fraction,
        ]


def summarize_by_fault(
    records: TrialRecords, serious_threshold: float = 1.0
) -> list[FaultModelSummary]:
    """One summary row per fault model present in the records."""
    out = []
    for spec, part in split_by_fault(records).items():
        rel = part.rel_err
        finite = rel[np.isfinite(rel)]
        with np.errstate(over="ignore"):
            mean = float(np.mean(finite)) if finite.size else float("nan")
        median = float(np.median(finite)) if finite.size else float("nan")
        serious = ~np.isfinite(rel) | (rel > serious_threshold)
        out.append(
            FaultModelSummary(
                fault=spec,
                trial_count=len(part),
                mean_rel_err=mean,
                median_rel_err=median,
                serious_fraction=float(np.mean(serious)) if len(part) else 0.0,
                catastrophic_fraction=(
                    float(np.mean(part.non_finite)) if len(part) else 0.0
                ),
            )
        )
    return out


def aggregate_by_fault(records: TrialRecords, nbits: int) -> dict[str, BitAggregate]:
    """Per-bit aggregation (:func:`aggregate_by_bit`) per fault model."""
    return {
        spec: aggregate_by_bit(part, nbits)
        for spec, part in split_by_fault(records).items()
    }


# -- protection replay under a fault model ----------------------------------


def _neutralized_bits(
    scheme: ProtectionScheme, resolved: ResolvedFault, bits: np.ndarray, nbits: int
) -> np.ndarray:
    """Per-anchor-bit guarantee that the scheme neutralizes the trial."""
    out = np.zeros(len(bits), dtype=bool)
    for i, bit in enumerate(np.asarray(bits, dtype=np.int64)):
        support = np.asarray(resolved.support(int(bit), nbits), dtype=np.int64)
        if not bool(np.all(scheme.covers(support))):
            continue
        if scheme.corrects() or scheme.detects_even_flips():
            out[i] = True
        else:
            out[i] = resolved.odd_flips_guaranteed(int(bit), nbits)
    return out


def evaluate_scheme_under_fault(
    records: TrialRecords,
    scheme: ProtectionScheme,
    nbits: int,
    fault: str | ResolvedFault = DEFAULT_FAULT_SPEC,
    serious_threshold: float = 1.0,
) -> ProtectionReport:
    """Residual statistics of one scheme under one fault model.

    The multi-bit generalization of
    :func:`repro.protect.evaluate.evaluate_scheme` (and identical to it
    for ``single``): a trial survives unless the scheme *guarantees*
    neutralizing it given every position the model may have touched.
    """
    if len(records) == 0:
        raise ValueError("cannot evaluate a scheme on zero trials")
    resolved = fault if isinstance(fault, ResolvedFault) else resolve_fault(fault)
    unique_bits = np.unique(records.bit)
    neutral_by_bit = dict(
        zip(
            unique_bits.tolist(),
            _neutralized_bits(scheme, resolved, unique_bits, nbits).tolist(),
        )
    )
    neutralized = np.array([neutral_by_bit[int(b)] for b in records.bit], dtype=bool)
    surviving = ~neutralized

    rel = records.rel_err
    serious = ~np.isfinite(rel) | (rel > serious_threshold)
    surviving_rel = rel[surviving]
    finite = surviving_rel[np.isfinite(surviving_rel)]
    with np.errstate(over="ignore"):
        residual_mean = float(np.mean(finite)) if finite.size else 0.0

    return ProtectionReport(
        scheme=scheme.describe(),
        overhead_bits=scheme.overhead_bits(nbits),
        overhead_fraction=scheme.overhead_fraction(nbits),
        covered_fraction=float(np.mean(neutralized)),
        residual_serious_fraction=float(np.mean(serious & surviving)),
        residual_catastrophic_fraction=float(np.mean(records.non_finite & surviving)),
        residual_mean_rel_err=residual_mean,
        baseline_serious_fraction=float(np.mean(serious)),
    )


def temporal_detection_report(
    records: TrialRecords,
    nbits: int,
    theta: float = 8.0,
    update_scale: float | None = None,
    serious_threshold: float = 1.0,
) -> ProtectionReport:
    """Impact-driven detection as a zero-storage frontier reference.

    Models :class:`repro.detect.temporal.LinearExtrapolationDetector`
    applied to the recorded trials: the detector flags an element whose
    prediction residual exceeds ``theta`` times the adaptive update
    scale, and a flipped stored value shifts the residual by exactly the
    trial's absolute error — so a trial is detected iff its faulty value
    is non-finite or its absolute error exceeds ``theta * update_scale``.
    ``update_scale`` defaults to the per-trial original magnitudes'
    median (a stand-in for the solver's typical sweep update).  Storage
    overhead is zero; the cost is compute-side, which the frontier's
    overhead axis deliberately scores as free.
    """
    if len(records) == 0:
        raise ValueError("cannot evaluate detection on zero trials")
    if update_scale is None:
        magnitudes = np.abs(records.original)
        finite = magnitudes[np.isfinite(magnitudes) & (magnitudes > 0)]
        update_scale = float(np.median(finite)) if finite.size else 1.0
    threshold = float(theta) * float(update_scale)
    detected = records.non_finite | ~np.isfinite(records.abs_err) | (
        records.abs_err > threshold
    )
    surviving = ~detected

    rel = records.rel_err
    serious = ~np.isfinite(rel) | (rel > serious_threshold)
    surviving_rel = rel[surviving]
    finite_rel = surviving_rel[np.isfinite(surviving_rel)]
    with np.errstate(over="ignore"):
        residual_mean = float(np.mean(finite_rel)) if finite_rel.size else 0.0

    return ProtectionReport(
        scheme=f"temporal[theta={theta:g}]",
        overhead_bits=0,
        overhead_fraction=0.0,
        covered_fraction=float(np.mean(detected)),
        residual_serious_fraction=float(np.mean(serious & surviving)),
        residual_catastrophic_fraction=float(np.mean(records.non_finite & surviving)),
        residual_mean_rel_err=residual_mean,
        baseline_serious_fraction=float(np.mean(serious)),
    )


@dataclass(frozen=True)
class FrontierCell:
    """The coverage/overhead frontier of one (format x fault model) cell."""

    target: str
    fault: str
    nbits: int
    trial_count: int
    #: Top-k selective-TMR reports for k = 0..max_protected (data-ranked).
    tmr: tuple[ProtectionReport, ...]
    #: Reference points: data-ranked selective parity over the same top-k
    #: positions as the best TMR rung, full duplication, and temporal
    #: detection.
    parity: ProtectionReport
    duplication: ProtectionReport
    temporal: ProtectionReport

    def bits_needed_for_reduction(self, reduction: float = 0.99) -> int:
        """Smallest TMR k reaching the target serious-SDC reduction.

        Returns ``nbits + 1`` when no rung reaches it — under multi-bit
        models even full TMR may fail the conservative guarantee (e.g. a
        ``random(k)`` trial needs every word bit covered, which full TMR
        does supply, but a detect-only rung never corrects).
        """
        for k, report in enumerate(self.tmr):
            if report.serious_reduction >= reduction:
                return k
        return self.nbits + 1


def fault_frontier(
    records: TrialRecords,
    target_name: str,
    nbits: int,
    fault: str | ResolvedFault = DEFAULT_FAULT_SPEC,
    serious_threshold: float = 1.0,
    max_protected: int | None = None,
    parity_bits: int | None = None,
    theta: float = 8.0,
) -> FrontierCell:
    """The full protection/detection frontier of one campaign cell.

    ``parity_bits`` sizes the selective-parity reference (default: the
    same top quarter of positions the TMR ranking puts first).
    """
    resolved = fault if isinstance(fault, ResolvedFault) else resolve_fault(fault)
    if max_protected is None:
        max_protected = nbits
    ranked = ranked_bit_positions(records, nbits, serious_threshold)
    reports = []
    for k in range(0, max_protected + 1):
        scheme: ProtectionScheme
        if k == 0:
            scheme = NoProtection()
        else:
            scheme = SelectiveTMR(tuple(sorted(ranked[:k], reverse=True)))
        reports.append(
            evaluate_scheme_under_fault(
                records, scheme, nbits, resolved, serious_threshold
            )
        )
    if parity_bits is None:
        parity_bits = max(nbits // 4, 1)
    parity = evaluate_scheme_under_fault(
        records,
        SelectiveParity(tuple(sorted(ranked[:parity_bits], reverse=True))),
        nbits,
        resolved,
        serious_threshold,
    )
    duplication = evaluate_scheme_under_fault(
        records, FullDuplication(), nbits, resolved, serious_threshold
    )
    temporal = temporal_detection_report(
        records, nbits, theta=theta, serious_threshold=serious_threshold
    )
    return FrontierCell(
        target=target_name,
        fault=resolved.spec,
        nbits=nbits,
        trial_count=len(records),
        tmr=tuple(reports),
        parity=parity,
        duplication=duplication,
        temporal=temporal,
    )


def sweep_frontier(
    cells,
    serious_threshold: float = 1.0,
    max_protected: int | None = None,
    theta: float = 8.0,
) -> list[FrontierCell]:
    """Frontiers for a whole sweep: ``cells`` yields (target, records).

    Each entry's records are split by their ``fault_spec`` column, so
    passing one folded :class:`TrialRecords` per format covers every
    fault model it contains; the result is one :class:`FrontierCell` per
    (format x fault model), the sweep's designer-facing deliverable.
    """
    from repro.formats import resolve

    out = []
    for target, records in cells:
        fmt = resolve(target) if isinstance(target, str) else target
        for spec, part in split_by_fault(records).items():
            out.append(
                fault_frontier(
                    part,
                    fmt.name,
                    fmt.nbits,
                    spec,
                    serious_threshold=serious_threshold,
                    max_protected=max_protected,
                    theta=theta,
                )
            )
    return out


def frontier_from_run_dir(run_dir, **kwargs) -> FrontierCell:
    """The frontier of one completed campaign run directory.

    Reads the manifest for the cell's identity (format, fault model) and
    folds every completed shard CSV; keyword arguments pass through to
    :func:`fault_frontier`.
    """
    from repro.formats import resolve
    from repro.runner.manifest import RunManifest

    manifest = RunManifest.load(run_dir)
    fmt = resolve(manifest.target_spec)
    parts = [
        TrialRecords.read_csv(RunManifest.shard_path(run_dir, bit))
        for bit in manifest.completed_bits()
    ]
    if not parts:
        raise ValueError(f"run {run_dir} has no completed shards to analyze")
    records = TrialRecords.concatenate(parts)
    return fault_frontier(records, fmt.name, fmt.nbits, manifest.fault, **kwargs)
