"""Sign-bit error analysis (the paper's Section 5.7 / Figure 20).

In IEEE floats a sign flip only negates: absolute error is exactly
2|orig|.  In posits, flipping the sign bit alone (without the two's
complement that true negation requires) also rewires the magnitude,
because s appears inside the scale exponent of Eq. 2 — and the effect
grows with regime size.  Figure 20 shows this as box plots of absolute
error grouped by regime size; :func:`sign_flip_boxes` computes those box
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inject.results import TrialRecords


@dataclass(frozen=True)
class BoxStats:
    """Five-number box-plot summary plus count."""

    group: int
    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @classmethod
    def from_values(cls, group: int, values: np.ndarray) -> "BoxStats":
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            nan = float("nan")
            return cls(group, 0, nan, nan, nan, nan, nan)
        q1, median, q3 = (float(q) for q in np.percentile(finite, [25, 50, 75]))
        return cls(
            group=group,
            count=int(finite.size),
            minimum=float(np.min(finite)),
            q1=q1,
            median=median,
            q3=q3,
            maximum=float(np.max(finite)),
        )


def sign_bit_trials(records: TrialRecords, nbits: int) -> TrialRecords:
    """Only the trials that flipped the sign bit."""
    return records.for_bit(nbits - 1)


def sign_flip_boxes(
    records: TrialRecords,
    nbits: int,
    metric: str = "abs_err",
    max_k: int | None = None,
) -> list[BoxStats]:
    """Box statistics of sign-flip error grouped by regime size (Fig. 20)."""
    sign_trials = sign_bit_trials(records, nbits)
    boxes = []
    for k in sorted(set(sign_trials.regime_k.tolist())):
        if max_k is not None and k > max_k:
            continue
        group = sign_trials.for_regime_size(int(k))
        boxes.append(BoxStats.from_values(int(k), getattr(group, metric)))
    return boxes


def median_growth_factor(boxes: list[BoxStats]) -> float:
    """Geometric-mean growth of the median per unit regime size.

    The paper's claim is exponential growth of sign-flip absolute error
    with regime size; a growth factor well above 1 confirms it.
    """
    usable = [(box.group, box.median) for box in boxes if box.count and box.median > 0]
    if len(usable) < 2:
        return float("nan")
    ks = np.array([k for k, _ in usable], dtype=np.float64)
    logs = np.log(np.array([m for _, m in usable]))
    slope = np.polyfit(ks, logs, 1)[0]
    return float(np.exp(slope))


def ieee_sign_flip_identity(records: TrialRecords, nbits: int) -> float:
    """Max deviation of |abs_err - 2|orig|| over IEEE sign-flip trials.

    For IEEE floats the sign-flip absolute error is exactly 2|orig|
    (Section 3.1); this returns how far the records deviate from that
    identity (should be 0 up to float64 rounding).
    """
    trials = sign_bit_trials(records, nbits)
    if len(trials) == 0:
        return 0.0
    expected = 2.0 * np.abs(trials.original)
    deviation = np.abs(trials.abs_err - expected)
    finite = deviation[np.isfinite(deviation)]
    return float(np.max(finite)) if finite.size else 0.0
