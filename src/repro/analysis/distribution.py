"""Per-bit error distributions and SDC-rate curves.

The paper plots means; means hide the shape.  These reductions expose
it: percentile bands per bit position (quantifying the "erratic"
upper-bit behaviour of posits vs IEEE's uniform cliff), log-scale
histograms, and the SDC-rate-versus-tolerance curve — for a given
application tolerance t, how often does one flip change a value by more
than t?  The last is the reliability-engineering form of the paper's
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inject.results import TrialRecords


@dataclass(frozen=True)
class BitPercentiles:
    """Percentile bands of relative error per bit position."""

    bits: np.ndarray
    percentiles: tuple[float, ...]
    #: shape (len(percentiles), nbits); NaN where a bit has no finite trials.
    values: np.ndarray

    def band(self, percentile: float) -> np.ndarray:
        index = self.percentiles.index(percentile)
        return self.values[index]


def percentile_bands(
    records: TrialRecords,
    nbits: int,
    percentiles: tuple[float, ...] = (10.0, 50.0, 90.0, 99.0),
) -> BitPercentiles:
    """Relative-error percentiles per bit (finite trials only)."""
    values = np.full((len(percentiles), nbits), np.nan)
    for b in range(nbits):
        rel = records.for_bit(b).rel_err
        finite = rel[np.isfinite(rel)]
        if finite.size:
            values[:, b] = np.percentile(finite, percentiles)
    return BitPercentiles(
        bits=np.arange(nbits, dtype=np.int64),
        percentiles=tuple(percentiles),
        values=values,
    )


def log_histogram(
    values,
    decades: tuple[int, int] = (-12, 12),
    bins_per_decade: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of positive values over log10-spaced bins.

    Returns (bin_edges, counts) where edges are powers of ten; values
    below/above the range land in the first/last bin, zeros and
    non-finite values are dropped.
    """
    array = np.asarray(values, dtype=np.float64).reshape(-1)
    array = array[np.isfinite(array) & (array > 0)]
    low, high = decades
    if high <= low:
        raise ValueError(f"decades must satisfy low < high, got {decades}")
    edges = np.logspace(low, high, (high - low) * bins_per_decade + 1)
    clipped = np.clip(array, edges[0], edges[-1] * (1 - 1e-16))
    counts, _ = np.histogram(clipped, bins=edges)
    return edges, counts


def sdc_rate_curve(
    records: TrialRecords,
    thresholds=None,
) -> tuple[np.ndarray, np.ndarray]:
    """P(one flip causes relative error > t), as a function of t.

    Non-finite relative errors (catastrophic or undefined) count as
    exceeding every threshold — a flip that produced NaR/Inf, or hit a
    zero, is an SDC at any tolerance.
    """
    if thresholds is None:
        thresholds = np.logspace(-9, 9, 37)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    if len(records) == 0:
        return thresholds, np.zeros_like(thresholds)
    rel = records.rel_err
    bad = ~np.isfinite(rel)
    rates = np.empty_like(thresholds)
    for i, threshold in enumerate(thresholds):
        rates[i] = float(np.mean(bad | (rel > threshold)))
    return thresholds, rates


def erraticness(records: TrialRecords, nbits: int, upper_bits: int = 8) -> float:
    """Non-monotonicity of the upper-bit error curve, in decades.

    The paper describes posit upper-bit error as "more distributed and
    erratic" where IEEE shows a "sharp and consistent exponential spike":
    IEEE's mean-error curve climbs monotonically toward the exponent MSB,
    while posit R_k spikes rise and fall with bit position.  This
    statistic is the total *downward* movement of log10(mean rel err)
    across the upper bits (sign bit excluded) — exactly 0 for a monotone
    ramp, positive for spiky curves.  NaN when too few bits have finite
    positive means.
    """
    from repro.analysis.aggregate import aggregate_by_bit

    curve = aggregate_by_bit(records, nbits).mean_rel_err
    upper = curve[nbits - 1 - upper_bits : nbits - 1]  # exclude the sign bit
    upper = upper[np.isfinite(upper) & (upper > 0)]
    if upper.size < 3:
        return float("nan")
    logs = np.log10(upper)
    drops = np.diff(logs)
    return float(-np.sum(drops[drops < 0]))
