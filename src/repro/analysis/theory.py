"""Exact population-level error expectations (no sampling).

The campaign estimates mean error per bit from 313 random trials; but
because single flips are exactly predictable (``repro.analysis.predict``
for posits, plain XOR re-decoding for IEEE), the *exact* expectation over
an entire dataset population is directly computable: flip bit b in every
stored value, decode, and reduce.  This gives the ground truth the
sampled campaign converges to — useful both as a variance-free "Fig. 10"
and as a convergence oracle for choosing trial counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats import NumberFormat, resolve


@dataclass(frozen=True)
class ExpectedBitError:
    """Exact per-bit expectations over a stored population."""

    bits: np.ndarray
    mean_rel_err: np.ndarray        # finite-trial mean (campaign's policy)
    mean_abs_err: np.ndarray
    median_rel_err: np.ndarray
    catastrophic_fraction: np.ndarray
    undefined_fraction: np.ndarray  # flips of zero originals (rel err undefined)


def expected_error_by_bit(
    data,
    target: NumberFormat | str,
    chunk: int = 1 << 18,
) -> ExpectedBitError:
    """Exact per-bit error statistics over every element of ``data``.

    Equivalent to a campaign with one trial per (element, bit) pair —
    i.e. exhaustive injection — evaluated in vectorized chunks.
    """
    if isinstance(target, str):
        target = resolve(target)
    flat = np.asarray(data).reshape(-1)
    if flat.size == 0:
        raise ValueError("cannot analyze an empty dataset")

    stored = target.round_trip(flat)
    bits_array = target.to_bits(stored)
    nbits = target.nbits

    mean_rel = np.empty(nbits)
    mean_abs = np.empty(nbits)
    median_rel = np.empty(nbits)
    catastrophic = np.empty(nbits)
    undefined = np.empty(nbits)

    for b in range(nbits):
        rel_parts = []
        abs_parts = []
        cat_count = 0
        undef_count = 0
        for start in range(0, stored.size, chunk):
            stop = min(start + chunk, stored.size)
            original = stored[start:stop]
            piece = bits_array[start:stop]
            faulty_bits = piece ^ piece.dtype.type(1 << b)
            faulty = target.from_bits(faulty_bits)
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                abs_err = np.abs(original - faulty)
                rel = abs_err / np.abs(original)
            rel = np.where((original == 0) & (faulty == 0), 0.0, rel)
            rel = np.where((original == 0) & (faulty != 0), np.nan, rel)
            cat_count += int(np.sum(~np.isfinite(faulty)))
            undef_count += int(np.sum((original == 0) & (faulty != 0)))
            rel_parts.append(rel)
            abs_parts.append(abs_err)
        rel_all = np.concatenate(rel_parts)
        abs_all = np.concatenate(abs_parts)
        finite = rel_all[np.isfinite(rel_all)]
        with np.errstate(over="ignore"):
            mean_rel[b] = float(np.mean(finite)) if finite.size else np.nan
            median_rel[b] = float(np.median(finite)) if finite.size else np.nan
            finite_abs = abs_all[np.isfinite(abs_all)]
            mean_abs[b] = float(np.mean(finite_abs)) if finite_abs.size else np.nan
        catastrophic[b] = cat_count / stored.size
        undefined[b] = undef_count / stored.size

    return ExpectedBitError(
        bits=np.arange(nbits, dtype=np.int64),
        mean_rel_err=mean_rel,
        mean_abs_err=mean_abs,
        median_rel_err=median_rel,
        catastrophic_fraction=catastrophic,
        undefined_fraction=undefined,
    )


def sampling_error_profile(
    data,
    target: NumberFormat | str,
    trial_counts: tuple[int, ...] = (10, 40, 160, 313),
    seed: int = 2023,
) -> dict[int, float]:
    """How close a sampled campaign gets to the exact expectation.

    For each trial count, runs a campaign and returns the worst-bit
    relative deviation of its finite-mean curve from the exhaustive one
    (bits whose exact mean is 0 or NaN are skipped).  Quantifies whether
    the paper's 313 trials/bit suffice for a given field.
    """
    from repro.analysis.aggregate import aggregate_by_bit
    from repro.inject.campaign import CampaignConfig, run_campaign

    if isinstance(target, str):
        target = resolve(target)
    exact = expected_error_by_bit(data, target)
    deviations: dict[int, float] = {}
    for trials in trial_counts:
        result = run_campaign(data, target, CampaignConfig(trials_per_bit=trials, seed=seed))
        sampled = aggregate_by_bit(result.records, target.nbits).mean_rel_err
        ratio = []
        for b in range(target.nbits):
            truth = exact.mean_rel_err[b]
            estimate = sampled[b]
            if not np.isfinite(truth) or truth == 0 or not np.isfinite(estimate):
                continue
            ratio.append(abs(estimate - truth) / truth)
        deviations[trials] = float(np.max(ratio)) if ratio else float("nan")
    return deviations
