"""Post-campaign analysis: aggregation, stratification, prediction."""

from repro.analysis.accuracy import (
    accuracy_profile,
    ieee_decimal_accuracy,
    posit_decimal_accuracy,
    posit_fraction_bits_at_scale,
)
from repro.analysis.aggregate import (
    BitAggregate,
    FieldAggregate,
    aggregate_by_bit,
    aggregate_by_field,
    catastrophic_fraction,
    sdc_threshold_fraction,
)
from repro.analysis.distribution import (
    BitPercentiles,
    erraticness,
    log_histogram,
    percentile_bands,
    sdc_rate_curve,
)
from repro.analysis.edgecases import (
    FlipEvent,
    classify_flip,
    count_flip_events,
    expansion_growth,
    regime_inversion_mask,
)
from repro.analysis.population import (
    RegimePopulation,
    band_width_vs_spread,
    magnitude_spread,
    rank_correlation,
    regime_population,
)
from repro.analysis.predict import (
    PositFlipPrediction,
    exponent_flip_factor,
    max_exponent_flip_error,
    predict_flip,
    sign_flip_value,
)
from repro.analysis.signbit import (
    BoxStats,
    ieee_sign_flip_identity,
    median_growth_factor,
    sign_bit_trials,
    sign_flip_boxes,
)
from repro.analysis.theory import (
    ExpectedBitError,
    expected_error_by_bit,
    sampling_error_profile,
)
from repro.analysis.stratify import (
    RegimeGroup,
    group_by_regime_size,
    magnitude_split,
    regime_size_from_value,
    rk_spike_ratio,
    terminating_bit_position,
)

__all__ = [
    "BitAggregate",
    "BitPercentiles",
    "BoxStats",
    "ExpectedBitError",
    "FieldAggregate",
    "FlipEvent",
    "PositFlipPrediction",
    "RegimeGroup",
    "RegimePopulation",
    "accuracy_profile",
    "aggregate_by_bit",
    "aggregate_by_field",
    "band_width_vs_spread",
    "catastrophic_fraction",
    "classify_flip",
    "count_flip_events",
    "erraticness",
    "expansion_growth",
    "expected_error_by_bit",
    "exponent_flip_factor",
    "group_by_regime_size",
    "magnitude_spread",
    "rank_correlation",
    "regime_population",
    "sampling_error_profile",
    "ieee_decimal_accuracy",
    "ieee_sign_flip_identity",
    "log_histogram",
    "magnitude_split",
    "percentile_bands",
    "sdc_rate_curve",
    "max_exponent_flip_error",
    "median_growth_factor",
    "posit_decimal_accuracy",
    "posit_fraction_bits_at_scale",
    "predict_flip",
    "regime_inversion_mask",
    "regime_size_from_value",
    "rk_spike_ratio",
    "sdc_threshold_fraction",
    "sign_bit_trials",
    "sign_flip_boxes",
    "sign_flip_value",
    "terminating_bit_position",
]
