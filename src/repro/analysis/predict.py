"""Closed-form prediction of posit bit-flip error.

The paper's future-work list asks for "mathematical analysis ... to
predict potential error in posits due to bit flips".  This module
implements it: given a posit's raw fields and a bit position, the faulty
value follows from the standard's Eq. 2 without simulating the flip.

Per-field closed forms (u = useed_log2 = 2**es):

* sign: s' = 1 - s with r, e, f unchanged (they are read from the raw,
  un-complemented bits), so
  v' = ((1-3s') + f) * 2**((1-2s')(u*r + e + s')) — the paper's Fig. 21.
* exponent bit of weight w: e' = e +/- w, same mantissa, so
  v' = v * 2**(+/-w * (1-2s)) — at most a factor useed**? no: at most
  2**(es_weight), i.e. x2 or x4 for es = 2 (Section 5.6).
* fraction bit of weight 2**-j: f' = f +/- 2**-(j), so
  v' = v + (1-2s) * (+/-2**(scale - j)) — linear, like IEEE (Section 5.5).
* regime bits: the flip rewrites the run structure (expansion, shrink,
  or inversion — Section 5.4); the new (r', e', f') follow from the run
  arithmetic of the flipped pattern and Eq. 2 gives v'.

``predict_flip`` evaluates these forms vectorized and the tests assert
the prediction is *bit-identical* to actually flipping and decoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.edgecases import classify_flip
from repro.posit.config import PositConfig
from repro.posit.decode import decode
from repro.posit.fields import PositField, classify_bit, decompose


@dataclass(frozen=True)
class PositFlipPrediction:
    """Vectorized prediction of one bit position's flip over an array."""

    faulty: np.ndarray
    absolute_error: np.ndarray
    relative_error: np.ndarray
    event: np.ndarray  # FlipEvent codes
    field: np.ndarray  # PositField codes


def _eq2(sign, regime, exponent, fraction, fraction_bits, config: PositConfig) -> np.ndarray:
    """Evaluate the standard's Eq. 2 from raw field values (vectorized)."""
    f = np.ldexp(fraction.astype(np.float64), -fraction_bits.astype(np.int64))
    mantissa = (1 - 3 * sign).astype(np.float64) + f
    scale = (1 - 2 * sign) * (config.useed_log2 * regime + exponent + sign)
    return np.ldexp(mantissa, scale.astype(np.int64))


def predict_flip(bits, bit_index: int, config: PositConfig) -> PositFlipPrediction:
    """Closed-form faulty value for flipping ``bit_index`` in each posit."""
    n = config.nbits
    if not 0 <= bit_index < n:
        raise ValueError(f"bit_index must be in [0, {n}), got {bit_index}")
    work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(config.mask)
    fields = decompose(work, config)
    field = classify_bit(work, bit_index, config)
    event = classify_flip(work, bit_index, config)

    original = np.asarray(decode(work, config), dtype=np.float64)

    # Start from the original fields; overwrite per field class.
    sign = fields.sign.copy()
    regime = fields.regime.copy()
    exponent = fields.exponent.copy()
    fraction = fields.fraction.astype(np.uint64).copy()
    fraction_bits = fields.fraction_bits.copy()

    # --- sign flips: s' = 1 - s, raw fields unchanged ---------------------
    is_sign = field == PositField.SIGN
    sign = np.where(is_sign, 1 - sign, sign)

    # --- exponent flips: e' = e XOR (padded weight) -----------------------
    is_exp = field == PositField.EXPONENT
    rem = (n - 1) - fields.regime_len
    exp_low = rem - fields.exponent_bits_present
    pad = config.es - fields.exponent_bits_present
    weight_log = bit_index - exp_low + pad
    weight_log = np.clip(weight_log, 0, max(config.es - 1, 0))
    exp_weight = np.int64(1) << weight_log.astype(np.int64)
    exponent = np.where(is_exp, exponent ^ exp_weight, exponent)

    # --- fraction flips: f' = f XOR 2**bit_index ---------------------------
    is_frac = field == PositField.FRACTION
    fraction = np.where(
        is_frac, fraction ^ np.uint64(1 << bit_index), fraction
    )

    # --- regime flips: re-derive the run structure of the flipped word ----
    is_regime = (field == PositField.REGIME) | (field == PositField.REGIME_TERM)
    flipped = work ^ np.uint64(1 << bit_index)
    refields = decompose(flipped, config)
    regime = np.where(is_regime, refields.regime, regime)
    exponent = np.where(is_regime, refields.exponent, exponent)
    fraction = np.where(is_regime, refields.fraction.astype(np.uint64), fraction)
    fraction_bits = np.where(is_regime, refields.fraction_bits, fraction_bits)

    predicted = _eq2(sign, regime, exponent, fraction, fraction_bits, config)

    # Specials: flips landing on / leaving zero or NaR.
    flipped_is_zero = flipped == np.uint64(config.zero_pattern)
    flipped_is_nar = flipped == np.uint64(config.nar_pattern)
    predicted = np.where(flipped_is_zero, 0.0, predicted)
    predicted = np.where(flipped_is_nar, np.nan, predicted)

    absolute = np.abs(original - predicted)
    with np.errstate(divide="ignore", invalid="ignore"):
        relative = absolute / np.abs(original)
    relative = np.where((original == 0) & (predicted == 0), 0.0, relative)
    # Undefined against a zero original (matches the metrics convention).
    relative = np.where((original == 0) & (predicted != 0), np.nan, relative)

    return PositFlipPrediction(
        faulty=predicted,
        absolute_error=absolute,
        relative_error=relative,
        event=event,
        field=field,
    )


def sign_flip_value(bits, config: PositConfig) -> np.ndarray:
    """Closed form for the sign-bit flip alone (the paper's Fig. 21)."""
    work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(config.mask)
    fields = decompose(work, config)
    return _eq2(
        1 - fields.sign,
        fields.regime,
        fields.exponent,
        fields.fraction.astype(np.uint64),
        fields.fraction_bits,
        config,
    )


def exponent_flip_factor(bit_weight: int, bit_was_set: bool, sign: int) -> float:
    """Scale factor an exponent-bit flip applies to a posit's value.

    e' = e - w when the bit was set, e + w otherwise; the value scales by
    2**((1-2s) * delta_e).  For es = 2 the largest |factor| is 4
    (Section 5.6's "multiplying or dividing the original value ... by 4").
    """
    delta = -bit_weight if bit_was_set else bit_weight
    return float(2.0 ** ((1 - 2 * sign) * delta))


def max_exponent_flip_error(config: PositConfig) -> float:
    """Worst relative error any exponent-bit flip can cause.

    The factor is at most 2**(2**(es-1)); relative error |factor - 1|
    maximizes at the multiply case: 2**(2**(es-1)) - 1 = 3 for es = 2.
    """
    if config.es == 0:
        return 0.0
    top_weight = 1 << (config.es - 1)
    return float(2.0**top_weight - 1.0)
