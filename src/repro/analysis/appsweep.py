"""Per-format outcome-rate tables for application-level campaigns.

An app sweep (``campaign sweep --app cg --formats ... --faults ...``)
leaves one run directory per (format x fault model) cell, each shard an
(injection-iteration, bit) solve replay classified into the outcome
taxonomy of :mod:`repro.apps.campaign` — converged / delayed / diverged
/ sdc.  This module folds those records into the paper-extending
artifact: the per-format outcome-rate table (posit32 vs ieee32 vs
bfloat16 vs fixedposit SDC/divergence frontiers), plus per-bit and
per-iteration breakdowns for drilling into *where* in the word and
*when* in the solve a flip stops being survivable.

Run as a script to render the table for finished run directories::

    python -m repro.analysis.appsweep runs/default/cg-posit32-0001 ...
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.campaign import OUTCOMES, AppTrialRecords

__all__ = [
    "AppOutcomeSummary",
    "load_app_records",
    "outcome_counts",
    "outcome_rates",
    "outcome_rates_by_bit",
    "outcome_rates_by_iteration",
    "outcome_table",
    "render_outcome_table",
    "summarize_app_run",
    "summaries_from_run_dirs",
]


def outcome_counts(records: AppTrialRecords) -> dict[str, int]:
    """Trial count per outcome label, every label always present."""
    return {
        outcome: int(np.count_nonzero(records.outcome == outcome))
        for outcome in OUTCOMES
    }


def outcome_rates(records: AppTrialRecords) -> dict[str, float]:
    """Fraction of trials per outcome label (zeros on empty records)."""
    total = len(records)
    if total == 0:
        return {outcome: 0.0 for outcome in OUTCOMES}
    return {
        outcome: count / total for outcome, count in outcome_counts(records).items()
    }


def outcome_rates_by_bit(records: AppTrialRecords) -> dict[int, dict[str, float]]:
    """Outcome rates per injected bit position."""
    return {
        int(bit): outcome_rates(records.for_bit(int(bit)))
        for bit in np.unique(records.bit)
    }


def outcome_rates_by_iteration(
    records: AppTrialRecords,
) -> dict[int, dict[str, float]]:
    """Outcome rates per injection iteration (the temporal axis)."""
    return {
        int(iteration): outcome_rates(
            records.select(records.iteration == iteration)
        )
        for iteration in np.unique(records.iteration)
    }


@dataclass(frozen=True)
class AppOutcomeSummary:
    """Whole-campaign outcome statistics for one (format x fault) cell."""

    target: str
    app: str
    fault: str
    trial_count: int
    rates: dict[str, float]
    #: Mean extra iterations over the clean solve, among trials that
    #: converged at all (0.0 when none did).
    mean_overhead: float
    #: Worst relative solution error among trials classified ``sdc``
    #: (0.0 when none were).
    max_sdc_error: float

    def as_row(self) -> list:
        return [
            self.target,
            self.app,
            self.fault,
            self.trial_count,
            *(self.rates[outcome] for outcome in OUTCOMES),
            self.mean_overhead,
        ]


def summarize_records(
    records: AppTrialRecords, *, target: str, app: str, fault: str
) -> AppOutcomeSummary:
    """One summary row from folded app-campaign records."""
    converged = records.converged & ~records.diverged
    overheads = records.iteration_overhead[converged]
    sdc_errors = records.solution_error[records.outcome == "sdc"]
    finite_sdc = sdc_errors[np.isfinite(sdc_errors)]
    return AppOutcomeSummary(
        target=target,
        app=app,
        fault=fault,
        trial_count=len(records),
        rates=outcome_rates(records),
        mean_overhead=float(np.mean(overheads)) if overheads.size else 0.0,
        max_sdc_error=float(np.max(finite_sdc)) if finite_sdc.size else 0.0,
    )


def load_app_records(run_dir) -> AppTrialRecords:
    """Fold every completed shard CSV of an app run directory."""
    from repro.runner.manifest import RunManifest

    manifest = RunManifest.load(run_dir)
    if manifest.app is None:
        raise ValueError(
            f"run {run_dir} is a value campaign, not an app campaign; "
            "use repro.analysis.aggregate / faultsweep on it"
        )
    parts = [
        AppTrialRecords.read_csv(RunManifest.shard_path(run_dir, bit))
        for bit in manifest.completed_bits()
    ]
    if not parts:
        raise ValueError(f"run {run_dir} has no completed shards to analyze")
    return AppTrialRecords.concatenate(parts)


def summarize_app_run(run_dir) -> AppOutcomeSummary:
    """Summary row for one completed app run directory."""
    from repro.runner.manifest import RunManifest

    manifest = RunManifest.load(run_dir)
    records = load_app_records(run_dir)
    return summarize_records(
        records,
        target=manifest.target_spec,
        app=manifest.app["name"],
        fault=manifest.fault,
    )


def summaries_from_run_dirs(run_dirs) -> list[AppOutcomeSummary]:
    """One summary per run directory, sorted for stable table output."""
    summaries = [summarize_app_run(run_dir) for run_dir in run_dirs]
    summaries.sort(key=lambda s: (s.app, s.fault, s.target))
    return summaries


def outcome_table(summaries) -> tuple[list[str], list[list]]:
    """(header, rows) of the per-format outcome-rate table."""
    header = ["target", "app", "fault", "trials", *OUTCOMES, "mean_overhead"]
    return header, [summary.as_row() for summary in summaries]


def render_outcome_table(summaries) -> str:
    """Fixed-width text rendering of :func:`outcome_table`."""
    header, rows = outcome_table(summaries)
    rendered = [header] + [
        [
            f"{value:.4f}" if isinstance(value, float) else str(value)
            for value in row
        ]
        for row in rows
    ]
    widths = [
        max(len(line[column]) for line in rendered)
        for column in range(len(header))
    ]
    lines = []
    for index, line in enumerate(rendered):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI artifact: render the outcome table for finished app runs."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.appsweep",
        description="Per-format outcome-rate table for app-campaign run dirs.",
    )
    parser.add_argument("run_dirs", nargs="+", help="completed app run directories")
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead"
    )
    args = parser.parse_args(argv)
    summaries = summaries_from_run_dirs(args.run_dirs)
    if args.json:
        import json

        print(json.dumps(
            [
                {
                    "target": s.target,
                    "app": s.app,
                    "fault": s.fault,
                    "trials": s.trial_count,
                    "rates": s.rates,
                    "mean_overhead": s.mean_overhead,
                    "max_sdc_error": s.max_sdc_error,
                }
                for s in summaries
            ],
            indent=2,
        ))
    else:
        print(render_outcome_table(summaries))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
