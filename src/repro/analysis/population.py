"""Regime-size population analysis.

Section 5.4.3 of the paper explains the *width* of the posit upper-bit
error band: "datasets with large variances and medians have a wider
error distribution since there are more values with larger numbers of
regime bits", placing R_k spikes at lower bit positions.  This module
quantifies that: the regime-size histogram of a stored field, the band
of bit positions its R_k spikes occupy, and the correlation between a
field's magnitude spread and its error-band width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stratify import terminating_bit_position
from repro.posit.config import PositConfig
from repro.posit.encode import encode
from repro.posit.fields import decompose


@dataclass(frozen=True)
class RegimePopulation:
    """Distribution of regime sizes within one stored field."""

    sizes: np.ndarray        # regime size k per histogram bin
    counts: np.ndarray       # elements per bin
    zero_fraction: float     # exact zeros (no regime in value space)

    @property
    def total(self) -> int:
        return int(np.sum(self.counts))

    def fraction(self, k: int) -> float:
        """Share of (nonzero) values with regime size k."""
        index = np.where(self.sizes == k)[0]
        if index.size == 0:
            return 0.0
        return float(self.counts[index[0]] / max(self.total, 1))

    def dominant_size(self) -> int:
        """The most common regime size."""
        return int(self.sizes[np.argmax(self.counts)])

    def spike_band(self, nbits: int, mass: float = 0.95) -> tuple[int, int]:
        """Bit positions (low, high) of R_k for the central `mass` of values.

        The positions where this field's regime-termination spikes land —
        the paper's "width of the error distribution".
        """
        order = np.argsort(self.sizes)
        sizes = self.sizes[order]
        weights = self.counts[order] / max(self.total, 1)
        cumulative = np.cumsum(weights)
        tail = (1.0 - mass) / 2.0
        low_k = int(sizes[np.searchsorted(cumulative, tail, side="left").clip(0, len(sizes) - 1)])
        high_k = int(sizes[np.searchsorted(cumulative, 1.0 - tail, side="left").clip(0, len(sizes) - 1)])
        low_k = max(min(low_k, nbits - 2), 1)
        high_k = max(min(high_k, nbits - 2), 1)
        # Larger k => lower bit position.
        return (
            terminating_bit_position(high_k, nbits),
            terminating_bit_position(low_k, nbits),
        )


def regime_population(data, config: PositConfig) -> RegimePopulation:
    """Regime-size histogram of a field stored as posits."""
    flat = np.asarray(data, dtype=np.float64).reshape(-1)
    if flat.size == 0:
        raise ValueError("cannot analyze an empty dataset")
    patterns = np.asarray(encode(flat, config)).astype(np.uint64)
    nonzero = patterns != config.zero_pattern
    zero_fraction = float(np.mean(~nonzero))
    fields = decompose(patterns[nonzero], config)
    sizes, counts = np.unique(fields.run, return_counts=True)
    return RegimePopulation(
        sizes=sizes.astype(np.int64),
        counts=counts.astype(np.int64),
        zero_fraction=zero_fraction,
    )


def magnitude_spread(data) -> float:
    """Standard deviation of log2 |x| over nonzero elements.

    The paper's "variance and median of the data" proxy: how many
    distinct regime sizes a field occupies grows with this spread.
    """
    flat = np.asarray(data, dtype=np.float64).reshape(-1)
    nonzero = flat[flat != 0]
    if nonzero.size == 0:
        return 0.0
    return float(np.std(np.log2(np.abs(nonzero))))


def band_width_vs_spread(fields: dict[str, np.ndarray], config: PositConfig) -> list[dict]:
    """Per-field spike-band width next to magnitude spread.

    Returns one row per field: {field, spread, band_low, band_high,
    band_width, distinct_regimes}.  A positive rank correlation between
    spread and band width is the paper's Section 5.4.3 observation.
    """
    rows = []
    for name, data in fields.items():
        population = regime_population(data, config)
        low, high = population.spike_band(config.nbits)
        rows.append({
            "field": name,
            "spread": magnitude_spread(data),
            "band_low": low,
            "band_high": high,
            "band_width": high - low + 1,
            "distinct_regimes": int(len(population.sizes)),
            "dominant_k": population.dominant_size(),
        })
    return rows


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks with ties assigned their average position (Spearman style)."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=np.float64)
    ordered = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and ordered[j + 1] == ordered[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j)
        i = j + 1
    return ranks


def rank_correlation(x, y) -> float:
    """Spearman rank correlation with tie-averaged ranks."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    rx = _average_ranks(x)
    ry = _average_ranks(y)
    rx -= rx.mean()
    ry -= ry.mean()
    denominator = float(np.sqrt(np.sum(rx * rx) * np.sum(ry * ry)))
    if denominator == 0:
        return 0.0
    return float(np.sum(rx * ry) / denominator)
