"""Posit flip edge-case detection (Sections 5.4.1-5.4.2 of the paper).

Three structural events make posit flips interesting:

* **regime expansion** (Fig. 12): flipping the terminating bit R_k makes
  it match the run, so the regime absorbs former exponent/fraction bits
  until the next opposite bit — the magnitude jumps by useed per absorbed
  bit.
* **regime shrink**: flipping a body bit R_0..R_{k-1} terminates the run
  early, shrinking the regime.
* **regime inversion** (Fig. 15): for a regime of size 1 (the sole
  regime bit), the flip both expands the regime *and* inverts its
  polarity, changing the sign of r in Eq. 2 — the paper measures
  absolute-error spikes up to 1e11 from this case in sub-one posits.

Classification compares the field decomposition before and after the
flip, so it is exact by construction.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.posit.config import PositConfig
from repro.posit.fields import PositField, classify_bit, decompose


class FlipEvent(enum.IntEnum):
    """Structural category of a posit single-bit flip."""

    SIGN_FLIP = 0
    REGIME_EXPANSION = 1
    REGIME_SHRINK = 2
    REGIME_INVERSION = 3
    EXPONENT_CHANGE = 4
    FRACTION_CHANGE = 5
    SPECIAL = 6  # flip to/from zero or NaR


def classify_flip(bits, bit_index: int, config: PositConfig) -> np.ndarray:
    """FlipEvent of flipping ``bit_index`` in each posit of ``bits``."""
    work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(config.mask)
    flipped = work ^ np.uint64(1 << bit_index)

    before = decompose(work, config)
    after = decompose(flipped, config)
    field = classify_bit(work, bit_index, config)

    out = np.empty(work.shape, dtype=np.int64)
    out[...] = FlipEvent.FRACTION_CHANGE

    out = np.where(field == PositField.EXPONENT, FlipEvent.EXPONENT_CHANGE, out)

    run_grew = after.run > before.run
    run_shrank = after.run < before.run
    regime_bit = (field == PositField.REGIME) | (field == PositField.REGIME_TERM)
    out = np.where(regime_bit & run_grew, FlipEvent.REGIME_EXPANSION, out)
    out = np.where(regime_bit & run_shrank, FlipEvent.REGIME_SHRINK, out)

    # Inversion (the paper's Fig. 15 edge case): the regime *expands and
    # inverts its polarity* — flipping R_0 of a size-1 regime makes the
    # run absorb the following bits with the opposite sense of r.  A
    # polarity change with a *shrinking* run (flipping R_0 of a longer
    # regime) is the ordinary shrink case of Section 5.4.1.
    r_sign_changed = (before.regime >= 0) != (after.regime >= 0)
    out = np.where(
        regime_bit & r_sign_changed & run_grew, FlipEvent.REGIME_INVERSION, out
    )

    out = np.where(field == PositField.SIGN, FlipEvent.SIGN_FLIP, out)

    special = (
        before.is_zero
        | before.is_nar
        | after.is_zero
        | after.is_nar
    )
    out = np.where(special, FlipEvent.SPECIAL, out)
    return out


def count_flip_events(bits, config: PositConfig) -> dict[FlipEvent, int]:
    """Histogram of flip events over every bit of every posit in ``bits``."""
    counts: dict[FlipEvent, int] = {event: 0 for event in FlipEvent}
    for bit_index in range(config.nbits):
        events = classify_flip(bits, bit_index, config)
        for event in FlipEvent:
            counts[event] += int(np.sum(events == event))
    return counts


def regime_inversion_mask(bits, bit_index: int, config: PositConfig) -> np.ndarray:
    """True where flipping ``bit_index`` inverts the regime polarity."""
    return classify_flip(bits, bit_index, config) == FlipEvent.REGIME_INVERSION


def expansion_growth(bits, bit_index: int, config: PositConfig) -> np.ndarray:
    """Regime run-length growth n (new regime bits) caused by the flip.

    The paper notes the magnitude scales by useed**n = 2**(useed_log2*n)
    when the regime absorbs n bits; this returns n per element (negative
    when the regime shrinks, 0 when untouched).
    """
    work = np.asarray(bits).astype(np.uint64, copy=False) & np.uint64(config.mask)
    flipped = work ^ np.uint64(1 << bit_index)
    before = decompose(work, config)
    after = decompose(flipped, config)
    return after.run - before.run
