"""Lookup tables used by the vectorized bit primitives.

The tables are built once at import time.  A 16-bit table costs 64 KiB per
table, which is negligible, and makes ``clz``/``popcount`` exact (unlike
``log2``-based emulations that misclassify values adjacent to powers of
two once they exceed 2**53).
"""

from __future__ import annotations

import numpy as np

_TABLE_BITS = 16
_TABLE_SIZE = 1 << _TABLE_BITS


def _build_clz16() -> np.ndarray:
    """Number of leading zeros of each 16-bit value (clz16(0) == 16)."""
    table = np.empty(_TABLE_SIZE, dtype=np.uint8)
    table[0] = _TABLE_BITS
    values = np.arange(1, _TABLE_SIZE, dtype=np.uint32)
    # bit_length via successively halving the candidate width would be a
    # loop; instead use the exact integer log2 from the float exponent.
    # float64 represents every integer < 2**53 exactly, so for 16-bit
    # inputs the exponent extraction below is exact.
    exponents = np.frexp(values.astype(np.float64))[1]  # bit length
    table[1:] = (_TABLE_BITS - exponents).astype(np.uint8)
    return table


def _build_popcount16() -> np.ndarray:
    """Population count of each 16-bit value."""
    values = np.arange(_TABLE_SIZE, dtype=np.uint16)
    counts = np.zeros(_TABLE_SIZE, dtype=np.uint8)
    work = values.copy()
    for _ in range(_TABLE_BITS):
        counts += (work & 1).astype(np.uint8)
        work >>= 1
    return counts


CLZ16: np.ndarray = _build_clz16()
POPCOUNT16: np.ndarray = _build_popcount16()
