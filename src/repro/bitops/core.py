"""Vectorized, exact bit primitives on NumPy unsigned-integer arrays.

All functions accept scalars or arrays and return NumPy values of the
matching shape.  Widths other than 8/16/32/64 are supported by the
``width=`` keyword, which treats only the low ``width`` bits of the input
as significant (as the posit code does for non-power-of-two posits).
"""

from __future__ import annotations

import numpy as np

from repro.bitops.lut import CLZ16, POPCOUNT16

_UINT_DTYPES = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}
_INT_DTYPES = {8: np.int8, 16: np.int16, 32: np.int32, 64: np.int64}


def uint_dtype_for(width: int) -> np.dtype:
    """Smallest unsigned NumPy dtype that holds ``width`` bits."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    for bits, dtype in _UINT_DTYPES.items():
        if width <= bits:
            return np.dtype(dtype)
    raise ValueError(f"width {width} exceeds 64 bits")


def int_dtype_for(width: int) -> np.dtype:
    """Smallest signed NumPy dtype whose width covers ``width`` bits."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    for bits, dtype in _INT_DTYPES.items():
        if width <= bits:
            return np.dtype(dtype)
    raise ValueError(f"width {width} exceeds 64 bits")


def bit_mask(width: int, dtype: np.dtype | type | None = None) -> np.integer:
    """All-ones mask of ``width`` bits as an unsigned NumPy scalar."""
    if not 0 <= width <= 64:
        raise ValueError(f"width must be in [0, 64], got {width}")
    if dtype is None:
        dtype = uint_dtype_for(max(width, 1))
    if width == 64:
        return np.uint64(0xFFFF_FFFF_FFFF_FFFF)
    return np.dtype(dtype).type((1 << width) - 1)


def _as_uint64(bits) -> np.ndarray:
    array = np.asarray(bits)
    if array.dtype.kind not in "ui":
        raise TypeError(f"expected integer bits, got dtype {array.dtype}")
    return array.astype(np.uint64, copy=False)


def clz32(bits) -> np.ndarray:
    """Count of leading zeros in 32-bit words (clz32(0) == 32)."""
    work = np.asarray(bits).astype(np.uint32, copy=False)
    high = (work >> np.uint32(16)).astype(np.intp)
    low = (work & np.uint32(0xFFFF)).astype(np.intp)
    high_clz = CLZ16[high].astype(np.int64)
    low_clz = CLZ16[low].astype(np.int64) + 16
    return np.where(high != 0, high_clz, low_clz)


def clz64(bits) -> np.ndarray:
    """Count of leading zeros in 64-bit words (clz64(0) == 64)."""
    work = _as_uint64(bits)
    high = (work >> np.uint64(32)).astype(np.uint32)
    low = (work & np.uint64(0xFFFF_FFFF)).astype(np.uint32)
    high_clz = clz32(high)
    low_clz = clz32(low) + 64 - 32
    return np.where(high != 0, high_clz, low_clz)


def clz(bits, width: int) -> np.ndarray:
    """Leading zeros within the low ``width`` bits of each element.

    Bits above ``width`` are ignored.  ``clz(0, width) == width``.
    """
    if not 1 <= width <= 64:
        raise ValueError(f"width must be in [1, 64], got {width}")
    work = _as_uint64(bits)
    if width < 64:
        work = work & np.uint64((1 << width) - 1)
    return clz64(work) - (64 - width)


def ctz(bits, width: int) -> np.ndarray:
    """Trailing zeros within the low ``width`` bits (ctz(0) == width)."""
    if not 1 <= width <= 64:
        raise ValueError(f"width must be in [1, 64], got {width}")
    work = _as_uint64(bits)
    if width < 64:
        work = work & np.uint64((1 << width) - 1)
    # Isolate lowest set bit; its clz gives the position from the top.
    # The +1 intentionally wraps for an all-ones complement.
    with np.errstate(over="ignore"):
        lowest = work & (~work + np.uint64(1))
    position_from_top = clz64(lowest)
    return np.where(work == 0, width, np.int64(63) - position_from_top)


def popcount(bits, width: int = 64) -> np.ndarray:
    """Number of set bits within the low ``width`` bits of each element."""
    if not 1 <= width <= 64:
        raise ValueError(f"width must be in [1, 64], got {width}")
    work = _as_uint64(bits)
    if width < 64:
        work = work & np.uint64((1 << width) - 1)
    total = np.zeros(work.shape, dtype=np.int64)
    for shift in (0, 16, 32, 48):
        chunk = ((work >> np.uint64(shift)) & np.uint64(0xFFFF)).astype(np.intp)
        total += POPCOUNT16[chunk]
    return total


def leading_run_length(bits, width: int) -> np.ndarray:
    """Length of the run of identical bits starting at the MSB.

    Operates on the low ``width`` bits.  This is the posit regime
    run-length primitive: for a body whose top bit is 1 the run is the
    count of leading ones, otherwise the count of leading zeros.  A body
    of all-equal bits returns ``width``.
    """
    if not 1 <= width <= 64:
        raise ValueError(f"width must be in [1, 64], got {width}")
    mask = np.uint64((1 << width) - 1) if width < 64 else np.uint64(0xFFFF_FFFF_FFFF_FFFF)
    work = _as_uint64(bits) & mask
    top_is_one = (work >> np.uint64(width - 1)) & np.uint64(1)
    inverted = (~work) & mask
    ones_run = clz(inverted, width)
    zeros_run = clz(work, width)
    return np.where(top_is_one.astype(bool), ones_run, zeros_run)


def twos_complement(bits, width: int):
    """Two's complement of each element within ``width`` bits."""
    if not 1 <= width <= 64:
        raise ValueError(f"width must be in [1, 64], got {width}")
    work = _as_uint64(bits)
    mask = np.uint64((1 << width) - 1) if width < 64 else np.uint64(0xFFFF_FFFF_FFFF_FFFF)
    # The +1 intentionally wraps when complementing zero.
    with np.errstate(over="ignore"):
        result = (~work + np.uint64(1)) & mask
    original = np.asarray(bits)
    if original.dtype.kind == "u":
        return result.astype(original.dtype)
    return result


def sign_bit(bits, width: int) -> np.ndarray:
    """The MSB of the low ``width`` bits, as 0/1 int64."""
    work = _as_uint64(bits)
    return ((work >> np.uint64(width - 1)) & np.uint64(1)).astype(np.int64)


def extract_bits(bits, low: int, count: int) -> np.ndarray:
    """Extract ``count`` bits starting at bit index ``low`` (LSB == 0)."""
    if count < 0 or low < 0 or low + count > 64:
        raise ValueError(f"invalid bit range low={low} count={count}")
    if count == 0:
        return np.zeros(np.asarray(bits).shape, dtype=np.uint64)
    work = _as_uint64(bits)
    mask = np.uint64((1 << count) - 1) if count < 64 else np.uint64(0xFFFF_FFFF_FFFF_FFFF)
    return (work >> np.uint64(low)) & mask


def set_bits_string(value: int, width: int) -> str:
    """Render the low ``width`` bits of ``value`` as a binary string."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return format(int(value) & ((1 << width) - 1), f"0{width}b")


def to_signed(bits, width: int) -> np.ndarray:
    """Reinterpret the low ``width`` bits as a two's-complement integer."""
    work = _as_uint64(bits)
    mask = np.uint64((1 << width) - 1) if width < 64 else np.uint64(0xFFFF_FFFF_FFFF_FFFF)
    work = work & mask
    signed = work.astype(np.int64)
    if width < 64:
        offset = np.int64(1 << width)
        signed = np.where(signed >= np.int64(1 << (width - 1)), signed - offset, signed)
    return signed


def to_unsigned(values, width: int) -> np.ndarray:
    """Inverse of :func:`to_signed` — wrap signed values into ``width`` bits."""
    work = np.asarray(values).astype(np.int64, copy=False)
    mask = np.uint64((1 << width) - 1) if width < 64 else np.uint64(0xFFFF_FFFF_FFFF_FFFF)
    return work.astype(np.uint64) & mask
