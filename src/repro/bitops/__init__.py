"""Exact, vectorized bit-manipulation primitives.

NumPy has no count-leading-zeros / popcount ufuncs, and the float-log
work-arounds are inexact near powers of two.  This package provides
lookup-table based implementations that are exact for 8/16/32/64-bit
unsigned integers and fully vectorized, as required by the posit decoder
(regime run-length detection) and the fault-injection analysis (bit masks,
two's complement, field extraction).
"""

from repro.bitops.core import (
    bit_mask,
    clz,
    clz32,
    clz64,
    ctz,
    extract_bits,
    leading_run_length,
    popcount,
    set_bits_string,
    sign_bit,
    to_signed,
    to_unsigned,
    twos_complement,
    uint_dtype_for,
)

__all__ = [
    "bit_mask",
    "clz",
    "clz32",
    "clz64",
    "ctz",
    "extract_bits",
    "leading_run_length",
    "popcount",
    "set_bits_string",
    "sign_bit",
    "to_signed",
    "to_unsigned",
    "twos_complement",
    "uint_dtype_for",
]
