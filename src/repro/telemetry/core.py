"""Core telemetry primitives: counters, spans, snapshots, collectors.

A :class:`Telemetry` collector aggregates two kinds of signal:

* **counters** — monotonically accumulated numbers ("trials executed",
  "values decoded"), added with :meth:`Telemetry.count`;
* **spans** — named timed regions entered via the
  :meth:`Telemetry.span` context manager or the :meth:`Telemetry.timed`
  decorator.  Spans nest freely; each name aggregates count / total /
  min / max wall time (``perf_counter_ns``).

The design goals mirror the campaign's execution model:

* **near-zero cost when off** — the module-level :data:`DISABLED`
  collector is a shared no-op whose ``span`` returns one reusable
  null context manager; instrumented hot paths guard with
  ``if telemetry.enabled`` so a disabled run pays one attribute read
  per *vectorized batch*, not per trial (see ``bench_telemetry.py``);
* **mergeable** — a :class:`TelemetrySnapshot` is a frozen copy of a
  collector that merges associatively (counters add, span stats
  combine), the same shard-reduction discipline as
  :mod:`repro.metrics.streaming`, so fork-pool workers profile their
  own shards and ship deltas back to the runner;
* **scoped** — :func:`telemetry_scope` installs a collector as the
  process-wide active one; instrumented library code always reports to
  :func:`get_telemetry` and never needs a handle threaded through.

Enablement resolves in order: an explicit collector / boolean passed to
``run_campaign(..., telemetry=...)`` (or the CLI ``--profile`` flag),
else the ``REPRO_TELEMETRY`` environment variable (``1/true/on`` to
enable, ``0/false/off`` to disable), else **off**.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from dataclasses import dataclass, field

#: Environment variable controlling the default collector.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

_TRUTHY = frozenset({"1", "true", "on", "yes", "enabled"})
_FALSY = frozenset({"0", "false", "off", "no", "disabled", ""})


def telemetry_enabled_by_env() -> bool:
    """Whether ``REPRO_TELEMETRY`` asks for telemetry (default: off)."""
    raw = os.environ.get(TELEMETRY_ENV_VAR, "").strip().lower()
    if raw in _TRUTHY:
        return True
    if raw in _FALSY:
        return False
    raise ValueError(
        f"unrecognized {TELEMETRY_ENV_VAR}={raw!r}; use 1/true/on or 0/false/off"
    )


@dataclass
class SpanStats:
    """Aggregated wall-time statistics of one named span.

    ``total_ns`` is inclusive wall time; ``self_ns`` is exclusive time —
    the region minus any *nested* recorded spans — so summing the
    ``self_ns`` of every span never double-counts and reconciles with
    the outermost span's ``total_ns`` (the per-phase report relies on
    this).
    """

    count: int = 0
    total_ns: int = 0
    self_ns: int = 0
    min_ns: int = 0
    max_ns: int = 0

    def record(self, elapsed_ns: int, self_ns: int | None = None) -> None:
        if self.count == 0:
            self.min_ns = self.max_ns = elapsed_ns
        else:
            if elapsed_ns < self.min_ns:
                self.min_ns = elapsed_ns
            if elapsed_ns > self.max_ns:
                self.max_ns = elapsed_ns
        self.count += 1
        self.total_ns += elapsed_ns
        self.self_ns += elapsed_ns if self_ns is None else self_ns

    def merge(self, other: "SpanStats") -> "SpanStats":
        """Combine with another span's stats (associative, like Chan merge)."""
        if other.count:
            if self.count == 0:
                self.min_ns, self.max_ns = other.min_ns, other.max_ns
            else:
                self.min_ns = min(self.min_ns, other.min_ns)
                self.max_ns = max(self.max_ns, other.max_ns)
            self.count += other.count
            self.total_ns += other.total_ns
            self.self_ns += other.self_ns
        return self

    def copy(self) -> "SpanStats":
        return SpanStats(self.count, self.total_ns, self.self_ns, self.min_ns, self.max_ns)

    @property
    def total_seconds(self) -> float:
        return self.total_ns / 1e9

    @property
    def self_seconds(self) -> float:
        return self.self_ns / 1e9

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "self_ns": self.self_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SpanStats":
        return cls(
            count=int(payload["count"]),
            total_ns=int(payload["total_ns"]),
            self_ns=int(payload.get("self_ns", payload["total_ns"])),
            min_ns=int(payload.get("min_ns", 0)),
            max_ns=int(payload.get("max_ns", 0)),
        )


@dataclass
class TelemetrySnapshot:
    """A frozen, mergeable copy of a collector's state.

    Snapshots are what cross process boundaries: each pool worker
    profiles its shard into a private collector, snapshots it, and the
    runner merges the shipped snapshots into the campaign-wide picture.
    Merging is associative and commutative for counters and span
    counts/totals, so the reduced result is independent of worker
    scheduling — the property the ``jobs=1`` vs ``jobs=N`` equivalence
    test asserts.
    """

    counters: dict[str, float] = field(default_factory=dict)
    spans: dict[str, SpanStats] = field(default_factory=dict)

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Fold another snapshot into this one (in place; returns self)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, stats in other.spans.items():
            mine = self.spans.get(name)
            if mine is None:
                self.spans[name] = stats.copy()
            else:
                mine.merge(stats)
        return self

    @property
    def empty(self) -> bool:
        return not self.counters and not self.spans

    def span_total_seconds(self, name: str) -> float:
        """Total seconds spent in a span (0.0 when never entered)."""
        stats = self.spans.get(name)
        return stats.total_seconds if stats else 0.0

    def phase_seconds(self) -> dict[str, float]:
        """Exclusive seconds grouped by the first dotted name component.

        Built from each span's *self* time, so nested spans never
        double-count: ``inject.shard`` covers its nested
        ``formats.decode`` calls, but only the shard-loop overhead lands
        in the ``inject`` phase while the codec time lands in
        ``formats``.  The phase values therefore sum to (at most) the
        outermost span's total.
        """
        phases: dict[str, float] = {}
        for name, stats in self.spans.items():
            phase = name.split(".", 1)[0]
            phases[phase] = phases.get(phase, 0.0) + stats.self_seconds
        return phases

    def to_json(self) -> dict:
        return {
            "version": 1,
            "counters": dict(sorted(self.counters.items())),
            "spans": {
                name: self.spans[name].to_json() for name in sorted(self.spans)
            },
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TelemetrySnapshot":
        return cls(
            counters={
                str(name): value for name, value in payload.get("counters", {}).items()
            },
            spans={
                str(name): SpanStats.from_json(stats)
                for name, stats in payload.get("spans", {}).items()
            },
        )


class _Span:
    """Context manager timing one region into its collector.

    Spans nest: a per-thread stack attributes each span's elapsed time
    to its parent's child total, so exclusive (self) time falls out at
    exit without any bookkeeping in the instrumented code.
    """

    __slots__ = ("_telemetry", "_name", "_start", "_child_ns")

    def __init__(self, telemetry: "Telemetry", name: str):
        self._telemetry = telemetry
        self._name = name
        self._start = 0
        self._child_ns = 0

    def __enter__(self) -> "_Span":
        stack = self._telemetry._span_stack()
        stack.append(self)
        self._child_ns = 0
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter_ns() - self._start
        stack = self._telemetry._span_stack()
        if stack and stack[-1] is self:
            stack.pop()
            if stack:
                stack[-1]._child_ns += elapsed
        self._telemetry._record_span(self._name, elapsed, elapsed - self._child_ns)


class _NullSpan:
    """Reusable no-op span handed out by the disabled collector."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Telemetry:
    """A live, thread-safe collector of counters and spans."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._spans: dict[str, SpanStats] = {}
        self._tls = threading.local()

    def _span_stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    # -- recording -------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter."""
        value = int(value) if float(value).is_integer() else float(value)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def span(self, name: str) -> _Span:
        """A context manager timing the enclosed region under ``name``."""
        return _Span(self, name)

    def timed(self, name: str):
        """Decorator form of :meth:`span`."""

        def decorate(func):
            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                with self.span(name):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    def _record_span(self, name: str, elapsed_ns: int, self_ns: int) -> None:
        with self._lock:
            stats = self._spans.get(name)
            if stats is None:
                stats = self._spans[name] = SpanStats()
            stats.record(elapsed_ns, self_ns)

    # -- reading / reducing ----------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """A frozen copy of the current state (safe to ship/merge)."""
        with self._lock:
            return TelemetrySnapshot(
                counters=dict(self._counters),
                spans={name: s.copy() for name, s in self._spans.items()},
            )

    def merge_snapshot(self, snapshot: TelemetrySnapshot) -> None:
        """Fold a worker's shipped snapshot into this collector."""
        with self._lock:
            for name, value in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, stats in snapshot.spans.items():
                mine = self._spans.get(name)
                if mine is None:
                    self._spans[name] = stats.copy()
                else:
                    mine.merge(stats)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._spans.clear()


class _NullTelemetry:
    """The disabled collector: every operation is a cheap no-op."""

    enabled = False

    def count(self, name: str, value: float = 1) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def timed(self, name: str):
        return lambda func: func

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot()

    def merge_snapshot(self, snapshot: TelemetrySnapshot) -> None:
        pass

    def reset(self) -> None:
        pass


#: The shared no-op collector (what ``get_telemetry`` returns when off).
DISABLED = _NullTelemetry()

# The active-collector stack.  The base entry reflects the environment;
# telemetry_scope() pushes run-scoped collectors on top.  Guarded by a
# lock only for push/pop — reads are a plain list index, which is atomic
# in CPython and keeps get_telemetry() off the hot path's critical path.
_STACK_LOCK = threading.Lock()
_STACK: list = [Telemetry() if telemetry_enabled_by_env() else DISABLED]


def get_telemetry():
    """The active collector (a :class:`Telemetry` or :data:`DISABLED`)."""
    return _STACK[-1]


def set_default_telemetry(collector) -> None:
    """Replace the base (process-default) collector."""
    with _STACK_LOCK:
        _STACK[0] = collector


def _reset_process_stack(collector) -> None:
    """Forget every active scope and install ``collector`` as the base.

    For forked worker initializers: the child inherits the parent's
    scope stack, but recording into those collectors would be lost with
    the process — workers must start from a clean slate.
    """
    with _STACK_LOCK:
        _STACK[:] = [collector]


class telemetry_scope:
    """Install ``collector`` as the active one for a ``with`` block.

    Scopes nest; leaving the block restores the previous collector.
    Usable from worker processes (each process has its own stack).
    """

    def __init__(self, collector):
        self.collector = collector

    def __enter__(self):
        with _STACK_LOCK:
            _STACK.append(self.collector)
        return self.collector

    def __exit__(self, exc_type, exc, tb) -> None:
        with _STACK_LOCK:
            # Remove the highest occurrence of our collector rather than
            # blindly popping: overlapping scopes from racing threads
            # must not evict each other's collectors.
            for i in range(len(_STACK) - 1, 0, -1):
                if _STACK[i] is self.collector:
                    del _STACK[i]
                    break


def resolve_collector(telemetry=None):
    """Normalize the ``telemetry=`` argument of campaign entry points.

    ``None``
        follow the environment (``REPRO_TELEMETRY``);
    ``True`` / ``False``
        a fresh enabled collector / the shared disabled one;
    a collector instance
        used as-is (lets callers aggregate across several runs).
    """
    if telemetry is None:
        return Telemetry() if telemetry_enabled_by_env() else DISABLED
    if telemetry is True:
        return Telemetry()
    if telemetry is False:
        return DISABLED
    if hasattr(telemetry, "span") and hasattr(telemetry, "snapshot"):
        return telemetry
    raise TypeError(
        f"telemetry must be None, a bool, or a Telemetry collector, got {telemetry!r}"
    )
