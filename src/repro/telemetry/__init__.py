"""Low-overhead tracing and metrics for the whole stack.

``repro.telemetry`` answers "where does a campaign's wall-clock go?"
with three layers:

* **collection** (:mod:`repro.telemetry.core`) — named counters and
  nestable timed spans, recorded into the process-active
  :class:`Telemetry` collector; a shared no-op collector makes disabled
  runs effectively free;
* **reduction** — :class:`TelemetrySnapshot` merges associatively, so
  fork-pool workers profile their own shards and the runner reduces the
  shipped snapshots exactly like the streaming metric accumulators;
* **export** (:mod:`repro.telemetry.export` /
  :mod:`repro.telemetry.report`) — a JSON snapshot in the run
  directory, a Prometheus text rendering, and a markdown run report
  joining ``events.jsonl`` with span timings.

Two fleet-scale layers join them for distributed runs:

* **tracing** (:mod:`repro.telemetry.trace`) — causally-parented span
  records per worker under ``<run-dir>/trace/``, exportable to Chrome
  trace-event JSON (``campaign trace export``);
* **time series** (:mod:`repro.telemetry.timeseries`) — per-worker
  samplers appending throughput/RSS/lease points under
  ``<run-dir>/metrics/``, folded into run-level series and a
  Prometheus textfile rendering (``campaign metrics``).

Enable with ``REPRO_TELEMETRY=1``, ``run_campaign(..., telemetry=True)``
or the CLI's ``campaign run --profile``; tracing+metrics with
``REPRO_TRACE=1`` / ``--trace``; inspect with
``posit-resiliency telemetry report <run-dir>`` and
``posit-resiliency campaign top <run-dir>``.
"""

from repro.telemetry.core import (
    DISABLED,
    TELEMETRY_ENV_VAR,
    SpanStats,
    Telemetry,
    TelemetrySnapshot,
    get_telemetry,
    resolve_collector,
    set_default_telemetry,
    telemetry_enabled_by_env,
    telemetry_scope,
)
from repro.telemetry.export import (
    TELEMETRY_FILE_NAME,
    WORKER_TELEMETRY_DIR_NAME,
    load_run_snapshot,
    load_snapshot,
    load_worker_snapshots,
    render_prometheus,
    telemetry_path,
    worker_telemetry_path,
    write_snapshot,
    write_worker_snapshot,
)
from repro.telemetry.humanize import format_count, format_duration, format_rate
from repro.telemetry.report import render_run_report, write_run_report
from repro.telemetry.timeseries import (
    METRICS_DIR_NAME,
    MetricsSampler,
    MetricsWriter,
    aggregate_metrics,
    latest_points,
    metrics_path,
    process_rss_bytes,
    read_metrics,
    render_metrics_prometheus,
)
from repro.telemetry.trace import (
    TRACE_DIR_NAME,
    TRACE_ENV_VAR,
    TraceContext,
    TraceWriter,
    chrome_trace,
    read_trace,
    resolve_trace,
    trace_enabled_by_env,
    trace_path,
    trace_workers,
    write_chrome_trace,
)

__all__ = [
    "DISABLED",
    "METRICS_DIR_NAME",
    "TELEMETRY_ENV_VAR",
    "TELEMETRY_FILE_NAME",
    "TRACE_DIR_NAME",
    "TRACE_ENV_VAR",
    "WORKER_TELEMETRY_DIR_NAME",
    "MetricsSampler",
    "MetricsWriter",
    "SpanStats",
    "Telemetry",
    "TelemetrySnapshot",
    "TraceContext",
    "TraceWriter",
    "aggregate_metrics",
    "chrome_trace",
    "format_count",
    "format_duration",
    "format_rate",
    "get_telemetry",
    "latest_points",
    "load_run_snapshot",
    "load_snapshot",
    "load_worker_snapshots",
    "metrics_path",
    "process_rss_bytes",
    "read_metrics",
    "read_trace",
    "render_metrics_prometheus",
    "render_prometheus",
    "render_run_report",
    "resolve_collector",
    "resolve_trace",
    "set_default_telemetry",
    "telemetry_enabled_by_env",
    "telemetry_path",
    "telemetry_scope",
    "trace_enabled_by_env",
    "trace_path",
    "trace_workers",
    "worker_telemetry_path",
    "write_chrome_trace",
    "write_run_report",
    "write_snapshot",
    "write_worker_snapshot",
]
