"""Low-overhead tracing and metrics for the whole stack.

``repro.telemetry`` answers "where does a campaign's wall-clock go?"
with three layers:

* **collection** (:mod:`repro.telemetry.core`) — named counters and
  nestable timed spans, recorded into the process-active
  :class:`Telemetry` collector; a shared no-op collector makes disabled
  runs effectively free;
* **reduction** — :class:`TelemetrySnapshot` merges associatively, so
  fork-pool workers profile their own shards and the runner reduces the
  shipped snapshots exactly like the streaming metric accumulators;
* **export** (:mod:`repro.telemetry.export` /
  :mod:`repro.telemetry.report`) — a JSON snapshot in the run
  directory, a Prometheus text rendering, and a markdown run report
  joining ``events.jsonl`` with span timings.

Enable with ``REPRO_TELEMETRY=1``, ``run_campaign(..., telemetry=True)``
or the CLI's ``campaign run --profile``; inspect with
``posit-resiliency telemetry report <run-dir>``.
"""

from repro.telemetry.core import (
    DISABLED,
    TELEMETRY_ENV_VAR,
    SpanStats,
    Telemetry,
    TelemetrySnapshot,
    get_telemetry,
    resolve_collector,
    set_default_telemetry,
    telemetry_enabled_by_env,
    telemetry_scope,
)
from repro.telemetry.export import (
    TELEMETRY_FILE_NAME,
    load_run_snapshot,
    load_snapshot,
    render_prometheus,
    telemetry_path,
    write_snapshot,
)
from repro.telemetry.humanize import format_count, format_duration, format_rate
from repro.telemetry.report import render_run_report, write_run_report

__all__ = [
    "DISABLED",
    "TELEMETRY_ENV_VAR",
    "TELEMETRY_FILE_NAME",
    "SpanStats",
    "Telemetry",
    "TelemetrySnapshot",
    "format_count",
    "format_duration",
    "format_rate",
    "get_telemetry",
    "load_run_snapshot",
    "load_snapshot",
    "render_prometheus",
    "render_run_report",
    "resolve_collector",
    "set_default_telemetry",
    "telemetry_enabled_by_env",
    "telemetry_path",
    "telemetry_scope",
    "write_run_report",
    "write_snapshot",
]
