"""Telemetry exporters: JSON snapshot files and Prometheus text format.

The JSON snapshot (``<run-dir>/telemetry.json``) is the durable form the
runner writes next to ``manifest.json`` / ``events.jsonl``; it
round-trips through :class:`~repro.telemetry.core.TelemetrySnapshot` so
reports and the ``campaign status`` command can re-read it.  The
Prometheus rendering serves scrape-style integration (push the file to a
node-exporter textfile collector, or serve it from a sidecar).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.telemetry.core import TelemetrySnapshot

#: File name the runner writes inside a run directory.
TELEMETRY_FILE_NAME = "telemetry.json"


def telemetry_path(run_dir: str | os.PathLike) -> Path:
    return Path(run_dir) / TELEMETRY_FILE_NAME


def write_snapshot(snapshot: TelemetrySnapshot, path: str | os.PathLike) -> Path:
    """Atomically write a snapshot as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(snapshot.to_json(), indent=2, sort_keys=True))
    os.replace(tmp, path)
    return path


def load_snapshot(path: str | os.PathLike) -> TelemetrySnapshot:
    """Read a snapshot written by :func:`write_snapshot`."""
    return TelemetrySnapshot.from_json(json.loads(Path(path).read_text()))


def load_run_snapshot(run_dir: str | os.PathLike) -> TelemetrySnapshot | None:
    """The run directory's snapshot, or None when never profiled."""
    path = telemetry_path(run_dir)
    if not path.is_file():
        return None
    return load_snapshot(path)


def _metric_name(name: str) -> str:
    """Sanitize a dotted telemetry name into a Prometheus metric name."""
    out = []
    for ch in name.lower():
        out.append(ch if ch.isalnum() else "_")
    metric = "".join(out)
    if metric and metric[0].isdigit():
        metric = "_" + metric
    return metric


def render_prometheus(
    snapshot: TelemetrySnapshot, prefix: str = "repro", labels: dict | None = None
) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters become ``<prefix>_<name>_total``; each span contributes
    ``*_seconds_total``, ``*_self_seconds_total`` and ``*_count``
    series labelled by span name.
    """
    label_str = ""
    if labels:
        pairs = ",".join(
            f'{_metric_name(k)}="{str(v)}"' for k, v in sorted(labels.items())
        )
        label_str = pairs
    lines: list[str] = []

    def fmt(metric: str, value, extra_label: str = "") -> str:
        parts = ",".join(p for p in (extra_label, label_str) if p)
        braces = f"{{{parts}}}" if parts else ""
        return f"{metric}{braces} {value}"

    if snapshot.counters:
        lines.append(f"# TYPE {prefix}_counter_total counter")
        for name in sorted(snapshot.counters):
            lines.append(
                fmt(
                    f"{prefix}_counter_total",
                    snapshot.counters[name],
                    f'name="{name}"',
                )
            )
    if snapshot.spans:
        lines.append(f"# TYPE {prefix}_span_seconds_total counter")
        lines.append(f"# TYPE {prefix}_span_self_seconds_total counter")
        lines.append(f"# TYPE {prefix}_span_count counter")
        for name in sorted(snapshot.spans):
            stats = snapshot.spans[name]
            label = f'name="{name}"'
            lines.append(
                fmt(f"{prefix}_span_seconds_total", f"{stats.total_seconds:.9f}", label)
            )
            lines.append(
                fmt(
                    f"{prefix}_span_self_seconds_total",
                    f"{stats.self_seconds:.9f}",
                    label,
                )
            )
            lines.append(fmt(f"{prefix}_span_count", stats.count, label))
    return "\n".join(lines) + ("\n" if lines else "")
