"""Telemetry exporters: JSON snapshot files and Prometheus text format.

The JSON snapshot (``<run-dir>/telemetry.json``) is the durable form the
runner writes next to ``manifest.json`` / ``events.jsonl``; it
round-trips through :class:`~repro.telemetry.core.TelemetrySnapshot` so
reports and the ``campaign status`` command can re-read it.  The
Prometheus rendering serves scrape-style integration (push the file to a
node-exporter textfile collector, or serve it from a sidecar).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.telemetry.core import TelemetrySnapshot

#: File name the runner writes inside a run directory.
TELEMETRY_FILE_NAME = "telemetry.json"

#: Directory holding per-worker snapshots from standalone / forked
#: work-stealing workers (one file per worker, merged at read time).
WORKER_TELEMETRY_DIR_NAME = "telemetry-workers"


def telemetry_path(run_dir: str | os.PathLike) -> Path:
    return Path(run_dir) / TELEMETRY_FILE_NAME


def worker_telemetry_dir(run_dir: str | os.PathLike) -> Path:
    return Path(run_dir) / WORKER_TELEMETRY_DIR_NAME


def worker_telemetry_path(run_dir: str | os.PathLike, worker: str) -> Path:
    slug = "".join(ch if (ch.isalnum() or ch in "._-") else "-" for ch in str(worker))
    return worker_telemetry_dir(run_dir) / f"{slug or 'worker'}.json"


def write_snapshot(snapshot: TelemetrySnapshot, path: str | os.PathLike) -> Path:
    """Atomically write a snapshot as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(snapshot.to_json(), indent=2, sort_keys=True))
    os.replace(tmp, path)
    return path


def load_snapshot(path: str | os.PathLike) -> TelemetrySnapshot:
    """Read a snapshot written by :func:`write_snapshot`."""
    return TelemetrySnapshot.from_json(json.loads(Path(path).read_text()))


def write_worker_snapshot(
    snapshot: TelemetrySnapshot, run_dir: str | os.PathLike, worker: str
) -> Path:
    """Persist one worker's snapshot beside the run's done records.

    Standalone ``campaign worker`` processes (and forked work-stealing
    children) each write their own file; nothing merges on the write
    path, so crash-looped workers simply overwrite their previous file
    and the merged view stays idempotent.
    """
    return write_snapshot(snapshot, worker_telemetry_path(run_dir, worker))


def load_worker_snapshots(
    run_dir: str | os.PathLike,
) -> dict[str, TelemetrySnapshot]:
    """Per-worker snapshots written by :func:`write_worker_snapshot`."""
    directory = worker_telemetry_dir(run_dir)
    if not directory.is_dir():
        return {}
    out: dict[str, TelemetrySnapshot] = {}
    for path in sorted(directory.glob("*.json")):
        try:
            out[path.stem] = load_snapshot(path)
        except (OSError, ValueError, KeyError):
            continue
    return out


def load_run_snapshot(run_dir: str | os.PathLike) -> TelemetrySnapshot | None:
    """The run's merged snapshot, or None when never profiled.

    Merges the coordinator's ``telemetry.json`` (serial/pool runs, and
    the in-run work the coordinator did itself) with every per-worker
    file under ``telemetry-workers/``.  Merging happens at read time —
    snapshot merge is associative, so the result is independent of how
    many workers the run was split across (the jobs=1 ≡ jobs=N
    identity the telemetry tests assert).
    """
    merged = TelemetrySnapshot()
    found = False
    path = telemetry_path(run_dir)
    if path.is_file():
        merged.merge(load_snapshot(path))
        found = True
    for snapshot in load_worker_snapshots(run_dir).values():
        merged.merge(snapshot)
        found = True
    return merged if found else None


def _metric_name(name: str) -> str:
    """Sanitize a dotted telemetry name into a Prometheus metric name."""
    out = []
    for ch in name.lower():
        out.append(ch if ch.isalnum() else "_")
    metric = "".join(out)
    if metric and metric[0].isdigit():
        metric = "_" + metric
    return metric


def render_prometheus(
    snapshot: TelemetrySnapshot, prefix: str = "repro", labels: dict | None = None
) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters become ``<prefix>_<name>_total``; each span contributes
    ``*_seconds_total``, ``*_self_seconds_total`` and ``*_count``
    series labelled by span name.
    """
    label_str = ""
    if labels:
        pairs = ",".join(
            f'{_metric_name(k)}="{str(v)}"' for k, v in sorted(labels.items())
        )
        label_str = pairs
    lines: list[str] = []

    def fmt(metric: str, value, extra_label: str = "") -> str:
        parts = ",".join(p for p in (extra_label, label_str) if p)
        braces = f"{{{parts}}}" if parts else ""
        return f"{metric}{braces} {value}"

    if snapshot.counters:
        lines.append(f"# TYPE {prefix}_counter_total counter")
        for name in sorted(snapshot.counters):
            lines.append(
                fmt(
                    f"{prefix}_counter_total",
                    snapshot.counters[name],
                    f'name="{name}"',
                )
            )
    if snapshot.spans:
        lines.append(f"# TYPE {prefix}_span_seconds_total counter")
        lines.append(f"# TYPE {prefix}_span_self_seconds_total counter")
        lines.append(f"# TYPE {prefix}_span_count counter")
        for name in sorted(snapshot.spans):
            stats = snapshot.spans[name]
            label = f'name="{name}"'
            lines.append(
                fmt(f"{prefix}_span_seconds_total", f"{stats.total_seconds:.9f}", label)
            )
            lines.append(
                fmt(
                    f"{prefix}_span_self_seconds_total",
                    f"{stats.self_seconds:.9f}",
                    label,
                )
            )
            lines.append(fmt(f"{prefix}_span_count", stats.count, label))
    return "\n".join(lines) + ("\n" if lines else "")
