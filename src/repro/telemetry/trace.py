"""Distributed tracing for multi-worker campaigns.

Every process that works on a run — the coordinating runner, forked
work-stealing children, standalone ``campaign worker`` processes on
other machines — appends *span records* to its own file under
``<run_dir>/trace/<worker>.jsonl``.  One file per writer means no
cross-process contention and no partial-line interleaving; the run
directory is the rendezvous, exactly like the lease protocol.

Causal parenting works without any cross-process coordination because
span ids are **deterministic**: the trace id derives from the manifest
identity (same inputs → same trace id on every machine), the run span
id from the trace id, a worker span id from the worker name, and a
shard span id from ``(bit, attempt, worker)``.  A worker that has never
spoken to the coordinator still emits spans whose ``parent_id`` matches
the coordinator's run span.

Records use wall-clock ``time.time()`` timestamps (seconds) so spans
from different machines land on a shared axis; durations come from the
emitting process's monotonic clock.  :func:`chrome_trace` folds every
per-worker file into a Chrome trace-event JSON document (one *process*
lane per worker) loadable in ``chrome://tracing`` / Perfetto.

Enablement mirrors telemetry: an explicit ``trace=`` argument wins,
else the ``REPRO_TRACE`` environment variable, else the manifest's
``trace`` flag (set by ``campaign submit --trace`` so late-joining
workers follow the run's choice), else **off**.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path

from repro.telemetry.core import _FALSY, _TRUTHY

#: Environment variable controlling tracing (same vocabulary as
#: ``REPRO_TELEMETRY``: 1/true/on to enable, 0/false/off to disable).
TRACE_ENV_VAR = "REPRO_TRACE"

#: Subdirectory of a run directory holding per-worker span files.
TRACE_DIR_NAME = "trace"

#: Schema tag stamped on every span record.
TRACE_SCHEMA = "repro.trace/1"


def trace_enabled_by_env() -> bool:
    """Whether ``REPRO_TRACE`` asks for tracing (default: off)."""
    raw = os.environ.get(TRACE_ENV_VAR, "").strip().lower()
    if raw in _TRUTHY:
        return True
    if raw in _FALSY:
        return False
    raise ValueError(
        f"unrecognized {TRACE_ENV_VAR}={raw!r}; use 1/true/on or 0/false/off"
    )


def resolve_trace(trace=None) -> bool:
    """Normalize the ``trace=`` argument of campaign entry points.

    ``None`` follows the environment; booleans are used as-is.  (The
    manifest-flag fallback for standalone workers lives in the worker,
    which knows whether an explicit argument was given.)
    """
    if trace is None:
        return trace_enabled_by_env()
    if trace is True or trace is False:
        return trace
    raise TypeError(f"trace must be None or a bool, got {trace!r}")


def _slug(text: str) -> str:
    """A filesystem-safe slug of a worker id (hostnames may hold dots)."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", str(text)) or "worker"


def trace_dir(run_dir: str | os.PathLike) -> Path:
    return Path(run_dir) / TRACE_DIR_NAME


def trace_path(run_dir: str | os.PathLike, worker: str) -> Path:
    return trace_dir(run_dir) / f"{_slug(worker)}.jsonl"


@dataclass(frozen=True)
class TraceContext:
    """Identity of one writer inside one traced run.

    ``trace_id`` is shared by every process working the run; ``worker``
    names this writer.  The ``*_span_id`` helpers give the deterministic
    ids that let spans reference parents emitted by other processes.
    """

    trace_id: str
    run_id: str
    worker: str

    @classmethod
    def for_run(
        cls, identity: dict, run_dir: str | os.PathLike, worker: str
    ) -> "TraceContext":
        """Derive the shared trace id from a manifest identity dict.

        Every process hashes the same identity payload (target, seed,
        trial counts, data fingerprint), so coordinator and standalone
        workers agree on the trace id without talking to each other.
        """
        digest = hashlib.blake2b(
            json.dumps(identity, sort_keys=True).encode(), digest_size=8
        ).hexdigest()
        return cls(trace_id=digest, run_id=Path(run_dir).name, worker=str(worker))

    @property
    def run_span_id(self) -> str:
        return f"{self.trace_id}/run"

    @property
    def worker_span_id(self) -> str:
        return f"{self.trace_id}/worker/{self.worker}"

    def shard_span_id(self, bit: int, attempt: int) -> str:
        return f"{self.trace_id}/shard/{int(bit)}/{int(attempt)}/{self.worker}"


class TraceWriter:
    """Appends complete-span records to this process's trace file.

    Records are written as single ``os.write`` calls on an ``O_APPEND``
    descriptor — the same torn-tail-tolerant discipline as
    ``events.jsonl`` — so a SIGKILLed worker leaves at most one ragged
    final line, which :func:`read_trace` skips.
    """

    def __init__(self, run_dir: str | os.PathLike, context: TraceContext):
        self.context = context
        path = trace_path(run_dir, context.worker)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self.path = path

    def emit(
        self,
        name: str,
        *,
        ts: float,
        duration: float,
        span_id: str,
        parent_id: str | None = None,
        category: str = "campaign",
        bit: int | None = None,
        attempt: int | None = None,
        args: dict | None = None,
    ) -> dict:
        """Record one completed span; returns the record written."""
        record = {
            "schema": TRACE_SCHEMA,
            "trace_id": self.context.trace_id,
            "run_id": self.context.run_id,
            "worker": self.context.worker,
            "name": name,
            "cat": category,
            "ts": round(float(ts), 6),
            "dur": round(max(float(duration), 0.0), 6),
            "span_id": span_id,
            "parent_id": parent_id,
            "bit": bit,
            "attempt": attempt,
            "args": args,
        }
        payload = {k: v for k, v in record.items() if v is not None}
        if self._fd >= 0:
            os.write(self._fd, (json.dumps(payload) + "\n").encode())
        return payload

    def shard_span(
        self,
        *,
        bit: int,
        attempt: int,
        ts: float,
        duration: float,
        parent_id: str | None = None,
        args: dict | None = None,
    ) -> dict:
        """Convenience: one shard-execution span parented to this worker."""
        return self.emit(
            f"shard bit={int(bit)}",
            ts=ts,
            duration=duration,
            span_id=self.context.shard_span_id(bit, attempt),
            parent_id=parent_id or self.context.worker_span_id,
            category="shard",
            bit=int(bit),
            attempt=int(attempt),
            args=args,
        )

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_trace(run_dir: str | os.PathLike) -> list[dict]:
    """Every span record in the run, sorted by start time.

    Tolerates a torn final line per file (a worker killed mid-write)
    and skips unparseable lines rather than failing the whole read.
    """
    records: list[dict] = []
    directory = trace_dir(run_dir)
    if not directory.is_dir():
        return records
    for path in sorted(directory.glob("*.jsonl")):
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "ts" in record:
                records.append(record)
    records.sort(key=lambda r: (r.get("ts", 0.0), r.get("worker", "")))
    return records


def trace_workers(records: list[dict]) -> list[str]:
    """Distinct worker names, in first-appearance order."""
    seen: dict[str, None] = {}
    for record in records:
        worker = record.get("worker")
        if worker and worker not in seen:
            seen[worker] = None
    return list(seen)


def chrome_trace(run_dir: str | os.PathLike) -> dict:
    """Fold every per-worker span file into Chrome trace-event JSON.

    Each worker becomes one *process* lane (integer pid + a
    ``process_name`` metadata event); spans become ``"X"`` complete
    events with microsecond timestamps relative to the earliest span,
    so a multi-machine run lines up on one time axis.
    """
    records = read_trace(run_dir)
    events: list[dict] = []
    pids = {worker: i + 1 for i, worker in enumerate(trace_workers(records))}
    for worker, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": worker},
            }
        )
    origin = min((r["ts"] for r in records), default=0.0)
    for record in records:
        args = dict(record.get("args") or {})
        for key in ("bit", "attempt", "span_id", "parent_id", "trace_id"):
            if record.get(key) is not None:
                args[key] = record[key]
        events.append(
            {
                "name": record.get("name", "span"),
                "cat": record.get("cat", "campaign"),
                "ph": "X",
                "pid": pids.get(record.get("worker", ""), 0),
                "tid": 0,
                "ts": round((record["ts"] - origin) * 1e6, 3),
                "dur": round(record.get("dur", 0.0) * 1e6, 3),
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "run_dir": str(run_dir),
            "workers": list(pids),
        },
    }


def write_chrome_trace(
    run_dir: str | os.PathLike, out: str | os.PathLike | None = None
) -> Path:
    """Write the Chrome trace export; returns the path written.

    Defaults to ``<run_dir>/trace/chrome-trace.json``.
    """
    document = chrome_trace(run_dir)
    path = Path(out) if out is not None else trace_dir(run_dir) / "chrome-trace.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(document, indent=2))
    os.replace(tmp, path)
    return path
