"""Human-friendly rendering of durations, rates, and counts.

Shared by the runner's :class:`~repro.runner.events.ProgressRenderer`
(ETA / elapsed lines) and the telemetry report, so ``8640.0s`` reads as
``2h 24m`` everywhere.
"""

from __future__ import annotations

import math


def format_duration(seconds: float) -> str:
    """Render a duration at human scale: ``418ms``, ``3.4s``, ``2h 24m``.

    Picks the two most significant units past one minute (``1d 2h``,
    ``2h 24m``, ``5m 09s``) and decimal forms below it; negative or
    non-finite inputs render literally rather than raising.
    """
    if not math.isfinite(seconds):
        return str(seconds)
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-6:
        return f"{seconds * 1e9:.0f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.0f}ms"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    days, hours = divmod(hours, 24)
    if days:
        return f"{days}d {hours}h"
    if hours:
        return f"{hours}h {minutes:02d}m"
    return f"{minutes}m {secs:02d}s"


def format_rate(per_second: float, unit: str = "") -> str:
    """Render a rate with thousands separators: ``12,340 trials/s``."""
    suffix = f" {unit}/s" if unit else "/s"
    if per_second >= 100:
        return f"{per_second:,.0f}{suffix}"
    if per_second >= 1:
        return f"{per_second:,.1f}{suffix}"
    return f"{per_second:.3g}{suffix}"


def format_count(value: float) -> str:
    """Render a counter value: integers with separators, floats compactly."""
    if float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:,.3f}"
